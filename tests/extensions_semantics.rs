//! Interpreter-verified semantics for the §10 extensions.

use slc_ast::{parse_program, Program, Stmt};
use slc_core::extensions::{frequent_path_ms, unroll_while};
use slc_sim::astinterp::equivalent;

const SEEDS: &[u64] = &[2, 19, 4242];

fn with_stmts(base: &Program, stmts: Vec<Stmt>) -> Program {
    let mut p = base.clone();
    p.stmts = stmts;
    p
}

#[test]
fn while_unroll_equivalent() {
    // the paper's shifted string copy (§10, second example), with a bounded
    // guard so random inputs always terminate
    let p = parse_program(
        "float a[128]; int i;\n\
         i = 0;\n\
         while (a[i + 2] > 0.0 && i < 100) { a[i] = a[i + 2] - 1.0; i += 1; }",
    )
    .unwrap();
    for factor in [2, 3, 4] {
        let out = unroll_while(p.stmts.last().unwrap(), factor).unwrap();
        let mut stmts = p.stmts[..p.stmts.len() - 1].to_vec();
        stmts.push(out);
        let q = with_stmts(&p, stmts);
        if let Err(m) = equivalent(&p, &q, SEEDS) {
            panic!(
                "while unroll ×{factor} mismatch: {m:?}\n{}",
                slc_ast::to_source(&q)
            );
        }
    }
}

#[test]
fn while_unroll_linked_list_search_shape() {
    // the §10 first example, expressed over an index-linked array
    let p = parse_program(
        "float key[64]; int next[64]; int p; int found; int guard;\n\
         p = 5; guard = 0;\n\
         while (p > 0 && guard < 200) {\n\
           if (key[p] > 2.0) { found = p; break; }\n\
           p = next[p] % 64;\n\
           guard += 1;\n\
         }",
    )
    .unwrap();
    let out = unroll_while(p.stmts.last().unwrap(), 2).unwrap();
    let mut stmts = p.stmts[..p.stmts.len() - 1].to_vec();
    stmts.push(out);
    let q = with_stmts(&p, stmts);
    if let Err(m) = equivalent(&p, &q, SEEDS) {
        panic!(
            "list search unroll mismatch: {m:?}\n{}",
            slc_ast::to_source(&q)
        );
    }
}

#[test]
fn frequent_path_equivalent() {
    let p = parse_program(
        "float x[64]; float acc; int i;\n\
         for (i = 0; i < 40; i++) { if (x[i] > 0.0) { acc = acc + x[i]; } else { acc = acc - 1.0; } x[i] = acc; }",
    )
    .unwrap();
    let mut q = p.clone();
    let loop_stmt = q.stmts[0].clone();
    let out = frequent_path_ms(&mut q, &loop_stmt).unwrap();
    q.stmts = out.stmts;
    if let Err(m) = equivalent(&p, &q, SEEDS) {
        panic!("frequent-path mismatch: {m:?}\n{}", slc_ast::to_source(&q));
    }
}

#[test]
fn frequent_path_with_trailing_statements() {
    let p = parse_program(
        "float x[64]; float y[64]; float acc; int i;\n\
         for (i = 1; i < 39; i++) {\n\
           if (x[i] < x[i - 1]) { acc = acc * 0.5; } else { acc = acc + x[i]; }\n\
           y[i] = acc + x[i + 1];\n\
           x[i] = y[i] * 0.25;\n\
         }",
    )
    .unwrap();
    let mut q = p.clone();
    let loop_stmt = q.stmts[0].clone();
    let out = frequent_path_ms(&mut q, &loop_stmt).unwrap();
    q.stmts = out.stmts;
    if let Err(m) = equivalent(&p, &q, SEEDS) {
        panic!(
            "frequent-path (trailing) mismatch: {m:?}\n{}",
            slc_ast::to_source(&q)
        );
    }
}

#[test]
fn frequent_path_downward_loop() {
    let p = parse_program(
        "float x[64]; float acc; int i;\n\
         for (i = 40; i > 2; i--) { if (x[i] > 0.0) { acc = acc + x[i]; } else { acc = acc - 1.0; } x[i] = acc; }",
    )
    .unwrap();
    let mut q = p.clone();
    let loop_stmt = q.stmts[0].clone();
    let out = frequent_path_ms(&mut q, &loop_stmt).unwrap();
    q.stmts = out.stmts;
    if let Err(m) = equivalent(&p, &q, SEEDS) {
        panic!(
            "frequent-path downward mismatch: {m:?}\n{}",
            slc_ast::to_source(&q)
        );
    }
}
