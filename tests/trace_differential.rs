//! Differential tests for the tracing/metrics subsystem: instrumentation
//! must be *observationally free*. The canonical batch report is
//! byte-identical with tracing on or off, the deterministic counter
//! registry is invariant under thread count, and wall clock never reaches
//! a fingerprint, a cache key, or the canonical JSON.

use slc_pipeline::{BatchConfig, BatchEngine};
use slc_trace::Tracer;

/// The full experiment matrix with tracing on vs off: byte-identical
/// canonical report (same content hash), identical counters — and the
/// traced run actually recorded something.
#[test]
fn tracing_on_and_off_produce_byte_identical_reports() {
    let cfg = BatchConfig::full_matrix();
    let off = BatchEngine::new().run(&cfg);

    let tracer = Tracer::enabled();
    let on = BatchEngine::new().run_traced(&cfg, &tracer);

    let canon_off = off.to_json();
    let canon_on = on.to_json();
    assert_eq!(canon_off, canon_on, "tracing must not perturb the report");
    assert_eq!(
        slc_analysis::fingerprint_str(&canon_off),
        slc_analysis::fingerprint_str(&canon_on)
    );
    assert_eq!(off.counters, on.counters);
    assert_eq!(off.counters_json(), on.counters_json());
    assert!(tracer.event_count() > 0, "traced run recorded no spans");
}

/// Counters are a pure function of the matrix: 1 thread and 8 threads must
/// agree exactly, including the verify.* lane.
#[test]
fn counters_invariant_across_thread_counts_on_full_matrix() {
    let mut c1 = BatchConfig::full_matrix();
    c1.verify = true;
    c1.threads = Some(1);
    let mut c8 = c1.clone();
    c8.threads = Some(8);

    let a = BatchEngine::new().run(&c1);
    let b = BatchEngine::new().run(&c8);
    assert_eq!(a.counters, b.counters, "counters depend on thread count");
    assert_eq!(a.counters_json(), b.counters_json());
    assert_eq!(a.to_json(), b.to_json());
}

/// Wall-clock values must never enter a fingerprint or cache key: two runs
/// separated by real time reuse every cached artifact (zero new misses)
/// and render byte-identical canonical reports, while the timing sidecar
/// stays quarantined (none of its fields appear in the canonical JSON or
/// the counter registry).
#[test]
fn wall_clock_never_enters_fingerprints_or_cache_keys() {
    let cfg = BatchConfig::full_matrix();

    // the plan fingerprint (the slms cache-key ingredient) is stable
    // across time
    let fp1 = cfg.plan.fingerprint(&cfg.slms);
    std::thread::sleep(std::time::Duration::from_millis(5));
    let fp2 = cfg.plan.fingerprint(&cfg.slms);
    assert_eq!(fp1, fp2);

    let engine = BatchEngine::new();
    let r1 = engine.run(&cfg);
    let misses_after_first: u64 = {
        let c = engine.cache_report();
        c.parse.misses + c.slms.misses + c.lir.misses + c.compile.misses + c.sim.misses
    };
    std::thread::sleep(std::time::Duration::from_millis(5));
    let r2 = engine.run(&cfg);
    let misses_after_second: u64 = {
        let c = engine.cache_report();
        c.parse.misses + c.slms.misses + c.lir.misses + c.compile.misses + c.sim.misses
    };
    assert_eq!(
        misses_after_first, misses_after_second,
        "a second timed run recomputed artifacts — some cache key moved"
    );

    // a fresh engine at a later wall-clock time renders the identical bytes
    // (the shared engine above accumulates cache *hits*, which the canonical
    // report legitimately records, so byte-identity is checked fresh-vs-fresh)
    let r3 = BatchEngine::new().run(&cfg);
    assert_eq!(r1.to_json(), r3.to_json());

    // sidecar fields stay out of the canonical report and the registry
    let canon = r2.to_json();
    for leak in [
        "wall_ms",
        "stage_ms",
        "pass_ms",
        "\"workers\"",
        "empty_polls",
    ] {
        assert!(!canon.contains(leak), "{leak} leaked into canonical JSON");
    }
    assert!(r2
        .counters
        .iter()
        .all(|(k, _)| !k.ends_with("_ns") && !k.ends_with("_ms")));
}
