//! Property-based testing of SLMS: random affine loops → the transformed
//! program must be bit-identical to the original, under every expansion
//! mode. Also: the dependence analysis must cover the brute-force oracle on
//! the same random loops.

use proptest::prelude::*;
use slc_analysis::brute::{brute_force_deps, ddg_covers};
use slc_analysis::{build_ddg, partition_mis};
use slc_ast::{parse_program, to_source};
use slc_core::{slms_program, Expansion, SlmsConfig};
use slc_sim::astinterp::equivalent;

/// One random statement template.
#[derive(Debug, Clone)]
enum StmtT {
    /// `A<a>[i + c] = <rhs>;`
    Store { arr: usize, off: i64, rhs: RhsT },
    /// `t<k> = <rhs>;`
    Def { tmp: usize, rhs: RhsT },
    /// `s += <rhs>;` accumulator
    Accum { rhs: RhsT },
    /// `if (A<a>[i] < A<b>[i + c]) A<a>[i + d] = <rhs>;`
    Guarded {
        arr: usize,
        brr: usize,
        c: i64,
        d: i64,
        rhs: RhsT,
    },
}

#[derive(Debug, Clone)]
struct RhsT {
    terms: Vec<TermT>,
    mul: bool,
}

#[derive(Debug, Clone)]
enum TermT {
    Load { arr: usize, off: i64 },
    Tmp(usize),
    Const(i64),
    Scalar,
}

fn term_strategy() -> impl Strategy<Value = TermT> {
    prop_oneof![
        (0usize..3, -3i64..4).prop_map(|(arr, off)| TermT::Load { arr, off }),
        (0usize..2).prop_map(TermT::Tmp),
        (1i64..5).prop_map(TermT::Const),
        Just(TermT::Scalar),
    ]
}

fn rhs_strategy() -> impl Strategy<Value = RhsT> {
    (
        proptest::collection::vec(term_strategy(), 1..4),
        any::<bool>(),
    )
        .prop_map(|(terms, mul)| RhsT { terms, mul })
}

fn stmt_strategy() -> impl Strategy<Value = StmtT> {
    prop_oneof![
        (0usize..3, -2i64..3, rhs_strategy()).prop_map(|(arr, off, rhs)| StmtT::Store {
            arr,
            off,
            rhs
        }),
        (0usize..2, rhs_strategy()).prop_map(|(tmp, rhs)| StmtT::Def { tmp, rhs }),
        rhs_strategy().prop_map(|rhs| StmtT::Accum { rhs }),
        (0usize..3, 0usize..3, -2i64..3, -2i64..3, rhs_strategy()).prop_map(
            |(arr, brr, c, d, rhs)| StmtT::Guarded {
                arr,
                brr,
                c,
                d,
                rhs
            }
        ),
    ]
}

fn off_str(off: i64) -> String {
    match off {
        0 => "i".to_string(),
        o if o > 0 => format!("i + {o}"),
        o => format!("i - {}", -o),
    }
}

fn rhs_str(r: &RhsT) -> String {
    let op = if r.mul { " * " } else { " + " };
    r.terms
        .iter()
        .map(|t| match t {
            TermT::Load { arr, off } => format!("A{arr}[{}]", off_str(*off)),
            TermT::Tmp(k) => format!("t{k}"),
            TermT::Const(c) => format!("{c}.0"),
            TermT::Scalar => "s".to_string(),
        })
        .collect::<Vec<_>>()
        .join(op)
}

fn render(stmts: &[StmtT], init: i64, bound: i64, step: i64) -> String {
    let mut body = String::new();
    for s in stmts {
        let line = match s {
            StmtT::Store { arr, off, rhs } => {
                format!("A{arr}[{}] = {};", off_str(*off), rhs_str(rhs))
            }
            StmtT::Def { tmp, rhs } => format!("t{tmp} = {};", rhs_str(rhs)),
            StmtT::Accum { rhs } => format!("s += {};", rhs_str(rhs)),
            StmtT::Guarded {
                arr,
                brr,
                c,
                d,
                rhs,
            } => format!(
                "if (A{arr}[i] < A{brr}[{}]) A{arr}[{}] = {};",
                off_str(*c),
                off_str(*d),
                rhs_str(rhs)
            ),
        };
        body.push_str(&line);
        body.push('\n');
    }
    let stepstr = match step {
        1 => "i++".to_string(),
        -1 => "i--".to_string(),
        k if k > 0 => format!("i += {k}"),
        k => format!("i -= {}", -k),
    };
    let cmp = if step > 0 { "<" } else { ">" };
    format!(
        "float A0[96]; float A1[96]; float A2[96]; float t0; float t1; float s; int i;\n\
         for (i = {init}; i {cmp} {bound}; {stepstr}) {{\n{body}}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn random_loops_equivalent(
        stmts in proptest::collection::vec(stmt_strategy(), 1..5),
        init in 4i64..8,
        span in 6i64..40,
        step in prop_oneof![Just(1i64), Just(2), Just(-1)],
    ) {
        let (init, bound) = if step > 0 { (init, init + span) } else { (init + span, init) };
        let src = render(&stmts, init, bound, step);
        let prog = parse_program(&src).unwrap();
        for expansion in [Expansion::Off, Expansion::Mve, Expansion::ScalarExpand] {
            let cfg = SlmsConfig { apply_filter: false, expansion, ..SlmsConfig::default() };
            let (out, _outcomes) = slms_program(&prog, &cfg);
            // whether or not SLMS fired, semantics must hold
            if let Err(m) = equivalent(&prog, &out, &[3, 17, 2024]) {
                panic!("mismatch under {expansion:?}: {m:?}\nsrc:\n{src}\nout:\n{}",
                       to_source(&out));
            }
        }
    }

    #[test]
    fn analysis_covers_brute_force(
        stmts in proptest::collection::vec(stmt_strategy(), 1..5),
    ) {
        let src = render(&stmts, 4, 24, 1);
        let prog = parse_program(&src).unwrap();
        let slc_ast::Stmt::For(f) = &prog.stmts[0] else { unreachable!() };
        // if-conversion-free subset only: guarded stmts are fine (If MIs)
        let Ok(mis) = partition_mis(&f.body) else { return Ok(()); };
        let ddg = build_ddg(&mis, "i", 1);
        if let Some(ground) = brute_force_deps(&mis, "i", 4, 24, 10) {
            for dep in &ground {
                prop_assert!(
                    ddg_covers(&ddg, dep),
                    "missed {dep:?} in:\n{src}"
                );
            }
        }
    }
}
