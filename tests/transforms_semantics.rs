//! Semantic checks for the §6 loop transformations: each rewrite must be
//! observationally identity on the programs it is legal for, including when
//! chained with SLMS (the §6 interaction patterns).

use slc_ast::{parse_program, Program, Stmt};
use slc_core::{slms_program, SlmsConfig};
use slc_sim::astinterp::equivalent;
use slc_transforms::{distribute, fuse, interchange, peel_front, reverse, unroll};

const SEEDS: &[u64] = &[3, 91, 777];

fn with_stmts(base: &Program, stmts: Vec<Stmt>) -> Program {
    let mut p = base.clone();
    p.stmts = stmts;
    p
}

fn assert_equiv(a: &Program, b: &Program, what: &str) {
    if let Err(m) = equivalent(a, b, SEEDS) {
        panic!("{what} changed semantics: {m:?}\n{}", slc_ast::to_source(b));
    }
}

#[test]
fn interchange_preserves_semantics() {
    // independent 2-D update: interchange is legal
    let p = parse_program(
        "float a[20][20]; int i; int j;\n\
         for (j = 1; j < 18; j++) { for (i = 1; i < 18; i++) { a[i][j] = a[i][j] * 2.0 + 1.0; } }",
    )
    .unwrap();
    let sw = interchange(&p.stmts[0]).unwrap();
    let q = with_stmts(&p, vec![sw]);
    assert_equiv(&p, &q, "interchange");
}

#[test]
fn interchange_paper_example_then_slms() {
    // §6: t = a[i][j]; a[i][j+1] = t — not SLMS-able over j; interchange
    // makes i innermost, then SLMS finds II = 1.
    let p = parse_program(
        "float a[24][24]; float t; int i; int j;\n\
         for (j = 0; j < 20; j++) { for (i = 0; i < 20; i++) { t = a[i][j]; a[i][j + 1] = t; } }",
    )
    .unwrap();
    let sw = interchange(&p.stmts[0]).unwrap();
    let q = with_stmts(&p, vec![sw]);
    assert_equiv(&p, &q, "interchange(paper)");
    let (slmsed, outcomes) = slms_program(
        &q,
        &SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        },
    );
    assert!(
        outcomes.iter().any(|o| o.result.is_ok()),
        "SLMS should fire after interchange: {outcomes:?}"
    );
    assert_equiv(&p, &slmsed, "interchange + SLMS");
}

#[test]
fn fusion_preserves_semantics_when_independent() {
    let p = parse_program(
        "float a[64]; float b[64]; int i;\n\
         for (i = 1; i < 60; i++) { a[i] = a[i] + 1.0; }\n\
         for (i = 1; i < 60; i++) { b[i] = b[i] * 2.0; }",
    )
    .unwrap();
    let fused = fuse(&p.stmts[0], &p.stmts[1]).unwrap();
    let q = with_stmts(&p, vec![fused]);
    assert_equiv(&p, &q, "fusion");
}

#[test]
fn fusion_then_slms_sec6() {
    // §6 fused loop reaching II = 3.
    let p = parse_program(
        "float A[64]; float B[64]; float C[64]; float t; float q; int i;\n\
         for (i = 1; i < 60; i++) { t = A[i - 1]; B[i] = B[i] + t; A[i] = t + B[i]; }\n\
         for (i = 1; i < 60; i++) { q = C[i - 1]; B[i] = B[i] + q; C[i] = q * B[i]; }",
    )
    .unwrap();
    let fused = fuse(&p.stmts[0], &p.stmts[1]).unwrap();
    let q = with_stmts(&p, vec![fused]);
    assert_equiv(&p, &q, "fusion(sec6)");
    let (slmsed, outcomes) = slms_program(
        &q,
        &SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        },
    );
    let rep = outcomes
        .iter()
        .find_map(|o| o.result.as_ref().ok())
        .expect("fused loop SLMS-able");
    assert!(rep.ii >= 1 && rep.ii < 6, "unexpected II {}", rep.ii);
    assert_equiv(&p, &slmsed, "fusion + SLMS");
}

#[test]
fn distribution_preserves_semantics_when_parallel() {
    let p = parse_program(
        "float a[64]; float b[64]; int i;\n\
         for (i = 0; i < 60; i++) { a[i] = a[i] + 1.0; b[i] = b[i] * 2.0; }",
    )
    .unwrap();
    let (l1, l2) = distribute(&p.stmts[0], 1).unwrap();
    let q = with_stmts(&p, vec![l1, l2]);
    assert_equiv(&p, &q, "distribution");
}

#[test]
fn unroll_preserves_semantics() {
    for (src, f) in [
        (
            "float a[64]; int i; for (i = 0; i < 60; i++) a[i] = a[i] + 1.0;",
            4,
        ),
        (
            "float a[64]; int i; for (i = 1; i < 60; i++) a[i] = a[i - 1] * 0.5;",
            2,
        ),
        (
            "float a[64]; int i; for (i = 0; i < 59; i += 2) a[i] = i;",
            3,
        ),
        (
            "float a[64]; int i; for (i = 59; i > 3; i--) a[i] = a[i] + 2.0;",
            5,
        ),
    ] {
        let p = parse_program(src).unwrap();
        let out = unroll(&p.stmts[0], f).unwrap();
        let q = with_stmts(&p, out);
        assert_equiv(&p, &q, &format!("unroll×{f} of {src}"));
    }
}

#[test]
fn reverse_preserves_semantics_when_parallel() {
    let p = parse_program(
        "float a[64]; float b[64]; int i; for (i = 2; i < 60; i += 3) a[i] = b[i] * 2.0;",
    )
    .unwrap();
    let r = reverse(&p.stmts[0]).unwrap();
    let q = with_stmts(&p, r);
    assert_equiv(&p, &q, "reverse");
}

#[test]
fn peel_preserves_semantics() {
    let p = parse_program("float a[64]; int i; for (i = 1; i < 40; i++) a[i] = a[i - 1] + 1.0;")
        .unwrap();
    for k in [1, 3, 10] {
        let out = peel_front(&p.stmts[0], k).unwrap();
        let q = with_stmts(&p, out);
        assert_equiv(&p, &q, &format!("peel {k}"));
    }
}

#[test]
fn slms_on_unrolled_loop() {
    // §6: unrolling before SLMS (resource utilization)
    let p = parse_program(
        "float a[128]; float b[128]; int i; for (i = 0; i < 120; i++) a[i] = b[i] * 2.0;",
    )
    .unwrap();
    let out = unroll(&p.stmts[0], 2).unwrap();
    let q = with_stmts(&p, out);
    let (slmsed, outcomes) = slms_program(
        &q,
        &SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        },
    );
    assert!(outcomes.iter().any(|o| o.result.is_ok()));
    assert_equiv(&p, &slmsed, "unroll + SLMS");
}

#[test]
fn normalize_preserves_semantics() {
    use slc_transforms::normalize;
    for src in [
        "float a[64]; int i; for (i = 4; i < 40; i += 3) a[i] = a[i] + i;",
        "float a[64]; int i; for (i = 30; i > 10; i -= 2) a[i] = a[i] * 2.0;",
        "float a[64]; int i; for (i = 1; i <= 20; i += 4) a[i] = i * 2;",
    ] {
        let p = parse_program(src).unwrap();
        let mut q = p.clone();
        let out = normalize(&mut q, &p.stmts[0], "k").unwrap();
        q.stmts = out;
        assert_equiv(&p, &q, &format!("normalize of {src}"));
    }
}

#[test]
fn normalize_then_slms() {
    use slc_transforms::normalize;
    let p = parse_program(
        "float a[128]; float b[128]; float t; int i;\n\
         for (i = 4; i < 120; i += 3) { t = b[i]; a[i] = t * 2.0; }",
    )
    .unwrap();
    let mut q = p.clone();
    let out = normalize(&mut q, &p.stmts[0], "k").unwrap();
    q.stmts = out;
    let (slmsed, outcomes) = slms_program(
        &q,
        &SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        },
    );
    assert!(outcomes.iter().any(|o| o.result.is_ok()), "{outcomes:?}");
    assert_equiv(&p, &slmsed, "normalize + SLMS");
}

#[test]
fn interchange_checked_guards_wavefront() {
    use slc_transforms::interchange_checked;
    // wavefront: interchange must be refused (it would change results)
    let p = parse_program(
        "float a[16][16]; int i; int j;\n\
         for (j = 1; j < 14; j++) { for (i = 1; i < 13; i++) { a[j][i] = a[j - 1][i + 1] + 1.0; } }",
    )
    .unwrap();
    assert!(interchange_checked(&p.stmts[0]).is_err());
    // and the refusal is justified: blindly interchanging DOES change results
    let swapped = interchange(&p.stmts[0]).unwrap();
    let q = with_stmts(&p, vec![swapped]);
    assert!(
        slc_sim::astinterp::equivalent(&p, &q, &[3, 91, 777]).is_err(),
        "wavefront interchange should actually be illegal"
    );
}
