//! Mutation harness for the static schedule verifier.
//!
//! Take genuine SLMS output, corrupt it in one targeted way, and prove the
//! verifier rejects the corruption *naming the violated rule*. Ten distinct
//! corruptions cover every obligation family: kernel structure, headers,
//! instance completeness, dependence order, MVE residues, expansion
//! subscripts and live-out restores. The flip side — genuine outputs are
//! accepted across the whole workload matrix — is asserted at the bottom.

use slc::ast::visit::{map_exprs, rewrite_expr, shift_induction, substitute_scalar};
use slc::ast::{parse_program, Expr, ForLoop, LValue, Program, Stmt};
use slc::slms::{slms_loop, Expansion, SlmsConfig, SlmsOutput};
use slc::verify::{verify_emission, verify_slms_program};

/// Schedule the first (innermost) loop of `src`; return the pre-transform
/// program, the loop, and the emission.
fn scheduled(src: &str, cfg: &SlmsConfig) -> (Program, ForLoop, SlmsOutput) {
    let prog = parse_program(src).unwrap();
    let stmt = prog
        .stmts
        .iter()
        .find(|s| matches!(s, Stmt::For(_)))
        .expect("source has a loop")
        .clone();
    let Stmt::For(f) = stmt.clone() else {
        unreachable!()
    };
    let mut work = prog.clone();
    let out = slms_loop(&mut work, &stmt, cfg).expect("loop should schedule");
    (prog, f, out)
}

fn rules(
    prog: &Program,
    f: &ForLoop,
    out: &SlmsOutput,
    stmts: &[Stmt],
    cfg: &SlmsConfig,
) -> Vec<&'static str> {
    verify_emission(prog, f, &out.report, stmts, cfg)
        .violations
        .iter()
        .map(|v| v.rule())
        .collect()
}

fn kernel_mut(stmts: &mut [Stmt]) -> &mut ForLoop {
    stmts
        .iter_mut()
        .find_map(|s| match s {
            Stmt::For(f) => Some(f),
            _ => None,
        })
        .expect("emission has a kernel loop")
}

fn kernel_pos(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .position(|s| matches!(s, Stmt::For(_)))
        .expect("emission has a kernel loop")
}

const DOT: &str = "float A[64]; float B[64]; float s; float t; int i;\n\
                   for (i = 0; i < 32; i++) { t = A[i] * B[i]; s = s + t; }";
const REC: &str = "float A[96]; int i;\n\
                   for (i = 2; i < 60; i++) A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];";

fn mve_cfg() -> SlmsConfig {
    SlmsConfig {
        apply_filter: false,
        ..SlmsConfig::default()
    }
}

fn expand_cfg() -> SlmsConfig {
    SlmsConfig {
        apply_filter: false,
        expansion: Expansion::ScalarExpand,
        ..SlmsConfig::default()
    }
}

/// The uncorrupted emissions all verify — the baseline every mutation
/// deviates from.
#[test]
fn genuine_emissions_accepted() {
    for (src, cfg) in [(DOT, mve_cfg()), (REC, mve_cfg()), (REC, expand_cfg())] {
        let (prog, f, out) = scheduled(src, &cfg);
        let verdict = verify_emission(&prog, &f, &out.report, &out.stmts, &cfg);
        assert!(verdict.clean(), "{:?}", verdict.violations);
        assert!(verdict.obligations > 10);
    }
}

/// Mutation 1: swapping two kernel rows reorders copies: the un-shifted members no
/// longer agree between copies (and MVE residues break).
#[test]
fn mutation_swap_kernel_rows() {
    let (prog, f, out) = scheduled(DOT, &mve_cfg());
    let mut bad = out.stmts.clone();
    let k = kernel_mut(&mut bad);
    assert!(k.body.len() >= 2, "kernel has {} rows", k.body.len());
    k.body.swap(0, 1);
    let r = rules(&prog, &f, &out, &bad, &mve_cfg());
    assert!(!r.is_empty(), "swap accepted");
    assert!(
        r.iter()
            .any(|x| ["kernel-copy", "mve-residue", "mi-faithfulness"].contains(x)),
        "unexpected rules {r:?}"
    );
}

/// Mutation 2: swapping the members inside one kernel row breaks the
/// descending-MI-order placement: un-renaming applies the wrong shift.
#[test]
fn mutation_swap_row_members() {
    let (prog, f, out) = scheduled(REC, &mve_cfg());
    let mut bad = out.stmts.clone();
    let k = kernel_mut(&mut bad);
    let row = k
        .body
        .iter_mut()
        .find_map(|s| match s {
            Stmt::Par(m) if m.len() >= 2 => Some(m),
            _ => None,
        })
        .expect("a multi-member kernel row");
    row.swap(0, 1);
    let r = rules(&prog, &f, &out, &bad, &mve_cfg());
    assert!(!r.is_empty(), "member swap accepted");
    assert!(
        r.iter().any(|x| [
            "mi-faithfulness",
            "kernel-copy",
            "mve-residue",
            "dependence"
        ]
        .contains(x)),
        "unexpected rules {r:?}"
    );
}

/// Mutation 3: an off-by-one induction shift on one kernel member reads the wrong
/// iteration's data.
#[test]
fn mutation_off_by_one_shift() {
    let (prog, f, out) = scheduled(REC, &mve_cfg());
    let mut bad = out.stmts.clone();
    let step = f.step;
    let var = f.var.clone();
    let k = kernel_mut(&mut bad);
    let member = match &mut k.body[0] {
        Stmt::Par(m) => &mut m[0],
        other => other,
    };
    shift_induction(member, &var, step);
    let r = rules(&prog, &f, &out, &bad, &mve_cfg());
    assert!(!r.is_empty(), "shifted member accepted");
    assert!(
        r.iter()
            .any(|x| ["mi-faithfulness", "kernel-copy", "mve-residue"].contains(x)),
        "unexpected rules {r:?}"
    );
}

/// Mutation 4: deleting a prologue instance leaves an iteration's MI unexecuted.
#[test]
fn mutation_drop_prologue_instance() {
    let (prog, f, out) = scheduled(DOT, &mve_cfg());
    assert!(kernel_pos(&out.stmts) > 0, "emission has a prologue");
    let mut bad = out.stmts.clone();
    bad.remove(0);
    let r = rules(&prog, &f, &out, &bad, &mve_cfg());
    assert!(r.contains(&"missing-instance"), "got {r:?}");
}

/// Mutation 5: using the wrong MVE version in one kernel member breaks the rotation
/// residue (the defining property modulo variable expansion relies on).
#[test]
fn mutation_wrong_mve_version() {
    let (prog, f, out) = scheduled(DOT, &mve_cfg());
    let (_, vers) = out
        .report
        .renamed
        .first()
        .expect("dot product renames under MVE")
        .clone();
    assert!(vers.len() >= 2);
    let mut bad = out.stmts.clone();
    let k = kernel_mut(&mut bad);
    // Rewrite v0 -> v1 in the first row that mentions v0.
    let mut done = false;
    for row in &mut k.body {
        let members: &mut [Stmt] = match row {
            Stmt::Par(m) => m,
            other => std::slice::from_mut(other),
        };
        for member in members.iter_mut() {
            let mut mentions = false;
            map_exprs(member, &mut |e| {
                rewrite_expr(e, &mut |node| {
                    if matches!(node, Expr::Var(n) if *n == vers[0]) {
                        mentions = true;
                    }
                });
            });
            if mentions && !done {
                substitute_scalar(member, &vers[0], &Expr::Var(vers[1].clone()));
                done = true;
            }
        }
    }
    assert!(done, "no kernel member mentions {}", vers[0]);
    let r = rules(&prog, &f, &out, &bad, &mve_cfg());
    assert!(r.contains(&"mve-residue"), "got {r:?}");
}

/// Mutation 6: duplicating an epilogue instance executes one iteration's MI twice.
#[test]
fn mutation_duplicate_epilogue_instance() {
    let (prog, f, out) = scheduled(DOT, &mve_cfg());
    let kpos = kernel_pos(&out.stmts);
    assert!(kpos + 1 < out.stmts.len(), "emission has an epilogue");
    let mut bad = out.stmts.clone();
    let dup = bad[kpos + 1].clone();
    bad.insert(kpos + 1, dup);
    let r = rules(&prog, &f, &out, &bad, &mve_cfg());
    assert!(
        r.contains(&"unknown-instance") || r.contains(&"live-out-restore"),
        "got {r:?}"
    );
}

/// Mutation 7: widening the kernel bound by one unrolled pass executes iterations
/// the epilogue also covers.
#[test]
fn mutation_kernel_bound_too_wide() {
    let (prog, f, out) = scheduled(DOT, &mve_cfg());
    let mut bad = out.stmts.clone();
    let step_total = {
        let k = kernel_mut(&mut bad);
        let old = match k.bound {
            Expr::Int(v) => v,
            _ => panic!("constant kernel bound expected"),
        };
        k.bound = Expr::Int(old + k.step);
        k.step
    };
    assert!(step_total != 0);
    let r = rules(&prog, &f, &out, &bad, &mve_cfg());
    assert!(r.contains(&"loop-header"), "got {r:?}");
}

/// Mutation 8: corrupting the induction-variable restore leaves the wrong live-out
/// value after the pipeline.
#[test]
fn mutation_corrupt_induction_restore() {
    let (prog, f, out) = scheduled(DOT, &mve_cfg());
    let mut bad = out.stmts.clone();
    let pos = bad
        .iter()
        .rposition(|s| matches!(s, Stmt::Assign { target: LValue::Var(n), .. } if *n == f.var))
        .expect("induction restore present");
    if let Stmt::Assign { value, .. } = &mut bad[pos] {
        let Expr::Int(v) = value else {
            panic!("constant restore expected")
        };
        *value = Expr::Int(*v + 1);
    }
    let r = rules(&prog, &f, &out, &bad, &mve_cfg());
    assert!(r.contains(&"live-out-restore"), "got {r:?}");
}

/// Mutation 9: corrupting a scalar-expansion subscript indexes a different
/// iteration's cell.
#[test]
fn mutation_corrupt_expansion_subscript() {
    let cfg = expand_cfg();
    let (prog, f, out) = scheduled(REC, &cfg);
    let (_, arr) = out
        .report
        .expanded_arrays
        .first()
        .expect("recurrence expands its decomposition temp")
        .clone();
    let mut bad = out.stmts.clone();
    let k = kernel_mut(&mut bad);
    let mut done = false;
    for row in &mut k.body {
        map_exprs(row, &mut |e| {
            rewrite_expr(e, &mut |node| {
                if let Expr::Index(name, idx) = node {
                    if *name == arr && !done {
                        idx[0] = Expr::add(idx[0].clone(), Expr::Int(1));
                        done = true;
                    }
                }
            });
        });
    }
    assert!(done, "no kernel subscript of {arr} found");
    let r = rules(&prog, &f, &out, &bad, &cfg);
    assert!(r.contains(&"expansion-subscript"), "got {r:?}");
}

/// Mutation 10: removing the kernel loop entirely is not a pipeline at all.
#[test]
fn mutation_remove_kernel() {
    let (prog, f, out) = scheduled(DOT, &mve_cfg());
    let mut bad = out.stmts.clone();
    let kpos = kernel_pos(&bad);
    bad.remove(kpos);
    let r = rules(&prog, &f, &out, &bad, &mve_cfg());
    assert!(r.contains(&"kernel-shape"), "got {r:?}");
}

/// Acceptance sweep: every built-in workload, under every expansion mode
/// and both filter settings, verifies with zero violations — transformed
/// loops are proven, the rest are skipped with a reason.
#[test]
fn workload_matrix_accepted() {
    for w in slc::workloads::all() {
        let prog = w.program();
        for expansion in [Expansion::Mve, Expansion::ScalarExpand, Expansion::Off] {
            for apply_filter in [true, false] {
                let cfg = SlmsConfig {
                    apply_filter,
                    expansion,
                    ..SlmsConfig::default()
                };
                let verdict = verify_slms_program(&prog, &cfg);
                assert!(
                    verdict.clean(),
                    "{} under {expansion:?} (filter {apply_filter}):\n{}",
                    w.name,
                    verdict.render()
                );
            }
        }
    }
}
