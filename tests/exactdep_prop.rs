//! Property-based testing of the exact dependence engine.
//!
//! Three contracts over random affine loops with mismatched-coefficient
//! subscripts (the pairs the legacy test widens to "any distance"):
//!
//! 1. **Soundness** — the range-aware DDG covers every dependence the
//!    brute-force iteration-enumeration oracle observes; the engine may be
//!    conservative but must never *miss* a dependence.
//! 2. **Dominance** — per pair, the engine is never less precise than the
//!    legacy [`array_dep_distances`] test: a legacy independence verdict
//!    stays independent, a legacy exact distance never widens, and affine
//!    pairs are never left undecided.
//! 3. **Self-check** — every certificate the engine attaches re-validates
//!    through [`check_dep_certificate`], the same entry point `slc verify`
//!    uses.

use proptest::prelude::*;
use slc::analysis::{
    analyze_pair, array_dep_distances, brute_force_deps, build_ddg_ranged, check_dep_certificate,
    ddg_covers, partition_mis, DepDist, DepStats, DepVerdict, LoopRange,
};
use slc::ast::{parse_program, ForLoop, Stmt};

/// One statement `A<dst>[cd·i + dd] = A<src>[cs·i + ds] + 1.0;`.
#[derive(Debug, Clone)]
struct StoreT {
    dst: usize,
    cd: i64,
    dd: i64,
    src: usize,
    cs: i64,
    ds: i64,
}

fn store_strategy() -> impl Strategy<Value = StoreT> {
    (0usize..3, 1i64..5, 0i64..8, 0usize..3, 1i64..5, 0i64..8).prop_map(
        |(dst, cd, dd, src, cs, ds)| StoreT {
            dst,
            cd,
            dd,
            src,
            cs,
            ds,
        },
    )
}

fn sub_str(c: i64, d: i64) -> String {
    match (c, d) {
        (1, 0) => "i".to_string(),
        (1, d) => format!("i + {d}"),
        (c, 0) => format!("{c} * i"),
        (c, d) => format!("{c} * i + {d}"),
    }
}

fn render(stmts: &[StoreT], init: i64, trips: i64) -> String {
    let mut body = String::new();
    for s in stmts {
        body.push_str(&format!(
            "A{}[{}] = A{}[{}] + 1.0;\n",
            s.dst,
            sub_str(s.cd, s.dd),
            s.src,
            sub_str(s.cs, s.ds)
        ));
    }
    let bound = init + trips;
    format!(
        "float A0[256]; float A1[256]; float A2[256]; int i;\n\
         for (i = {init}; i < {bound}; i++) {{\n{body}}}\n"
    )
}

fn the_loop(src: &str) -> ForLoop {
    let prog = parse_program(src).unwrap();
    prog.stmts
        .iter()
        .find_map(|s| match s {
            Stmt::For(f) => Some(f.clone()),
            _ => None,
        })
        .expect("source has a loop")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Soundness: the ranged DDG covers every ground-truth dependence the
    /// enumeration oracle finds.
    #[test]
    fn ranged_ddg_covers_brute_oracle(
        stmts in proptest::collection::vec(store_strategy(), 1..4),
        init in 0i64..4,
        trips in 2i64..24,
    ) {
        let src = render(&stmts, init, trips);
        let f = the_loop(&src);
        let range = LoopRange::of_loop(&f).expect("constant range");
        let mis = partition_mis(&f.body).unwrap();
        let ground = brute_force_deps(&mis, "i", init, init + trips, trips)
            .expect("evaluable subscripts");
        let mut stats = DepStats::default();
        let rd = build_ddg_ranged(&mis, "i", &range, &mut stats);
        for dep in &ground {
            prop_assert!(
                ddg_covers(&rd.ddg, dep),
                "missed {dep:?}\nsrc:\n{src}"
            );
        }
    }

    /// Dominance: per access pair the exact engine is never less precise
    /// than the legacy coefficient test, and never leaves an affine pair
    /// undecided. Certificates all re-check clean.
    #[test]
    fn engine_dominates_legacy_test(
        stmts in proptest::collection::vec(store_strategy(), 1..4),
        init in 0i64..4,
        trips in 2i64..24,
    ) {
        let src = render(&stmts, init, trips);
        let f = the_loop(&src);
        let range = LoopRange::of_loop(&f).expect("constant range");
        let mis = partition_mis(&f.body).unwrap();
        let mut stats = DepStats::default();
        let rd = build_ddg_ranged(&mis, "i", &range, &mut stats);
        for (p, accp) in rd.ddg.accesses.iter().enumerate() {
            for (q, accq) in rd.ddg.accesses.iter().enumerate().skip(p) {
                for (ix, a) in accp.arrays.iter().enumerate() {
                    for (iy, b) in accq.arrays.iter().enumerate() {
                        if a.array != b.array || (p == q && iy <= ix) {
                            continue;
                        }
                        let mut st = DepStats::default();
                        let ana = analyze_pair(a, b, "i", &range, &mut st);
                        prop_assert!(
                            ana.verdict != DepVerdict::Undecidable,
                            "affine pair left undecided: MI{p}#{ix} vs MI{q}#{iy}\nsrc:\n{src}"
                        );
                        match array_dep_distances(a, b, "i") {
                            DepDist::None => prop_assert!(
                                ana.verdict == DepVerdict::Independent,
                                "legacy refuted but engine says {:?}: MI{p}#{ix} vs MI{q}#{iy}\nsrc:\n{src}",
                                ana.verdict
                            ),
                            DepDist::Dist(d) => match &ana.verdict {
                                DepVerdict::Independent => {}
                                DepVerdict::Distances(ds) => prop_assert!(
                                    ds.iter().all(|x| *x == d),
                                    "legacy exact {d} but engine widened to {ds:?}\nsrc:\n{src}"
                                ),
                                other => prop_assert!(
                                    false,
                                    "legacy exact {d} but engine widened to {other:?}\nsrc:\n{src}"
                                ),
                            },
                            DepDist::Any => {}
                        }
                        if let Some(cert) = &ana.certificate {
                            prop_assert!(
                                check_dep_certificate(a, b, "i", &range, cert).is_ok(),
                                "certificate failed re-check: MI{p}#{ix} vs MI{q}#{iy}\nsrc:\n{src}"
                            );
                        }
                    }
                }
            }
        }
    }
}
