//! Exit-code contracts of `slc deps` (0 = every certificate re-checks
//! clean, 1 = re-check or read failure, 2 = bad usage) and `slc lint`
//! (0 = no error-severity lints, 1 = error lints or read failure, 2 = bad
//! usage), plus the JSONL output shapes the CI dep-gate consumes.

use std::io::Write;
use std::process::Command;

fn slc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_slc"))
}

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("slc_deps_cli_{name}_{}.c", std::process::id()));
    std::fs::File::create(&path)
        .unwrap()
        .write_all(src.as_bytes())
        .unwrap();
    path
}

const STRIDE: &str = "float a[4096]; float b[512]; int i;\n\
                      for (i = 0; i < 500; i++) { a[4 * i] = a[2 * i + 1] + 1.0; \
                      b[i] = a[2 * i + 1] * 2.0; }";

#[test]
fn deps_refutes_strided_pairs_with_certificates() {
    let path = write_temp("stride", STRIDE);
    let out = slc().arg("deps").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("independent"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("certificate re-checked OK"),
        "stdout:\n{stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn deps_json_emits_verdicts_and_rechecks() {
    let path = write_temp("stride_json", STRIDE);
    let out = slc().args(["deps", "--json"]).arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    let pair_lines: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("\"verdict\""))
        .collect();
    assert!(!pair_lines.is_empty(), "stdout:\n{stdout}");
    for l in &pair_lines {
        assert!(l.contains("\"recheck\":\"ok\""), "line: {l}");
        assert!(l.contains("\"certificate\""), "line: {l}");
    }
    assert!(
        stdout.contains("\"pairs_decided\""),
        "stats line missing:\n{stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn deps_reports_symbolic_range_as_skipped() {
    let path = write_temp(
        "symbolic",
        "float a[64]; int i; int n;\nfor (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }",
    );
    let out = slc().arg("deps").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("skipped"), "stdout:\n{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn deps_all_workloads_exit_zero() {
    let out = slc().args(["deps", "--all"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(!stdout.contains("CERTIFICATE FAILED"), "stdout:\n{stdout}");
}

#[test]
fn deps_bad_flag_exits_two() {
    let out = slc().args(["deps", "--bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn deps_missing_file_exits_one() {
    let out = slc()
        .args(["deps", "/nonexistent/slc_no_such_file.c"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_clean_program_exits_zero() {
    let path = write_temp(
        "lint_clean",
        "float A[32]; float B[32]; float s; float t; int i;\n\
         for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
    );
    let out = slc().arg("lint").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn lint_error_exits_one() {
    // `s` is initialised on one path only: the error-severity L001 fires.
    let path = write_temp(
        "lint_err",
        "float A[10]; float s; int c;\n\
         if (c > 0) s = 1.0;\n\
         A[0] = s;",
    );
    let out = slc().arg("lint").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("SLMS-L001"), "stdout:\n{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn lint_warning_only_exits_zero_and_json_names_code() {
    // Strided conflict the exact engine certifies as independent would be
    // suppressed; a symbolic range keeps L002 a warning.
    let path = write_temp(
        "lint_warn",
        "float X[64]; int i; int j; int k;\n\
         for (k = 0; k < 64; k++) { X[k * i] = X[k * j] * 2.0; }",
    );
    let out = slc().args(["lint", "--json"]).arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(
        stdout.contains("\"severity\":\"warning\""),
        "stdout:\n{stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn lint_all_workloads_exit_zero() {
    let out = slc().args(["lint", "--all"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
}

#[test]
fn lint_bad_flag_exits_two() {
    let out = slc().args(["lint", "--bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
