//! Property-based testing of the pass framework: (1) plan text round-trips
//! — `parse(render(plan)) == plan` for arbitrary plans; (2) any *valid*
//! plan over random affine loops preserves interpreter semantics — the
//! composition of §6 transforms and SLMS is observationally the identity.

use proptest::prelude::*;
use slc_ast::parse_program;
use slc_core::SlmsConfig;
use slc_pipeline::{PassManager, PassPlan, PassSpec};
use slc_sim::astinterp::equivalent;

fn spec_strategy() -> impl Strategy<Value = PassSpec> {
    prop_oneof![
        (any::<bool>(), 0usize..9).prop_map(|(all, t)| PassSpec::Normalize {
            target: if all { None } else { Some(t) }
        }),
        (0usize..9, 0usize..9).prop_map(|(a, b)| PassSpec::Fuse { a, b }),
        (0usize..9, 0usize..9).prop_map(|(target, split)| PassSpec::Distribute { target, split }),
        (0usize..9).prop_map(|target| PassSpec::Interchange { target }),
        (0usize..9).prop_map(|target| PassSpec::Reverse { target }),
        (0usize..9, 0i64..9).prop_map(|(target, n)| PassSpec::Peel { target, n }),
        (0usize..9, 1i64..9).prop_map(|(target, factor)| PassSpec::Unroll { target, factor }),
        any::<bool>().prop_map(|no_filter| PassSpec::Slms { no_filter }),
    ]
}

/// Plans that are legal on [`twin_loops`]: two top-level loops with
/// identical headers, element-wise bodies (no loop-carried dependences),
/// disjoint write sets, two statements each — so fusion, distribution,
/// reversal, peeling, unrolling and SLMS all apply in any of these orders.
const VALID_PLANS: [&str; 16] = [
    "slms",
    "slms:nofilter",
    "normalize",
    "normalize,slms",
    "fuse:0+1,normalize,slms",
    "fuse:0+1,slms:nofilter",
    "fuse:0+1,distribute:0+2,slms",
    "fuse:0+1,unroll:0+2,slms:nofilter",
    "distribute:0+1,slms",
    "distribute:1+1,slms:nofilter",
    "reverse:0,slms",
    "reverse:1,normalize,slms",
    "unroll:0+2,slms:nofilter",
    "unroll:1+3",
    "peel:0+2,slms",
    "peel:1+1,normalize,slms",
];

fn twin_loops(init: i64, bound: i64, step: i64, k1: i64, k2: i64, k3: i64) -> String {
    format!(
        "float A[96]; float B[96]; float C[96]; float D[96]; float E[96]; float F[96]; int i;\n\
         for (i = {init}; i < {bound}; i += {step}) {{\n\
           A[i] = B[i] * {k1}.0 + C[i];\n\
           D[i] = A[i] + {k2}.0;\n\
         }}\n\
         for (i = {init}; i < {bound}; i += {step}) {{\n\
           E[i] = C[i] * {k3}.0;\n\
           F[i] = E[i] + B[i];\n\
         }}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn plan_text_roundtrips(
        specs in proptest::collection::vec(spec_strategy(), 1..6),
    ) {
        let plan = PassPlan { specs };
        let text = plan.to_string();
        let reparsed = PassPlan::parse(&text).unwrap_or_else(|e| {
            panic!("rendered plan `{text}` failed to parse: {e}")
        });
        prop_assert_eq!(&reparsed, &plan, "{}", text);
        // rendering is canonical: a second round trip is a fixpoint
        prop_assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn fingerprint_is_stable_and_text_independent(
        specs in proptest::collection::vec(spec_strategy(), 1..6),
    ) {
        let plan = PassPlan { specs };
        let cfg = SlmsConfig::default();
        let fp = plan.fingerprint(&cfg);
        prop_assert_eq!(fp, plan.fingerprint(&cfg));
        // parse(render(plan)) keys the same cache slot
        let reparsed = PassPlan::parse(&plan.to_string()).unwrap();
        prop_assert_eq!(fp, reparsed.fingerprint(&cfg));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn valid_plans_preserve_semantics(
        plan_idx in 0usize..16,
        init in 0i64..4,
        span in 8i64..40,
        step in prop_oneof![Just(1i64), Just(2), Just(3)],
        k1 in 1i64..5,
        k2 in 1i64..5,
        k3 in 1i64..5,
    ) {
        let src = twin_loops(init, init + span, step, k1, k2, k3);
        let prog = parse_program(&src).unwrap();
        let plan = PassPlan::parse(VALID_PLANS[plan_idx]).unwrap();
        let pm = PassManager::new(SlmsConfig::default());
        let (out, _sink) = pm
            .run(&prog, &plan)
            .unwrap_or_else(|e| panic!("plan `{plan}` failed on:\n{src}\n{e}"));
        if let Err(m) = equivalent(&prog, &out, &[3, 17, 2024]) {
            panic!(
                "plan `{plan}` changed semantics: {m:?}\nsrc:\n{src}\nout:\n{}",
                slc_ast::to_source(&out)
            );
        }
    }
}
