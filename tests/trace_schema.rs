//! Schema checks for the exported traces: the Chrome trace-event document
//! a traced batch run emits must validate, carry a span for every pipeline
//! stage, and lay cells out as one named track per worker thread (what
//! Perfetto renders as timeline rows). The JSONL event log must be one
//! parsable object per line.

use slc_pipeline::{BatchConfig, BatchEngine, Json};
use slc_trace::{validate_chrome_trace, Tracer};

fn traced_run(threads: usize) -> Tracer {
    let mut cfg = BatchConfig::full_matrix();
    cfg.threads = Some(threads);
    cfg.verify = true;
    let tracer = Tracer::enabled();
    let report = BatchEngine::new().run_traced(&cfg, &tracer);
    assert_eq!(report.failed(), 0);
    tracer
}

#[test]
fn chrome_trace_validates_with_stage_spans_and_worker_tracks() {
    let tracer = traced_run(3);
    let doc = tracer.to_chrome_json().expect("tracer is enabled");
    let s = validate_chrome_trace(&doc).unwrap_or_else(|e| panic!("invalid trace: {e}"));
    assert!(s.spans > 0);

    // every pipeline stage shows up as a span
    for stage in ["batch.run", "parse", "plan", "lower", "compile", "simulate"] {
        assert!(
            s.span_names.iter().any(|n| n == stage),
            "missing {stage} span; got {:?}",
            s.span_names.iter().take(20).collect::<Vec<_>>()
        );
    }
    // ...and so do the deeper layers: pass framework, SLMS core stages,
    // static verifier, simulator loops
    for prefix in ["pass ", "slms.", "verify ", "sim.loop "] {
        assert!(
            s.span_names.iter().any(|n| n.starts_with(prefix)),
            "no span named {prefix}*"
        );
    }

    // one named track per worker plus the orchestrator track 0
    assert_eq!(
        s.track_names.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );
    assert_eq!(s.track_names[0].1, "main");
    for w in 0..3 {
        assert_eq!(s.track_names[w + 1].1, format!("worker {w}"));
    }
    // every track carries at least one span
    assert_eq!(s.tracks, vec![0, 1, 2, 3]);
}

#[test]
fn jsonl_event_log_is_one_object_per_line() {
    let tracer = traced_run(2);
    let log = tracer.to_jsonl().expect("tracer is enabled");
    let mut cell_lines = 0usize;
    for line in log.lines() {
        let obj = Json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        for key in ["ts_us", "dur_us", "tid", "cat", "name"] {
            assert!(obj.get(key).is_some(), "missing {key} in {line}");
        }
        if obj.get("cat").and_then(Json::as_str) == Some("cell") {
            cell_lines += 1;
        }
    }
    assert_eq!(
        cell_lines,
        BatchConfig::full_matrix().n_cells(),
        "one cell span per matrix cell"
    );
}
