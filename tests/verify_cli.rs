//! Exit-code contract of `slc verify`: 0 = everything proven or skipped
//! clean, 1 = violations or error-severity lints (or unreadable input),
//! 2 = bad usage. The batch gate and CI smoke step rely on these codes.

use std::io::Write;
use std::process::Command;

fn slc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_slc"))
}

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("slc_verify_cli_{name}_{}.c", std::process::id()));
    std::fs::File::create(&path)
        .unwrap()
        .write_all(src.as_bytes())
        .unwrap();
    path
}

#[test]
fn clean_program_exits_zero() {
    let path = write_temp(
        "clean",
        "float A[32]; float B[32]; float s; float t; int i;\n\
         for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
    );
    let out = slc().arg("verify").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("verified"), "stdout:\n{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn lint_error_exits_one() {
    // `s` is initialised on one path only: the error-severity L001 fires.
    let path = write_temp(
        "lint",
        "float A[10]; float s; int c;\n\
         if (c > 0) s = 1.0;\n\
         A[0] = s;",
    );
    let out = slc().arg("verify").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("SLMS-L001"), "stdout:\n{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn bad_flag_exits_two() {
    let out = slc().arg("verify").arg("--bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_expansion_value_exits_two() {
    let out = slc()
        .args(["verify", "--expansion", "telepathy"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_file_exits_one() {
    let out = slc()
        .args(["verify", "/nonexistent/slc_no_such_file.c"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn all_workloads_exit_zero() {
    let out = slc().args(["verify", "--all"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(
        stdout.contains("obligations discharged"),
        "stdout:\n{stdout}"
    );
}
