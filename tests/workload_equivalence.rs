//! Every shipped workload, SLMS-transformed under every expansion mode,
//! must be bit-identical to the original on randomized inputs.
//!
//! This is the reproduction's strongest guarantee: the loops behind every
//! figure are exactly the programs the paper would have run, and the
//! transformed variants compute exactly the same values.

use slc_core::{slms_program, Expansion, SlmsConfig};
use slc_sim::astinterp::equivalent;
use slc_workloads::all;

fn check(expansion: Expansion) {
    let mut transformed_count = 0;
    for w in all() {
        let prog = w.program();
        let cfg = SlmsConfig {
            apply_filter: false,
            expansion,
            ..SlmsConfig::default()
        };
        let (out, outcomes) = slms_program(&prog, &cfg);
        if outcomes.iter().any(|o| o.result.is_ok()) {
            transformed_count += 1;
        }
        if let Err(m) = equivalent(&prog, &out, &[11, 47]) {
            panic!(
                "workload {} mismatch under {expansion:?}: {m:?}\ntransformed:\n{}",
                w.name,
                slc_ast::to_source(&out)
            );
        }
    }
    assert!(
        transformed_count >= 25,
        "only {transformed_count} workloads transformed under {expansion:?}"
    );
}

#[test]
fn workloads_equivalent_mve() {
    check(Expansion::Mve);
}

#[test]
fn workloads_equivalent_scalar_expand() {
    check(Expansion::ScalarExpand);
}

#[test]
fn workloads_equivalent_no_expansion() {
    check(Expansion::Off);
}

#[test]
fn workloads_equivalent_with_filter() {
    // default config (filter on): fewer loops transform, all stay correct
    for w in all() {
        let prog = w.program();
        let (out, _) = slms_program(&prog, &SlmsConfig::default());
        if let Err(m) = equivalent(&prog, &out, &[5]) {
            panic!("workload {} mismatch with filter on: {m:?}", w.name);
        }
    }
}
