//! `slc explain` must produce a complete per-loop decision trace for every
//! loop in every workload suite without panicking — for the default plan,
//! the no-filter ablation, and a structural plan — and the trace must
//! always end in a definite verdict (an achieved II or a structured
//! rejection), never silence.

use slc_core::{DiagEvent, SlmsConfig};
use slc_pipeline::{explain_all, explain_workload, PassManager, PassPlan};

#[test]
fn explain_covers_every_workload_without_panicking() {
    let cfg = SlmsConfig::default();
    let plan = PassPlan::slms_only();
    let text = explain_all(&plan, &cfg);
    for w in slc_workloads::all() {
        assert!(
            text.contains(&format!("═══ {} [", w.name)),
            "workload {} missing from explain output",
            w.name
        );
    }
    // no workload may fail structurally under the default plan
    assert!(!text.contains("plan failed:"), "{text}");
    assert!(!text.contains("parse error:"), "{text}");
}

#[test]
fn every_loop_trace_ends_in_a_verdict() {
    let pm = PassManager::new(SlmsConfig::default());
    let plan = PassPlan::slms_only();
    for w in slc_workloads::all() {
        let prog = w.program();
        let (_, sink) = pm.run(&prog, &plan).expect("slms plan never hard-fails");
        for o in sink.all_outcomes() {
            // the trace must contain a terminal event matching the outcome
            match &o.result {
                Ok(r) => {
                    let scheduled = o
                        .trace
                        .iter()
                        .any(|e| matches!(e, DiagEvent::Scheduled { ii, .. } if *ii == r.ii));
                    assert!(scheduled, "{}: ok outcome without Scheduled event", w.name);
                }
                Err(err) => {
                    let rejected = o
                        .trace
                        .iter()
                        .any(|e| matches!(e, DiagEvent::Rejected { error } if error == err));
                    assert!(rejected, "{}: err outcome without Rejected event", w.name);
                }
            }
            // and the render must mention the loop and the verdict
            let rendered = slc_core::render_loop_trace(o);
            assert!(rendered.contains("loop#"), "{rendered}");
            assert!(
                rendered.contains("⇒ transformed") || rendered.contains("⇒ left unchanged"),
                "{rendered}"
            );
        }
    }
}

#[test]
fn filter_rejections_carry_the_measured_ratio() {
    let cfg = SlmsConfig::default();
    let plan = PassPlan::slms_only();
    let mut saw_filtered = false;
    for w in slc_workloads::all() {
        let text = explain_workload(&w, &plan, &cfg);
        if text.contains("filter: REJECTED") {
            saw_filtered = true;
            assert!(
                text.contains("memory-ref ratio LS/(LS+AO)") || text.contains("arithmetic density"),
                "{}: rejection without measured numbers:\n{text}",
                w.name
            );
        }
    }
    assert!(
        saw_filtered,
        "expected at least one §4-filtered loop across the suites"
    );
}

#[test]
fn explain_with_ablations_and_structural_plans() {
    let nofilter = SlmsConfig {
        apply_filter: false,
        ..SlmsConfig::default()
    };
    let text = explain_all(&PassPlan::slms_only(), &nofilter);
    assert!(!text.contains("parse error:"), "{text}");

    // a structural plan over every workload: normalize is always
    // applicable (or a clean per-loop note), slms follows
    let plan = PassPlan::parse("normalize,slms").unwrap();
    let text = explain_all(&plan, &SlmsConfig::default());
    assert!(text.contains("── pass normalize ──"), "{text}");
    assert!(text.contains("── pass slms ──"), "{text}");
}
