//! Differential testing of the multi-process sharded batch tier: the
//! reduced report must be byte-identical to the in-process engine for
//! every shard count, survive shard deaths and malformed protocol lines
//! without losing or corrupting a single cell, and hold those guarantees
//! on the exact-scheduler path and on random sub-matrices.

use proptest::prelude::*;
use slc_core::{SchedulerKind, SlmsConfig};
use slc_pipeline::{run_batch, BatchConfig, CompilerKind, PassPlan, ShardFault, ShardOptions};
use slc_trace::Tracer;
use slc_workloads::{Suite, Workload};

/// Exec the test-built `slc` binary in worker mode; the dispatcher itself
/// runs inside the test process, whose `current_exe` is the test harness.
fn worker_cmd() -> Vec<String> {
    vec![
        env!("CARGO_BIN_EXE_slc").to_string(),
        "batch-shard".to_string(),
    ]
}

fn opts(shards: usize) -> ShardOptions {
    ShardOptions {
        shards,
        threads_per_shard: Some(1),
        chunk: None,
        worker_cmd: Some(worker_cmd()),
        faults: Vec::new(),
    }
}

fn small_config() -> BatchConfig {
    BatchConfig {
        workloads: slc_workloads::paper_examples(),
        machines: vec![slc_sim::presets::itanium2(), slc_sim::presets::power4()],
        compilers: vec![CompilerKind::Weak, CompilerKind::Optimizing],
        slms: SlmsConfig::default(),
        plan: PassPlan::slms_only(),
        threads: Some(1),
        verify: false,
    }
}

fn run_with(cfg: &BatchConfig, o: &ShardOptions) -> slc_pipeline::BatchReport {
    slc_pipeline::run_sharded(cfg, o, &Tracer::disabled()).expect("sharded run must complete")
}

/// Canonical report and counter registry are byte-identical to the
/// in-process engine for shard counts below, at, and above the number of
/// natural work chunks.
#[test]
fn sharded_report_identical_across_shard_counts() {
    let cfg = small_config();
    let reference = run_batch(&cfg);
    let canon = reference.to_json();
    let counters = reference.counters_json();
    for shards in [1, 2, 4, 7] {
        let rep = run_with(&cfg, &opts(shards));
        assert_eq!(rep.to_json(), canon, "report differs at {shards} shards");
        assert_eq!(
            rep.counters_json(),
            counters,
            "counters differ at {shards} shards"
        );
        assert_eq!(rep.timing.shards.len(), shards);
        let cells: u64 = rep.timing.shards.iter().map(|s| s.cells).sum();
        assert_eq!(cells as usize, cfg.n_cells());
    }
}

/// The full paper matrix — the exact configuration behind
/// BENCH_batch.json — reduces byte-identically at 4 shards.
#[test]
fn full_matrix_sharded_identical() {
    let mut cfg = BatchConfig::full_matrix();
    cfg.threads = Some(1);
    let reference = run_batch(&cfg);
    let rep = run_with(&cfg, &opts(4));
    assert_eq!(rep.to_json(), reference.to_json());
    assert_eq!(rep.counters_json(), reference.counters_json());
    assert_eq!(rep.failed(), 0);
}

/// A shard that aborts mid-run is quarantined, its work is reassigned,
/// and the run still completes with zero failed cells and an identical
/// report.
#[test]
fn killed_shard_degrades_without_losing_cells() {
    let cfg = small_config();
    let reference = run_batch(&cfg);
    let mut o = opts(3);
    o.faults = vec![(1, ShardFault::KillAfterCells(3))];
    let rep = run_with(&cfg, &o);
    assert_eq!(rep.to_json(), reference.to_json());
    assert_eq!(rep.counters_json(), reference.counters_json());
    assert_eq!(rep.failed(), 0);
    assert!(
        !rep.timing.shards[1].alive,
        "the killed shard must be reported dead in the sidecar"
    );
}

/// A shard that emits a malformed NDJSON line is treated as dead from
/// that point; the dispatcher reassigns and the report is unchanged.
#[test]
fn malformed_shard_output_degrades_without_losing_cells() {
    let cfg = small_config();
    let reference = run_batch(&cfg);
    let mut o = opts(2);
    o.faults = vec![(0, ShardFault::GarbageFromShard(2))];
    let rep = run_with(&cfg, &o);
    assert_eq!(rep.to_json(), reference.to_json());
    assert_eq!(rep.counters_json(), reference.counters_json());
    assert_eq!(rep.failed(), 0);
    assert!(!rep.timing.shards[0].alive);
}

/// A worker fed a malformed dispatcher line must reject it (exit 4), and
/// the dispatcher must absorb that exactly like a crash.
#[test]
fn malformed_dispatcher_input_degrades_without_losing_cells() {
    let cfg = small_config();
    let reference = run_batch(&cfg);
    let mut o = opts(2);
    o.faults = vec![(0, ShardFault::GarbageToShard)];
    let rep = run_with(&cfg, &o);
    assert_eq!(rep.to_json(), reference.to_json());
    assert_eq!(rep.counters_json(), reference.counters_json());
    assert_eq!(rep.failed(), 0);
    assert!(!rep.timing.shards[0].alive);
}

/// The exact-scheduler path (SAT-backed, the expensive cells the
/// work-stealing dispatcher exists for) shards byte-identically too.
#[test]
fn exact_scheduler_sharded_smoke() {
    let ws = slc_workloads::paper_examples();
    let cfg = BatchConfig {
        workloads: ws.into_iter().take(2).collect(),
        machines: vec![slc_sim::presets::itanium2()],
        compilers: vec![CompilerKind::OptimizingMs],
        slms: SlmsConfig {
            scheduler: SchedulerKind::Exact,
            ..SlmsConfig::default()
        },
        plan: PassPlan::exact_only(),
        threads: Some(1),
        verify: false,
    };
    let reference = run_batch(&cfg);
    let rep = run_with(&cfg, &opts(2));
    assert_eq!(rep.to_json(), reference.to_json());
    assert_eq!(rep.counters_json(), reference.counters_json());
}

/// A random but parseable single-loop program (same shape as
/// tests/batch_prop.rs — the property here is reduction correctness, not
/// the transformation).
fn loop_source(arr: usize, off: i64, k: i64) -> String {
    let idx = |o: i64| match o {
        0 => "i".to_string(),
        o if o > 0 => format!("i + {o}"),
        o => format!("i - {}", -o),
    };
    format!(
        "float A0[64]; float A1[64]; float A2[64]; int i;\n\
         for (i = 4; i < 60; i++) A{arr}[i] = A{}[{}] + A{}[{}] + {k}.0;\n",
        (arr + 1) % 3,
        idx(off),
        (arr + 2) % 3,
        idx(off - 1),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Shard-count invariance on random matrices: any workload mix, any
    /// shard count (including more shards than cells) reduces to the
    /// in-process report byte-for-byte.
    #[test]
    fn sharded_matches_in_process_on_random_matrices(
        arrs in proptest::collection::vec((0usize..3, -2i64..3, 0i64..5), 1..4),
        shards in 1usize..6,
        second_machine in any::<bool>(),
    ) {
        let workloads: Vec<Workload> = arrs
            .iter()
            .enumerate()
            .map(|(i, &(arr, off, k))| Workload {
                name: Box::leak(format!("shard_prop_{i}").into_boxed_str()),
                suite: Suite::Paper,
                source: Box::leak(loop_source(arr, off, k).into_boxed_str()),
            })
            .collect();
        let mut machines = vec![slc_sim::presets::itanium2()];
        if second_machine {
            machines.push(slc_sim::presets::arm7tdmi());
        }
        let cfg = BatchConfig {
            workloads,
            machines,
            compilers: vec![CompilerKind::Optimizing],
            slms: SlmsConfig::default(),
            plan: PassPlan::slms_only(),
            threads: Some(1),
            verify: false,
        };
        let reference = run_batch(&cfg);
        let rep = run_with(&cfg, &opts(shards));
        prop_assert_eq!(rep.to_json(), reference.to_json());
        prop_assert_eq!(rep.counters_json(), reference.counters_json());
    }
}
