//! Property-based testing of the static schedule verifier: every random
//! affine loop that SLMS successfully schedules must pass translation
//! validation with zero violations, under every expansion mode. This is
//! the no-false-positives half of the verifier's contract (the mutation
//! harness in `verify_mutations.rs` is the no-false-negatives half).

use proptest::prelude::*;
use slc::ast::parse_program;
use slc::slms::{Expansion, SlmsConfig};
use slc::verify::{verify_slms_program, LoopVerdict};

#[derive(Debug, Clone)]
enum StmtT {
    Store { arr: usize, off: i64, rhs: RhsT },
    Def { tmp: usize, rhs: RhsT },
    Accum { rhs: RhsT },
}

#[derive(Debug, Clone)]
struct RhsT {
    terms: Vec<TermT>,
    mul: bool,
}

#[derive(Debug, Clone)]
enum TermT {
    Load { arr: usize, off: i64 },
    Tmp(usize),
    Const(i64),
    Scalar,
}

fn term_strategy() -> impl Strategy<Value = TermT> {
    prop_oneof![
        (0usize..3, -3i64..4).prop_map(|(arr, off)| TermT::Load { arr, off }),
        (0usize..2).prop_map(TermT::Tmp),
        (1i64..5).prop_map(TermT::Const),
        Just(TermT::Scalar),
    ]
}

fn rhs_strategy() -> impl Strategy<Value = RhsT> {
    (
        proptest::collection::vec(term_strategy(), 1..4),
        any::<bool>(),
    )
        .prop_map(|(terms, mul)| RhsT { terms, mul })
}

fn stmt_strategy() -> impl Strategy<Value = StmtT> {
    prop_oneof![
        (0usize..3, -2i64..3, rhs_strategy()).prop_map(|(arr, off, rhs)| StmtT::Store {
            arr,
            off,
            rhs
        }),
        (0usize..2, rhs_strategy()).prop_map(|(tmp, rhs)| StmtT::Def { tmp, rhs }),
        rhs_strategy().prop_map(|rhs| StmtT::Accum { rhs }),
    ]
}

fn off_str(off: i64) -> String {
    match off {
        0 => "i".to_string(),
        o if o > 0 => format!("i + {o}"),
        o => format!("i - {}", -o),
    }
}

fn rhs_str(r: &RhsT) -> String {
    let op = if r.mul { " * " } else { " + " };
    r.terms
        .iter()
        .map(|t| match t {
            TermT::Load { arr, off } => format!("A{arr}[{}]", off_str(*off)),
            TermT::Tmp(k) => format!("t{k}"),
            TermT::Const(c) => format!("{c}.0"),
            TermT::Scalar => "s".to_string(),
        })
        .collect::<Vec<_>>()
        .join(op)
}

fn render(stmts: &[StmtT], init: i64, bound: i64, step: i64) -> String {
    let mut body = String::new();
    for s in stmts {
        let line = match s {
            StmtT::Store { arr, off, rhs } => {
                format!("A{arr}[{}] = {};", off_str(*off), rhs_str(rhs))
            }
            StmtT::Def { tmp, rhs } => format!("t{tmp} = {};", rhs_str(rhs)),
            StmtT::Accum { rhs } => format!("s += {};", rhs_str(rhs)),
        };
        body.push_str(&line);
        body.push('\n');
    }
    let stepstr = match step {
        1 => "i++".to_string(),
        -1 => "i--".to_string(),
        k if k > 0 => format!("i += {k}"),
        k => format!("i -= {}", -k),
    };
    let cmp = if step > 0 { "<" } else { ">" };
    format!(
        "float A0[96]; float A1[96]; float A2[96]; float t0; float t1; float s; int i;\n\
         for (i = {init}; i {cmp} {bound}; {stepstr}) {{\n{body}}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Whatever SLMS emits for a random loop must verify clean — and when
    /// the loop *was* transformed, the verdict must be `Verified` with a
    /// positive obligation count, not silently skipped.
    #[test]
    fn scheduled_random_loops_verify_clean(
        stmts in proptest::collection::vec(stmt_strategy(), 1..5),
        init in 4i64..8,
        span in 6i64..40,
        step in prop_oneof![Just(1i64), Just(2), Just(-1)],
    ) {
        let (init, bound) = if step > 0 { (init, init + span) } else { (init + span, init) };
        let src = render(&stmts, init, bound, step);
        let prog = parse_program(&src).unwrap();
        for expansion in [Expansion::Off, Expansion::Mve, Expansion::ScalarExpand] {
            let cfg = SlmsConfig { apply_filter: false, expansion, ..SlmsConfig::default() };
            let verdict = verify_slms_program(&prog, &cfg);
            prop_assert!(
                verdict.clean(),
                "false positive under {expansion:?}:\n{}\nsrc:\n{src}",
                verdict.render()
            );
            for l in &verdict.loops {
                if let LoopVerdict::Verified { obligations } = l.verdict {
                    prop_assert!(obligations > 0, "verified with zero obligations:\n{src}");
                }
            }
        }
    }
}
