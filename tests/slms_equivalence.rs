//! End-to-end semantic equivalence of SLMS: every transformed loop must be
//! observationally identical to the original on randomized inputs.
//!
//! This is the load-bearing test of the whole reproduction — SLMS rewrites
//! prologue/kernel/epilogue with shifted indices, MVE renaming and scalar
//! expansion, and any off-by-one in the placement or the drain logic shows
//! up here as a bit difference.

use slc_ast::parse_program;
use slc_core::{slms_program, Expansion, SlmsConfig};
use slc_sim::astinterp::equivalent;

const SEEDS: &[u64] = &[1, 7, 42, 1234, 99999];

fn cfg(expansion: Expansion) -> SlmsConfig {
    SlmsConfig {
        apply_filter: false,
        expansion,
        ..SlmsConfig::default()
    }
}

/// Transform with every expansion mode; require ≥1 loop transformed per
/// mode, and bit-exact equivalence on all seeds.
fn check_equiv(src: &str) {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    for expansion in [Expansion::Off, Expansion::Mve, Expansion::ScalarExpand] {
        let (out, outcomes) = slms_program(&prog, &cfg(expansion));
        let transformed = outcomes.iter().filter(|o| o.result.is_ok()).count();
        assert!(
            transformed >= 1,
            "no loop transformed under {expansion:?} for:\n{src}\noutcomes: {outcomes:#?}"
        );
        if let Err(m) = equivalent(&prog, &out, SEEDS) {
            panic!(
                "mismatch under {expansion:?}: {m:?}\noriginal:\n{src}\ntransformed:\n{}",
                slc_ast::to_source(&out)
            );
        }
    }
}

#[test]
fn intro_dot_product() {
    check_equiv(
        "float A[32]; float B[32]; float s; float t; int i;\n\
         for (i = 0; i < 32; i++) { t = A[i] * B[i]; s = s + t; }",
    );
}

#[test]
fn sec32_recurrence_with_decomposition() {
    check_equiv(
        "float A[80]; int i;\n\
         for (i = 2; i < 70; i++) A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];",
    );
}

#[test]
fn fig7_two_variant_loop() {
    check_equiv(
        "float A[64]; float B[64]; float C[64]; float reg; float scal; int i;\n\
         for (i = 1; i < 60; i++) { reg = A[i + 1]; A[i] = A[i - 1] + reg; \
          scal = B[i] / 2.0; C[i] = scal * 3.0; }",
    );
}

#[test]
fn sec5_max_loop_if_converted() {
    check_equiv(
        "float arr[64]; float max; int i;\n\
         max = arr[0];\n\
         for (i = 1; i < 64; i++) if (max < arr[i]) max = arr[i];",
    );
}

#[test]
fn sec5_du_loop_big_body() {
    check_equiv(
        "float DU1[128]; float DU2[128]; float DU3[128];\n\
         float U1[256]; float U2[256]; float U3[256]; int ky;\n\
         for (ky = 1; ky < 100; ky++) {\n\
           DU1[ky] = U1[ky + 1] - U1[ky - 1];\n\
           DU2[ky] = U2[ky + 1] - U2[ky - 1];\n\
           DU3[ky] = U3[ky + 1] - U3[ky - 1];\n\
           U1[ky + 101] = U1[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];\n\
           U2[ky + 101] = U2[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];\n\
           U3[ky + 101] = U3[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];\n\
         }",
    );
}

#[test]
fn sec92_fp_intensive_loop() {
    check_equiv(
        "float X[80]; int k;\n\
         for (k = 1; k < 70; k++) {\n\
           X[k] = X[k - 1] * X[k - 1] * X[k - 1] * X[k - 1] * X[k - 1] \
                + X[k + 1] * X[k + 1] * X[k + 1] * X[k + 1] * X[k + 1];\n\
         }",
    );
}

#[test]
fn sec8_lw_style_second_induction() {
    // `lw` is a second induction-like variable updated in the body.
    check_equiv(
        "float x[128]; float y[128]; float temp; int lw; int j;\n\
         lw = 6;\n\
         for (j = 4; j < 64; j += 2) { temp -= x[lw] * y[j]; lw += 1; }",
    );
}

#[test]
fn sec4_bad_case_loop_still_correct() {
    // The §4 example (a[i]+=i; a[i]*=6; a[i]--) — a bad case for speed but
    // must still be semantically preserved when forced.
    check_equiv(
        "float a[64]; int i;\n\
         for (i = 0; i < 60; i++) { a[i] += i; a[i] *= 6.0; a[i] -= 1.0; }",
    );
}

#[test]
fn step_two_loop() {
    check_equiv(
        "float A[128]; float B[128]; float t; int i;\n\
         for (i = 0; i < 120; i += 2) { t = B[i]; A[i] = t * 2.0; }",
    );
}

#[test]
fn downward_loop() {
    check_equiv(
        "float A[64]; float B[64]; float t; int i;\n\
         for (i = 60; i > 2; i--) { t = B[i]; A[i] = t + B[i - 1]; }",
    );
}

#[test]
fn le_bound_loop() {
    check_equiv(
        "float A[64]; float B[64]; int i;\n\
         for (i = 1; i <= 60; i++) { A[i] = B[i] * 2.0; B[i] = B[i] + 1.0; }",
    );
}

#[test]
fn predicated_loop_with_else() {
    check_equiv(
        "float a[64]; float b[64]; int i; float x; float y;\n\
         for (i = 0; i < 60; i++) { if (a[i] < b[i]) { x = x + a[i]; } else { y = y + b[i]; } }",
    );
}

#[test]
fn multiple_distances_loop() {
    check_equiv(
        "float A[96]; float B[96]; float y; int i;\n\
         for (i = 4; i < 90; i++) { A[i] = B[i - 1] + y; B[i] = A[i - 2] + A[i - 3]; }",
    );
}

#[test]
fn accumulator_reduction() {
    check_equiv(
        "float A[64]; float q; int i;\n\
         for (i = 0; i < 64; i++) { q += A[i]; A[i] = q; }",
    );
}

#[test]
fn stencil_store_forward() {
    check_equiv(
        "float U[200]; int k;\n\
         for (k = 1; k < 90; k++) { U[k + 101] = U[k] * 0.5; U[k + 100] = U[k + 1] * 2.0; }",
    );
}

#[test]
fn three_mi_chain() {
    check_equiv(
        "float A[64]; float B[64]; float C[64]; float t; float u; int i;\n\
         for (i = 1; i < 60; i++) { t = A[i - 1]; u = t * 2.0; C[i] = u + B[i]; }",
    );
}

#[test]
fn odd_trip_counts_with_mve() {
    // Trip counts that are not multiples of the MVE unroll exercise the
    // residual-peel path.
    for n in [5, 6, 7, 8, 9, 13] {
        let src = format!(
            "float A[40]; int i;\n\
             for (i = 2; i < {}; i++) A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];",
            2 + n
        );
        let prog = parse_program(&src).unwrap();
        let (out, outcomes) = slms_program(&prog, &cfg(Expansion::Mve));
        if outcomes[0].result.is_ok() {
            if let Err(m) = equivalent(&prog, &out, SEEDS) {
                panic!("mismatch at trip {n}: {m:?}\n{}", slc_ast::to_source(&out));
            }
        }
    }
}

#[test]
fn interchangeable_2d_loop() {
    check_equiv(
        "float a[32][32]; float t; int i; int j;\n\
         for (j = 0; j < 30; j++) { for (i = 0; i < 30; i++) { t = a[i][j]; a[i][j + 1] = t; } }",
    );
}

#[test]
fn symbolic_bound_guarded() {
    // `n` is a random small integer per seed (including values below the
    // pipeline depth and negatives) — the runtime guard must route those to
    // the untransformed loop.
    let src = "float A[32]; float B[32]; int i; int n;\n\
               n = (n % 16 + 16) % 16;\n\
               for (i = 0; i < n; i++) { A[i] = B[i] * 2.0; B[i] = B[i] + 1.0; }";
    let prog = parse_program(src).unwrap();
    let (out, outcomes) = slms_program(&prog, &cfg(Expansion::Off));
    assert!(
        outcomes.iter().any(|o| o.result.is_ok()),
        "symbolic loop should transform: {outcomes:?}"
    );
    let printed = slc_ast::to_source(&out);
    assert!(printed.contains("if ("), "guard missing:\n{printed}");
    if let Err(m) = equivalent(&prog, &out, &[1, 2, 3, 4, 5, 6, 7, 8]) {
        panic!("symbolic mismatch: {m:?}\n{printed}");
    }
}

#[test]
fn symbolic_bound_downward() {
    let src = "float A[32]; float B[32]; int i; int n;\n\
               n = (n % 12 + 12) % 12 + 2;\n\
               for (i = n; i > 0; i--) { A[i] = B[i] * 2.0; B[i] = B[i] + 1.0; }";
    let prog = parse_program(src).unwrap();
    let (out, outcomes) = slms_program(&prog, &cfg(Expansion::Off));
    assert!(outcomes.iter().any(|o| o.result.is_ok()), "{outcomes:?}");
    if let Err(m) = equivalent(&prog, &out, &[11, 22, 33, 44]) {
        panic!(
            "symbolic downward mismatch: {m:?}\n{}",
            slc_ast::to_source(&out)
        );
    }
}

#[test]
fn symbolic_bound_with_decomposition() {
    // single-MI symbolic loop: decomposition still fires, guard still exact
    let src = "float A[64]; int i; int n;\n\
               n = (n % 40 + 40) % 40 + 4;\n\
               for (i = 2; i < n; i++) A[i] = A[i - 1] + A[i + 2];";
    let prog = parse_program(src).unwrap();
    let (out, outcomes) = slms_program(&prog, &cfg(Expansion::Off));
    assert!(outcomes.iter().any(|o| o.result.is_ok()), "{outcomes:?}");
    if let Err(m) = equivalent(&prog, &out, &[9, 18, 27]) {
        panic!(
            "symbolic+decompose mismatch: {m:?}\n{}",
            slc_ast::to_source(&out)
        );
    }
}

#[test]
fn symbolic_le_bound() {
    let src = "float A[40]; float B[40]; int i; int n;\n\
               n = (n % 30 + 30) % 30 + 2;\n\
               for (i = 1; i <= n; i++) { A[i] = B[i] + 1.0; B[i] = A[i] * 0.5; }";
    let prog = parse_program(src).unwrap();
    let (out, outcomes) = slms_program(&prog, &cfg(Expansion::Off));
    assert!(outcomes.iter().any(|o| o.result.is_ok()), "{outcomes:?}");
    if let Err(m) = equivalent(&prog, &out, &[5, 55, 555]) {
        panic!("symbolic <= mismatch: {m:?}\n{}", slc_ast::to_source(&out));
    }
}

#[test]
fn wide_body_eight_mis() {
    check_equiv(
        "float a[96]; float b[96]; float c[96]; float d[96]; int i;\n\
         for (i = 2; i < 90; i++) {\n\
           a[i] = a[i - 1] + 1.0;\n\
           b[i] = a[i] * 2.0;\n\
           c[i] = b[i] - a[i];\n\
           d[i] = c[i] + b[i - 2];\n\
           a[i + 2] = d[i] * 0.5;\n\
           b[i + 1] = d[i] + c[i - 1];\n\
           c[i + 2] = a[i + 1] + 0.25;\n\
           d[i + 1] = c[i] * c[i];\n\
         }",
    );
}

#[test]
fn step_minus_two() {
    check_equiv(
        "float A[128]; float B[128]; float t; int i;\n\
         for (i = 120; i > 6; i -= 2) { t = B[i]; A[i] = t + B[i - 2]; }",
    );
}

#[test]
fn predicated_mi_with_expansion() {
    // predicate temp from if-conversion gets MVE'd alongside a data temp
    check_equiv(
        "float a[64]; float b[64]; float t; int i;\n\
         for (i = 1; i < 60; i++) { t = a[i + 1]; if (b[i] < t) b[i] = t * 2.0; a[i] = t; }",
    );
}

#[test]
fn ii_two_five_mis() {
    // back edge forcing II = 2 on a 5-MI body: offsets 2,1,1,0,0
    check_equiv(
        "float a[96]; float b[96]; float c[96]; int i;\n\
         for (i = 3; i < 90; i++) {\n\
           a[i] = b[i - 1] * 2.0;\n\
           b[i] = a[i] + 1.0;\n\
           c[i] = b[i] * 0.5;\n\
           a[i + 1] = c[i - 2] + a[i - 3];\n\
           b[i + 2] = c[i] - 1.0;\n\
         }",
    );
}

#[test]
fn decomposition_cap_respected() {
    use slc_core::slms_loop;
    let mut prog = parse_program(
        "float A[64]; int i; for (i = 2; i < 60; i++) A[i] = A[i - 1] + A[i + 1] + A[i + 2];",
    )
    .unwrap();
    let loop_stmt = prog.stmts[0].clone();
    let cfg0 = SlmsConfig {
        apply_filter: false,
        max_decompositions: 0,
        ..SlmsConfig::default()
    };
    // zero decomposition budget: single-MI loop cannot be scheduled
    assert!(slms_loop(&mut prog, &loop_stmt, &cfg0).is_err());
    let cfg1 = SlmsConfig {
        apply_filter: false,
        max_decompositions: 1,
        ..SlmsConfig::default()
    };
    assert!(slms_loop(&mut prog, &loop_stmt, &cfg1).is_ok());
}
