//! The count-based CI perf gate: re-run the full matrix (verification on,
//! exactly what `slc stats` does) and compare the deterministic counters
//! against the checked-in `BENCH_counters.json` baseline. A failure here
//! means the pipeline is doing a different *amount of work* than the
//! baseline records — either an accidental perf regression or a deliberate
//! change that needs `slc stats --out BENCH_counters.json` to be re-run.

use slc_core::SchedulerKind;
use slc_pipeline::{BatchConfig, BatchEngine, PassPlan};
use slc_trace::{check_counters, CounterBaseline, COUNTERS_SCHEMA};

/// Mirror of what `slc stats` runs: the heuristic full matrix plus the
/// exact-scheduler matrix on one engine, so the baseline pins both the
/// heuristic pipeline counters and the `exact.*` solver counters.
fn stats_run() -> slc_trace::CounterRegistry {
    let mut cfg = BatchConfig::full_matrix();
    cfg.verify = true;
    let engine = BatchEngine::new();
    let heuristic = engine.run(&cfg);
    assert_eq!(heuristic.failed(), 0);
    let mut exact_cfg = cfg.clone();
    exact_cfg.plan = PassPlan::exact_only();
    exact_cfg.slms.scheduler = SchedulerKind::Exact;
    let report = engine.run(&exact_cfg);
    assert_eq!(report.failed(), 0);
    report.counters
}

#[test]
fn checked_in_counter_baseline_gates_clean() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_counters.json");
    let text = std::fs::read_to_string(path).expect("BENCH_counters.json is checked in");
    assert!(text.contains(COUNTERS_SCHEMA));
    let base = CounterBaseline::parse(&text).unwrap_or_else(|e| panic!("bad baseline: {e}"));

    let counters = stats_run();
    let failures = check_counters(&counters, &base);
    assert!(
        failures.is_empty(),
        "counter gate failures:\n{}",
        failures
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // drift-tightness: every counter the run emits is pinned by the
    // baseline, so new instrumentation cannot silently escape the gate
    // after the next regeneration
    for (name, _) in counters.iter() {
        assert!(
            base.counters.contains_key(name),
            "counter {name} is not in BENCH_counters.json — regenerate it"
        );
    }
}

#[test]
fn gate_detects_injected_regressions() {
    let counters = stats_run();
    let mut doc = CounterBaseline::parse(&counters.to_json(&[("sim.cycles_total", 0.02)])).unwrap();

    // a clean run gates clean against its own baseline
    assert!(check_counters(&counters, &doc).is_empty());

    // +1 on an exact counter (an extra decompose retry) must trip the gate
    let retries = doc.counters.get_mut("slms.decompose_retries").unwrap();
    *retries += 1;
    let failures = check_counters(&counters, &doc);
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].name, "slms.decompose_retries");

    // a 10% cycle swing overwhelms the 2% tolerance
    *doc.counters.get_mut("slms.decompose_retries").unwrap() -= 1;
    let cycles = doc.counters.get_mut("sim.cycles_total").unwrap();
    *cycles = *cycles + *cycles / 10;
    let failures = check_counters(&counters, &doc);
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].name, "sim.cycles_total");
    assert_eq!(failures[0].tolerance, 0.02);
}
