//! Mutation harness for dependence-certificate checking.
//!
//! Mirror of `exact_cert_mutations.rs` for the exact dependence engine:
//! take a genuine emission whose report carries per-pair dependence
//! verdicts with certificates, corrupt one certificate in a targeted way,
//! and prove the translation validator rejects the corruption *naming the
//! violated rule* (`dep-cert-missing`, `dep-cert-witness`,
//! `dep-cert-proof`).
//!
//! Two source loops drive the harness:
//! * `STRIDE` — gcd-disjoint strided references (`a[4i]` never meets
//!   `a[2i+1]`), so the genuine report carries **independence** proofs;
//! * `REC` — a distance-1 recurrence, so the genuine report carries a
//!   **dependence** witness pair.

use slc::analysis::{
    build_ddg_ranged, derive_system, partition_mis, DepCertificate, DepStats, DepVerdict, LoopRange,
};
use slc::ast::{parse_program, ForLoop, Program, Stmt};
use slc::slms::{slms_loop, SlmsConfig, SlmsOutput, SlmsReport};
use slc::verify::verify_emission;

const STRIDE: &str = "float a[4096]; float b[512]; int i;\n\
                      for (i = 0; i < 500; i++) { a[4 * i] = a[2 * i + 1] + 1.0; \
                      b[i] = a[2 * i + 1] * 2.0; }";
// Schedules with unroll 1 and no decomposition, so the emitted MI
// structure matches a fresh partition of the source body — mutation 6
// relies on that to re-derive the pair's equation system.
const REC: &str = "float a[128]; float b[128]; int i;\n\
                   for (i = 0; i < 100; i++) { a[i] = b[i] + 1.0; \
                   b[i + 1] = a[i] * 2.0; }";

fn cfg() -> SlmsConfig {
    SlmsConfig {
        apply_filter: false,
        ..SlmsConfig::default()
    }
}

/// Schedule the first loop of `src`; return the pre-transform program, the
/// loop, and the emission (dependence pairs attached to the report).
fn scheduled(src: &str) -> (Program, ForLoop, SlmsOutput) {
    let prog = parse_program(src).unwrap();
    let stmt = prog
        .stmts
        .iter()
        .find(|s| matches!(s, Stmt::For(_)))
        .expect("source has a loop")
        .clone();
    let Stmt::For(f) = stmt.clone() else {
        unreachable!()
    };
    let mut work = prog.clone();
    let out = slms_loop(&mut work, &stmt, &cfg()).expect("loop should schedule");
    assert!(
        !out.report.dep_pairs.is_empty(),
        "constant-range loop must record dependence pairs"
    );
    (prog, f, out)
}

fn rules_of(prog: &Program, f: &ForLoop, report: &SlmsReport, stmts: &[Stmt]) -> Vec<&'static str> {
    verify_emission(prog, f, report, stmts, &cfg())
        .violations
        .iter()
        .map(|v| v.rule())
        .collect()
}

fn independent_at(report: &SlmsReport) -> usize {
    report
        .dep_pairs
        .iter()
        .position(|p| matches!(p.verdict, DepVerdict::Independent))
        .expect("an independence verdict")
}

fn dependent_at(report: &SlmsReport) -> usize {
    report
        .dep_pairs
        .iter()
        .position(|p| matches!(p.verdict, DepVerdict::Distances(_)))
        .expect("a dependence verdict")
}

/// The uncorrupted emissions all verify — the baseline every mutation
/// deviates from. `STRIDE` certifies independence, `REC` a witness.
#[test]
fn genuine_certificates_accepted() {
    for src in [STRIDE, REC] {
        let (prog, f, out) = scheduled(src);
        let verdict = verify_emission(&prog, &f, &out.report, &out.stmts, &cfg());
        assert!(verdict.clean(), "{src}: {:?}", verdict.violations);
    }
    let (_, _, out) = scheduled(STRIDE);
    assert!(
        out.report.dep_pairs.iter().any(|p| matches!(
            (&p.verdict, &p.certificate),
            (
                DepVerdict::Independent,
                Some(DepCertificate::Independent { .. })
            )
        )),
        "STRIDE must carry an independence proof"
    );
    let (_, _, out) = scheduled(REC);
    assert!(
        out.report.dep_pairs.iter().any(|p| matches!(
            (&p.verdict, &p.certificate),
            (
                DepVerdict::Distances(_),
                Some(DepCertificate::Dependent { .. })
            )
        )),
        "REC must carry a dependence witness"
    );
}

/// Mutation 1: deleting a decided pair's certificate leaves the claim
/// unfounded — verdicts must stay re-checkable.
#[test]
fn mutation_certificate_deleted() {
    let (prog, f, out) = scheduled(STRIDE);
    let mut report = out.report.clone();
    let at = independent_at(&report);
    report.dep_pairs[at].certificate = None;
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"dep-cert-missing"), "got {r:?}");
}

/// Mutation 2: deleting the whole pair record hides a verdict the engine
/// must have decided — the checker re-enumerates the pairs itself.
#[test]
fn mutation_pair_record_deleted() {
    let (prog, f, out) = scheduled(STRIDE);
    let mut report = out.report.clone();
    let at = independent_at(&report);
    report.dep_pairs.remove(at);
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"dep-cert-missing"), "got {r:?}");
}

/// Mutation 3: corrupting one equation of an independence system detaches
/// the proof from the loop it talks about.
#[test]
fn mutation_proof_system_corrupted() {
    let (prog, f, out) = scheduled(STRIDE);
    let mut report = out.report.clone();
    let at = independent_at(&report);
    let Some(DepCertificate::Independent { system }) = &mut report.dep_pairs[at].certificate else {
        panic!("independence verdict must carry an independence proof");
    };
    system.dims[0].c += 1;
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"dep-cert-proof"), "got {r:?}");
}

/// Mutation 4: replacing an independence proof with a fabricated witness
/// pair claims a conflict the iterations do not have.
#[test]
fn mutation_bogus_witness_on_independent_pair() {
    let (prog, f, out) = scheduled(STRIDE);
    let mut report = out.report.clone();
    let at = independent_at(&report);
    report.dep_pairs[at].certificate = Some(DepCertificate::Dependent { t1: 0, t2: 0 });
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"dep-cert-witness"), "got {r:?}");
}

/// Mutation 5: nudging a genuine witness to iterations that do not touch
/// the same cell breaks the concrete re-evaluation.
#[test]
fn mutation_witness_corrupted() {
    let (prog, f, out) = scheduled(REC);
    let mut report = out.report.clone();
    let at = dependent_at(&report);
    let Some(DepCertificate::Dependent { t2, .. }) = &mut report.dep_pairs[at].certificate else {
        panic!("dependence verdict must carry a witness");
    };
    *t2 += 1;
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"dep-cert-witness"), "got {r:?}");
}

/// Mutation 6: claiming independence for a genuinely dependent pair — even
/// with the *correctly derived* equation system attached — fails when the
/// checker re-solves the system and finds it satisfiable.
#[test]
fn mutation_fabricated_independence_on_dependent_pair() {
    let (prog, f, out) = scheduled(REC);
    let mut report = out.report.clone();
    let at = dependent_at(&report);

    // Rebuild the accesses the stored pair indexes so the fabricated proof
    // carries the *right* system for the pair — only the SAT re-solve can
    // reject it.
    let range = LoopRange::of_loop(&f).unwrap();
    let mis = partition_mis(&f.body).unwrap();
    let mut stats = DepStats::default();
    let rd = build_ddg_ranged(&mis, &f.var, &range, &mut stats);
    let p = &report.dep_pairs[at];
    let a = &rd.ddg.accesses[p.from_mi].arrays[p.from_ord];
    let b = &rd.ddg.accesses[p.to_mi].arrays[p.to_ord];
    let system = derive_system(a, b, &f.var, &range).expect("affine pair has a system");

    report.dep_pairs[at].certificate = Some(DepCertificate::Independent { system });
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"dep-cert-proof"), "got {r:?}");
}
