//! Differential testing of the batch engine: every cell of the full
//! experiment matrix must be bit-identical to the serial reference path
//! (`slc_pipeline::compile` + `slc_sim::simulate`), and the canonical JSON
//! report must be byte-identical across thread counts.

use slc_core::{slms_program, SlmsConfig};
use slc_pipeline::{compile, run_batch, BatchConfig, BatchEngine, CompilerKind, PassPlan};
use slc_sim::cycle::simulate;
use slc_sim::power::EnergyModel;
use slc_workloads::Variant;

/// The whole matrix, every cell checked against the serial path.
#[test]
fn batch_equals_serial_on_full_matrix() {
    let cfg = BatchConfig::full_matrix();
    let report = run_batch(&cfg);
    assert_eq!(report.cells.len(), cfg.n_cells());

    let cells = slc_workloads::enumerate_matrix(
        cfg.workloads.len(),
        cfg.machines.len(),
        cfg.compilers.len(),
    );
    // serial reference artifacts, one per workload (recomputed honestly,
    // not through the engine's caches)
    let programs: Vec<_> = cfg.workloads.iter().map(|w| w.program()).collect();
    let slmsed: Vec<_> = programs
        .iter()
        .map(|p| slms_program(p, &cfg.slms))
        .collect();

    for (cell, result) in cells.iter().zip(&report.cells) {
        let w = &cfg.workloads[cell.workload];
        let m = &cfg.machines[cell.machine];
        let kind = cfg.compilers[cell.compiler];
        assert_eq!(result.id.workload, w.name);
        assert_eq!(result.id.machine, m.name);
        assert_eq!(result.id.compiler, kind.label());

        let prog = match cell.variant {
            Variant::Original => &programs[cell.workload],
            Variant::Slms => &slmsed[cell.workload].0,
        };
        match compile(prog, m, kind) {
            Err(e) => {
                let err = result
                    .outcome
                    .as_ref()
                    .expect_err("serial path failed but batch cell completed");
                assert_eq!(err, &format!("lower: {e}"), "{}", w.name);
            }
            Ok(c) => {
                let got = result
                    .outcome
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{} degraded unexpectedly: {e}", w.name));
                let sim = simulate(&c.compiled, m);
                let power = EnergyModel::default().report(&sim);
                let ctx = format!(
                    "{} / {} / {} / {}",
                    w.name,
                    m.name,
                    kind.label(),
                    cell.variant
                );
                assert_eq!(got.cycles, sim.cycles, "{ctx}");
                assert_eq!(got.ops, sim.total_ops(), "{ctx}");
                assert_eq!(got.l1_hits, sim.cache.hits, "{ctx}");
                assert_eq!(got.l1_misses, sim.cache.misses, "{ctx}");
                assert_eq!(got.spill_accesses, sim.spill_accesses, "{ctx}");
                assert_eq!(got.energy.to_bits(), power.energy.to_bits(), "{ctx}");
                assert_eq!(got.loops, c.loops, "{ctx}");
                if cell.variant == Variant::Original {
                    assert!(!got.transformed && got.slms_ii.is_none(), "{ctx}");
                } else {
                    let outcomes = &slmsed[cell.workload].1;
                    assert_eq!(
                        got.transformed,
                        outcomes.iter().any(|o| o.result.is_ok()),
                        "{ctx}"
                    );
                    assert_eq!(
                        got.slms_ii,
                        outcomes
                            .iter()
                            .find_map(|o| o.result.as_ref().ok().map(|r| r.ii)),
                        "{ctx}"
                    );
                }
            }
        }
    }
}

/// The canonical report is byte-identical no matter how many worker
/// threads evaluate it — fresh engine each time, so cache counters agree
/// as well.
#[test]
fn report_is_thread_count_invariant() {
    let base = BatchConfig {
        workloads: slc_workloads::paper_examples(),
        machines: vec![slc_sim::presets::itanium2(), slc_sim::presets::arm7tdmi()],
        compilers: vec![CompilerKind::Weak, CompilerKind::OptimizingMs],
        slms: SlmsConfig::default(),
        plan: PassPlan::slms_only(),
        threads: Some(1),
        verify: false,
    };
    let serial = run_batch(&base).to_json();
    for threads in [2, 4, 8] {
        let cfg = BatchConfig {
            threads: Some(threads),
            ..base.clone()
        };
        let json = run_batch(&cfg).to_json();
        assert_eq!(serial, json, "report differs with {threads} threads");
    }
    // and across repeated runs of one engine (hits instead of misses, but
    // identical cells)
    let engine = BatchEngine::new();
    let first = engine.run(&base);
    let second = engine.run(&base);
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert_eq!(a.id, b.id);
        match (&a.outcome, &b.outcome) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.cycles, y.cycles);
                assert_eq!(x.loops, y.loops);
            }
            (Err(x), Err(y)) => assert_eq!(x, y),
            _ => panic!("outcome kind changed between runs"),
        }
    }
    assert!(second.cache.overall_hit_rate() > first.cache.overall_hit_rate());
}

/// `measure_suite` (now engine-backed) must agree with the serial
/// per-workload `measure_workload` it replaced.
#[test]
fn measure_suite_matches_measure_workload() {
    let ws = slc_workloads::paper_examples();
    let m = slc_sim::presets::power4();
    let cfg = SlmsConfig::default();
    let rows = slc_pipeline::measure_suite(&ws, &m, CompilerKind::Optimizing, &cfg);
    for (w, row) in ws.iter().zip(&rows) {
        let reference =
            slc_pipeline::measure_workload(w, &m, CompilerKind::Optimizing, &cfg).unwrap();
        assert_eq!(row.name, reference.name);
        assert_eq!(row.base_cycles, reference.base_cycles, "{}", w.name);
        assert_eq!(row.slms_cycles, reference.slms_cycles, "{}", w.name);
        assert_eq!(
            row.speedup.to_bits(),
            reference.speedup.to_bits(),
            "{}",
            w.name
        );
        assert_eq!(
            row.power_ratio.to_bits(),
            reference.power_ratio.to_bits(),
            "{}",
            w.name
        );
        assert_eq!(row.transformed, reference.transformed, "{}", w.name);
        assert_eq!(row.slms_ii, reference.slms_ii, "{}", w.name);
        assert_eq!(row.base_ms, reference.base_ms, "{}", w.name);
        assert_eq!(row.slms_ms, reference.slms_ms, "{}", w.name);
        assert_eq!(row.base_bundles, reference.base_bundles, "{}", w.name);
        assert_eq!(row.slms_bundles, reference.slms_bundles, "{}", w.name);
    }
}

/// Plan-keyed caching: a non-trivial pass plan is (a) thread-count
/// invariant like the default, and (b) keyed separately from other plans
/// on a shared engine — changing the plan forces fresh transform work.
#[test]
fn plan_keyed_reports_are_thread_invariant_and_isolated() {
    let base = BatchConfig {
        workloads: slc_workloads::paper_examples(),
        machines: vec![slc_sim::presets::itanium2()],
        compilers: vec![CompilerKind::Optimizing],
        slms: SlmsConfig::default(),
        plan: PassPlan::parse("normalize,slms").unwrap(),
        threads: Some(1),
        verify: false,
    };
    let serial = run_batch(&base).to_json();
    for threads in [2, 8] {
        let cfg = BatchConfig {
            threads: Some(threads),
            ..base.clone()
        };
        assert_eq!(
            serial,
            run_batch(&cfg).to_json(),
            "plan-keyed report differs with {threads} threads"
        );
    }

    let engine = BatchEngine::new();
    engine.run(&base);
    let misses_plan_a = engine.cache_report().slms.misses;
    // same engine, same inputs, different plan → new cache keys, new misses
    let cfg_b = BatchConfig {
        plan: PassPlan::slms_only(),
        ..base.clone()
    };
    engine.run(&cfg_b);
    let misses_plan_b = engine.cache_report().slms.misses;
    assert!(
        misses_plan_b > misses_plan_a,
        "distinct plans must not share transform artifacts ({misses_plan_a} vs {misses_plan_b})"
    );
    // and re-running either plan is now fully cached
    let hits_before = engine.cache_report().slms.hits;
    engine.run(&base);
    assert_eq!(engine.cache_report().slms.misses, misses_plan_b);
    assert!(engine.cache_report().slms.hits > hits_before);
}
