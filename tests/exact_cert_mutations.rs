//! Mutation harness for optimality-certificate checking.
//!
//! Mirror of `verify_mutations.rs` for the exact scheduler: take a genuine
//! exact-scheduled emission, corrupt one certificate field (or the
//! reordering witness) in a targeted way, and prove `slc verify` rejects
//! the corruption *naming the violated rule*. Every certificate family is
//! covered: the claimed II, the claimed MII, the MI count, the witness
//! order, the attached refutation proof (missing, misdirected, unfounded
//! and satisfiable variants), and the certificate's very presence.
//!
//! Three source loops drive the harness:
//! * `DOT` — II = MII, so the genuine certificate carries **no** proof;
//! * `DIAMOND` — two independent producers feed one consumer that loops
//!   back to both, so position-distinctness forces II = 2 above the
//!   difference-bound MII of 1 and the certificate **must** carry a
//!   refutation of II = 1;
//! * `GAP` — source order is pessimal; the exact scheduler reorders, so
//!   the emission carries a non-identity witness permutation.

use slc::ast::{parse_program, ForLoop, Program, Stmt};
use slc::exact::{InfeasibilityProof, ProofClause};
use slc::slms::{slms_loop, SchedulerKind, SlmsConfig, SlmsOutput, SlmsReport};
use slc::verify::verify_emission;

const DOT: &str = "float A[64]; float B[64]; float s; float t; int i;\n\
                   for (i = 0; i < 32; i++) { t = A[i] * B[i]; s = s + t; }";
const DIAMOND: &str = "float A[64]; float B[64]; float Z[64]; int i;\n\
                       for (i = 1; i < 40; i++) { A[i] = Z[i - 1] + 1.0; \
                       B[i] = Z[i - 1] * 2.0; Z[i] = A[i] + B[i]; }";
const GAP: &str = "float A[64]; float B[64]; float C[64]; float Z[64]; int i;\n\
                   for (i = 1; i < 40; i++) { A[i] = Z[i - 1]; B[i] = B[i] + 1.0; \
                   C[i] = C[i] * 2.0; Z[i] = A[i] + 1.0; }";

fn exact_cfg() -> SlmsConfig {
    SlmsConfig {
        apply_filter: false,
        scheduler: SchedulerKind::Exact,
        ..SlmsConfig::default()
    }
}

/// Exact-schedule the first loop of `src`; return the pre-transform
/// program, the loop, and the emission (certificate attached).
fn scheduled(src: &str) -> (Program, ForLoop, SlmsOutput) {
    let prog = parse_program(src).unwrap();
    let stmt = prog
        .stmts
        .iter()
        .find(|s| matches!(s, Stmt::For(_)))
        .expect("source has a loop")
        .clone();
    let Stmt::For(f) = stmt.clone() else {
        unreachable!()
    };
    let mut work = prog.clone();
    let out = slms_loop(&mut work, &stmt, &exact_cfg()).expect("loop should schedule");
    assert!(out.report.certificate.is_some(), "exact run must certify");
    (prog, f, out)
}

fn rules_of(prog: &Program, f: &ForLoop, report: &SlmsReport, stmts: &[Stmt]) -> Vec<&'static str> {
    verify_emission(prog, f, report, stmts, &exact_cfg())
        .violations
        .iter()
        .map(|v| v.rule())
        .collect()
}

/// The uncorrupted emissions all verify — the baseline every mutation
/// deviates from. `DOT` certifies without a proof, `DIAMOND` with one,
/// `GAP` with a non-identity witness.
#[test]
fn genuine_certificates_accepted() {
    for (src, wants_proof, wants_reorder) in [
        (DOT, false, false),
        (DIAMOND, true, false),
        (GAP, false, true),
    ] {
        let (prog, f, out) = scheduled(src);
        let cert = out.report.certificate.as_ref().unwrap();
        assert_eq!(cert.proof.is_some(), wants_proof, "{src}");
        let order = out.report.exact_order.as_ref().unwrap();
        let identity: Vec<usize> = (0..order.len()).collect();
        assert_eq!(order != &identity, wants_reorder, "{src}");
        let verdict = verify_emission(&prog, &f, &out.report, &out.stmts, &exact_cfg());
        assert!(verdict.clean(), "{src}: {:?}", verdict.violations);
    }
}

/// Mutation 1: inflating the claimed II detaches the certificate from the
/// schedule that carries it.
#[test]
fn mutation_certificate_ii_inflated() {
    let (prog, f, out) = scheduled(DOT);
    let mut report = out.report.clone();
    report.certificate.as_mut().unwrap().ii += 1;
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"cert-ii"), "got {r:?}");
}

/// Mutation 2: lowering the recorded heuristic II below the achieved II
/// claims the heuristic beat the proven optimum.
#[test]
fn mutation_heuristic_ii_below_optimum() {
    let (prog, f, out) = scheduled(DIAMOND);
    let mut report = out.report.clone();
    report.heuristic_ii = Some(report.certificate.as_ref().unwrap().ii - 1);
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"cert-ii"), "got {r:?}");
}

/// Mutation 3: a corrupted MII claim no longer matches the independently
/// recomputed lower bound.
#[test]
fn mutation_certificate_mii_corrupted() {
    let (prog, f, out) = scheduled(DOT);
    let mut report = out.report.clone();
    report.certificate.as_mut().unwrap().mii -= 1;
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"cert-mii"), "got {r:?}");
}

/// Mutation 4: a wrong MI count means the certificate talks about a
/// different loop.
#[test]
fn mutation_certificate_mi_count() {
    let (prog, f, out) = scheduled(DOT);
    let mut report = out.report.clone();
    report.certificate.as_mut().unwrap().n_mis += 1;
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"cert-mii"), "got {r:?}");
}

/// Mutation 5: deleting the certificate from an exact-scheduled loop is
/// itself a violation — optimality claims must stay re-checkable.
#[test]
fn mutation_certificate_deleted() {
    let (prog, f, out) = scheduled(DOT);
    let mut report = out.report.clone();
    report.certificate = None;
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"cert-missing"), "got {r:?}");
}

/// Mutation 6: a witness that is not a permutation cannot un-permute the
/// emission back to source order.
#[test]
fn mutation_order_not_a_permutation() {
    let (prog, f, out) = scheduled(GAP);
    let mut report = out.report.clone();
    let order = report.exact_order.as_mut().unwrap();
    order[1] = order[0];
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"exact-order"), "got {r:?}");
}

/// Mutation 7: a valid but wrong witness permutation un-permutes the
/// kernel members to the wrong source MIs.
#[test]
fn mutation_order_wrong_permutation() {
    let (prog, f, out) = scheduled(GAP);
    let mut report = out.report.clone();
    let n = report.exact_order.as_ref().unwrap().len();
    report.exact_order = Some((0..n).collect());
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(
        !r.is_empty(),
        "identity witness accepted on a reordered kernel"
    );
    assert!(
        r.iter()
            .any(|x| ["mi-faithfulness", "kernel-copy", "mve-residue"].contains(x)),
        "unexpected rules {r:?}"
    );
}

/// Mutation 8: stripping the refutation proof from an II > MII
/// certificate leaves the optimality claim unfounded.
#[test]
fn mutation_proof_stripped() {
    let (prog, f, out) = scheduled(DIAMOND);
    let mut report = out.report.clone();
    report.certificate.as_mut().unwrap().proof = None;
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"cert-proof-clause"), "got {r:?}");
}

/// Mutation 9: attaching a proof to an II = MII certificate claims a
/// refutation nobody needs — and nobody checked.
#[test]
fn mutation_proof_unexpected() {
    let (prog, f, out) = scheduled(DOT);
    let mut report = out.report.clone();
    let cert = report.certificate.as_mut().unwrap();
    cert.proof = Some(InfeasibilityProof {
        ii: cert.ii - 1,
        clauses: vec![],
    });
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"cert-proof-clause"), "got {r:?}");
}

/// Mutation 10: a proof refuting the wrong II proves nothing about
/// optimality of the claimed II.
#[test]
fn mutation_proof_wrong_ii() {
    let (prog, f, out) = scheduled(DIAMOND);
    let mut report = out.report.clone();
    report
        .certificate
        .as_mut()
        .unwrap()
        .proof
        .as_mut()
        .unwrap()
        .ii += 1;
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"cert-proof-clause"), "got {r:?}");
}

/// Mutation 11: an out-of-range clause is unfounded — the checker must
/// not trust clause structure blindly.
#[test]
fn mutation_proof_unfounded_clause() {
    let (prog, f, out) = scheduled(DIAMOND);
    let mut report = out.report.clone();
    let cert = report.certificate.as_mut().unwrap();
    let n = cert.n_mis;
    cert.proof
        .as_mut()
        .unwrap()
        .clauses
        .push(ProofClause::SlotAtLeastOne { mi: n });
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"cert-proof-clause"), "got {r:?}");
}

/// Mutation 12: a dependence clause citing a dependence the loop does not
/// have is unfounded even when structurally in range.
#[test]
fn mutation_proof_fabricated_dependence() {
    let (prog, f, out) = scheduled(DIAMOND);
    let mut report = out.report.clone();
    let cert = report.certificate.as_mut().unwrap();
    cert.proof
        .as_mut()
        .unwrap()
        .clauses
        .push(ProofClause::DepForbids {
            from: 0,
            to: 1,
            dist: 7,
            pu: 1,
            pv: 0,
        });
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"cert-proof-clause"), "got {r:?}");
}

/// Mutation 13: truncating the proof to a satisfiable fragment refutes
/// nothing — the checker re-solves the clause set.
#[test]
fn mutation_proof_satisfiable_fragment() {
    let (prog, f, out) = scheduled(DIAMOND);
    let mut report = out.report.clone();
    let clauses = &mut report
        .certificate
        .as_mut()
        .unwrap()
        .proof
        .as_mut()
        .unwrap()
        .clauses;
    assert!(clauses.len() > 1, "proof unexpectedly small");
    clauses.truncate(1);
    let r = rules_of(&prog, &f, &report, &out.stmts);
    assert!(r.contains(&"cert-proof-sat"), "got {r:?}");
}

/// Mutation 14: swapping two members inside a kernel row changes the
/// emitted MI order the witness certifies — the certificate's identity
/// witness is no longer feasible for the emission's dependences.
#[test]
fn mutation_swap_kernel_members_breaks_witness() {
    let (prog, f, out) = scheduled(GAP);
    let mut bad = out.stmts.clone();
    let k = bad
        .iter_mut()
        .find_map(|s| match s {
            Stmt::For(f) => Some(f),
            _ => None,
        })
        .expect("emission has a kernel loop");
    let row = k
        .body
        .iter_mut()
        .find_map(|s| match s {
            Stmt::Par(m) if m.len() >= 2 => Some(m),
            _ => None,
        })
        .expect("a multi-member kernel row");
    row.swap(0, 1);
    let r = rules_of(&prog, &f, &out.report, &bad);
    assert!(!r.is_empty(), "member swap accepted");
}
