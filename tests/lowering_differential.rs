//! Differential testing of the lowering stage: for every float-array
//! workload, executing the *lowered IR* must produce the same final state as
//! the AST reference interpreter — and the same again for the SLMS'd
//! version, which closes the loop on the entire source→IR path the cycle
//! simulator relies on.

use slc_ast::{Program, Ty};
use slc_core::{slms_program, SlmsConfig};
use slc_machine::lirinterp::{exec_lir, RVal};
use slc_machine::lower_program;
use slc_sim::astinterp::{random_env, run_in_env, Value};
use std::collections::HashMap;

/// Run both interpreters from the same random state; compare every declared
/// array (f64 bitwise) and scalar.
fn differential(prog: &Program, seed: u64) {
    // programs with int arrays store ints in the IR's f64 memory — skip
    if prog.decls.iter().any(|d| d.is_array() && d.ty == Ty::Int) {
        return;
    }
    let lir = match lower_program(prog) {
        Ok(l) => l,
        Err(_) => return, // while/break/call: not lowerable, fine
    };
    let env0 = random_env(prog, seed);

    // AST side
    let mut ast_env = env0.clone();
    if run_in_env(prog, &mut ast_env).is_err() {
        return; // runtime error (e.g. div by zero on this seed): skip seed
    }

    // IR side: seed arrays and scalar registers from the same env
    let mut arrays = HashMap::new();
    for (name, vals) in &env0.arrays {
        arrays.insert(
            name.clone(),
            vals.iter().map(|v| v.as_f64()).collect::<Vec<f64>>(),
        );
    }
    let mut regs = HashMap::new();
    for (name, reg) in &lir.scalar_regs {
        if let Some(v) = env0.scalars.get(name) {
            regs.insert(
                *reg,
                match v {
                    Value::I(x) => RVal::I(*x),
                    Value::F(x) => RVal::F(*x),
                },
            );
        }
    }
    let st = match exec_lir(&lir, arrays, regs) {
        Ok(s) => s,
        Err(e) => panic!("IR execution failed: {e}\n{}", slc_ast::to_source(prog)),
    };

    // compare arrays bitwise
    for d in &prog.decls {
        if !d.is_array() {
            continue;
        }
        let ast_arr = &ast_env.arrays[&d.name];
        let lir_arr = &st.arrays[&d.name];
        for (k, (a, b)) in ast_arr.iter().zip(lir_arr).enumerate() {
            assert!(
                a.as_f64().to_bits() == b.to_bits(),
                "array {}[{k}] differs: ast {a:?} vs ir {b}\n{}",
                d.name,
                slc_ast::to_source(prog)
            );
        }
    }
    // compare scalars
    for (name, reg) in &lir.scalar_regs {
        let ast_v = ast_env.scalars[name];
        let ir_v = st.regs.get(reg).copied().unwrap_or(RVal::F(0.0));
        let same = match (ast_v, ir_v) {
            (Value::I(a), RVal::I(b)) => a == b,
            (a, b) => a.as_f64().to_bits() == b.as_f64().to_bits(),
        };
        assert!(
            same,
            "scalar {name} differs: ast {ast_v:?} vs ir {ir_v:?}\n{}",
            slc_ast::to_source(prog)
        );
    }
}

#[test]
fn lowering_matches_ast_on_workloads() {
    for w in slc_workloads::all() {
        let prog = w.program();
        differential(&prog, 17);
        differential(&prog, 4242);
    }
}

#[test]
fn lowering_matches_ast_on_slms_output() {
    let cfg = SlmsConfig {
        apply_filter: false,
        ..SlmsConfig::default()
    };
    for w in slc_workloads::all() {
        let prog = w.program();
        let (out, _) = slms_program(&prog, &cfg);
        differential(&out, 99);
    }
}

#[test]
fn lowering_matches_ast_on_paper_examples() {
    for src in [
        "float A[32]; float s; float t; int i;\n\
         for (i = 0; i < 30; i++) { t = A[i] * 2.0; s = s + t; }",
        "float a[32]; float b[32]; int i; float x; float y;\n\
         for (i = 0; i < 30; i++) { if (a[i] < b[i]) { x = x + a[i]; } else { y = y + b[i]; } }",
        "float M[6][7]; int i; int j;\n\
         for (i = 0; i < 6; i++) for (j = 0; j < 7; j++) M[i][j] = M[i][j] + 1.0;",
        "float a[16]; float m; int i;\n\
         m = a[0];\n\
         for (i = 1; i < 16; i++) m = max(m, a[i]);",
    ] {
        let prog = slc_ast::parse_program(src).unwrap();
        for seed in [1, 2, 3] {
            differential(&prog, seed);
        }
    }
}
