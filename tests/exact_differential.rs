//! Differential proof harness for the exact modulo scheduler.
//!
//! The exact scheduler (`crates/exact`, SAT-backed) claims three things,
//! and this harness checks each one against the heuristic scheduler over
//! the full workload matrix:
//!
//! 1. **Dominance** — the exact II never exceeds the heuristic II, and the
//!    two schedulers agree on which loops are transformable at all;
//! 2. **Certification** — every small-enough scheduled loop carries an
//!    [`OptimalityCertificate`](slc::exact::OptimalityCertificate) whose
//!    internal invariants hold (II ≥ MII, a refutation proof exactly when
//!    II > MII, the heuristic II recorded for the gap), and where the IIs
//!    agree the certificate proves the heuristic optimal;
//! 3. **Semantics** — exact-scheduled programs remain bit-identical to
//!    their sources under the AST interpreter, and their compiled kernels
//!    simulate bit-identically under `SimFidelity::Fast` and
//!    `SimFidelity::Reference`.
//!
//! A constructed recurrence where source order is pessimal pins down the
//! interesting case: the exact scheduler must *beat* the heuristic by
//! reordering, report a positive optimality gap, and still verify.

use slc::ast::parse_program;
use slc::exact::MAX_EXACT_MIS;
use slc::pipeline::{compile, CompilerKind};
use slc::sim::astinterp::equivalent;
use slc::sim::cycle::{simulate_with, SimFidelity};
use slc::slms::{slms_program, Expansion, SchedulerKind, SlmsConfig};
use slc::verify::verify_slms_program;

fn cfg_pair(apply_filter: bool, expansion: Expansion) -> (SlmsConfig, SlmsConfig) {
    let heuristic = SlmsConfig {
        apply_filter,
        expansion,
        ..SlmsConfig::default()
    };
    let exact = SlmsConfig {
        scheduler: SchedulerKind::Exact,
        ..heuristic.clone()
    };
    (heuristic, exact)
}

/// Dominance + certification over every workload, both filter settings and
/// every expansion mode: exact II ≤ heuristic II, same transformability,
/// and every small loop is certified — agreement means the certificate
/// proves the heuristic schedule optimal (gap 0).
#[test]
fn exact_dominates_and_certifies_the_workload_matrix() {
    let mut certified = 0usize;
    let mut agreements = 0usize;
    for w in slc::workloads::all() {
        let prog = w.program();
        for apply_filter in [true, false] {
            for expansion in [Expansion::Mve, Expansion::ScalarExpand, Expansion::Off] {
                let (hcfg, ecfg) = cfg_pair(apply_filter, expansion);
                let (_, houts) = slms_program(&prog, &hcfg);
                let (_, eouts) = slms_program(&prog, &ecfg);
                assert_eq!(houts.len(), eouts.len(), "{}", w.name);
                for (h, e) in houts.iter().zip(&eouts) {
                    let ctx = format!("{} / filter {apply_filter} / {expansion:?}", w.name);
                    match (&h.result, &e.result) {
                        (Ok(hr), Ok(er)) => {
                            assert!(
                                er.ii <= hr.ii,
                                "{ctx}: exact II {} > heuristic II {}",
                                er.ii,
                                hr.ii
                            );
                            if er.n_mis >= 2 && er.n_mis <= MAX_EXACT_MIS {
                                let cert = e
                                    .result
                                    .as_ref()
                                    .unwrap()
                                    .certificate
                                    .as_ref()
                                    .unwrap_or_else(|| panic!("{ctx}: no certificate"));
                                certified += 1;
                                assert_eq!(cert.ii, er.ii, "{ctx}");
                                assert!(cert.mii <= cert.ii, "{ctx}");
                                assert_eq!(cert.proof.is_some(), cert.ii > cert.mii, "{ctx}");
                                assert_eq!(er.heuristic_ii, Some(hr.ii), "{ctx}");
                                if er.ii == hr.ii {
                                    agreements += 1;
                                    assert_eq!(
                                        er.heuristic_ii.unwrap() - cert.ii,
                                        0,
                                        "{ctx}: agreement must certify a zero gap"
                                    );
                                }
                            }
                        }
                        (Err(_), Err(_)) => {}
                        (hr, er) => {
                            panic!("{ctx}: schedulers disagree on transformability: heuristic {hr:?} vs exact {er:?}")
                        }
                    }
                }
            }
        }
    }
    assert!(certified > 20, "only {certified} certificates issued");
    assert!(agreements > 20, "only {agreements} heuristic agreements");
}

/// Semantics under the AST interpreter: every exact-scheduled program
/// computes bit-identical final memory to its source on random inputs.
#[test]
fn exact_outputs_stay_bit_identical_under_interpretation() {
    for w in slc::workloads::all() {
        let prog = w.program();
        for apply_filter in [true, false] {
            let (_, ecfg) = cfg_pair(apply_filter, Expansion::Mve);
            let (out, outs) = slms_program(&prog, &ecfg);
            if outs.iter().all(|o| o.result.is_err()) {
                continue;
            }
            equivalent(&prog, &out, &[1, 2, 3, 5, 8])
                .unwrap_or_else(|m| panic!("{} (filter {apply_filter}): {m:?}", w.name));
        }
    }
}

/// Semantics under the cycle simulator: compiled exact-scheduled kernels
/// report bit-identical results on the fast and reference interpreters.
#[test]
fn exact_outputs_simulate_identically_fast_vs_reference() {
    let machines = [slc::sim::presets::itanium2(), slc::sim::presets::power4()];
    let (_, ecfg) = cfg_pair(true, Expansion::Mve);
    let mut cells = 0usize;
    for w in slc::workloads::all() {
        let (out, _) = slms_program(&w.program(), &ecfg);
        for m in &machines {
            let Ok(c) = compile(&out, m, CompilerKind::Optimizing) else {
                continue;
            };
            let fast = simulate_with(&c.compiled, m, SimFidelity::Fast);
            let reference = simulate_with(&c.compiled, m, SimFidelity::Reference);
            assert_eq!(fast.result, reference.result, "{} / {}", w.name, m.name);
            cells += 1;
        }
    }
    assert!(cells > 20, "matrix unexpectedly small: {cells} cells");
}

/// The constructed pessimal-order recurrence: the heuristic keeps source
/// order and lands at II = 3; the exact scheduler reorders to II = 1 (a
/// positive optimality gap of 2), the output still computes the same
/// values, and the translation validator re-proves the whole emission —
/// certificate included.
#[test]
fn exact_beats_heuristic_on_a_constructed_recurrence() {
    let src = "float A[64]; float B[64]; float C[64]; float Z[64]; int i;\n\
               for (i = 1; i < 40; i++) { A[i] = Z[i - 1]; B[i] = B[i] + 1.0; \
               C[i] = C[i] * 2.0; Z[i] = A[i] + 1.0; }";
    let prog = parse_program(src).unwrap();
    let (hcfg, ecfg) = cfg_pair(false, Expansion::Mve);

    let (_, houts) = slms_program(&prog, &hcfg);
    let hr = houts[0].result.as_ref().expect("heuristic schedules");
    assert_eq!(hr.ii, 3, "heuristic is stuck with source order");

    let (out, eouts) = slms_program(&prog, &ecfg);
    let er = eouts[0].result.as_ref().expect("exact schedules");
    assert_eq!(er.ii, 1, "exact reorders to the cycle bound");
    assert_eq!(er.heuristic_ii, Some(3));
    let order = er.exact_order.as_ref().unwrap();
    assert_ne!(order, &vec![0, 1, 2, 3], "the win requires reordering");
    let cert = er.certificate.as_ref().unwrap();
    assert_eq!((cert.ii, cert.mii), (1, 1));
    assert_eq!(er.heuristic_ii.unwrap() - cert.ii, 2, "positive gap");

    equivalent(&prog, &out, &[1, 2, 3, 5, 8]).expect("reordered emission is bit-identical");
    let verdict = verify_slms_program(&prog, &ecfg);
    assert!(verdict.clean(), "{}", verdict.render());
}
