//! Lint false-positive regression: the built-in workloads are the curated,
//! known-good corpus — the uninitialized-scalar-read lint (`SLMS-L001`,
//! the only error-severity lint) must not fire on any of them. Scalars the
//! workloads read before writing (reduction seeds, parameters) are
//! *never*-written-before scalars, which the three-state dataflow
//! classifies as parameters, not hazards.

use slc::verify::{lint_program, LintSeverity};

#[test]
fn no_lint_errors_on_any_workload() {
    for w in slc::workloads::all() {
        let lints = lint_program(&w.program());
        let errors: Vec<_> = lints
            .iter()
            .filter(|l| l.severity == LintSeverity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "workload {} has lint errors: {errors:?}",
            w.name
        );
    }
}

/// Warnings are allowed (sec4_swap legitimately carries an alias hazard —
/// that is the paper's §4 bad case), but they must carry stable codes.
#[test]
fn warning_codes_are_stable() {
    for w in slc::workloads::all() {
        for l in lint_program(&w.program()) {
            assert!(
                ["SLMS-L001", "SLMS-L002", "SLMS-L003", "SLMS-L004"].contains(&l.code),
                "workload {} produced unknown lint code {}",
                w.name,
                l.code
            );
        }
    }
}

/// The §4 swap kernel is the motivating alias-hazard example: the lint
/// suite must flag it (as a warning, not an error).
#[test]
fn sec4_swap_alias_hazard_flagged() {
    let w = slc::workloads::all()
        .into_iter()
        .find(|w| w.name == "sec4_swap")
        .expect("sec4_swap workload exists");
    let lints = lint_program(&w.program());
    let hazard = lints.iter().find(|l| l.code == "SLMS-L002");
    assert!(
        hazard.is_some(),
        "sec4_swap should warn SLMS-L002: {lints:?}"
    );
    assert_eq!(hazard.unwrap().severity, LintSeverity::Warning);
}
