//! Differential tests for the cross-process observability tier: the
//! flight recorder, distributed trace stitching and histograms must obey
//! the same cardinal rule as the tracer — the canonical batch report and
//! the deterministic counter registry are byte-identical with every
//! observability feature on or off, wall clock stays quarantined in the
//! timing sidecar, and a dead shard leaves its black box behind.

use slc_core::SlmsConfig;
use slc_pipeline::{
    run_batch, run_sharded, BatchConfig, BatchEngine, CompilerKind, Json, PassPlan, ShardFault,
    ShardOptions,
};
use slc_serve::{Client, Endpoint, Request, RequestOpts, Response, ServeConfig, Server};
use slc_trace::{validate_chrome_trace, validate_flight_dump, TraceCtx, Tracer};

/// Exec the test-built `slc` binary in worker mode; the dispatcher itself
/// runs inside the test process, whose `current_exe` is the test harness.
fn worker_cmd() -> Vec<String> {
    vec![
        env!("CARGO_BIN_EXE_slc").to_string(),
        "batch-shard".to_string(),
    ]
}

fn opts(shards: usize) -> ShardOptions {
    ShardOptions {
        shards,
        threads_per_shard: Some(1),
        chunk: None,
        worker_cmd: Some(worker_cmd()),
        faults: Vec::new(),
    }
}

fn small_config() -> BatchConfig {
    BatchConfig {
        workloads: slc_workloads::paper_examples(),
        machines: vec![slc_sim::presets::itanium2(), slc_sim::presets::power4()],
        compilers: vec![CompilerKind::Weak, CompilerKind::Optimizing],
        slms: SlmsConfig::default(),
        plan: PassPlan::slms_only(),
        threads: Some(1),
        verify: false,
    }
}

/// A killed shard's last flight-recorder snapshot is quarantined into the
/// timing sidecar (schema-valid, non-empty), while the canonical report
/// and counters stay byte-identical to the in-process engine.
#[test]
fn killed_shard_leaves_its_flight_dump_in_the_sidecar() {
    let cfg = small_config();
    let reference = run_batch(&cfg);
    let mut o = opts(3);
    o.faults = vec![(1, ShardFault::KillAfterCells(3))];
    let rep = run_sharded(&cfg, &o, &Tracer::disabled()).expect("sharded run must complete");
    assert_eq!(rep.to_json(), reference.to_json());
    assert_eq!(rep.counters_json(), reference.counters_json());
    assert!(!rep.timing.shards[1].alive);

    let flight = rep.timing.shards[1]
        .flight
        .as_ref()
        .expect("dead shard must leave a flight dump");
    let sum = validate_flight_dump(flight).expect("flight dump must validate");
    assert!(sum.events >= 1, "flight dump carries no events");
    // the sidecar JSON carries it under the dead shard only
    let sidecar = rep.timing_json();
    assert!(sidecar.contains("flight_recorder"));
    for (i, s) in rep.timing.shards.iter().enumerate() {
        assert_eq!(
            s.flight.is_some(),
            i == 1,
            "only the dead shard carries a flight dump"
        );
    }
}

/// Tracing + the always-on recorder leave the canonical report and the
/// counter registry byte-identical, in-process and sharded, and the
/// deterministic histograms are identical traced vs untraced.
#[test]
fn observability_on_vs_off_is_byte_identical() {
    let cfg = small_config();

    // in-process: disabled vs enabled tracer on fresh engines
    let off = BatchEngine::new().run(&cfg);
    let tracer = Tracer::enabled();
    let on = BatchEngine::new().run_traced(&cfg, &tracer);
    assert_eq!(off.to_json(), on.to_json());
    assert_eq!(off.counters_json(), on.counters_json());
    assert_eq!(
        off.histograms.to_baseline_json(),
        on.histograms.to_baseline_json()
    );
    assert!(tracer.event_count() > 0);

    // sharded: untraced vs traced fleets reduce to the same bytes
    let sh_off = run_sharded(&cfg, &opts(2), &Tracer::disabled()).unwrap();
    let sh_tracer = Tracer::enabled();
    let sh_on = run_sharded(&cfg, &opts(2), &sh_tracer).unwrap();
    assert_eq!(sh_off.to_json(), off.to_json());
    assert_eq!(sh_on.to_json(), off.to_json());
    assert_eq!(sh_on.counters_json(), off.counters_json());

    // the new observability counter families are themselves deterministic
    // and present on every path
    for k in ["trace.span_sites", "recorder.ring_events"] {
        assert!(off.counters.get(k) > 0, "{k} never bumped");
        assert_eq!(off.counters.get(k), sh_on.counters.get(k));
    }
}

/// A traced sharded run merges every worker's span dump into one Chrome
/// trace: validator-clean, exactly one process track per shard, every
/// process contributing spans, all under a single trace id.
#[test]
fn sharded_traced_run_merges_into_one_timeline() {
    let cfg = small_config();
    let tracer = Tracer::enabled();
    let shards = 2;
    let rep = run_sharded(&cfg, &opts(shards), &tracer).unwrap();
    assert_eq!(rep.failed(), 0);

    let doc = tracer.to_chrome_json().expect("tracer is enabled");
    validate_chrome_trace(&doc).expect("merged trace must validate");

    let parsed = Json::parse(&doc).unwrap();
    let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
    let mut process_names = Vec::new();
    let mut span_pids = std::collections::BTreeSet::new();
    for e in events {
        let name = e.get("name").and_then(Json::as_str);
        let ph = e.get("ph").and_then(Json::as_str);
        let pid = e.get("pid").and_then(Json::as_i64).unwrap_or(-1);
        if ph == Some("M") && name == Some("process_name") {
            let pname = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            process_names.push((pid, pname));
        }
        if ph == Some("X") {
            span_pids.insert(pid);
        }
    }
    process_names.sort();
    // dispatcher (pid 1) + one track per shard, each named by the
    // dispatcher (not the worker's fallback name)
    assert_eq!(
        process_names,
        vec![
            (1, "slc".to_string()),
            (2, "shard-0".to_string()),
            (3, "shard-1".to_string()),
        ],
        "expected exactly one process track per shard"
    );
    assert_eq!(
        span_pids.len(),
        shards + 1,
        "every process must contribute spans"
    );
    // one trace id binds the whole timeline
    let trace_id = parsed
        .get("otherData")
        .and_then(|o| o.get("trace_id"))
        .and_then(Json::as_str)
        .expect("merged trace must carry its trace id")
        .to_string();
    assert_eq!(trace_id, tracer.ctx().unwrap().trace_id_hex());
}

/// A traced serve request stitches the daemon into the caller's trace:
/// the caller hands its context over the wire, pulls the daemon's span
/// dump back with the `dump` verb, imports it, and gets one
/// validator-clean timeline where both processes share the trace id.
#[test]
fn traced_serve_request_stitches_into_the_client_trace() {
    let daemon_tracer = Tracer::enabled();
    let handle = Server::spawn(
        &Endpoint::Tcp("127.0.0.1:0".to_string()),
        ServeConfig::default(),
        daemon_tracer,
    )
    .expect("spawn daemon");
    let addr = handle.local_addr().unwrap().to_string();

    let client = Tracer::enabled();
    let ctx = TraceCtx::from_hex("00000000feedface", "0000000000000001").unwrap();
    client.set_ctx(ctx);
    client.set_thread_track(0, "client");

    let mut conn = Client::connect_tcp(&addr).expect("connect");
    {
        let mut span = client.span("serve", "client.request");
        span.arg("kind", "compile");
        let resp = conn
            .request(&Request::Compile {
                source: "int i;\nint a[64];\nfor (i = 0; i < 64; i++) { a[i] = a[i] + 1; }"
                    .to_string(),
                opts: RequestOpts {
                    filter: true,
                    ctx: Some(ctx),
                    ..RequestOpts::default()
                },
            })
            .expect("compile request");
        assert!(matches!(resp, Response::Compile { .. }), "{resp:?}");
    }

    // pull the daemon's spans + flight ring back out
    let (trace, flight) = match conn.request(&Request::Dump).expect("dump request") {
        Response::Dump { trace, flight } => (trace, flight),
        other => panic!("dump answered with {other:?}"),
    };
    let trace = trace.expect("traced daemon must return a span dump");
    let sum = validate_flight_dump(&flight).expect("daemon flight dump must validate");
    assert!(sum.events >= 1);

    // import succeeds only when the trace ids match — the daemon adopted
    // the caller's context
    let imported = client
        .import_process_dump(&trace, 2, "slc-serve")
        .expect("span dump must import cleanly");
    assert!(imported >= 1, "daemon contributed no spans");

    let doc = client.to_chrome_json().unwrap();
    validate_chrome_trace(&doc).expect("stitched timeline must validate");
    let parsed = Json::parse(&doc).unwrap();
    assert_eq!(
        parsed
            .get("otherData")
            .and_then(|o| o.get("trace_id"))
            .and_then(Json::as_str),
        Some("00000000feedface"),
        "stitched trace keeps the caller's id"
    );
    let span_pids: std::collections::BTreeSet<i64> = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter_map(|e| e.get("pid").and_then(Json::as_i64))
        .collect();
    assert!(
        span_pids.contains(&1) && span_pids.contains(&2),
        "both client and daemon must contribute spans: {span_pids:?}"
    );

    let shutdown = conn.request(&Request::Shutdown).expect("shutdown");
    assert!(matches!(shutdown, Response::ShutdownAck));
    assert!(handle.wait().drained_clean);
}

/// A daemon bound to a *different* trace refuses to stitch: importing its
/// dump into a foreign trace id is an error, not silent corruption.
#[test]
fn span_dump_import_rejects_foreign_trace_ids() {
    let exporter = Tracer::enabled();
    exporter.set_ctx(TraceCtx::from_hex("00000000000000aa", "0000000000000001").unwrap());
    {
        let _s = exporter.span("stage", "work");
    }
    let dump = exporter.export_process_dump("other").unwrap();

    let importer = Tracer::enabled();
    importer.set_ctx(TraceCtx::from_hex("00000000000000bb", "0000000000000001").unwrap());
    let err = importer.import_process_dump(&dump, 2, "other");
    assert!(err.is_err(), "foreign trace id must be rejected");
}

/// Histogram determinism: the deterministic work histograms are a pure
/// function of the matrix — identical across fresh engines and invariant
/// under thread count — and the wall-clock histogram family never appears
/// among them.
#[test]
fn work_histograms_are_deterministic_and_wall_free() {
    let cfg = small_config();
    let a = BatchEngine::new().run(&cfg);
    let mut cfg8 = small_config();
    cfg8.threads = Some(8);
    let b = BatchEngine::new().run(&cfg8);
    let doc = a.histograms.to_baseline_json();
    assert_eq!(doc, b.histograms.to_baseline_json());
    assert!(!a.histograms.is_empty(), "work histograms never populated");
    for (name, _) in a.histograms.iter() {
        assert!(
            !name.starts_with("wall."),
            "wall-clock histogram {name} leaked into the deterministic registry"
        );
    }
    // and none of it reaches the canonical report
    assert!(!a.to_json().contains("histogram"));
}
