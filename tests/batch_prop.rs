//! Property-based testing of the batch engine's memoization: for random
//! affine loops, a cache hit must return exactly what a cold computation
//! returns, and the canonical report must not depend on the thread count.

use proptest::prelude::*;
use slc_core::SlmsConfig;
use slc_pipeline::{run_batch, BatchConfig, BatchEngine, CompilerKind};
use slc_workloads::{Suite, Workload};

/// A random but parseable single-loop program. Offsets and constants vary;
/// the shape is kept simple because the property under test is cache
/// correctness, not the transformation itself (tests/prop_slms.rs covers
/// that with a richer generator).
fn loop_source(arr: usize, off: i64, k: i64, terms: usize, mul: bool) -> String {
    let op = if mul { "*" } else { "+" };
    let rhs = (0..terms)
        .map(|t| {
            let a = (arr + t) % 3;
            let o = off + t as i64 - 1;
            let idx = match o {
                0 => "i".to_string(),
                o if o > 0 => format!("i + {o}"),
                o => format!("i - {}", -o),
            };
            format!("A{a}[{idx}]")
        })
        .collect::<Vec<_>>()
        .join(&format!(" {op} "));
    format!(
        "float A0[64]; float A1[64]; float A2[64]; int i;\n\
         for (i = 4; i < 60; i++) A{arr}[i] = {rhs} {op} {k}.0;\n"
    )
}

fn workload_from(src: String) -> Workload {
    Workload {
        name: "prop_loop",
        suite: Suite::Paper,
        source: Box::leak(src.into_boxed_str()),
    }
}

fn config_for(w: Workload, threads: usize) -> BatchConfig {
    BatchConfig {
        workloads: vec![w],
        machines: vec![slc_sim::presets::itanium2()],
        compilers: vec![CompilerKind::Optimizing, CompilerKind::OptimizingMs],
        slms: SlmsConfig::default(),
        plan: slc_pipeline::PassPlan::slms_only(),
        threads: Some(threads),
        verify: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// A second run of the same engine answers every cell from the cache,
    /// and the cached artifacts reproduce the cold results bit-for-bit.
    #[test]
    fn cached_hit_equals_cold_miss(
        arr in 0usize..3,
        off in -2i64..3,
        k in 1i64..9,
        terms in 1usize..4,
        mul in any::<bool>(),
    ) {
        let cfg = config_for(workload_from(loop_source(arr, off, k, terms, mul)), 2);
        let engine = BatchEngine::new();
        let cold = engine.run(&cfg);
        let misses_after_cold = engine.cache_report().compile.misses;
        let warm = engine.run(&cfg);
        // every artifact came from the cache the second time
        prop_assert_eq!(engine.cache_report().compile.misses, misses_after_cold);
        // a completely fresh engine agrees too (cold == cold)
        let fresh = run_batch(&cfg);
        for (a, b) in cold.cells.iter().zip(&warm.cells).chain(cold.cells.iter().zip(&fresh.cells)) {
            prop_assert_eq!(&a.id, &b.id);
            match (&a.outcome, &b.outcome) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x.cycles, y.cycles);
                    prop_assert_eq!(x.ops, y.ops);
                    prop_assert_eq!(x.energy.to_bits(), y.energy.to_bits());
                    prop_assert_eq!(&x.loops, &y.loops);
                    prop_assert_eq!(x.transformed, y.transformed);
                    prop_assert_eq!(x.slms_ii, y.slms_ii);
                }
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                _ => prop_assert!(false, "outcome kind changed"),
            }
        }
    }

    /// One worker thread and several produce byte-identical reports.
    #[test]
    fn report_json_is_thread_invariant(
        arr in 0usize..3,
        off in -2i64..3,
        k in 1i64..9,
        terms in 1usize..4,
        mul in any::<bool>(),
    ) {
        let w = workload_from(loop_source(arr, off, k, terms, mul));
        let serial = run_batch(&config_for(w.clone(), 1)).to_json();
        let parallel = run_batch(&config_for(w, 4)).to_json();
        prop_assert_eq!(serial, parallel);
    }
}
