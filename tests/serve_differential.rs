//! Differential testing of the `slc serve` daemon: every response must be
//! byte-identical to the corresponding one-shot CLI output, under one
//! client and under concurrent clients; replaying the corpus must hit the
//! shared cache with exactly predictable counters; and the failure paths
//! (busy, timeout, malformed lines) must never wedge a connection.

use slc::ast::{parse_program, to_source};
use slc::pipeline::{explain_source_json, verify_report, PassManager, PassPlan};
use slc::serve::{
    run_bench, BenchConfig, Client, Endpoint, ErrorKind, Request, RequestOpts, Response,
    ServeConfig, Server, ServerHandle,
};
use slc::slms::SlmsConfig;
use slc::trace::Tracer;
use std::time::Duration;

const PLANS: [&str; 2] = ["slms", "normalize,slms"];

fn spawn(cfg: ServeConfig) -> (ServerHandle, String) {
    let handle = Server::spawn(
        &Endpoint::Tcp("127.0.0.1:0".to_string()),
        cfg,
        Tracer::disabled(),
    )
    .expect("spawn daemon");
    let addr = handle.local_addr().expect("tcp addr").to_string();
    (handle, addr)
}

fn shutdown_clean(handle: ServerHandle, addr: &str) {
    let mut c = Client::connect_tcp(addr).expect("connect for shutdown");
    assert_eq!(
        c.request(&Request::Shutdown).unwrap(),
        Response::ShutdownAck
    );
    let drain = handle.wait();
    assert!(drain.drained_clean, "drain left work behind: {drain:?}");
}

fn opts_for(plan: &str) -> RequestOpts {
    RequestOpts {
        passes: Some(plan.to_string()),
        filter: true,
        ..RequestOpts::default()
    }
}

/// What one-shot `slc --passes <plan>` would print for this source.
fn one_shot_compile(src: &str, plan: &str) -> String {
    let cfg = SlmsConfig::default();
    let plan = PassPlan::parse(plan).unwrap();
    let prog = parse_program(src).unwrap();
    let (out, _) = PassManager::new(cfg).run(&prog, &plan).unwrap();
    to_source(&out)
}

/// Every workload × plan: compile, explain and verify responses are
/// byte-identical to the one-shot pipeline output.
#[test]
fn daemon_matches_one_shot_across_corpus() {
    let (handle, addr) = spawn(ServeConfig::default());
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let cfg = SlmsConfig::default();
    for w in slc::workloads::all() {
        for plan in PLANS {
            let resp = client
                .request(&Request::Compile {
                    source: w.source.to_string(),
                    opts: opts_for(plan),
                })
                .unwrap();
            match resp {
                Response::Compile { output, .. } => {
                    assert_eq!(
                        output,
                        one_shot_compile(w.source, plan),
                        "{} / {plan}",
                        w.name
                    )
                }
                other => panic!("{} / {plan}: unexpected {other:?}", w.name),
            }

            let parsed = PassPlan::parse(plan).unwrap();
            let resp = client
                .request(&Request::Explain {
                    source: w.source.to_string(),
                    opts: opts_for(plan),
                })
                .unwrap();
            match resp {
                Response::Explain { output } => assert_eq!(
                    output,
                    explain_source_json(w.source, &parsed, &cfg),
                    "{} / {plan}",
                    w.name
                ),
                other => panic!("{} / {plan}: unexpected {other:?}", w.name),
            }
        }

        let (want_clean, want_text) = verify_report(&w.program(), &cfg);
        let resp = client
            .request(&Request::Verify {
                source: w.source.to_string(),
                opts: RequestOpts {
                    filter: true,
                    ..RequestOpts::default()
                },
            })
            .unwrap();
        match resp {
            Response::Verify { clean, output } => {
                assert_eq!(clean, want_clean, "{}", w.name);
                assert_eq!(output, want_text, "{}", w.name);
            }
            other => panic!("{}: unexpected {other:?}", w.name),
        }
    }
    shutdown_clean(handle, &addr);
}

/// Eight concurrent clients replaying the same corpus all receive the
/// byte-identical output the one-shot pipeline produces — shared caching
/// never leaks one request's artifacts into another's response.
#[test]
fn concurrent_clients_get_identical_bytes() {
    let (handle, addr) = spawn(ServeConfig::default());
    let expected: Vec<(String, String)> = slc::workloads::all()
        .iter()
        .flat_map(|w| {
            PLANS
                .iter()
                .map(|plan| (w.source.to_string(), one_shot_compile(w.source, plan)))
                .collect::<Vec<_>>()
        })
        .collect();
    let corpus: Vec<Request> = slc::workloads::all()
        .iter()
        .flat_map(|w| {
            PLANS.map(|plan| Request::Compile {
                source: w.source.to_string(),
                opts: opts_for(plan),
            })
        })
        .collect();
    std::thread::scope(|scope| {
        for client_id in 0..8 {
            let corpus = &corpus;
            let expected = &expected;
            let addr = &addr;
            scope.spawn(move || {
                let mut client = Client::connect_tcp(addr).expect("connect");
                for (req, (_, want)) in corpus.iter().zip(expected) {
                    match client.request(req).unwrap() {
                        Response::Compile { output, .. } => {
                            assert_eq!(&output, want, "client {client_id}")
                        }
                        other => panic!("client {client_id}: unexpected {other:?}"),
                    }
                }
            });
        }
    });
    shutdown_clean(handle, &addr);
}

/// The bench harness replaying the corpus twice sees exactly-predictable
/// cache behaviour: zero first-pass hits, all-hit second pass, and store
/// counters that are a pure function of the corpus shape.
#[test]
fn replay_hit_counters_are_exact() {
    let n_workloads = slc::workloads::all().len();
    let corpus = PLANS.len() * n_workloads;
    let report = run_bench(&BenchConfig {
        clients: 4,
        passes: 2,
        ..BenchConfig::default()
    })
    .expect("bench run");
    let c = &report.counts;
    assert_eq!(c.corpus, corpus);
    assert_eq!(c.requests, 2 * corpus);
    assert_eq!(c.responses_ok, 2 * corpus);
    assert_eq!(c.responses_error, 0);
    // pass 1 populates (every (source, plan) key distinct), pass 2 is
    // answered entirely from cache
    assert_eq!(c.pass_hits, vec![0, corpus]);
    assert_eq!(c.final_pass_hit_rate, 1.0);
    assert_eq!(c.drained_clean, Some(true));
    // serve.* counters: every compile request admitted, none rejected or
    // timed out; artifact-level hits are a pure function of the corpus —
    // per request one parse lookup (n_workloads distinct sources) and one
    // plan lookup (corpus distinct keys)
    let get = |k: &str| {
        c.serve
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert_eq!(get("serve.requests"), 2 * corpus as u64);
    assert_eq!(get("serve.rejections"), 0);
    assert_eq!(get("serve.timeouts"), 0);
    assert_eq!(get("serve.evictions"), 0);
    assert_eq!(get("serve.refp_mismatches"), 0);
    let parse_hits = (2 * corpus - n_workloads) as u64;
    let plan_hits = corpus as u64;
    assert_eq!(get("serve.hits"), parse_hits + plan_hits);
    assert!(report.gate(0.9).is_ok());
}

/// With a zero-slot admission queue every compile request answers `busy`
/// (exit-code class 3) — and the control plane stays responsive.
#[test]
fn busy_backpressure_when_the_queue_is_full() {
    let (handle, addr) = spawn(ServeConfig {
        queue: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let w = &slc::workloads::all()[0];
    match client
        .request(&Request::Compile {
            source: w.source.to_string(),
            opts: opts_for("slms"),
        })
        .unwrap()
    {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Busy),
        other => panic!("unexpected {other:?}"),
    }
    // ping/stats are answered inline, never queued
    assert_eq!(client.request(&Request::Ping).unwrap(), Response::Pong);
    match client.request(&Request::Stats).unwrap() {
        Response::Stats { counters } => {
            assert_eq!(counters.get("serve.rejections"), 1);
            assert_eq!(counters.get("serve.requests"), 0);
        }
        other => panic!("unexpected {other:?}"),
    }
    shutdown_clean(handle, &addr);
}

/// A deadline shorter than any compile yields a `timeout` error instead of
/// a wedged daemon, and the same connection keeps answering afterwards.
#[test]
fn timeouts_never_wedge_the_connection() {
    // a zero deadline plus a deliberately huge exact-scheduled program:
    // the deadline expires long before the worker can possibly answer
    // (recv_timeout grants a brief spin-yield grace even at zero, enough
    // for a small compile to sneak in)
    let (handle, addr) = spawn(ServeConfig {
        timeout: Duration::ZERO,
        ..ServeConfig::default()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let mut source = String::from("float x[1012]; float z[1012]; int i;\n");
    for _ in 0..64 {
        source.push_str("for (i = 1; i < 1000; i++) {\n  x[i] = z[i] * (x[i - 1] + z[i]);\n}\n");
    }
    match client
        .request(&Request::Compile {
            source,
            opts: opts_for("exact"),
        })
        .unwrap()
    {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Timeout),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(client.request(&Request::Ping).unwrap(), Response::Pong);
    // the detached worker may still hold its admission slot; the drain
    // deadline (2× request timeout ≈ instant) may report it abandoned, so
    // only join here — no clean-drain assertion
    let mut c = Client::connect_tcp(&addr).expect("connect for shutdown");
    assert_eq!(
        c.request(&Request::Shutdown).unwrap(),
        Response::ShutdownAck
    );
    let drain = handle.wait();
    assert_eq!(drain.connections, 2);
}

/// Malformed request lines answer a `usage` error and leave the
/// connection fully usable; typed parse errors keep the exit-code
/// contract.
#[test]
fn malformed_and_failing_requests_keep_the_connection_alive() {
    let (handle, addr) = spawn(ServeConfig::default());

    // raw socket: garbage line, then a valid ping on the same connection
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .write_all(b"this is not json\n{\"type\":\"ping\"}\n")
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match Response::parse(line.trim_end()).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Usage),
        other => panic!("unexpected {other:?}"),
    }
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(Response::parse(line.trim_end()).unwrap(), Response::Pong);
    drop(reader);

    // typed client: a source that does not parse answers `parse` (exit 1)
    let mut client = Client::connect_tcp(&addr).expect("connect");
    match client
        .request(&Request::Compile {
            source: "this does not parse either".to_string(),
            opts: opts_for("slms"),
        })
        .unwrap()
    {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Parse);
            assert_eq!(kind.exit_code(), 1);
            assert!(message.starts_with("parse error:"), "{message}");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(client.request(&Request::Ping).unwrap(), Response::Pong);
    shutdown_clean(handle, &addr);
}

/// A bounded daemon under a capacity smaller than the corpus evicts and
/// recompiles — and the recompiled bytes are identical (refp check clean).
#[test]
fn bounded_daemon_recompiles_identically() {
    let (handle, addr) = spawn(ServeConfig {
        capacity: Some(2),
        ..ServeConfig::default()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let workloads = slc::workloads::all();
    for _pass in 0..2 {
        for w in workloads.iter().take(5) {
            match client
                .request(&Request::Compile {
                    source: w.source.to_string(),
                    opts: opts_for("slms"),
                })
                .unwrap()
            {
                Response::Compile { output, .. } => {
                    assert_eq!(output, one_shot_compile(w.source, "slms"), "{}", w.name)
                }
                other => panic!("{}: unexpected {other:?}", w.name),
            }
        }
    }
    match client.request(&Request::Stats).unwrap() {
        Response::Stats { counters } => {
            assert!(counters.get("serve.evictions") > 0, "capacity 2 must evict");
            assert_eq!(counters.get("serve.refp_mismatches"), 0);
        }
        other => panic!("unexpected {other:?}"),
    }
    shutdown_clean(handle, &addr);
}
