//! Shape assertions for the paper's figures.
//!
//! Absolute cycle counts belong to our synthetic machines, but the
//! *qualitative* results the paper reports must hold. Each test pins one
//! such claim so regressions in any layer (SLMS, schedulers, simulator)
//! surface as figure-shape breaks.

use slc_bench::harness;
use slc_core::SlmsConfig;
use slc_pipeline::{measure_workload, CompilerKind};
use slc_sim::presets::{arm7tdmi, itanium2};

fn geo_mean(rows: &[slc_pipeline::LoopRow]) -> f64 {
    (rows.iter().map(|r| r.speedup.max(1e-9).ln()).sum::<f64>() / rows.len() as f64).exp()
}

#[test]
fn fig14_slms_wins_over_weak_compiler_on_vliw() {
    // §9.1: SLMS improves execution times over a relatively weak compiler.
    let (_o0, o3) = harness::fig14();
    let wins = o3.rows.iter().filter(|r| r.speedup > 1.0).count();
    assert!(
        wins * 2 > o3.rows.len(),
        "majority of Livermore/Linpack loops should win: {}/{}",
        wins,
        o3.rows.len()
    );
    assert!(geo_mean(&o3.rows) > 1.2, "geomean {}", geo_mean(&o3.rows));
}

#[test]
fn fig14_has_bad_cases_too() {
    // The paper stresses SLMS must be applied selectively — some loops lose.
    let (_o0, o3) = harness::fig14();
    assert!(
        o3.rows.iter().any(|r| r.transformed && r.speedup < 1.0),
        "expected at least one regression among transformed loops"
    );
}

#[test]
fn kernel8_bundle_reduction() {
    // §9.1: kernel 8's big parallel body — GCC's assembly had 23 bundles
    // before and 16 after SLMS. Our analogue must show the same direction.
    let (_o0, o3) = harness::fig14();
    let k8 = o3.rows.iter().find(|r| r.name == "kernel8_adi").unwrap();
    assert!(k8.transformed);
    assert!(k8.slms_ii == Some(1));
    assert!(
        k8.slms_bundles < k8.base_bundles,
        "bundles {} !< {}",
        k8.slms_bundles,
        k8.base_bundles
    );
    assert!(k8.speedup > 1.1, "{k8:?}");
}

#[test]
fn fig18_coexistence_with_machine_ms() {
    // §9.2: SLMS still helps when the final compiler runs machine MS, and
    // machine MS keeps firing on most SLMS'd loops.
    let f = harness::fig18();
    assert!(geo_mean(&f.rows) > 1.0, "geomean {}", geo_mean(&f.rows));
    let both_ms = f.rows.iter().filter(|r| r.base_ms && r.slms_ms).count();
    assert!(
        both_ms * 2 > f.rows.len(),
        "machine MS should still fire after SLMS on most loops: {both_ms}/{}",
        f.rows.len()
    );
}

#[test]
fn fig18_idamax_anecdote() {
    // §9.2: for idamax2, ICC performed MS only *before* SLMS, and SLMS had
    // a negative effect of roughly 15% — our pipeline reproduces both the
    // suppression and the sign.
    let f = harness::fig18();
    let r = f.rows.iter().find(|r| r.name == "idamax2").unwrap();
    assert!(r.base_ms, "machine MS should fire on original idamax2");
    assert!(!r.slms_ms, "machine MS should not fire after SLMS");
    assert!(r.speedup < 1.0, "idamax2 should regress: {r:?}");
}

#[test]
fn arm_gains_smaller_than_vliw_gains() {
    // §9.3: ARM results are worse than the other architectures — the
    // single-issue core can only hide memory latency, not fill issue slots.
    let (_o0, vliw) = harness::fig14();
    let arm = harness::fig21_22();
    let g_vliw = geo_mean(&vliw.rows);
    let g_arm = geo_mean(&arm.rows);
    assert!(
        g_arm < g_vliw,
        "ARM geomean {g_arm} should be below VLIW geomean {g_vliw}"
    );
    // and not all loops win on ARM
    assert!(arm.rows.iter().any(|r| r.speedup < 1.0));
    // power follows cycles (paper: clear correlation)
    let improving_power = arm.rows.iter().filter(|r| r.power_ratio > 1.0).count();
    let improving_cycles = arm.rows.iter().filter(|r| r.speedup > 1.0).count();
    assert!(
        (improving_power as i64 - improving_cycles as i64).abs() <= 4,
        "power and cycle improvements should correlate: {improving_power} vs {improving_cycles}"
    );
}

#[test]
fn swap_loop_filtered_by_memref_ratio() {
    // §4: the swap loop's ratio 0.857 ≥ 0.85 keeps SLMS off.
    let w = slc_workloads::paper_examples()
        .into_iter()
        .find(|w| w.name == "sec4_swap")
        .unwrap();
    let row = measure_workload(
        &w,
        &itanium2(),
        CompilerKind::Optimizing,
        &SlmsConfig::default(),
    )
    .unwrap();
    assert!(!row.transformed, "{row:?}");
    assert_eq!(row.speedup, 1.0);
}

#[test]
fn sec7_register_pressure_case() {
    // Fig. 11: IMS's modulo-expanded lifetimes exceed the register file and
    // the spill traffic erases its advantage; SLMS + list scheduling stays
    // within the file and wins.
    let report = harness::sec7_cases();
    let line = report
        .lines()
        .find(|l| l.starts_with("fig11-style"))
        .unwrap();
    // parse "… spills=N cycles=A | … spills=0 cycles=B"
    let nums: Vec<i64> = line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    // fields: [11, ims_pressure, ims_spills, ims_cycles, slms_pressure, slms_spills, slms_cycles]
    let (ims_spills, ims_cycles, slms_spills, slms_cycles) = (nums[2], nums[3], nums[5], nums[6]);
    assert!(ims_spills > 0, "IMS must spill: {line}");
    assert_eq!(slms_spills, 0, "SLMS must not spill: {line}");
    assert!(
        slms_cycles < ims_cycles,
        "SLMS should win the fig11 case: {line}"
    );
}

#[test]
fn sec6_order_of_transformations_matters() {
    let report = harness::sec6_interactions();
    let grab = |tag: &str| -> i64 {
        report
            .lines()
            .find(|l| l.starts_with(tag))
            .and_then(|l| l.split_whitespace().rev().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {tag} in:\n{report}"))
    };
    let orig = grab("original:");
    let fuse_slms = grab("fusion→SLMS:");
    assert!(
        fuse_slms < orig,
        "fusion→SLMS should beat the original: {report}"
    );
}

/// The plan-driven §6 study must measure exactly what the hand-applied
/// transforms measure: same per-loop IIs, same transformed programs.
#[test]
fn sec6_plans_match_hand_coded_transforms() {
    use slc_core::slms_program;
    use slc_pipeline::PassManager;
    use slc_transforms::fuse;

    let prog = slc_ast::parse_program(harness::SEC6_SRC).unwrap();
    let cfg = harness::nofilter_cfg();
    let pm = PassManager::new(cfg.clone());
    let (plan_slms, plan_fuse_slms) = harness::sec6_plans();

    let iis = |outcomes: &[slc_core::LoopOutcome]| -> Vec<i64> {
        outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok().map(|r| r.ii))
            .collect()
    };

    // SLMS-per-loop: plan vs direct slms_program
    let (hand, hand_outcomes) = slms_program(&prog, &cfg);
    let (via_plan, sink) = pm.run(&prog, &plan_slms).unwrap();
    assert_eq!(slc_ast::to_source(&hand), slc_ast::to_source(&via_plan));
    let plan_iis: Vec<i64> = sink
        .all_outcomes()
        .filter_map(|o| o.result.as_ref().ok().map(|r| r.ii))
        .collect();
    assert_eq!(iis(&hand_outcomes), plan_iis);
    assert_eq!(plan_iis.len(), 2, "both twin loops pipelined");

    // fusion→SLMS: plan vs hand-applied fuse + slms_program
    let fused_stmt = fuse(&prog.stmts[0], &prog.stmts[1]).expect("same headers");
    let mut fused = prog.clone();
    fused.stmts = vec![fused_stmt];
    let (hand2, hand2_outcomes) = slms_program(&fused, &cfg);
    let (via_plan2, sink2) = pm.run(&prog, &plan_fuse_slms).unwrap();
    assert_eq!(slc_ast::to_source(&hand2), slc_ast::to_source(&via_plan2));
    let plan2_iis: Vec<i64> = sink2
        .all_outcomes()
        .filter_map(|o| o.result.as_ref().ok().map(|r| r.ii))
        .collect();
    assert_eq!(iis(&hand2_outcomes), plan2_iis);
}

#[test]
fn arm_power_and_cycles_improve_for_compute_loops() {
    // ddot-like loops hide load latency on ARM → both metrics improve.
    let w = slc_workloads::linpack()
        .into_iter()
        .find(|w| w.name == "ddot2")
        .unwrap();
    let row = measure_workload(
        &w,
        &arm7tdmi(),
        CompilerKind::Optimizing,
        &SlmsConfig::default(),
    )
    .unwrap();
    assert!(row.speedup > 1.0, "{row:?}");
    assert!(row.power_ratio > 1.0, "{row:?}");
}

#[test]
fn fig16_gap_closure_positive_on_average() {
    let (rows, _) = harness::fig16();
    let avg = rows.iter().map(|r| r.gap_closed).sum::<f64>() / rows.len() as f64;
    assert!(avg > 0.05, "mean gap closed {avg}");
    assert!(
        rows.iter().any(|r| r.gap_closed > 0.25),
        "some loop should close a quarter of the gap"
    );
}
