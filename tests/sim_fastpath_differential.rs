//! Differential testing of the cycle simulator's fast path.
//!
//! `SimFidelity::Fast` (compiled address streams + steady-state
//! fast-forward) must report **bit-identical** results to
//! `SimFidelity::Reference` (the original trip-by-trip walk) on every cell
//! of the full experiment matrix: every workload × machine × compiler ×
//! {original, SLMS} combination. The fast path is a pure wall-clock
//! optimisation; any divergence in cycles, cache stats, op counts or spill
//! traffic is a bug.

use slc_core::slms_program;
use slc_pipeline::{compile, BatchConfig};
use slc_sim::cycle::{simulate_with, FfStats, SimFidelity};
use slc_workloads::Variant;

/// Every cell of the full matrix: Fast == Reference, bit for bit.
#[test]
fn fast_equals_reference_on_full_matrix() {
    let cfg = BatchConfig::full_matrix();
    let programs: Vec<_> = cfg.workloads.iter().map(|w| w.program()).collect();
    let slmsed: Vec<_> = programs
        .iter()
        .map(|p| slms_program(p, &cfg.slms))
        .collect();

    let mut cells = 0usize;
    let mut ff = FfStats::default();
    for (wi, w) in cfg.workloads.iter().enumerate() {
        for m in &cfg.machines {
            for &kind in &cfg.compilers {
                for variant in [Variant::Original, Variant::Slms] {
                    let prog = match variant {
                        Variant::Original => &programs[wi],
                        Variant::Slms => &slmsed[wi].0,
                    };
                    let Ok(c) = compile(prog, m, kind) else {
                        continue;
                    };
                    let fast = simulate_with(&c.compiled, m, SimFidelity::Fast);
                    let reference = simulate_with(&c.compiled, m, SimFidelity::Reference);
                    let ctx = format!("{} / {} / {} / {variant}", w.name, m.name, kind.label());
                    assert_eq!(fast.result, reference.result, "{ctx}");
                    // the reference path must never fast-forward or take the
                    // compiled-stream loop body
                    assert_eq!(reference.ff.fast_loops, 0, "{ctx}");
                    assert_eq!(reference.ff.ff_hits, 0, "{ctx}");
                    assert_eq!(reference.ff.trips_skipped, 0, "{ctx}");
                    // both paths agree on how many trips the program has
                    assert_eq!(fast.ff.trips_total, reference.ff.trips_total, "{ctx}");
                    ff.merge(&fast.ff);
                    cells += 1;
                }
            }
        }
    }
    assert!(cells > 100, "matrix unexpectedly small: {cells} cells");
    // across the whole matrix the optimisation must actually engage
    assert!(
        ff.ff_hits > 0 && ff.trips_skipped > 0,
        "fast-forward never fired over {cells} cells: {ff:?}"
    );
}

/// Steady-state fast-forward fires on the Livermore kernels — the
/// long-trip affine loops the optimisation exists for. Count-based (no
/// wall-clock): suitable for CI.
#[test]
fn fast_forward_fires_on_livermore() {
    let m = slc_sim::presets::itanium2();
    let mut ff = FfStats::default();
    for w in slc_workloads::livermore() {
        let prog = w.program();
        let Ok(c) = compile(&prog, &m, slc_pipeline::CompilerKind::Optimizing) else {
            continue;
        };
        let out = simulate_with(&c.compiled, &m, SimFidelity::Fast);
        ff.merge(&out.ff);
    }
    assert!(
        ff.fast_loops > 0,
        "no loop took the compiled fast path: {ff:?}"
    );
    assert!(ff.ff_hits > 0, "steady-state detection never hit: {ff:?}");
    assert!(
        ff.trips_skipped > 0,
        "fast-forward skipped no trips on Livermore: {ff:?}"
    );
    // the skipped trips must be accounted inside the total, never beyond
    assert!(ff.trips_skipped <= ff.trips_total, "{ff:?}");
}
