//! `slc` — the source-level compiler as a command-line tool.
//!
//! Reads a mini-language program, applies a pass plan (by default: Source
//! Level Modulo Scheduling of every eligible innermost loop), prints the
//! optimized source, and (optionally) verifies equivalence and simulates
//! both versions on one of the built-in machine models.
//!
//! ```text
//! USAGE: slc [OPTIONS] [FILE]          (FILE defaults to stdin)
//!        slc explain [OPTIONS] [FILE]  (print the per-loop decision trace)
//!        slc verify [OPTIONS] [FILE]   (statically verify SLMS schedules)
//!        slc lint [OPTIONS] [FILE]     (run the SLMS-Lxxx lint suite alone)
//!        slc deps [OPTIONS] [FILE]     (dump + re-check dependence verdicts)
//!        slc batch [BATCH OPTIONS]     (run the full experiment matrix)
//!        slc stats [STATS OPTIONS]     (deterministic counter registry + gate)
//!        slc trace-check FILE          (validate a Chrome trace, span log, or
//!                                       flight-recorder dump — autodetected)
//!        slc serve [SERVE OPTIONS]     (persistent compile daemon, NDJSON/TCP)
//!        slc bench-serve [BENCH OPTIONS] (load-test a daemon, BENCH_serve.json)
//!        slc bench-shards [BENCH OPTIONS] (sweep --shards, BENCH_shard.json)
//!
//!   --passes <PLAN>                comma-separated pass plan (default: slms)
//!                                  e.g. `normalize,fuse:0+1,slms`
//!   --scheduler <heuristic|exact>  MI placement scheduler (heuristic). The
//!                                  exact scheduler proves every small
//!                                  loop's II optimal (SAT-backed) and
//!                                  attaches the certificate to the report;
//!                                  with the default plan it swaps in the
//!                                  `exact` pass
//!   --expansion <mve|scalar|off>   how false dependences are removed (mve)
//!   --no-filter                    disable the §4 memory-ref-ratio filter
//!   --paper-style                  print `stmt; || stmt;` kernels
//!   --report                       per-loop transformation report (stderr)
//!   --verify                       check bit-exact equivalence (interpreter)
//!   --simulate <machine>           simulate before/after and print speedup;
//!                                  machine: itanium2|pentium|power4|arm7
//!   --compiler <weak|opt|ms>       final-compiler personality (opt)
//!   --emit-asm                     dump the scheduled innermost-loop bundles
//!                                  of the optimized program (stderr)
//!
//! EXPLAIN OPTIONS: --passes/--expansion/--no-filter as above, plus
//!   --all                          explain every built-in workload suite
//!   --json                         machine-readable output: one compact JSON
//!                                  object per loop (JSONL) with stable field
//!                                  names (workload/plan/pass + the
//!                                  loop-outcome schema); hard failures
//!                                  become a single line with an `error`
//!                                  field
//!
//! VERIFY OPTIONS: --expansion/--no-filter/--scheduler as above (with
//! `--scheduler exact` the translation validator additionally re-checks
//! each loop's II-optimality certificate), plus
//!   --all                          verify every built-in workload
//!   (exit 0 = everything proven/skipped clean; 1 = violations or lint
//!   errors; 2 = bad usage. Runs the translation validator on every
//!   innermost loop SLMS transforms, plus the SLMS-Lxxx lint suite.)
//!
//! LINT OPTIONS:
//!   --all                          lint every built-in workload
//!   --json                         one compact JSON object per lint (JSONL)
//!   (exit 0 = no error-severity lints; 1 = error lints or parse failure;
//!   2 = bad usage)
//!
//! DEPS OPTIONS:
//!   --all                          analyze every built-in workload
//!   --json                         one compact JSON object per dependence
//!                                  pair plus a per-loop stats line (JSONL)
//!   (Per innermost constant-range loop: every same-array access pair's
//!   verdict, deciding layer, distance set and certificate, with each
//!   certificate re-checked on the spot. Exit 0 = all certificates
//!   re-check clean; 1 = any re-check failure or parse failure; 2 = bad
//!   usage.)
//!
//! BATCH OPTIONS (see README.md for the report schema):
//!   --passes <PLAN>                pass plan for the transformed variant
//!   --scheduler <heuristic|exact>  with `exact`, the slms variant runs the
//!                                  exact scheduler, the report gains
//!                                  per-loop optimality gaps, the default
//!                                  --out becomes BENCH_batch_exact.json,
//!                                  and a positive gap fails the run (the
//!                                  CI exact gate)
//!   --threads <N>                  worker threads (default: all cores);
//!                                  with --shards this is *per shard*
//!   --shards <N>                   evaluate the matrix across N worker
//!                                  *processes* (fork/exec of this binary in
//!                                  a hidden `batch-shard` mode, NDJSON
//!                                  pipes, schema `slc-shard-proto-v1`).
//!                                  The canonical report, counters and
//!                                  report file are byte-identical to the
//!                                  in-process engine for every N; the
//!                                  timing sidecar gains a per-shard
//!                                  `shards` section
//!   --out <PATH>                   canonical JSON report (BENCH_batch.json;
//!                                  deterministic — byte-identical across
//!                                  runs and thread counts)
//!   --timing <PATH>                wall-clock sidecar JSON (not written
//!                                  unless requested; not deterministic;
//!                                  includes the per-pass breakdown)
//!   --sim-bench <PATH>             simulator throughput baseline JSON
//!                                  (BENCH_sim.json: simulate wall clock,
//!                                  trips/sec, steady-state fast-forward
//!                                  counters; wall-clock data, not part of
//!                                  the canonical report)
//!   --repeat <N>                   run the matrix N times on one shared
//!                                  cache (N>1 demonstrates memoization)
//!   --verify                       statically verify every slms pass; the
//!                                  per-workload verdicts land in the
//!                                  timing sidecar and a violation fails
//!                                  the batch (the canonical report is
//!                                  byte-identical either way)
//!   --trace <PATH>                 record spans and write a Chrome
//!                                  trace-event JSON (open in Perfetto /
//!                                  chrome://tracing; one timeline row per
//!                                  worker thread). The canonical report is
//!                                  byte-identical with or without tracing.
//!   --events <PATH>                structured span log, one compact JSON
//!                                  object per line (JSONL)
//!
//! STATS OPTIONS — run the full matrix twice on one engine (heuristic then
//! exact plan, static verification on) and print the deterministic counter
//! registry (so both the `slms.*` and `exact.*` families populate):
//!   --threads <N>                  worker threads (counters are invariant)
//!   --json                         print the slc-counters-v1 document
//!                                  instead of the aligned text table
//!   --out <PATH>                   also write the slc-counters-v1 document
//!                                  (regenerates BENCH_counters.json)
//!   --check <PATH>                 gate against a counter baseline: every
//!                                  baseline counter must match within its
//!                                  named tolerance (exit 1 on any failure)
//!   --histograms                   print the deterministic work histograms
//!                                  (log2 buckets: MIs per loop, SAT
//!                                  conflicts/decisions per solve, dep pairs
//!                                  per loop) instead of the counters
//!   --hist-out <PATH>              write the slc-histograms-v1 document
//!                                  (regenerates BENCH_histograms.json)
//!   --hist-check <PATH>            gate against a histogram baseline: every
//!                                  named histogram must match exactly —
//!                                  count, sum and every bucket (exit 1 on
//!                                  any drift)
//!
//! SERVE OPTIONS — run the compiler as a long-lived daemon speaking
//! newline-delimited JSON (schema `slc-serve-proto-v1`; see README.md
//! for the wire protocol). All connections share one `CompileService`
//! artifact cache; responses are byte-identical to one-shot `slc` output.
//! Beyond compile/explain/verify the daemon answers `stats` (counters),
//! `metrics` (Prometheus text exposition of counters + histograms) and
//! `dump` (span-dump + flight-recorder ring) inline; compile-class
//! requests may carry `trace_id`/`parent_span` to stitch daemon spans
//! into the caller's distributed trace:
//!   --addr <HOST:PORT>             TCP listen address (default
//!                                  127.0.0.1:7878; port 0 picks a free one)
//!   --unix <PATH>                  listen on a Unix-domain socket instead
//!   --queue <N>                    admission bound: max in-flight requests
//!                                  before `busy` backpressure (default 64)
//!   --timeout-ms <N>               per-request deadline; a slower request
//!                                  answers `timeout` (default 30000)
//!   --cache-capacity <N>           bound each artifact store to N entries
//!                                  with deterministic LRU eviction
//!                                  (default: unbounded)
//!   --trace <PATH>                 write a Chrome trace-event JSON on
//!                                  shutdown (one track per connection)
//!   (drains gracefully on SIGTERM/SIGINT or a `shutdown` request;
//!   exit 0 = drained clean, 3 = requests abandoned at the deadline)
//!
//! BENCH-SERVE OPTIONS — replay the workload × pass-plan corpus against a
//! daemon at fixed client concurrency and write BENCH_serve.json
//! (`slc-serve-bench-v2`: log2-bucketed latency histogram with
//! p50/p90/p99/p99.9/max and recorded bucket boundaries + cache hit rate;
//! deterministic counts live in a separate section from wall-clock
//! timing). Without --addr the bench spawns an
//! in-process daemon on an ephemeral port and drives the full lifecycle
//! including shutdown drain (what the CI serve-smoke job gates):
//!   --addr <HOST:PORT>             target an already-running daemon
//!   --clients <N>                  concurrent connections (default 8)
//!   --passes <N>                   full corpus replays; pass 2+ must be
//!                                  served from cache (default 2)
//!   --plan <PLAN>                  pass plan (repeatable; default slms and
//!                                  normalize,slms)
//!   --out <PATH>                   report path (default BENCH_serve.json)
//!   --min-hit-rate <F>             final-pass hit-rate gate in [0,1]
//!                                  (default 0.9; exit 1 below it)
//!   --timeout-ms / --queue / --cache-capacity   in-process daemon knobs
//!
//! BENCH-SHARDS OPTIONS — run the full matrix in-process and then at
//! --shards 1/2/4/7 (one thread per shard by default), assert every run's
//! canonical report and counter registry byte-identical, and write
//! BENCH_shard.json (`slc-shard-bench-v1`: deterministic counts in one
//! section, wall-clock/speedup timing strictly in another):
//!   --out <PATH>                   report path (default BENCH_shard.json)
//!   --threads <N>                  in-process map threads per shard (1)
//! ```

use slc::ast::{parse_program, to_paper_style, to_source};
use slc::pipeline::{
    explain_all, explain_all_json, explain_source, explain_source_json, run, CompilerKind, Json,
    PassManager, PassPlan,
};
use slc::sim::astinterp::equivalent;
use slc::sim::presets;
use slc::slms::{render_loop_trace, Expansion, SchedulerKind, SlmsConfig};
use slc::trace::Tracer;
use std::io::Read;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: slc [--passes PLAN] [--scheduler heuristic|exact] [--expansion mve|scalar|off]\n\
         \x20          [--no-filter] [--paper-style] [--report] [--verify] [--simulate MACHINE]\n\
         \x20          [--compiler weak|opt|ms] [FILE]\n\
         \x20      slc explain [--passes PLAN] [--expansion ...] [--no-filter] [--all] [--json] [FILE]\n\
         \x20      slc verify [--expansion ...] [--no-filter] [--scheduler ...] [--all] [FILE]\n\
         \x20      slc lint [--all] [--json] [FILE]\n\
         \x20      slc deps [--all] [--json] [FILE]\n\
         \x20      slc batch [--passes PLAN] [--scheduler ...] [--threads N] [--out PATH] [--timing PATH]\n\
         \x20                [--sim-bench PATH] [--repeat N] [--verify] [--trace PATH] [--events PATH]\n\
         \x20      slc stats [--threads N] [--json] [--out PATH] [--check PATH]\n\
         \x20                [--histograms] [--hist-out PATH] [--hist-check PATH]\n\
         \x20      slc trace-check FILE\n\
         \x20      slc serve [--addr HOST:PORT] [--unix PATH] [--queue N] [--timeout-ms N]\n\
         \x20                [--cache-capacity N] [--trace PATH]\n\
         \x20      slc bench-serve [--addr HOST:PORT] [--clients N] [--passes N] [--plan P]...\n\
         \x20                [--out PATH] [--min-hit-rate F] [--timeout-ms N] [--queue N]\n\
         \x20                [--cache-capacity N]\n\
         \x20      slc bench-shards [--out PATH] [--threads N]"
    );
    exit(2)
}

/// Reject an option value with the accepted alternatives spelled out.
fn die_invalid(flag: &str, got: Option<&str>, valid: &str) -> ! {
    match got {
        Some(v) => eprintln!("slc: invalid value `{v}` for {flag} (valid: {valid})"),
        None => eprintln!("slc: {flag} requires a value (valid: {valid})"),
    }
    exit(2)
}

const MACHINES: &str = "itanium2, pentium, power4, arm7";
const COMPILERS: &str = "weak, opt, ms";
const EXPANSIONS: &str = "mve, scalar, off";
const SCHEDULERS: &str = "heuristic, exact";

fn parse_machine(flag: &str, got: Option<&str>) -> slc::machine::mach::MachineDesc {
    match got {
        Some("itanium2") => presets::itanium2(),
        Some("pentium") => presets::pentium(),
        Some("power4") => presets::power4(),
        Some("arm7") => presets::arm7tdmi(),
        other => die_invalid(flag, other, MACHINES),
    }
}

fn parse_compiler(flag: &str, got: Option<&str>) -> CompilerKind {
    match got {
        Some("weak") => CompilerKind::Weak,
        Some("opt") => CompilerKind::Optimizing,
        Some("ms") => CompilerKind::OptimizingMs,
        other => die_invalid(flag, other, COMPILERS),
    }
}

fn parse_expansion(flag: &str, got: Option<&str>) -> Expansion {
    match got {
        Some("mve") => Expansion::Mve,
        Some("scalar") => Expansion::ScalarExpand,
        Some("off") => Expansion::Off,
        other => die_invalid(flag, other, EXPANSIONS),
    }
}

fn parse_scheduler(flag: &str, got: Option<&str>) -> SchedulerKind {
    match got {
        Some("heuristic") => SchedulerKind::Heuristic,
        Some("exact") => SchedulerKind::Exact,
        other => die_invalid(flag, other, SCHEDULERS),
    }
}

fn parse_plan(flag: &str, got: Option<&str>) -> PassPlan {
    let text = got.unwrap_or_else(|| {
        die_invalid(
            flag,
            None,
            "a comma-separated pass plan, e.g. normalize,fuse:0+1,slms",
        )
    });
    PassPlan::parse(text).unwrap_or_else(|e| {
        eprintln!("slc: invalid value `{text}` for {flag}: {e}");
        exit(2)
    })
}

fn read_input(file: &Option<String>) -> String {
    match file {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("slc: cannot read {path}: {e}");
            exit(1)
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf).unwrap();
            buf
        }
    }
}

fn batch_usage() -> ! {
    eprintln!(
        "usage: slc batch [--passes PLAN] [--scheduler heuristic|exact] [--threads N]\n\
         \x20               [--shards N] [--out PATH] [--timing PATH] [--sim-bench PATH]\n\
         \x20               [--repeat N] [--verify] [--trace PATH] [--events PATH]"
    );
    exit(2)
}

fn batch_main(args: impl Iterator<Item = String>) -> ! {
    use slc::pipeline::{run_sharded, BatchConfig, BatchEngine, ShardOptions};

    let mut cfg = BatchConfig::full_matrix();
    let mut shards: Option<usize> = None;
    let mut out_path: Option<String> = None;
    let mut timing_path: Option<String> = None;
    let mut sim_bench_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut events_path: Option<String> = None;
    let mut repeat = 1usize;
    let mut scheduler = SchedulerKind::Heuristic;
    let mut passes_given = false;

    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                cfg.threads = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| batch_usage()),
                )
            }
            "--passes" => {
                cfg.plan = parse_plan("--passes", args.next().as_deref());
                passes_given = true;
            }
            "--scheduler" => scheduler = parse_scheduler("--scheduler", args.next().as_deref()),
            "--shards" => {
                shards = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| batch_usage()),
                )
            }
            "--out" => out_path = Some(args.next().unwrap_or_else(|| batch_usage())),
            "--timing" => timing_path = Some(args.next().unwrap_or_else(|| batch_usage())),
            "--sim-bench" => sim_bench_path = Some(args.next().unwrap_or_else(|| batch_usage())),
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| batch_usage())),
            "--events" => events_path = Some(args.next().unwrap_or_else(|| batch_usage())),
            "--verify" => cfg.verify = true,
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| batch_usage())
            }
            _ => batch_usage(),
        }
    }

    let exact = scheduler == SchedulerKind::Exact;
    if exact {
        // the slms variant of every cell runs the exact scheduler; a
        // custom plan keeps its shape but schedules exactly
        cfg.slms.scheduler = SchedulerKind::Exact;
        if !passes_given {
            cfg.plan = PassPlan::exact_only();
        }
    }
    // the exact report lives beside the heuristic baseline by default so
    // BENCH_batch.json stays byte-identical to the checked-in document
    let out_path = out_path.unwrap_or_else(|| {
        String::from(if exact {
            "BENCH_batch_exact.json"
        } else {
            "BENCH_batch.json"
        })
    });

    let tracer = if trace_path.is_some() || events_path.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    // with --shards the matrix fans out over worker processes; --threads
    // becomes the per-shard in-process map width, and --repeat re-runs the
    // whole fleet (each repeat is cold — the caches live in the shards)
    let run_once = |tracer: &Tracer| match shards {
        None => None,
        Some(s) => {
            let opts = ShardOptions {
                shards: s,
                threads_per_shard: cfg.threads,
                ..ShardOptions::default()
            };
            Some(run_sharded(&cfg, &opts, tracer).unwrap_or_else(|e| {
                eprintln!("slc batch: sharded run failed: {e}");
                exit(1)
            }))
        }
    };
    let engine = BatchEngine::new();
    let mut report = run_once(&tracer).unwrap_or_else(|| engine.run_traced(&cfg, &tracer));
    for pass in 1..repeat {
        eprintln!("slc batch: pass {}: {}", pass, report.summary());
        report = run_once(&tracer).unwrap_or_else(|| engine.run_traced(&cfg, &tracer));
    }
    eprintln!("slc batch: {}", report.summary());

    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("slc batch: cannot write {out_path}: {e}");
        exit(1)
    }
    eprintln!("slc batch: wrote {out_path}");
    if let Some(tp) = timing_path {
        if let Err(e) = std::fs::write(&tp, report.timing_json()) {
            eprintln!("slc batch: cannot write {tp}: {e}");
            exit(1)
        }
        eprintln!("slc batch: wrote {tp}");
    }
    if let Some(sp) = sim_bench_path {
        if let Err(e) = std::fs::write(&sp, report.sim_bench_json()) {
            eprintln!("slc batch: cannot write {sp}: {e}");
            exit(1)
        }
        eprintln!("slc batch: wrote {sp}");
    }
    if let Some(tp) = trace_path {
        let doc = tracer.to_chrome_json().expect("tracer enabled for --trace");
        if let Err(e) = std::fs::write(&tp, doc) {
            eprintln!("slc batch: cannot write {tp}: {e}");
            exit(1)
        }
        eprintln!(
            "slc batch: wrote {tp} ({} spans on {} track(s))",
            tracer.event_count(),
            tracer.tracks().len()
        );
    }
    if let Some(ep) = events_path {
        let doc = tracer.to_jsonl().expect("tracer enabled for --events");
        if let Err(e) = std::fs::write(&ep, doc) {
            eprintln!("slc batch: cannot write {ep}: {e}");
            exit(1)
        }
        eprintln!("slc batch: wrote {ep}");
    }
    if cfg.verify {
        let violations = report.verify_violations();
        let (verified, obligations): (usize, usize) = report
            .timing
            .verify
            .iter()
            .map(|v| (v.verified, v.obligations))
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d));
        if violations == 0 {
            eprintln!(
                "slc batch: verify gate: {verified} loops proven \
                 ({obligations} obligations), 0 violations"
            );
        } else {
            eprintln!("slc batch: verify gate: {violations} VIOLATION(S) — see timing sidecar");
            exit(1)
        }
    }
    let gaps = report.optimality_gaps();
    if !gaps.is_empty() {
        let mut positive = 0usize;
        let mut certified = 0usize;
        for (w, gs) in &gaps {
            eprintln!("slc batch: optimality gaps: {w}: {gs:?}");
            certified += gs.len();
            for (i, g) in gs.iter().enumerate() {
                if *g > 0 {
                    positive += 1;
                    eprintln!(
                        "slc batch: POSITIVE GAP: {w} loop {i}: \
                         heuristic II exceeds the proven optimum by {g}"
                    );
                }
            }
        }
        if positive == 0 {
            eprintln!("slc batch: exact gate: {certified} loop(s) certified, 0 positive gaps");
        } else {
            eprintln!("slc batch: exact gate: {positive} loop(s) with a positive optimality gap");
            exit(1)
        }
    } else if exact {
        eprintln!("slc batch: exact gate: no loop produced a certificate");
        exit(1)
    }
    exit(if report.failed() == 0 { 0 } else { 1 })
}

fn stats_usage() -> ! {
    eprintln!(
        "usage: slc stats [--threads N] [--json] [--out PATH] [--check PATH]\n\
         \x20               [--histograms] [--hist-out PATH] [--hist-check PATH]"
    );
    exit(2)
}

/// `slc stats`: run the full matrix twice on one engine — the heuristic
/// plan and then the exact plan, static verification on both times — and
/// render the cumulative deterministic counter registry (the `slms.*`,
/// `verify.*` and `exact.*` families all populate). `--check` turns it
/// into the CI counter gate; `--histograms`/`--hist-out`/`--hist-check`
/// do the same for the deterministic work histograms.
fn stats_main(args: impl Iterator<Item = String>) -> ! {
    use slc::pipeline::{BatchConfig, BatchEngine};
    use slc::trace::{check_counters, check_histograms, CounterBaseline, HistogramBaseline};

    let mut threads: Option<usize> = None;
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut histograms = false;
    let mut hist_out_path: Option<String> = None;
    let mut hist_check_path: Option<String> = None;

    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| stats_usage()),
                )
            }
            "--json" => json = true,
            "--out" => out_path = Some(args.next().unwrap_or_else(|| stats_usage())),
            "--check" => check_path = Some(args.next().unwrap_or_else(|| stats_usage())),
            "--histograms" => histograms = true,
            "--hist-out" => hist_out_path = Some(args.next().unwrap_or_else(|| stats_usage())),
            "--hist-check" => hist_check_path = Some(args.next().unwrap_or_else(|| stats_usage())),
            _ => stats_usage(),
        }
    }

    let mut cfg = BatchConfig::full_matrix();
    cfg.threads = threads;
    cfg.verify = true;
    let engine = BatchEngine::new();
    let heuristic = engine.run(&cfg);
    let mut exact_cfg = cfg.clone();
    exact_cfg.plan = PassPlan::exact_only();
    exact_cfg.slms.scheduler = SchedulerKind::Exact;
    let report = engine.run(&exact_cfg);
    if heuristic.failed() > 0 || report.failed() > 0 {
        eprintln!(
            "slc stats: {} cell(s) failed — counters are not comparable",
            heuristic.failed() + report.failed()
        );
        exit(1)
    }
    if histograms {
        if json {
            print!("{}", report.histograms_json());
        } else {
            print!("{}", report.histograms.render_text());
        }
    } else if json {
        print!("{}", report.counters_json());
    } else {
        print!("{}", report.counters.render_text());
    }
    if let Some(p) = &out_path {
        if let Err(e) = std::fs::write(p, report.counters_json()) {
            eprintln!("slc stats: cannot write {p}: {e}");
            exit(1)
        }
        eprintln!("slc stats: wrote {p}");
    }
    if let Some(p) = &check_path {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("slc stats: cannot read {p}: {e}");
            exit(1)
        });
        let base = CounterBaseline::parse(&text).unwrap_or_else(|e| {
            eprintln!("slc stats: {p} is not a counter baseline: {e}");
            exit(1)
        });
        let failures = check_counters(&report.counters, &base);
        if failures.is_empty() {
            eprintln!(
                "slc stats: counter gate OK ({} baseline counter(s) within tolerance)",
                base.counters.len()
            );
        } else {
            for f in &failures {
                eprintln!("slc stats: GATE FAILURE: {f}");
            }
            eprintln!(
                "slc stats: {} of {} baseline counter(s) out of tolerance \
                 (regenerate with `slc stats --out {p}` if the drift is intended)",
                failures.len(),
                base.counters.len()
            );
            exit(1)
        }
    }
    if let Some(p) = &hist_out_path {
        if let Err(e) = std::fs::write(p, report.histograms_json()) {
            eprintln!("slc stats: cannot write {p}: {e}");
            exit(1)
        }
        eprintln!("slc stats: wrote {p}");
    }
    if let Some(p) = &hist_check_path {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("slc stats: cannot read {p}: {e}");
            exit(1)
        });
        let base = HistogramBaseline::parse(&text).unwrap_or_else(|e| {
            eprintln!("slc stats: {p} is not a histogram baseline: {e}");
            exit(1)
        });
        let failures = check_histograms(&report.histograms, &base);
        if failures.is_empty() {
            eprintln!(
                "slc stats: histogram gate OK ({} baseline histogram(s) exact)",
                base.histograms.len()
            );
        } else {
            for f in &failures {
                eprintln!("slc stats: GATE FAILURE: {f}");
            }
            eprintln!(
                "slc stats: {} of {} baseline histogram(s) drifted \
                 (regenerate with `slc stats --hist-out {p}` if the drift is intended)",
                failures.len(),
                base.histograms.len()
            );
            exit(1)
        }
    }
    exit(0)
}

/// `slc trace-check FILE`: schema-validate an observability document. The
/// format is autodetected per file: a flight-recorder dump (header line
/// carries `slc-flight-v1`), a structured span log (`--events` JSONL), or
/// a Chrome trace-event JSON (the Perfetto smoke check CI runs against
/// `slc batch --trace` output). Exit 0 = every file valid, 1 = any
/// invalid, 2 = bad usage — the same contract for all three formats.
fn trace_check_main(args: impl Iterator<Item = String>) -> ! {
    use slc::trace::{validate_chrome_trace, validate_event_log, validate_flight_dump};
    let paths: Vec<String> = args.collect();
    if paths.is_empty() || paths.iter().any(|p| p.starts_with('-')) {
        eprintln!("usage: slc trace-check FILE...");
        exit(2)
    }
    let mut bad = false;
    for p in &paths {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("slc trace-check: cannot read {p}: {e}");
            exit(1)
        });
        let first = text.lines().next().unwrap_or("");
        let verdict = if first.contains("slc-flight-v1") {
            validate_flight_dump(&text).map(|s| {
                format!(
                    "flight dump — {} event(s) of {} recorded, kinds: {}",
                    s.events,
                    s.recorded,
                    s.kinds.join(",")
                )
            })
        } else if Json::parse(text.trim()).is_ok_and(|d| d.get("traceEvents").is_some()) {
            validate_chrome_trace(&text).map(|s| {
                format!(
                    "Chrome trace — {} span(s) on {} named track(s), {} distinct span name(s)",
                    s.spans,
                    s.tracks.len(),
                    s.span_names.len()
                )
            })
        } else {
            validate_event_log(&text).map(|s| {
                format!(
                    "event log — {} event(s) on {} track(s), {} distinct span name(s)",
                    s.events,
                    s.tracks,
                    s.span_names.len()
                )
            })
        };
        match verdict {
            Ok(msg) => eprintln!("slc trace-check: {p}: OK — {msg}"),
            Err(e) => {
                eprintln!("slc trace-check: {p}: INVALID — {e}");
                bad = true;
            }
        }
    }
    exit(if bad { 1 } else { 0 })
}

fn verify_usage() -> ! {
    eprintln!(
        "usage: slc verify [--expansion mve|scalar|off] [--no-filter]\n\
         \x20                [--scheduler heuristic|exact] [--all] [FILE]"
    );
    exit(2)
}

/// Lint + statically verify one program; returns true when anything failed.
/// The rendering is shared with the `slc serve` daemon's `verify` request
/// (`slc::pipeline::verify_report`), so both stay byte-identical.
fn verify_one(prog: &slc::ast::Program, cfg: &SlmsConfig) -> bool {
    let (clean, text) = slc::pipeline::verify_report(prog, cfg);
    print!("{text}");
    !clean
}

fn verify_main(args: impl Iterator<Item = String>) -> ! {
    let mut cfg = SlmsConfig::default();
    let mut all = false;
    let mut file: Option<String> = None;

    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--no-filter" => cfg.apply_filter = false,
            "--expansion" => cfg.expansion = parse_expansion("--expansion", args.next().as_deref()),
            "--scheduler" => cfg.scheduler = parse_scheduler("--scheduler", args.next().as_deref()),
            "--all" => all = true,
            "--help" | "-h" => verify_usage(),
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => verify_usage(),
        }
    }

    let mut bad = false;
    if all {
        for w in slc::workloads::all() {
            println!("═══ {} [{}] ═══", w.name, w.suite);
            bad |= verify_one(&w.program(), &cfg);
        }
    } else {
        let src = read_input(&file);
        let prog = match parse_program(&src) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("slc verify: {e}");
                exit(1)
            }
        };
        bad = verify_one(&prog, &cfg);
    }
    exit(if bad { 1 } else { 0 })
}

fn lint_usage() -> ! {
    eprintln!("usage: slc lint [--all] [--json] [FILE]");
    exit(2)
}

/// `slc lint`: run the SLMS-Lxxx source lint suite standalone, without the
/// translation validator. Exit 0 = no error-severity findings, 1 = at least
/// one error (or parse failure), 2 = bad usage — the same contract as
/// `slc verify`.
fn lint_main(args: impl Iterator<Item = String>) -> ! {
    use slc::verify::{lint_program, LintSeverity};

    let mut all = false;
    let mut json = false;
    let mut file: Option<String> = None;
    for a in args {
        match a.as_str() {
            "--all" => all = true,
            "--json" => json = true,
            "--help" | "-h" => lint_usage(),
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => lint_usage(),
        }
    }

    let mut bad = false;
    let mut lint_one = |name: Option<&str>, prog: &slc::ast::Program| {
        let lints = lint_program(prog);
        bad |= lints.iter().any(|l| l.severity == LintSeverity::Error);
        if json {
            for l in &lints {
                let mut o = Json::obj();
                if let Some(n) = name {
                    o = o.field("workload", n);
                }
                println!(
                    "{}",
                    o.field("code", l.code)
                        .field("severity", l.severity.to_string())
                        .field("message", l.message.as_str())
                        .field("excerpt", l.excerpt.as_str())
                );
            }
        } else {
            if let Some(n) = name {
                println!("═══ {n} ═══");
            }
            if lints.is_empty() {
                println!("  clean");
            }
            for l in &lints {
                println!("  {l}");
            }
        }
    };

    if all {
        for w in slc::workloads::all() {
            lint_one(Some(w.name), &w.program());
        }
    } else {
        let src = read_input(&file);
        match parse_program(&src) {
            Ok(p) => lint_one(None, &p),
            Err(e) => {
                eprintln!("slc lint: {e}");
                exit(1)
            }
        }
    }
    exit(if bad { 1 } else { 0 })
}

fn deps_usage() -> ! {
    eprintln!("usage: slc deps [--all] [--json] [FILE]");
    exit(2)
}

/// Render one dependence certificate as JSON.
fn dep_cert_json(cert: &slc::analysis::DepCertificate) -> Json {
    use slc::analysis::DepCertificate;
    match cert {
        DepCertificate::Dependent { t1, t2 } => Json::obj()
            .field("kind", "dependent")
            .field("t1", *t1)
            .field("t2", *t2),
        DepCertificate::Independent { system } => Json::obj()
            .field("kind", "independent")
            .field("bound", system.bound)
            .field(
                "dims",
                Json::Arr(
                    system
                        .dims
                        .iter()
                        .map(|d| {
                            Json::obj()
                                .field("dim", d.dim as u64)
                                .field("a", d.a)
                                .field("b", d.b)
                                .field("c", d.c)
                        })
                        .collect(),
                ),
            ),
    }
}

/// `slc deps`: dump the exact dependence engine's per-pair verdicts (with
/// their certificates) for every innermost constant-range loop, re-checking
/// each certificate on the spot. Exit 0 = every certificate re-checks
/// clean, 1 = a certificate failed to re-check (or the input failed to
/// parse), 2 = bad usage.
fn deps_main(args: impl Iterator<Item = String>) -> ! {
    use slc::analysis::{
        build_ddg_ranged, check_dep_certificate, partition_mis, DepStats, DepVerdict, LoopRange,
    };
    use slc::ast::{ForLoop, LoopId, Stmt};

    let mut all = false;
    let mut json = false;
    let mut file: Option<String> = None;
    for a in args {
        match a.as_str() {
            "--all" => all = true,
            "--json" => json = true,
            "--help" | "-h" => deps_usage(),
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => deps_usage(),
        }
    }

    fn innermost<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a ForLoop>) {
        for s in stmts {
            match s {
                Stmt::For(f) => {
                    if f.body.iter().any(Stmt::contains_loop) {
                        innermost(&f.body, out);
                    } else {
                        out.push(f);
                    }
                }
                Stmt::While { body, .. } => innermost(body, out),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    innermost(then_branch, out);
                    innermost(else_branch, out);
                }
                Stmt::Block(b) | Stmt::Par(b) => innermost(b, out),
                _ => {}
            }
        }
    }

    let mut bad = false;
    let mut deps_one = |name: Option<&str>, prog: &slc::ast::Program| {
        let mut loops = Vec::new();
        innermost(&prog.stmts, &mut loops);
        for (idx, f) in loops.into_iter().enumerate() {
            let id = LoopId::of(f, idx);
            let skip = |why: &str, json: bool| {
                if json {
                    let mut o = Json::obj();
                    if let Some(n) = name {
                        o = o.field("workload", n);
                    }
                    println!("{}", o.field("loop", id.to_string()).field("skipped", why));
                } else {
                    println!("{id}: skipped — {why}");
                }
            };
            let Some(range) = LoopRange::of_loop(f) else {
                skip("loop range is not a compile-time constant", json);
                continue;
            };
            let mis = match partition_mis(&f.body) {
                Ok(m) => m,
                Err(e) => {
                    skip(&format!("body is not MI-partitionable: {e}"), json);
                    continue;
                }
            };
            let mut stats = DepStats::default();
            let rd = build_ddg_ranged(&mis, &f.var, &range, &mut stats);
            if !json {
                println!(
                    "{id}: {} same-array pair(s), range init {} step {} trips {}",
                    rd.pairs.len(),
                    range.init,
                    range.step,
                    range.trips
                );
            }
            for p in &rd.pairs {
                let a = &rd.ddg.accesses[p.from_mi].arrays[p.from_ord];
                let b = &rd.ddg.accesses[p.to_mi].arrays[p.to_ord];
                let recheck = p
                    .certificate
                    .as_ref()
                    .map(|cert| check_dep_certificate(a, b, &f.var, &range, cert));
                let ok = match &recheck {
                    None | Some(Ok(())) => true,
                    Some(Err(_)) => {
                        bad = true;
                        false
                    }
                };
                if json {
                    let mut o = Json::obj();
                    if let Some(n) = name {
                        o = o.field("workload", n);
                    }
                    o = o
                        .field("loop", id.to_string())
                        .field("array", p.array.as_str())
                        .field("from_mi", p.from_mi as u64)
                        .field("from_ord", p.from_ord as u64)
                        .field("to_mi", p.to_mi as u64)
                        .field("to_ord", p.to_ord as u64)
                        .field("verdict", p.verdict.name());
                    if let Some(l) = p.layer {
                        o = o.field("layer", l.name());
                    }
                    if let DepVerdict::Distances(ds) = &p.verdict {
                        o = o.field(
                            "distances",
                            Json::Arr(ds.iter().map(|&d| Json::Int(d)).collect()),
                        );
                    }
                    if let Some(cert) = &p.certificate {
                        o = o.field("certificate", dep_cert_json(cert));
                    }
                    o = match &recheck {
                        None => o.field("recheck", "none"),
                        Some(Ok(())) => o.field("recheck", "ok"),
                        Some(Err(e)) => o.field("recheck", format!("failed: {e}")),
                    };
                    println!("{o}");
                } else {
                    let detail = match &p.verdict {
                        DepVerdict::Distances(ds) => format!("distances {ds:?}"),
                        other => other.name().to_string(),
                    };
                    let layer = p.layer.map(|l| l.name()).unwrap_or("-");
                    let status = match &recheck {
                        None => "no certificate".to_string(),
                        Some(Ok(())) => "certificate re-checked OK".to_string(),
                        Some(Err(e)) => format!("CERTIFICATE FAILED: {e}"),
                    };
                    println!(
                        "  `{}` MI{}#{} vs MI{}#{}: {detail} [layer {layer}] — {status}",
                        p.array, p.from_mi, p.from_ord, p.to_mi, p.to_ord
                    );
                }
                let _ = ok;
            }
            if json {
                let mut o = Json::obj();
                if let Some(n) = name {
                    o = o.field("workload", n);
                }
                println!(
                    "{}",
                    o.field("loop", id.to_string())
                        .field("pairs_decided", stats.pairs_decided)
                        .field("gcd_hits", stats.gcd_hits)
                        .field("banerjee_hits", stats.banerjee_hits)
                        .field("sat_decided", stats.sat_decided)
                        .field("widened_to_any", stats.widened_to_any)
                        .field("certs_checked", stats.certs_checked)
                );
            } else {
                println!(
                    "  deps: {} decided (gcd {}, banerjee {}, sat {}), {} widened, \
                     {} certs self-checked",
                    stats.pairs_decided,
                    stats.gcd_hits,
                    stats.banerjee_hits,
                    stats.sat_decided,
                    stats.widened_to_any,
                    stats.certs_checked
                );
            }
        }
    };

    if all {
        for w in slc::workloads::all() {
            if !json {
                println!("═══ {} [{}] ═══", w.name, w.suite);
            }
            deps_one(Some(w.name), &w.program());
        }
    } else {
        let src = read_input(&file);
        match parse_program(&src) {
            Ok(p) => deps_one(None, &p),
            Err(e) => {
                eprintln!("slc deps: {e}");
                exit(1)
            }
        }
    }
    exit(if bad { 1 } else { 0 })
}

fn explain_main(args: impl Iterator<Item = String>) -> ! {
    let mut cfg = SlmsConfig::default();
    let mut plan = PassPlan::slms_only();
    let mut all = false;
    let mut json = false;
    let mut file: Option<String> = None;

    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--passes" => plan = parse_plan("--passes", args.next().as_deref()),
            "--no-filter" => cfg.apply_filter = false,
            "--expansion" => cfg.expansion = parse_expansion("--expansion", args.next().as_deref()),
            "--all" => all = true,
            "--json" => json = true,
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => usage(),
        }
    }

    if all {
        if json {
            print!("{}", explain_all_json(&plan, &cfg));
        } else {
            print!("{}", explain_all(&plan, &cfg));
        }
        exit(0)
    }
    let src = read_input(&file);
    if json {
        let text = explain_source_json(&src, &plan, &cfg);
        print!("{text}");
        // hard failures render as a single loop-less line whose top-level
        // `error` field is set (per-loop `error` fields always ride along
        // with a `pass` field and are not CLI failures)
        let hard_failure = text
            .lines()
            .next()
            .and_then(|l| Json::parse(l).ok())
            .is_some_and(|o| o.get("pass").is_none() && o.get("error").is_some());
        exit(if hard_failure { 1 } else { 0 })
    }
    let text = explain_source(&src, &plan, &cfg);
    print!("{text}");
    exit(
        if text.contains("parse error:") || text.contains("plan failed:") {
            1
        } else {
            0
        },
    )
}

fn serve_usage() -> ! {
    eprintln!(
        "usage: slc serve [--addr HOST:PORT] [--unix PATH] [--queue N] [--timeout-ms N]\n\
         \x20               [--cache-capacity N] [--trace PATH]"
    );
    exit(2)
}

/// `slc serve`: the persistent compile daemon. Blocks until a `shutdown`
/// request or SIGTERM/SIGINT, then drains in-flight work and exits 0 on a
/// clean drain (3 when requests had to be abandoned at the deadline).
fn serve_main(args: impl Iterator<Item = String>) -> ! {
    use slc::serve::{Endpoint, ServeConfig, Server};
    use std::time::Duration;

    let mut addr = String::from("127.0.0.1:7878");
    let mut unix_path: Option<String> = None;
    let mut cfg = ServeConfig::default();
    let mut trace_path: Option<String> = None;

    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| serve_usage()),
            "--unix" => unix_path = Some(args.next().unwrap_or_else(|| serve_usage())),
            "--queue" => {
                cfg.queue = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| serve_usage())
            }
            "--timeout-ms" => {
                cfg.timeout = Duration::from_millis(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| serve_usage()),
                )
            }
            "--cache-capacity" => {
                cfg.capacity = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| serve_usage()),
                )
            }
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| serve_usage())),
            _ => serve_usage(),
        }
    }

    let endpoint = match unix_path {
        #[cfg(unix)]
        Some(p) => Endpoint::Unix(std::path::PathBuf::from(p)),
        #[cfg(not(unix))]
        Some(_) => {
            eprintln!("slc serve: --unix is only available on Unix platforms");
            exit(2)
        }
        None => Endpoint::Tcp(addr.clone()),
    };
    let tracer = if trace_path.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let handle = Server::spawn(&endpoint, cfg, tracer.clone()).unwrap_or_else(|e| {
        eprintln!("slc serve: cannot listen on {endpoint:?}: {e}");
        exit(1)
    });
    match handle.local_addr() {
        Some(a) => eprintln!("slc serve: listening on {a}"),
        None => eprintln!("slc serve: listening on {endpoint:?}"),
    }
    let drain = handle.wait();
    if let Some(tp) = trace_path {
        let doc = tracer.to_chrome_json().expect("tracer enabled for --trace");
        if let Err(e) = std::fs::write(&tp, doc) {
            eprintln!("slc serve: cannot write {tp}: {e}");
            exit(1)
        }
        eprintln!(
            "slc serve: wrote {tp} ({} spans on {} track(s))",
            tracer.event_count(),
            tracer.tracks().len()
        );
    }
    if drain.drained_clean {
        eprintln!(
            "slc serve: drained clean after {} connection(s)",
            drain.connections
        );
        exit(0)
    }
    eprintln!(
        "slc serve: drain deadline expired with {} request(s) still running",
        drain.abandoned
    );
    exit(3)
}

fn bench_serve_usage() -> ! {
    eprintln!(
        "usage: slc bench-serve [--addr HOST:PORT] [--clients N] [--passes N] [--plan P]...\n\
         \x20                     [--out PATH] [--min-hit-rate F] [--timeout-ms N] [--queue N]\n\
         \x20                     [--cache-capacity N]"
    );
    exit(2)
}

/// `slc bench-serve`: replay the workload × plan corpus against a daemon
/// and write `BENCH_serve.json`. Exit 1 when the count-based gate fails
/// (any error response, final-pass hit rate below the floor, dirty drain).
fn bench_serve_main(args: impl Iterator<Item = String>) -> ! {
    use slc::serve::{run_bench, BenchConfig};
    use std::time::Duration;

    let mut cfg = BenchConfig::default();
    let mut out_path = String::from("BENCH_serve.json");
    let mut min_hit_rate = 0.9f64;
    let mut plans_given = false;

    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => cfg.addr = Some(args.next().unwrap_or_else(|| bench_serve_usage())),
            "--clients" => {
                cfg.clients = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| bench_serve_usage())
            }
            "--passes" => {
                cfg.passes = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| bench_serve_usage())
            }
            "--plan" => {
                let p = args.next().unwrap_or_else(|| bench_serve_usage());
                // validate locally so a typo is a usage error here, not a
                // stream of daemon-side `usage` responses
                PassPlan::parse(&p).unwrap_or_else(|e| {
                    eprintln!("slc bench-serve: invalid value `{p}` for --plan: {e}");
                    exit(2)
                });
                if !plans_given {
                    cfg.plans.clear();
                    plans_given = true;
                }
                cfg.plans.push(p);
            }
            "--out" => out_path = args.next().unwrap_or_else(|| bench_serve_usage()),
            "--min-hit-rate" => {
                min_hit_rate = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&f| (0.0..=1.0).contains(&f))
                    .unwrap_or_else(|| bench_serve_usage())
            }
            "--timeout-ms" => {
                cfg.timeout = Duration::from_millis(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| bench_serve_usage()),
                )
            }
            "--queue" => {
                cfg.queue = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| bench_serve_usage())
            }
            "--cache-capacity" => {
                cfg.capacity = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| bench_serve_usage()),
                )
            }
            _ => bench_serve_usage(),
        }
    }

    let report = run_bench(&cfg).unwrap_or_else(|e| {
        eprintln!("slc bench-serve: {e}");
        exit(1)
    });
    eprintln!("slc bench-serve: {}", report.summary());
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("slc bench-serve: cannot write {out_path}: {e}");
        exit(1)
    }
    eprintln!("slc bench-serve: wrote {out_path}");
    match report.gate(min_hit_rate) {
        Ok(()) => {
            eprintln!("slc bench-serve: gate OK (0 errors, hit rate ≥ {min_hit_rate:.3})");
            exit(0)
        }
        Err(e) => {
            eprintln!("slc bench-serve: GATE FAILURE: {e}");
            exit(1)
        }
    }
}

fn bench_shards_usage() -> ! {
    eprintln!("usage: slc bench-shards [--out PATH] [--threads N]");
    exit(2)
}

fn bench_shards_main(mut args: impl Iterator<Item = String>) -> ! {
    use slc::pipeline::{
        run_sharded, BatchConfig, BatchEngine, Json, ShardOptions, SHARD_BENCH_SCHEMA,
    };
    use std::time::Instant;

    let mut out_path = "BENCH_shard.json".to_string();
    let mut threads = 1usize;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| bench_shards_usage()),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| bench_shards_usage())
            }
            _ => bench_shards_usage(),
        }
    }

    let mut cfg = BatchConfig::full_matrix();
    cfg.threads = Some(threads);
    let tracer = Tracer::disabled();

    // in-process reference: the canonical report and counters every sharded
    // run must reproduce byte-for-byte
    let t0 = Instant::now();
    let reference = BatchEngine::new().run(&cfg);
    let in_process_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let canon = reference.to_json();
    let counters = reference.counters_json();
    eprintln!("slc bench-shards: in-process: {}", reference.summary());

    const SWEEP: [usize; 4] = [1, 2, 4, 7];
    let mut runs: Vec<Json> = Vec::new();
    let mut wall_by_shards: Vec<(usize, f64, f64)> = Vec::new();
    let mut all_identical = true;
    let mut failed_cells = reference.failed();
    for shards in SWEEP {
        let opts = ShardOptions {
            shards,
            threads_per_shard: Some(threads),
            ..ShardOptions::default()
        };
        let t0 = Instant::now();
        let rep = run_sharded(&cfg, &opts, &tracer).unwrap_or_else(|e| {
            eprintln!("slc bench-shards: --shards {shards} failed: {e}");
            exit(1)
        });
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let same = rep.to_json() == canon && rep.counters_json() == counters;
        all_identical &= same;
        failed_cells += rep.failed();
        // simulate+compile speedup is judged on the busiest shard's
        // critical path: the shard's CPU time apportioned to the
        // compile+simulate stages by their share of its miss wall clock.
        // CPU time (not wall) keeps the metric meaningful when shards
        // outnumber cores — it is exactly the wall clock those stages cost
        // once every shard owns a core. Falls back to raw stage wall when
        // the platform offers no CPU accounting.
        let sim_compile_ms = rep
            .timing
            .shards
            .iter()
            .map(|s| {
                let sc = (s.stage.compile + s.stage.sim) as f64 / 1e6;
                let total =
                    (s.stage.parse + s.stage.slms + s.stage.lower + s.stage.compile + s.stage.sim)
                        as f64
                        / 1e6;
                if s.cpu_ms > 0.0 && total > 0.0 {
                    s.cpu_ms * (sc / total)
                } else {
                    sc
                }
            })
            .fold(0.0_f64, f64::max);
        wall_by_shards.push((shards, wall_ms, sim_compile_ms));
        let shard_stats: Vec<Json> = rep
            .timing
            .shards
            .iter()
            .map(|s| {
                Json::obj()
                    .field("shard", s.shard as u64)
                    .field("cells", s.cells)
                    .field("chunks", s.chunks)
                    .field("steals_donated", s.steals_donated)
                    .field("steals_received", s.steals_received)
                    .field("chunk_ms_p50", s.chunk_ms_p50)
                    .field("chunk_ms_p99", s.chunk_ms_p99)
                    .field("cpu_ms", s.cpu_ms)
            })
            .collect();
        runs.push(
            Json::obj()
                .field("shards", shards as u64)
                .field("byte_identical", same)
                .field("wall_ms", wall_ms)
                .field("simulate_compile_ms", sim_compile_ms)
                .field("shard_stats", Json::Arr(shard_stats)),
        );
        eprintln!(
            "slc bench-shards: --shards {shards}: {:.1} ms wall, {:.1} ms simulate+compile \
             (critical path), byte-identical: {same}",
            wall_ms, sim_compile_ms
        );
    }

    let find = |n: usize| wall_by_shards.iter().find(|r| r.0 == n).unwrap();
    let (_, wall1, sc1) = *find(1);
    let (_, wall4, sc4) = *find(4);
    let doc = Json::obj()
        .field("schema", SHARD_BENCH_SCHEMA)
        .field("threads_per_shard", threads as u64)
        .field(
            // deterministic facts only: cell totals and the byte-identity
            // verdict — never wall-clock
            "counts",
            Json::obj()
                .field("cells_total", reference.cells.len() as u64)
                .field("cells_completed", reference.completed() as u64)
                .field("cells_failed", reference.failed() as u64)
                .field("byte_identical", all_identical)
                .field(
                    "shard_counts",
                    Json::Arr(SWEEP.iter().map(|&s| Json::Int(s as i64)).collect()),
                ),
        )
        .field(
            // scheduling-dependent wall clock, quarantined from the counts
            "timing",
            Json::obj()
                .field("in_process_wall_ms", in_process_wall_ms)
                .field("runs", Json::Arr(runs))
                .field("wall_speedup_4x", wall1 / wall4)
                .field("simulate_compile_speedup_4x", sc1 / sc4),
        );
    if let Err(e) = std::fs::write(&out_path, doc.to_pretty()) {
        eprintln!("slc bench-shards: cannot write {out_path}: {e}");
        exit(1)
    }
    eprintln!(
        "slc bench-shards: wrote {out_path} (wall ×{:.2}, simulate+compile ×{:.2} at 4 shards)",
        wall1 / wall4,
        sc1 / sc4
    );
    if !all_identical || failed_cells > 0 {
        eprintln!("slc bench-shards: GATE FAILURE: non-identical report or failed cells");
        exit(1)
    }
    exit(0)
}

fn main() {
    let mut cfg = SlmsConfig::default();
    let mut plan = PassPlan::slms_only();
    let mut paper_style = false;
    let mut report = false;
    let mut verify = false;
    let mut simulate = None;
    let mut emit_asm = false;
    let mut compiler = CompilerKind::Optimizing;
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(1).peekable();
    match args.peek().map(String::as_str) {
        Some("batch") => {
            args.next();
            batch_main(args);
        }
        // hidden: worker mode spawned by `slc batch --shards N` (and the
        // fault-injection tests); speaks slc-shard-proto-v1 on stdio
        Some("batch-shard") => {
            args.next();
            let mut fail_after = None;
            let mut garbage_after = None;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--fail-after" => fail_after = args.next().and_then(|s| s.parse().ok()),
                    "--garbage-after" => garbage_after = args.next().and_then(|s| s.parse().ok()),
                    _ => {}
                }
            }
            exit(slc::pipeline::shard_worker(fail_after, garbage_after));
        }
        Some("bench-shards") => {
            args.next();
            bench_shards_main(args);
        }
        Some("explain") => {
            args.next();
            explain_main(args);
        }
        Some("verify") => {
            args.next();
            verify_main(args);
        }
        Some("lint") => {
            args.next();
            lint_main(args);
        }
        Some("deps") => {
            args.next();
            deps_main(args);
        }
        Some("stats") => {
            args.next();
            stats_main(args);
        }
        Some("trace-check") => {
            args.next();
            trace_check_main(args);
        }
        Some("serve") => {
            args.next();
            serve_main(args);
        }
        Some("bench-serve") => {
            args.next();
            bench_serve_main(args);
        }
        _ => {}
    }
    let mut passes_given = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--passes" => {
                plan = parse_plan("--passes", args.next().as_deref());
                passes_given = true;
            }
            "--scheduler" => cfg.scheduler = parse_scheduler("--scheduler", args.next().as_deref()),
            "--expansion" => cfg.expansion = parse_expansion("--expansion", args.next().as_deref()),
            "--no-filter" => cfg.apply_filter = false,
            "--paper-style" => paper_style = true,
            "--report" => report = true,
            "--verify" => verify = true,
            "--emit-asm" => emit_asm = true,
            "--simulate" => simulate = Some(parse_machine("--simulate", args.next().as_deref())),
            "--compiler" => compiler = parse_compiler("--compiler", args.next().as_deref()),
            "--help" | "-h" => usage(),
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => usage(),
        }
    }

    if cfg.scheduler == SchedulerKind::Exact && !passes_given {
        plan = PassPlan::exact_only();
    }

    let src = read_input(&file);
    let prog = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("slc: {e}");
            exit(1)
        }
    };

    let pm = PassManager::new(cfg);
    let (out, sink) = match pm.run(&prog, &plan) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("slc: {e}");
            exit(1)
        }
    };
    if report {
        for o in sink.all_outcomes() {
            match &o.result {
                Ok(r) => eprintln!(
                    "slc: {} → II = {} ({} MIs, depth {}, unroll ×{}{}{})",
                    o.id,
                    r.ii,
                    r.n_mis,
                    r.max_offset,
                    r.unroll,
                    if r.if_converted { ", if-converted" } else { "" },
                    if r.decomposed.is_empty() {
                        String::new()
                    } else {
                        format!(", decomposed {:?}", r.decomposed)
                    },
                ),
                Err(e) => eprintln!("slc: {} left unchanged: {e}", o.id),
            }
            for line in render_loop_trace(o).lines().skip(1) {
                eprintln!("slc:   {}", line.trim_start());
            }
        }
    }

    if verify {
        match equivalent(&prog, &out, &[1, 2, 3, 5, 8]) {
            Ok(()) => eprintln!("slc: verified bit-identical on 5 random inputs"),
            Err(m) => {
                eprintln!("slc: VERIFICATION FAILED: {m:?}");
                exit(1)
            }
        }
    }

    if emit_asm {
        use slc::machine::ir::Lir;
        use slc::machine::{list_schedule, lower_program};
        match lower_program(&out) {
            Ok(lir) => {
                let m = slc::sim::presets::itanium2();
                for it in &lir.items {
                    if let Lir::Loop(l) = it {
                        for b in &l.body {
                            if let Lir::Block(ops) = b {
                                let s = list_schedule(ops, &m);
                                eprintln!(
                                    "slc: innermost loop over `{}` ({} trips), schedule:",
                                    l.var, l.trips
                                );
                                eprint!("{}", slc::machine::bundles_to_string(&s.bundles));
                            }
                        }
                    }
                }
            }
            Err(e) => eprintln!("slc: cannot lower for --emit-asm: {e}"),
        }
    }

    if let Some(m) = simulate {
        match (run(&prog, &m, compiler), run(&out, &m, compiler)) {
            (Ok(base), Ok(after)) => eprintln!(
                "slc: {} cycles → {} cycles on {} ({:.3}× speedup, energy ×{:.3})",
                base.cycles(),
                after.cycles(),
                m.name,
                base.cycles() as f64 / after.cycles().max(1) as f64,
                base.power.energy / after.power.energy.max(1e-12),
            ),
            (Err(e), _) | (_, Err(e)) => eprintln!("slc: simulation unavailable: {e}"),
        }
    }

    print!(
        "{}",
        if paper_style {
            to_paper_style(&out)
        } else {
            to_source(&out)
        }
    );
}
