//! `slc` — the source-level compiler as a command-line tool.
//!
//! Reads a mini-language program, applies Source Level Modulo Scheduling to
//! every eligible innermost loop, prints the optimized source, and
//! (optionally) verifies equivalence and simulates both versions on one of
//! the built-in machine models.
//!
//! ```text
//! USAGE: slc [OPTIONS] [FILE]          (FILE defaults to stdin)
//!        slc batch [BATCH OPTIONS]     (run the full experiment matrix)
//!
//!   --expansion <mve|scalar|off>   how false dependences are removed (mve)
//!   --no-filter                    disable the §4 memory-ref-ratio filter
//!   --paper-style                  print `stmt; || stmt;` kernels
//!   --report                       per-loop transformation report (stderr)
//!   --verify                       check bit-exact equivalence (interpreter)
//!   --simulate <machine>           simulate before/after and print speedup;
//!                                  machine: itanium2|pentium|power4|arm7
//!   --compiler <weak|opt|ms>       final-compiler personality (opt)
//!   --emit-asm                     dump the scheduled innermost-loop bundles
//!                                  of the optimized program (stderr)
//!
//! BATCH OPTIONS (see README.md for the report schema):
//!   --threads <N>                  worker threads (default: all cores)
//!   --out <PATH>                   canonical JSON report (BENCH_batch.json;
//!                                  deterministic — byte-identical across
//!                                  runs and thread counts)
//!   --timing <PATH>                wall-clock sidecar JSON (not written
//!                                  unless requested; not deterministic)
//!   --repeat <N>                   run the matrix N times on one shared
//!                                  cache (N>1 demonstrates memoization)
//! ```

use slc::ast::{parse_program, to_paper_style, to_source};
use slc::pipeline::{run, CompilerKind};
use slc::sim::astinterp::equivalent;
use slc::sim::presets;
use slc::slms::{slms_program, Expansion, SlmsConfig};
use std::io::Read;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: slc [--expansion mve|scalar|off] [--no-filter] [--paper-style]\n\
         \x20          [--report] [--verify] [--simulate MACHINE] [--compiler weak|opt|ms] [FILE]"
    );
    exit(2)
}

fn batch_usage() -> ! {
    eprintln!("usage: slc batch [--threads N] [--out PATH] [--timing PATH] [--repeat N]");
    exit(2)
}

fn batch_main(args: impl Iterator<Item = String>) -> ! {
    use slc::pipeline::{BatchConfig, BatchEngine};

    let mut cfg = BatchConfig::full_matrix();
    let mut out_path = String::from("BENCH_batch.json");
    let mut timing_path: Option<String> = None;
    let mut repeat = 1usize;

    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                cfg.threads = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| batch_usage()),
                )
            }
            "--out" => out_path = args.next().unwrap_or_else(|| batch_usage()),
            "--timing" => timing_path = Some(args.next().unwrap_or_else(|| batch_usage())),
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| batch_usage())
            }
            _ => batch_usage(),
        }
    }

    let engine = BatchEngine::new();
    let mut report = engine.run(&cfg);
    for pass in 1..repeat {
        eprintln!("slc batch: pass {}: {}", pass, report.summary());
        report = engine.run(&cfg);
    }
    eprintln!("slc batch: {}", report.summary());

    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("slc batch: cannot write {out_path}: {e}");
        exit(1)
    }
    eprintln!("slc batch: wrote {out_path}");
    if let Some(tp) = timing_path {
        if let Err(e) = std::fs::write(&tp, report.timing_json()) {
            eprintln!("slc batch: cannot write {tp}: {e}");
            exit(1)
        }
        eprintln!("slc batch: wrote {tp}");
    }
    exit(if report.failed() == 0 { 0 } else { 1 })
}

fn main() {
    let mut cfg = SlmsConfig::default();
    let mut paper_style = false;
    let mut report = false;
    let mut verify = false;
    let mut simulate: Option<String> = None;
    let mut emit_asm = false;
    let mut compiler = CompilerKind::Optimizing;
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("batch") {
        args.next();
        batch_main(args);
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--expansion" => {
                cfg.expansion = match args.next().as_deref() {
                    Some("mve") => Expansion::Mve,
                    Some("scalar") => Expansion::ScalarExpand,
                    Some("off") => Expansion::Off,
                    _ => usage(),
                }
            }
            "--no-filter" => cfg.apply_filter = false,
            "--paper-style" => paper_style = true,
            "--report" => report = true,
            "--verify" => verify = true,
            "--emit-asm" => emit_asm = true,
            "--simulate" => simulate = Some(args.next().unwrap_or_else(|| usage())),
            "--compiler" => {
                compiler = match args.next().as_deref() {
                    Some("weak") => CompilerKind::Weak,
                    Some("opt") => CompilerKind::Optimizing,
                    Some("ms") => CompilerKind::OptimizingMs,
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => usage(),
        }
    }

    let src = match &file {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("slc: cannot read {path}: {e}");
            exit(1)
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf).unwrap();
            buf
        }
    };
    let prog = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("slc: {e}");
            exit(1)
        }
    };

    let (out, outcomes) = slms_program(&prog, &cfg);
    if report {
        for o in &outcomes {
            match &o.result {
                Ok(r) => eprintln!(
                    "slc: {} → II = {} ({} MIs, depth {}, unroll ×{}{}{})",
                    o.loop_desc,
                    r.ii,
                    r.n_mis,
                    r.max_offset,
                    r.unroll,
                    if r.if_converted { ", if-converted" } else { "" },
                    if r.decomposed.is_empty() {
                        String::new()
                    } else {
                        format!(", decomposed {:?}", r.decomposed)
                    },
                ),
                Err(e) => eprintln!("slc: {} left unchanged: {e}", o.loop_desc),
            }
        }
    }

    if verify {
        match equivalent(&prog, &out, &[1, 2, 3, 5, 8]) {
            Ok(()) => eprintln!("slc: verified bit-identical on 5 random inputs"),
            Err(m) => {
                eprintln!("slc: VERIFICATION FAILED: {m:?}");
                exit(1)
            }
        }
    }

    if emit_asm {
        use slc::machine::ir::Lir;
        use slc::machine::{list_schedule, lower_program};
        match lower_program(&out) {
            Ok(lir) => {
                let m = slc::sim::presets::itanium2();
                for it in &lir.items {
                    if let Lir::Loop(l) = it {
                        for b in &l.body {
                            if let Lir::Block(ops) = b {
                                let s = list_schedule(ops, &m);
                                eprintln!(
                                    "slc: innermost loop over `{}` ({} trips), schedule:",
                                    l.var, l.trips
                                );
                                eprint!("{}", slc::machine::bundles_to_string(&s.bundles));
                            }
                        }
                    }
                }
            }
            Err(e) => eprintln!("slc: cannot lower for --emit-asm: {e}"),
        }
    }

    if let Some(mname) = simulate {
        let m = match mname.as_str() {
            "itanium2" => presets::itanium2(),
            "pentium" => presets::pentium(),
            "power4" => presets::power4(),
            "arm7" => presets::arm7tdmi(),
            _ => usage(),
        };
        match (run(&prog, &m, compiler), run(&out, &m, compiler)) {
            (Ok(base), Ok(after)) => eprintln!(
                "slc: {} cycles → {} cycles on {} ({:.3}× speedup, energy ×{:.3})",
                base.cycles(),
                after.cycles(),
                m.name,
                base.cycles() as f64 / after.cycles().max(1) as f64,
                base.power.energy / after.power.energy.max(1e-12),
            ),
            (Err(e), _) | (_, Err(e)) => eprintln!("slc: simulation unavailable: {e}"),
        }
    }

    print!(
        "{}",
        if paper_style {
            to_paper_style(&out)
        } else {
            to_source(&out)
        }
    );
}
