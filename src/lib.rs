//! # slc — Source Level Modulo Scheduling toolkit
//!
//! Facade crate re-exporting the whole workspace. This is the crate examples
//! and integration tests build against; see the README for a tour.
//!
//! Reproduction of *"Towards a Source Level Compiler: Source Level Modulo
//! Scheduling"* (Ben-Asher & Meisler, ICPP 2006).

pub use slc_analysis as analysis;
pub use slc_ast as ast;
pub use slc_core as slms;
pub use slc_exact as exact;
pub use slc_machine as machine;
pub use slc_pipeline as pipeline;
pub use slc_sat as sat;
pub use slc_serve as serve;
pub use slc_sim as sim;
pub use slc_trace as trace;
pub use slc_transforms as transforms;
pub use slc_verify as verify;
pub use slc_workloads as workloads;
