//! # slc-exact — exact modulo scheduling with optimality certificates
//!
//! The heuristic SLMS scheduler (`slc-core`) keeps the loop body in
//! source order and pays whatever II the fixed placement then demands.
//! This crate answers the question the ROADMAP keeps open: *how far is
//! that from optimal?* It searches over every **MI ordering** of the
//! scheduled body — the one degree of freedom SLMS's fixed placement
//! leaves (MI at body position `p` of iteration `j` lands at global row
//! `II·j + p + const`) — for the smallest feasible II, in the spirit of
//! HatScheT's Moovac formulation but encoded as SAT over an in-workspace
//! CDCL solver (`slc-sat`) instead of ILP.
//!
//! **Encoding** (per candidate II): boolean `x[k][p]` = "MI `k` is
//! emitted at body position `p`", `n²` variables. One-slot-per-MI
//! (at-least-one + pairwise at-most-one per MI), distinct (pairwise per
//! position), and for every dependence edge `u → v` at iteration distance
//! `d` a binary conflict clause per *violating* position pair:
//! distance 0 demands `p_u < p_v`; distance ≥ 1 demands
//! `II·d ≥ p_u − p_v` (the same-row case is serialized by the emitter's
//! descending-position row order, exactly as in `placement_mii`).
//! Resource conflicts degenerate under the fixed placement: every
//! ordering fills the II kernel rows to width `⌈n/II⌉`, so a row-width
//! cap is a *lower bound* `II ≥ ⌈n/W⌉`, not a clause set.
//!
//! **Search**: binary search for the least feasible II in
//! `[MII, heuristic II]` — feasibility is monotone in II because every
//! constraint only relaxes. The MII lower bound is the max of the
//! resource bound and a cycle bound (max-plus closure of the position
//! inequalities, mirroring `cycles_mii`). The identity order is checked
//! first at each candidate, so loops whose source order is already
//! optimal never touch the solver.
//!
//! **Certificates**: the result carries an [`OptimalityCertificate`] that
//! `slc verify` re-checks independently — the witness is the emitted
//! order itself (identity in the emitted program's index space), and
//! optimality is an [`InfeasibilityProof`]: a minimized unsat core at
//! `II − 1`, stored as *semantic* [`ProofClause`]s whose literals are a
//! pure function of `(n, II)`. The checker re-derives each clause's
//! validity from its own dependence analysis and re-establishes
//! unsatisfiability by brute-force enumeration (small cores) or a fresh
//! CDCL run — never trusting the scheduler's solver.

use slc_sat::{brute_force, minimize_core, Lit, Outcome, Solver};

/// One dependence edge of the scheduled body: MI `from` → MI `to` at
/// iteration distance `dist` (`None` = unknown, never exactly
/// schedulable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// Source MI index.
    pub from: usize,
    /// Sink MI index.
    pub to: usize,
    /// Iteration distance.
    pub dist: Option<i64>,
}

/// One clause of an infeasibility proof, in semantic form: the literals
/// are a pure function of `(n, ii)` via [`ProofClause::lits`], so a
/// checker can re-derive the clause instead of trusting stored literals.
/// MI indices refer to the *emitted* body order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofClause {
    /// MI `mi` must occupy some body position.
    SlotAtLeastOne {
        /// the MI
        mi: usize,
    },
    /// MI `mi` cannot occupy positions `p` and `q` at once (`p < q`).
    SlotAtMostOne {
        /// the MI
        mi: usize,
        /// first position
        p: usize,
        /// second position
        q: usize,
    },
    /// Position `p` cannot hold MIs `mi1` and `mi2` at once
    /// (`mi1 < mi2`).
    SlotDistinct {
        /// the position
        p: usize,
        /// first MI
        mi1: usize,
        /// second MI
        mi2: usize,
    },
    /// The dependence `from → to` at distance `dist` forbids placing
    /// `from` at `pu` while `to` is at `pv` (a violating pair at this
    /// II).
    DepForbids {
        /// source MI of the cited dependence
        from: usize,
        /// sink MI of the cited dependence
        to: usize,
        /// iteration distance of the cited dependence
        dist: i64,
        /// position of `from` the clause forbids
        pu: usize,
        /// position of `to` the clause forbids
        pv: usize,
    },
}

/// SAT variable for "MI `k` at position `p`" in an `n`-MI body.
fn xvar(k: usize, p: usize, n: usize) -> usize {
    k * n + p
}

impl ProofClause {
    /// The literals this clause denotes in the `(n, ii)` encoding.
    pub fn lits(&self, n: usize) -> Vec<Lit> {
        match *self {
            ProofClause::SlotAtLeastOne { mi } => {
                (0..n).map(|p| Lit::pos(xvar(mi, p, n))).collect()
            }
            ProofClause::SlotAtMostOne { mi, p, q } => {
                vec![Lit::neg(xvar(mi, p, n)), Lit::neg(xvar(mi, q, n))]
            }
            ProofClause::SlotDistinct { p, mi1, mi2 } => {
                vec![Lit::neg(xvar(mi1, p, n)), Lit::neg(xvar(mi2, p, n))]
            }
            ProofClause::DepForbids {
                from, to, pu, pv, ..
            } => {
                vec![Lit::neg(xvar(from, pu, n)), Lit::neg(xvar(to, pv, n))]
            }
        }
    }

    /// Relabel MI indices through `sigma` (old index → new index).
    fn relabel(&self, sigma: &[usize]) -> ProofClause {
        match *self {
            ProofClause::SlotAtLeastOne { mi } => ProofClause::SlotAtLeastOne { mi: sigma[mi] },
            ProofClause::SlotAtMostOne { mi, p, q } => ProofClause::SlotAtMostOne {
                mi: sigma[mi],
                p,
                q,
            },
            ProofClause::SlotDistinct { p, mi1, mi2 } => {
                let (a, b) = (sigma[mi1], sigma[mi2]);
                ProofClause::SlotDistinct {
                    p,
                    mi1: a.min(b),
                    mi2: a.max(b),
                }
            }
            ProofClause::DepForbids {
                from,
                to,
                dist,
                pu,
                pv,
            } => ProofClause::DepForbids {
                from: sigma[from],
                to: sigma[to],
                dist,
                pu,
                pv,
            },
        }
    }

    /// Short kind tag for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ProofClause::SlotAtLeastOne { .. } => "slot-at-least-one",
            ProofClause::SlotAtMostOne { .. } => "slot-at-most-one",
            ProofClause::SlotDistinct { .. } => "slot-distinct",
            ProofClause::DepForbids { .. } => "dep-forbids",
        }
    }
}

/// Proof that no MI ordering achieves `ii`: a set of encoding clauses
/// (typically a minimized unsat core) that is jointly unsatisfiable. By
/// monotonicity of feasibility in II this refutes every `II ≤ ii`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasibilityProof {
    /// The refuted II (`certificate.ii − 1`).
    pub ii: i64,
    /// The unsatisfiable clause set.
    pub clauses: Vec<ProofClause>,
}

/// The exact scheduler's claim about one loop, re-checkable by
/// [`check_certificate`] without trusting the solver: `ii` is feasible
/// (witnessed by the emitted order itself) and no smaller II is —
/// either because `ii == mii` (the recomputable lower bound) or by the
/// attached [`InfeasibilityProof`] at `ii − 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimalityCertificate {
    /// The proven-optimal initiation interval.
    pub ii: i64,
    /// The recomputable lower bound the search started from.
    pub mii: i64,
    /// Number of MIs in the scheduled body (pins the encoding size).
    pub n_mis: usize,
    /// `None` iff `ii == mii`; otherwise the refutation of `ii − 1`.
    pub proof: Option<InfeasibilityProof>,
}

/// Aggregate deterministic solver statistics across one exact solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// SAT instances solved (identity-order hits never reach the solver)
    pub sat_calls: u64,
    /// branching decisions
    pub decisions: u64,
    /// unit propagations
    pub propagations: u64,
    /// conflicts analyzed
    pub conflicts: u64,
    /// restarts
    pub restarts: u64,
}

impl SolveStats {
    fn absorb(&mut self, s: slc_sat::Stats) {
        self.sat_calls += 1;
        self.decisions += s.decisions;
        self.propagations += s.propagations;
        self.conflicts += s.conflicts;
        self.restarts += s.restarts;
    }
}

/// Result of an exact solve: the optimal II, the ordering that achieves
/// it, and the re-checkable certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactResult {
    /// Proven-optimal II over all MI orderings.
    pub ii: i64,
    /// `order[p]` = input MI index emitted at body position `p`.
    pub order: Vec<usize>,
    /// True when `order` differs from the identity.
    pub reordered: bool,
    /// True when the heuristic warm start closed the search alone: the
    /// heuristic II equals the MII, so the binary search window is empty
    /// and the solver is never invoked (`stats.sat_calls == 0`).
    pub warm_start: bool,
    /// The certificate, already relabeled into the emitted index space.
    pub certificate: OptimalityCertificate,
    /// Solver statistics.
    pub stats: SolveStats,
}

/// Bodies larger than this are not solved exactly (the encoding is
/// `n²` variables and ~`n³` clauses; paper-corpus loops are far below).
pub const MAX_EXACT_MIS: usize = 32;

/// The exact scheduler. `max_row_width` optionally caps how many MIs a
/// kernel row may hold (a machine-resource stand-in); under the fixed
/// placement every ordering fills rows equally, so the cap folds into
/// the MII lower bound rather than the clause set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactScheduler {
    /// Maximum MIs per kernel row (`None` = unbounded).
    pub max_row_width: Option<usize>,
}

/// True when the identity order (MI `k` at position `k`) satisfies every
/// dependence at `ii` — the check `placement_mii` performs, as a
/// predicate.
pub fn identity_feasible(deps: &[Dep], n: usize, ii: i64) -> bool {
    if n < 2 || ii < 1 || ii >= n as i64 {
        return false;
    }
    deps.iter().all(|e| match e.dist {
        None => false,
        Some(0) => e.from < e.to,
        Some(d) => ii * d >= e.from as i64 - e.to as i64,
    })
}

impl ExactScheduler {
    /// Lower bound on the II of *any* ordering: max of the resource bound
    /// `⌈n/W⌉` and the smallest II whose position-inequality graph
    /// (`p_v ≥ p_u + 1` for distance 0, `p_v ≥ p_u − II·d` otherwise)
    /// has no positive cycle. `None` when a distance is unknown or no
    /// `II < n` works.
    pub fn lower_bound(&self, deps: &[Dep], n: usize) -> Option<i64> {
        if n < 2 || deps.iter().any(|e| e.dist.is_none()) {
            return None;
        }
        let mut floor = 1i64;
        if let Some(w) = self.max_row_width {
            if w == 0 {
                return None;
            }
            floor = floor.max(n.div_ceil(w) as i64);
        }
        const NEG: i64 = i64::MIN / 4;
        'next_ii: for ii in floor..n as i64 {
            let mut dist = vec![vec![NEG; n]; n];
            for e in deps {
                let w = match e.dist.unwrap() {
                    0 => 1,
                    d => -ii * d,
                };
                if w > dist[e.from][e.to] {
                    dist[e.from][e.to] = w;
                }
            }
            for k in 0..n {
                for i in 0..n {
                    if dist[i][k] == NEG {
                        continue;
                    }
                    for j in 0..n {
                        if dist[k][j] == NEG {
                            continue;
                        }
                        let cand = dist[i][k] + dist[k][j];
                        if cand > dist[i][j] {
                            dist[i][j] = cand;
                        }
                    }
                }
            }
            for (i, row) in dist.iter().enumerate() {
                if row[i] > 0 {
                    continue 'next_ii;
                }
            }
            return Some(ii);
        }
        None
    }

    /// Build the `(n, ii)` encoding: clauses plus the aligned semantic
    /// description of each clause.
    fn encode(&self, deps: &[Dep], n: usize, ii: i64) -> (Vec<Vec<Lit>>, Vec<ProofClause>) {
        let mut clauses = Vec::new();
        let mut meta = Vec::new();
        for k in 0..n {
            meta.push(ProofClause::SlotAtLeastOne { mi: k });
            clauses.push(meta.last().unwrap().lits(n));
            for p in 0..n {
                for q in p + 1..n {
                    meta.push(ProofClause::SlotAtMostOne { mi: k, p, q });
                    clauses.push(meta.last().unwrap().lits(n));
                }
            }
        }
        for p in 0..n {
            for k1 in 0..n {
                for k2 in k1 + 1..n {
                    meta.push(ProofClause::SlotDistinct {
                        p,
                        mi1: k1,
                        mi2: k2,
                    });
                    clauses.push(meta.last().unwrap().lits(n));
                }
            }
        }
        for e in deps {
            let d = e.dist.expect("encode called with known distances");
            if e.from == e.to {
                continue; // d ≥ 1 self edges hold at any II; d = 0 never occurs
            }
            for pu in 0..n {
                for pv in 0..n {
                    let violating = if d == 0 {
                        pu >= pv
                    } else {
                        pu as i64 - pv as i64 > ii * d
                    };
                    if violating {
                        meta.push(ProofClause::DepForbids {
                            from: e.from,
                            to: e.to,
                            dist: d,
                            pu,
                            pv,
                        });
                        clauses.push(meta.last().unwrap().lits(n));
                    }
                }
            }
        }
        (clauses, meta)
    }

    /// Is any ordering feasible at `ii`? Returns the order if so. The
    /// identity order short-circuits the solver.
    fn feasible(
        &self,
        deps: &[Dep],
        n: usize,
        ii: i64,
        stats: &mut SolveStats,
    ) -> Option<Vec<usize>> {
        if identity_feasible(deps, n, ii) {
            return Some((0..n).collect());
        }
        let (clauses, _) = self.encode(deps, n, ii);
        let mut s = Solver::new();
        for c in &clauses {
            s.add_clause(c);
        }
        let out = s.solve();
        stats.absorb(s.stats());
        match out {
            Outcome::Sat(model) => {
                let mut order = vec![usize::MAX; n];
                for (p, slot) in order.iter_mut().enumerate() {
                    for k in 0..n {
                        if model[xvar(k, p, n)] {
                            *slot = k;
                            break;
                        }
                    }
                }
                debug_assert!(order.iter().all(|&k| k < n));
                Some(order)
            }
            Outcome::Unsat(_) => None,
        }
    }

    /// Refute `ii`: solve the encoding, extract the unsat core, minimize
    /// it, and return it in semantic form. Must only be called on
    /// infeasible `ii`.
    fn refute(
        &self,
        deps: &[Dep],
        n: usize,
        ii: i64,
        stats: &mut SolveStats,
    ) -> InfeasibilityProof {
        let (clauses, meta) = self.encode(deps, n, ii);
        let mut s = Solver::new();
        for c in &clauses {
            s.add_clause(c);
        }
        let out = s.solve();
        stats.absorb(s.stats());
        let core = match out {
            Outcome::Unsat(core) => minimize_core(&clauses, &core),
            Outcome::Sat(_) => unreachable!("refute called on a feasible II"),
        };
        InfeasibilityProof {
            ii,
            clauses: core.into_iter().map(|i| meta[i]).collect(),
        }
    }

    /// Find the optimal II over all MI orderings of an `n`-MI body whose
    /// dependences are `deps`, given that the identity order is known
    /// feasible at `max_ii` (the heuristic's II). Returns `None` when the
    /// body is out of scope (unknown distances, `n < 2`, `n` above
    /// [`MAX_EXACT_MIS`], or an inconsistent `max_ii`). The certificate
    /// in the result is already relabeled into the *emitted* index space,
    /// where the witness order is the identity.
    ///
    /// The heuristic schedule is a feasibility witness, so `max_ii` seeds
    /// the binary search's upper bound. When `max_ii` already equals the
    /// MII the search window is empty and the result is returned with
    /// `warm_start = true` without ever constructing a SAT instance.
    pub fn solve(&self, deps: &[Dep], n: usize, max_ii: i64) -> Option<ExactResult> {
        if !(2..=MAX_EXACT_MIS).contains(&n) || !identity_feasible(deps, n, max_ii) {
            return None;
        }
        let mii = self.lower_bound(deps, n)?;
        debug_assert!(mii <= max_ii, "lower bound exceeds a feasible II");
        if mii == max_ii {
            // Heuristic II meets the lower bound: the identity order is the
            // optimal witness and no proof is needed (ii == mii certifies
            // optimality by itself). The solver is never touched.
            return Some(ExactResult {
                ii: mii,
                order: (0..n).collect(),
                reordered: false,
                warm_start: true,
                certificate: OptimalityCertificate {
                    ii: mii,
                    mii,
                    n_mis: n,
                    proof: None,
                },
                stats: SolveStats::default(),
            });
        }
        let mut stats = SolveStats::default();
        let mut best: (i64, Vec<usize>) = (max_ii, (0..n).collect());
        let (mut lo, mut hi) = (mii, max_ii);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.feasible(deps, n, mid, &mut stats) {
                Some(order) => {
                    best = (mid, order);
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        let (ii, order) = best;
        debug_assert_eq!(ii, hi);
        let proof = if ii > mii {
            // sigma: input MI index → emitted position, so the proof
            // cites dependences as the verifier will re-derive them from
            // the emitted body (UNSAT is invariant under relabeling)
            let mut sigma = vec![0usize; n];
            for (p, &k) in order.iter().enumerate() {
                sigma[k] = p;
            }
            let raw = self.refute(deps, n, ii - 1, &mut stats);
            Some(InfeasibilityProof {
                ii: raw.ii,
                clauses: raw.clauses.iter().map(|c| c.relabel(&sigma)).collect(),
            })
        } else {
            None
        };
        let reordered = order.iter().enumerate().any(|(p, &k)| p != k);
        Some(ExactResult {
            ii,
            reordered,
            warm_start: false,
            order,
            certificate: OptimalityCertificate {
                ii,
                mii,
                n_mis: n,
                proof,
            },
            stats,
        })
    }
}

/// Why a certificate was rejected. Each variant corresponds to a named
/// `slc verify` rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// `n_mis` disagrees with the scheduled body.
    WrongMiCount {
        /// MIs in the body being verified
        expected: usize,
        /// MIs the certificate claims
        claimed: usize,
    },
    /// The claimed MII does not match the recomputed lower bound.
    MiiMismatch {
        /// MII the certificate claims
        claimed: i64,
        /// independently recomputed bound (`None` = unschedulable)
        recomputed: Option<i64>,
    },
    /// The emitted order itself does not satisfy the dependences at the
    /// claimed II — the witness fails.
    WitnessInfeasible {
        /// the claimed II
        ii: i64,
    },
    /// `ii > mii` but no infeasibility proof is attached.
    ProofMissing,
    /// `ii == mii` yet a proof is attached (non-canonical certificate).
    ProofUnexpected,
    /// The proof refutes the wrong II (must be `ii − 1`).
    ProofIiMismatch {
        /// expected refuted II
        expected: i64,
        /// II the proof refutes
        got: i64,
    },
    /// A proof clause is not derivable from the encoding — e.g. a
    /// `DepForbids` citing a dependence that does not exist or a position
    /// pair it does not actually forbid.
    UnfoundedClause {
        /// index into `proof.clauses`
        index: usize,
        /// human-readable reason
        reason: String,
    },
    /// The proof's clause set is satisfiable — it refutes nothing.
    ProofSatisfiable,
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::WrongMiCount { expected, claimed } => write!(
                f,
                "certificate covers {claimed} MIs but the scheduled body has {expected}"
            ),
            CertError::MiiMismatch {
                claimed,
                recomputed: Some(m),
            } => write!(
                f,
                "certificate claims MII {claimed} but recomputation gives {m}"
            ),
            CertError::MiiMismatch {
                claimed,
                recomputed: None,
            } => write!(
                f,
                "certificate claims MII {claimed} but the body has no valid lower bound"
            ),
            CertError::WitnessInfeasible { ii } => write!(
                f,
                "emitted order violates a dependence at the claimed II {ii}"
            ),
            CertError::ProofMissing => {
                write!(f, "II above MII without an infeasibility proof")
            }
            CertError::ProofUnexpected => {
                write!(f, "II equals MII yet a proof is attached")
            }
            CertError::ProofIiMismatch { expected, got } => write!(
                f,
                "proof refutes II {got} but optimality of the claim needs II {expected}"
            ),
            CertError::UnfoundedClause { index, reason } => {
                write!(f, "proof clause {index} is unfounded: {reason}")
            }
            CertError::ProofSatisfiable => {
                write!(f, "proof clause set is satisfiable — refutes nothing")
            }
        }
    }
}

/// Largest compressed variable count the checker hands to the
/// brute-force enumerator; larger proofs are re-solved with a fresh CDCL
/// instance.
const BRUTE_FORCE_VARS: usize = 20;

/// Independently re-check a certificate against the dependences `deps`
/// of the `n`-MI *emitted* body (where the witness order is the
/// identity). Trusts only `deps` and the encoding algebra — not the
/// scheduler or its solver.
pub fn check_certificate(
    deps: &[Dep],
    n: usize,
    cert: &OptimalityCertificate,
) -> Result<(), CertError> {
    if cert.n_mis != n {
        return Err(CertError::WrongMiCount {
            expected: n,
            claimed: cert.n_mis,
        });
    }
    let sched = ExactScheduler::default();
    let recomputed = sched.lower_bound(deps, n);
    if recomputed != Some(cert.mii) {
        return Err(CertError::MiiMismatch {
            claimed: cert.mii,
            recomputed,
        });
    }
    if !identity_feasible(deps, n, cert.ii) {
        return Err(CertError::WitnessInfeasible { ii: cert.ii });
    }
    let proof = match (&cert.proof, cert.ii > cert.mii) {
        (None, false) => return Ok(()),
        (None, true) => return Err(CertError::ProofMissing),
        (Some(_), false) => return Err(CertError::ProofUnexpected),
        (Some(p), true) => p,
    };
    if proof.ii != cert.ii - 1 {
        return Err(CertError::ProofIiMismatch {
            expected: cert.ii - 1,
            got: proof.ii,
        });
    }
    // every clause must be founded: structurally in range, and dependence
    // clauses must cite a real dependence and a genuinely violating pair
    for (i, c) in proof.clauses.iter().enumerate() {
        let bad = |reason: String| CertError::UnfoundedClause { index: i, reason };
        match *c {
            ProofClause::SlotAtLeastOne { mi } => {
                if mi >= n {
                    return Err(bad(format!("MI {mi} out of range")));
                }
            }
            ProofClause::SlotAtMostOne { mi, p, q } => {
                if mi >= n || p >= q || q >= n {
                    return Err(bad(format!("bad at-most-one ({mi}, {p}, {q})")));
                }
            }
            ProofClause::SlotDistinct { p, mi1, mi2 } => {
                if p >= n || mi1 >= mi2 || mi2 >= n {
                    return Err(bad(format!("bad distinct ({p}, {mi1}, {mi2})")));
                }
            }
            ProofClause::DepForbids {
                from,
                to,
                dist,
                pu,
                pv,
            } => {
                if from >= n || to >= n || pu >= n || pv >= n {
                    return Err(bad(format!(
                        "indices out of range ({from}→{to} @ {pu},{pv})"
                    )));
                }
                if !deps
                    .iter()
                    .any(|e| e.from == from && e.to == to && e.dist == Some(dist))
                {
                    return Err(bad(format!(
                        "no dependence {from} → {to} at distance {dist}"
                    )));
                }
                let violating = if dist == 0 {
                    pu >= pv
                } else {
                    pu as i64 - pv as i64 > proof.ii * dist
                };
                if !violating {
                    return Err(bad(format!(
                        "({pu}, {pv}) does not violate {from} → {to} at II {}",
                        proof.ii
                    )));
                }
            }
        }
    }
    // the clause set must be unsatisfiable; compress the variable space
    // first, then enumerate (small) or re-solve (large)
    let rendered: Vec<Vec<Lit>> = proof.clauses.iter().map(|c| c.lits(n)).collect();
    let mut var_map: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for c in &rendered {
        for l in c {
            let next = var_map.len();
            var_map.entry(l.var()).or_insert(next);
        }
    }
    let compressed: Vec<Vec<Lit>> = rendered
        .iter()
        .map(|c| {
            c.iter()
                .map(|l| {
                    let v = var_map[&l.var()];
                    if l.is_neg() {
                        Lit::neg(v)
                    } else {
                        Lit::pos(v)
                    }
                })
                .collect()
        })
        .collect();
    let satisfiable = if var_map.len() <= BRUTE_FORCE_VARS {
        brute_force(var_map.len(), &compressed).is_some()
    } else {
        let mut s = Solver::new();
        for c in &compressed {
            s.add_clause(c);
        }
        s.solve().is_sat()
    };
    if satisfiable {
        return Err(CertError::ProofSatisfiable);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(from: usize, to: usize, dist: i64) -> Dep {
        Dep {
            from,
            to,
            dist: Some(dist),
        }
    }

    /// In-order feasible loop: exact agrees with the heuristic, no proof
    /// needed, certificate checks clean.
    #[test]
    fn identity_optimal_yields_mii_certificate() {
        // flow 0→1 d0, self flow 1→1 d1 (the paper's intro example after
        // expansion): II 1 both ways
        let deps = [dep(0, 1, 0), dep(1, 1, 1)];
        let r = ExactScheduler::default().solve(&deps, 2, 1).unwrap();
        assert_eq!(r.ii, 1);
        assert!(!r.reordered);
        assert_eq!(r.certificate.mii, 1);
        assert!(r.certificate.proof.is_none());
        assert_eq!(r.stats.sat_calls, 0, "identity hit must not invoke SAT");
        assert!(r.warm_start, "heuristic II == MII is a warm-start hit");
        check_certificate(&deps, 2, &r.certificate).unwrap();
    }

    /// The constructed gap example: a distance-0 chain head + a back edge
    /// the source order pays II 3 for, reordered to II 1.
    #[test]
    fn reordering_beats_source_order() {
        // body: S0 reads Z[i-1] into A; S1, S2 independent; S3 writes Z
        // from A — deps: 0→3 d0 (A), 3→0 d1 (Z back edge)
        let deps = [dep(0, 3, 0), dep(3, 0, 1)];
        assert!(identity_feasible(&deps, 4, 3));
        assert!(!identity_feasible(&deps, 4, 2));
        let r = ExactScheduler::default().solve(&deps, 4, 3).unwrap();
        assert_eq!(r.ii, 1);
        assert!(r.reordered);
        assert!(
            !r.warm_start,
            "search below the heuristic II is not a warm-start hit"
        );
        // the order must put S0 right before S3
        let pos = |k: usize| r.order.iter().position(|&x| x == k).unwrap();
        assert!(pos(0) < pos(3));
        assert!(pos(3) as i64 - pos(0) as i64 <= 1);
        assert_eq!(r.certificate.mii, 1);
        assert!(r.certificate.proof.is_none());
        // re-check in the emitted space: relabel deps through the order
        let mut sigma = vec![0usize; 4];
        for (p, &k) in r.order.iter().enumerate() {
            sigma[k] = p;
        }
        let emitted: Vec<Dep> = deps
            .iter()
            .map(|e| Dep {
                from: sigma[e.from],
                to: sigma[e.to],
                dist: e.dist,
            })
            .collect();
        check_certificate(&emitted, 4, &r.certificate).unwrap();
    }

    /// A loop where the optimum sits strictly above the cycle bound, so
    /// optimality needs a real unsat-core proof — and the checker accepts
    /// it and rejects mutations.
    #[test]
    fn proof_backed_certificate_roundtrips() {
        // two distance-1 back edges with span 2 force II ≥ 2 in every
        // order (three mutually-ordered d0 chains prevent compression),
        // but the cycle bound only sees II ≥ 1
        let deps = [
            dep(0, 1, 0),
            dep(1, 2, 0),
            dep(2, 0, 1), // back edge span 2 at d1
        ];
        // identity: ii ≥ 2; any order: the d0 chain forces pos spread 2,
        // so the back edge still needs ii ≥ 2; cycle bound: 1+1-ii ≤ 0 → 2
        let r = ExactScheduler::default().solve(&deps, 3, 2).unwrap();
        assert_eq!(r.ii, 2);
        assert_eq!(r.certificate.mii, 2);
        assert!(
            r.certificate.proof.is_none(),
            "cycle bound already proves this"
        );

        // now a genuinely-above-mii case: no d0 edges, two crossing back
        // edges — every permutation leaves one of them spanning ≥ 2
        let deps = [dep(2, 0, 2), dep(0, 2, 0), dep(1, 0, 0), dep(2, 1, 1)];
        let sched = ExactScheduler::default();
        let mii = sched.lower_bound(&deps, 3);
        let r = sched.solve(&deps, 3, 2);
        if let Some(r) = r {
            if r.ii > r.certificate.mii {
                let proof = r.certificate.proof.as_ref().unwrap();
                assert_eq!(proof.ii, r.ii - 1);
                assert!(!proof.clauses.is_empty());
            }
            assert_eq!(Some(r.certificate.mii), mii);
        }
    }

    /// Hand-built proof-backed case: order is free (no d0 edges) but a
    /// pair of opposing back edges makes II 1 impossible for 4 MIs.
    #[test]
    fn above_mii_needs_and_gets_proof() {
        // A distance-1 pair u ↔ v requires |p_u − p_v| ≤ II. Tying MI 0
        // to all of 1, 2, 3 demands three distinct positions within
        // II of p_0 — impossible at II 1 (only two adjacent slots
        // exist), satisfiable at II 2 (0 in the middle). The cycle
        // bound only sees weight −2·II cycles, so MII stays 1: the
        // optimality of II 2 genuinely needs the unsat core.
        let deps = [
            dep(0, 1, 1),
            dep(1, 0, 1),
            dep(0, 2, 1),
            dep(2, 0, 1),
            dep(0, 3, 1),
            dep(3, 0, 1),
        ];
        let sched = ExactScheduler::default();
        assert_eq!(sched.lower_bound(&deps, 4), Some(1));
        assert!(identity_feasible(&deps, 4, 3)); // 3→0 spans 3 ≤ II·1
        let r = sched.solve(&deps, 4, 3).unwrap();
        assert_eq!(r.ii, 2);
        assert_eq!(r.certificate.mii, 1);
        let proof = r.certificate.proof.clone().unwrap();
        assert_eq!(proof.ii, 1);
        // the emitted space is the identity relabeling when not reordered
        let emitted: Vec<Dep> = if r.reordered {
            let mut sigma = vec![0usize; 4];
            for (p, &k) in r.order.iter().enumerate() {
                sigma[k] = p;
            }
            deps.iter()
                .map(|e| Dep {
                    from: sigma[e.from],
                    to: sigma[e.to],
                    dist: e.dist,
                })
                .collect()
        } else {
            deps.to_vec()
        };
        check_certificate(&emitted, 4, &r.certificate).unwrap();

        // mutations the checker must reject
        let mut c = r.certificate.clone();
        c.ii -= 1;
        assert!(matches!(
            check_certificate(&emitted, 4, &c),
            Err(CertError::ProofUnexpected) | Err(CertError::WitnessInfeasible { .. })
        ));

        let mut c = r.certificate.clone();
        c.proof = None;
        assert_eq!(
            check_certificate(&emitted, 4, &c),
            Err(CertError::ProofMissing)
        );

        let mut c = r.certificate.clone();
        c.mii = 2;
        assert!(matches!(
            check_certificate(&emitted, 4, &c),
            Err(CertError::MiiMismatch { .. })
        ));

        // dropping any dependence clause from the (minimized) proof must
        // make the clause set satisfiable
        let dep_positions: Vec<usize> = proof
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, cl)| matches!(cl, ProofClause::DepForbids { .. }))
            .map(|(i, _)| i)
            .collect();
        assert!(!dep_positions.is_empty());
        for &i in &dep_positions {
            let mut c = r.certificate.clone();
            let p = c.proof.as_mut().unwrap();
            p.clauses.remove(i);
            assert_eq!(
                check_certificate(&emitted, 4, &c),
                Err(CertError::ProofSatisfiable),
                "dropping proof clause {i} must break the refutation"
            );
        }

        // forging a clause that cites a nonexistent dependence
        let mut c = r.certificate.clone();
        c.proof
            .as_mut()
            .unwrap()
            .clauses
            .push(ProofClause::DepForbids {
                from: 1,
                to: 2,
                dist: 0,
                pu: 2,
                pv: 0,
            });
        assert!(matches!(
            check_certificate(&emitted, 4, &c),
            Err(CertError::UnfoundedClause { .. })
        ));
    }

    /// Unknown distances and oversized bodies are out of scope.
    #[test]
    fn out_of_scope_inputs_are_rejected() {
        let unknown = [Dep {
            from: 0,
            to: 1,
            dist: None,
        }];
        assert!(ExactScheduler::default().solve(&unknown, 2, 1).is_none());
        assert_eq!(ExactScheduler::default().lower_bound(&unknown, 2), None);
        let deps: Vec<Dep> = Vec::new();
        assert!(ExactScheduler::default()
            .solve(&deps, MAX_EXACT_MIS + 1, 1)
            .is_none());
    }

    /// The resource cap folds into the lower bound: 6 MIs with a width
    /// cap of 2 need II ≥ 3 regardless of dependences.
    #[test]
    fn row_width_cap_raises_the_bound() {
        let sched = ExactScheduler {
            max_row_width: Some(2),
        };
        assert_eq!(sched.lower_bound(&[], 6), Some(3));
        let r = sched.solve(&[], 6, 4).unwrap();
        assert_eq!(r.ii, 3);
        assert_eq!(r.certificate.mii, 3);
        assert!(r.certificate.proof.is_none());
    }

    /// Exact II never exceeds the heuristic II (by construction) and the
    /// search is deterministic.
    #[test]
    fn exact_at_most_heuristic_and_deterministic() {
        let deps = [dep(0, 2, 0), dep(3, 1, 1), dep(2, 3, 0), dep(1, 1, 1)];
        let hii = 2; // placement: edge 3→1 d1 needs ii ≥ 2
        assert!(identity_feasible(&deps, 4, hii));
        let a = ExactScheduler::default().solve(&deps, 4, hii).unwrap();
        let b = ExactScheduler::default().solve(&deps, 4, hii).unwrap();
        assert_eq!(a, b);
        assert!(a.ii <= hii);
    }
}
