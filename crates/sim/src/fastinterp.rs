//! Resolved-AST interpreter: the hot-path twin of [`crate::astinterp`].
//!
//! The tree-walking oracle in `astinterp` hashes a `String` for every scalar
//! read, every array access and every loop-variable touch. This module
//! resolves a [`Program`] once — interning every name through
//! [`slc_ast::Interner`] into dense slot indices — and then executes the
//! resolved form against flat `Vec` frames. Observable behaviour is
//! bit-identical to the tree walk:
//!
//! * same value semantics ([`Value`] coercions, wrapping integer arithmetic,
//!   short-circuit logic, intrinsic dispatch by `(name, arity)`);
//! * same *lazy* error semantics — an undeclared name is only an error when
//!   the statement touching it actually executes, and error precedence
//!   follows evaluation order (a bad subscript beats an out-of-bounds load);
//! * same step-budget accounting: one unit per statement executed plus one
//!   per `for`/`while` condition check, charged at the same points, so a
//!   budget-exhaustion boundary lands on exactly the same step.
//!
//! [`crate::astinterp::run_in_env`] and friends route through this module;
//! the tree walk stays available as
//! [`crate::astinterp::run_in_env_tree`] and the differential tests below
//! hold the two implementations equal statement-for-statement.

use crate::astinterp::{arith, Env, RuntimeError, Value};
use slc_ast::{AssignOp, BinOp, CmpOp, Expr, Interner, LValue, Program, Stmt, Symbol, UnOp};

/// Scalar/array/name slot index (a raw [`Symbol`] payload).
type Slot = u32;

/// Known pure intrinsics, resolved by `(name, arity)` once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Intrin {
    Abs,
    Sqrt,
    Exp,
    Sign,
    Min,
    Max,
}

/// Resolved expression: names replaced by dense slots.
#[derive(Debug, Clone)]
enum FExpr {
    I(i64),
    F(f64),
    Scalar(Slot),
    Index(Slot, Vec<FExpr>),
    Unary(UnOp, Box<FExpr>),
    Binary(BinOp, Box<FExpr>, Box<FExpr>),
    Select(Box<FExpr>, Box<FExpr>, Box<FExpr>),
    /// `None` intrinsic: unknown `(name, arity)` — args still evaluate
    /// first, then the call errors, matching the tree walk.
    Call(Option<Intrin>, Slot, Vec<FExpr>),
}

/// Resolved assignment target.
#[derive(Debug, Clone)]
enum FLValue {
    Var(Slot),
    Index(Slot, Vec<FExpr>),
}

/// Resolved statement.
#[derive(Debug, Clone)]
enum FStmt {
    Assign {
        target: FLValue,
        op: AssignOp,
        value: FExpr,
    },
    If {
        cond: FExpr,
        then_b: Vec<FStmt>,
        else_b: Vec<FStmt>,
    },
    For {
        var: Slot,
        init: FExpr,
        cmp: CmpOp,
        bound: FExpr,
        step: i64,
        body: Vec<FStmt>,
    },
    While {
        cond: FExpr,
        body: Vec<FStmt>,
    },
    Block(Vec<FStmt>),
    Break,
    Call(Slot),
}

/// A program resolved for slot-indexed execution. Resolve once, run many
/// times — the equivalence harness runs every seed against one resolution.
#[derive(Debug, Clone)]
pub struct ResolvedProgram {
    stmts: Vec<FStmt>,
    /// scalar slot → name (for frame setup and error messages)
    scalars: Interner,
    /// array slot → name
    arrays: Interner,
    /// opaque/unknown call names (separate slot space)
    names: Interner,
}

struct Resolver {
    scalars: Interner,
    arrays: Interner,
    names: Interner,
}

impl Resolver {
    fn expr(&mut self, e: &Expr) -> FExpr {
        match e {
            Expr::Int(v) => FExpr::I(*v),
            Expr::Float(v) => FExpr::F(*v),
            Expr::Var(n) => FExpr::Scalar(self.scalars.intern(n).0),
            Expr::Index(n, idx) => FExpr::Index(
                self.arrays.intern(n).0,
                idx.iter().map(|i| self.expr(i)).collect(),
            ),
            Expr::Unary(op, a) => FExpr::Unary(*op, Box::new(self.expr(a))),
            Expr::Binary(op, a, b) => {
                FExpr::Binary(*op, Box::new(self.expr(a)), Box::new(self.expr(b)))
            }
            Expr::Select(c, t, f) => FExpr::Select(
                Box::new(self.expr(c)),
                Box::new(self.expr(t)),
                Box::new(self.expr(f)),
            ),
            Expr::Call(name, args) => {
                let intrin = match (name.as_str(), args.len()) {
                    ("abs", 1) => Some(Intrin::Abs),
                    ("sqrt", 1) => Some(Intrin::Sqrt),
                    ("exp", 1) => Some(Intrin::Exp),
                    ("sign", 1) => Some(Intrin::Sign),
                    ("min", 2) => Some(Intrin::Min),
                    ("max", 2) => Some(Intrin::Max),
                    _ => None,
                };
                FExpr::Call(
                    intrin,
                    self.names.intern(name).0,
                    args.iter().map(|a| self.expr(a)).collect(),
                )
            }
        }
    }

    fn lvalue(&mut self, lv: &LValue) -> FLValue {
        match lv {
            LValue::Var(n) => FLValue::Var(self.scalars.intern(n).0),
            LValue::Index(n, idx) => FLValue::Index(
                self.arrays.intern(n).0,
                idx.iter().map(|i| self.expr(i)).collect(),
            ),
        }
    }

    fn block(&mut self, stmts: &[Stmt]) -> Vec<FStmt> {
        stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: &Stmt) -> FStmt {
        match s {
            Stmt::Assign { target, op, value } => FStmt::Assign {
                target: self.lvalue(target),
                op: *op,
                value: self.expr(value),
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => FStmt::If {
                cond: self.expr(cond),
                then_b: self.block(then_branch),
                else_b: self.block(else_branch),
            },
            Stmt::For(f) => FStmt::For {
                var: self.scalars.intern(&f.var).0,
                init: self.expr(&f.init),
                cmp: f.cmp,
                bound: self.expr(&f.bound),
                step: f.step,
                body: self.block(&f.body),
            },
            Stmt::While { cond, body } => FStmt::While {
                cond: self.expr(cond),
                body: self.block(body),
            },
            // `par` executes in textual order, exactly like a block (see
            // the oracle's semantics notes)
            Stmt::Block(b) | Stmt::Par(b) => FStmt::Block(self.block(b)),
            Stmt::Break => FStmt::Break,
            Stmt::Call(n, _) => FStmt::Call(self.names.intern(n).0),
        }
    }
}

/// Resolve a program for repeated slot-indexed execution.
pub fn resolve(prog: &Program) -> ResolvedProgram {
    let mut r = Resolver {
        scalars: Interner::new(),
        arrays: Interner::new(),
        names: Interner::new(),
    };
    let stmts = r.block(&prog.stmts);
    ResolvedProgram {
        stmts,
        scalars: r.scalars,
        arrays: r.arrays,
        names: r.names,
    }
}

enum Flow {
    Normal,
    Break,
}

/// Execution frame: dense storage indexed by resolved slots. `None` marks a
/// name the program mentions but the environment never declared — touched
/// lazily, it raises the same error the tree walk would.
struct Frame<'p> {
    prog: &'p ResolvedProgram,
    scalars: Vec<Option<Value>>,
    arrays: Vec<Option<Vec<Value>>>,
    dims: Vec<Option<Vec<usize>>>,
    steps_left: u64,
}

impl Frame<'_> {
    fn scalar_name(&self, s: Slot) -> String {
        self.prog.scalars.resolve(Symbol(s)).to_string()
    }

    fn array_name(&self, s: Slot) -> String {
        self.prog.arrays.resolve(Symbol(s)).to_string()
    }

    fn read_scalar(&self, s: Slot) -> Result<Value, RuntimeError> {
        self.scalars[s as usize].ok_or_else(|| RuntimeError::UndeclaredScalar(self.scalar_name(s)))
    }

    /// Row-major linearization with the tree walk's exact error order.
    fn linear_index(&self, a: Slot, idx: &[i64]) -> Result<usize, RuntimeError> {
        let dims = self.dims[a as usize]
            .as_ref()
            .ok_or_else(|| RuntimeError::UndeclaredArray(self.array_name(a)))?;
        if dims.len() != idx.len() {
            return Err(RuntimeError::DimMismatch {
                array: self.array_name(a),
                expected: dims.len(),
                got: idx.len(),
            });
        }
        let mut lin: i64 = 0;
        for (d, i) in dims.iter().zip(idx) {
            if *i < 0 || *i >= *d as i64 {
                return Err(RuntimeError::OutOfBounds {
                    array: self.array_name(a),
                    index: *i,
                    dim: *d,
                });
            }
            lin = lin * (*d as i64) + i;
        }
        Ok(lin as usize)
    }

    /// Evaluate subscripts into a small stack buffer (≤ 8 dims; deeper
    /// shapes spill to the heap). The returned slice borrows the caller's
    /// buffers, not the frame, so loads/stores can follow.
    fn eval_subscripts<'b>(
        &mut self,
        a: Slot,
        idx: &[FExpr],
        buf: &'b mut [i64; 8],
        heap: &'b mut Vec<i64>,
    ) -> Result<&'b [i64], RuntimeError> {
        if idx.len() <= 8 {
            for (k, e) in idx.iter().enumerate() {
                buf[k] = self
                    .eval(e)?
                    .as_index()
                    .ok_or_else(|| RuntimeError::BadSubscript(self.array_name(a)))?;
            }
            Ok(&buf[..idx.len()])
        } else {
            for e in idx {
                let v = self
                    .eval(e)?
                    .as_index()
                    .ok_or_else(|| RuntimeError::BadSubscript(self.array_name(a)))?;
                heap.push(v);
            }
            Ok(&heap[..])
        }
    }

    fn load(&self, a: Slot, idx: &[i64]) -> Result<Value, RuntimeError> {
        let lin = self.linear_index(a, idx)?;
        Ok(self.arrays[a as usize].as_ref().unwrap()[lin])
    }

    fn store(&mut self, a: Slot, idx: &[i64], v: Value) -> Result<(), RuntimeError> {
        let lin = self.linear_index(a, idx)?;
        self.arrays[a as usize].as_mut().unwrap()[lin] = v;
        Ok(())
    }

    fn eval(&mut self, e: &FExpr) -> Result<Value, RuntimeError> {
        match e {
            FExpr::I(v) => Ok(Value::I(*v)),
            FExpr::F(v) => Ok(Value::F(*v)),
            FExpr::Scalar(s) => self.read_scalar(*s),
            FExpr::Index(a, idx) => {
                let (mut buf, mut heap) = ([0i64; 8], Vec::new());
                let idx = self.eval_subscripts(*a, idx, &mut buf, &mut heap)?;
                self.load(*a, idx)
            }
            FExpr::Unary(UnOp::Neg, a) => Ok(match self.eval(a)? {
                Value::I(v) => Value::I(-v),
                Value::F(v) => Value::F(-v),
            }),
            FExpr::Unary(UnOp::Not, a) => Ok(Value::I(!self.eval(a)?.truthy() as i64)),
            FExpr::Binary(BinOp::And, a, b) => {
                // short-circuit
                if !self.eval(a)?.truthy() {
                    return Ok(Value::I(0));
                }
                Ok(Value::I(self.eval(b)?.truthy() as i64))
            }
            FExpr::Binary(BinOp::Or, a, b) => {
                if self.eval(a)?.truthy() {
                    return Ok(Value::I(1));
                }
                Ok(Value::I(self.eval(b)?.truthy() as i64))
            }
            FExpr::Binary(op, a, b) => {
                let (a, b) = (self.eval(a)?, self.eval(b)?);
                arith(*op, a, b)
            }
            FExpr::Select(c, t, f) => {
                if self.eval(c)?.truthy() {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            FExpr::Call(intrin, name, args) => match intrin {
                Some(Intrin::Abs) => Ok(match self.eval(&args[0])? {
                    Value::I(v) => Value::I(v.abs()),
                    Value::F(v) => Value::F(v.abs()),
                }),
                Some(Intrin::Sqrt) => Ok(Value::F(self.eval(&args[0])?.as_f64().sqrt())),
                Some(Intrin::Exp) => Ok(Value::F(self.eval(&args[0])?.as_f64().exp())),
                Some(Intrin::Sign) => Ok(Value::F(self.eval(&args[0])?.as_f64().signum())),
                Some(Intrin::Min) => {
                    let x = self.eval(&args[0])?.as_f64();
                    let y = self.eval(&args[1])?.as_f64();
                    Ok(Value::F(x.min(y)))
                }
                Some(Intrin::Max) => {
                    let x = self.eval(&args[0])?.as_f64();
                    let y = self.eval(&args[1])?.as_f64();
                    Ok(Value::F(x.max(y)))
                }
                None => {
                    // unknown intrinsic errors only after its args evaluate
                    for a in args {
                        self.eval(a)?;
                    }
                    Err(RuntimeError::UnknownIntrinsic(
                        self.prog.names.resolve(Symbol(*name)).to_string(),
                    ))
                }
            },
        }
    }

    /// Coerce to the declared storage type witnessed by `old`.
    fn coerce(old: Value, newv: Value) -> Value {
        match old {
            Value::I(_) => Value::I(newv.as_index().unwrap_or(newv.as_f64() as i64)),
            Value::F(_) => Value::F(newv.as_f64()),
        }
    }

    fn combine(op: AssignOp, old: Value, rhs: Value) -> Result<Value, RuntimeError> {
        match op {
            AssignOp::Set => Ok(rhs),
            AssignOp::Add => arith(BinOp::Add, old, rhs),
            AssignOp::Sub => arith(BinOp::Sub, old, rhs),
            AssignOp::Mul => arith(BinOp::Mul, old, rhs),
            AssignOp::Div => arith(BinOp::Div, old, rhs),
        }
    }

    fn assign(
        &mut self,
        target: &FLValue,
        op: AssignOp,
        value: &FExpr,
    ) -> Result<(), RuntimeError> {
        let rhs = self.eval(value)?;
        match target {
            FLValue::Var(s) => {
                let old = self.read_scalar(*s)?;
                let newv = Self::combine(op, old, rhs)?;
                self.scalars[*s as usize] = Some(Self::coerce(old, newv));
            }
            FLValue::Index(a, idx) => {
                let (mut buf, mut heap) = ([0i64; 8], Vec::new());
                let idx = self.eval_subscripts(*a, idx, &mut buf, &mut heap)?;
                let old = self.load(*a, idx)?;
                let newv = Self::combine(op, old, rhs)?;
                self.store(*a, idx, Self::coerce(old, newv))?;
            }
        }
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[FStmt]) -> Result<Flow, RuntimeError> {
        for s in stmts {
            if let Flow::Break = self.exec(s)? {
                return Ok(Flow::Break);
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, s: &FStmt) -> Result<Flow, RuntimeError> {
        if self.steps_left == 0 {
            return Err(RuntimeError::StepBudgetExhausted);
        }
        self.steps_left -= 1;
        match s {
            FStmt::Assign { target, op, value } => {
                self.assign(target, *op, value)?;
                Ok(Flow::Normal)
            }
            FStmt::If {
                cond,
                then_b,
                else_b,
            } => {
                if self.eval(cond)?.truthy() {
                    self.exec_block(then_b)
                } else {
                    self.exec_block(else_b)
                }
            }
            FStmt::For {
                var,
                init,
                cmp,
                bound,
                step,
                body,
            } => {
                // init mirrors the tree walk's `assign(var, Set, init)`:
                // RHS evaluates first, then the target must exist
                let rhs = self.eval(init)?;
                let old = self.read_scalar(*var)?;
                self.scalars[*var as usize] = Some(Self::coerce(old, rhs));
                loop {
                    if self.steps_left == 0 {
                        return Err(RuntimeError::StepBudgetExhausted);
                    }
                    self.steps_left -= 1;
                    let v = self.read_scalar(*var)?;
                    let b = self.eval(bound)?;
                    let cont = match cmp {
                        CmpOp::Lt => v.as_f64() < b.as_f64(),
                        CmpOp::Le => v.as_f64() <= b.as_f64(),
                        CmpOp::Gt => v.as_f64() > b.as_f64(),
                        CmpOp::Ge => v.as_f64() >= b.as_f64(),
                        CmpOp::Eq => v.as_f64() == b.as_f64(),
                        CmpOp::Ne => v.as_f64() != b.as_f64(),
                    };
                    if !cont {
                        break;
                    }
                    if let Flow::Break = self.exec_block(body)? {
                        break;
                    }
                    let v = self.read_scalar(*var)?;
                    let newv = arith(BinOp::Add, v, Value::I(*step))?;
                    self.scalars[*var as usize] = Some(Self::coerce(v, newv));
                }
                Ok(Flow::Normal)
            }
            FStmt::While { cond, body } => {
                loop {
                    if self.steps_left == 0 {
                        return Err(RuntimeError::StepBudgetExhausted);
                    }
                    self.steps_left -= 1;
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    if let Flow::Break = self.exec_block(body)? {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            FStmt::Block(b) => self.exec_block(b),
            FStmt::Break => Ok(Flow::Break),
            FStmt::Call(n) => Err(RuntimeError::OpaqueCall(
                self.prog.names.resolve(Symbol(*n)).to_string(),
            )),
        }
    }
}

/// Run a resolved program against an environment with a step budget.
///
/// Array storage is *moved* out of `env` into the frame for the duration of
/// the run and moved back afterwards — also on error, mirroring the tree
/// walk's partial-state-on-error behaviour. Scalars are copied in and the
/// touched slots written back.
pub fn run_resolved(rp: &ResolvedProgram, env: &mut Env, budget: u64) -> Result<(), RuntimeError> {
    run_resolved_counted(rp, env, budget).map(|_| ())
}

/// [`run_resolved`] returning the number of budget steps consumed (the
/// deterministic "statements simulated" measure: one unit per statement
/// executed plus one per loop-condition re-check, exactly the accounting
/// the budget uses).
pub fn run_resolved_counted(
    rp: &ResolvedProgram,
    env: &mut Env,
    budget: u64,
) -> Result<u64, RuntimeError> {
    let mut frame = Frame {
        prog: rp,
        scalars: (0..rp.scalars.len() as u32)
            .map(|s| env.scalars.get(rp.scalars.resolve(Symbol(s))).copied())
            .collect(),
        arrays: (0..rp.arrays.len() as u32)
            .map(|s| env.arrays.remove(rp.arrays.resolve(Symbol(s))))
            .collect(),
        dims: (0..rp.arrays.len() as u32)
            .map(|s| env.dims.get(rp.arrays.resolve(Symbol(s))).cloned())
            .collect(),
        steps_left: budget,
    };
    let out = frame.exec_block(&rp.stmts).map(|_| ());
    let steps_used = budget - frame.steps_left;
    // write the frame back whatever happened
    for (i, v) in frame.scalars.iter().enumerate() {
        if let Some(v) = v {
            env.scalars
                .insert(rp.scalars.resolve(Symbol(i as u32)).to_string(), *v);
        }
    }
    for (i, slot) in frame.arrays.iter_mut().enumerate() {
        if let Some(a) = slot.take() {
            env.arrays
                .insert(rp.arrays.resolve(Symbol(i as u32)).to_string(), a);
        }
    }
    out.map(|()| steps_used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astinterp::{random_env, Interp, DEFAULT_BUDGET};
    use slc_ast::parse_program;

    /// Both interpreters, same env, same budget: identical result and
    /// identical final state.
    fn differential(src: &str, budget: u64) {
        let p = parse_program(src).unwrap();
        let rp = resolve(&p);
        for seed in [1u64, 7, 42] {
            let mut legacy = random_env(&p, seed);
            let mut fast = legacy.clone();
            let r1 = Interp::new(&mut legacy, budget).run_block(&p.stmts);
            let r2 = run_resolved(&rp, &mut fast, budget);
            assert_eq!(r1, r2, "result mismatch on seed {seed} for {src:?}");
            assert_eq!(legacy, fast, "state mismatch on seed {seed} for {src:?}");
        }
    }

    #[test]
    fn matches_tree_walk_on_core_shapes() {
        differential(
            "float A[16]; float s; int i; for (i = 0; i < 16; i++) s += A[i] * 2.0;",
            DEFAULT_BUDGET,
        );
        differential(
            "int i; int j; float M[4][5];\n\
             for (i = 0; i < 4; i++) for (j = 0; j < 5; j++) M[i][j] = i * 10 + j;",
            DEFAULT_BUDGET,
        );
        differential(
            "float x; int i; for (i = 0; i < 9; i++) { if (i == 4) break; x = max(x, i); }",
            DEFAULT_BUDGET,
        );
        differential(
            "int i; int n; n = 10; while (i < n) i += 3;",
            DEFAULT_BUDGET,
        );
        differential(
            "float a; float b; a = -3.5; b = a < 0.0 ? abs(a) : sqrt(a);",
            DEFAULT_BUDGET,
        );
        differential("float x; par { x = 1.0; x = x + 1.0; }", DEFAULT_BUDGET);
    }

    #[test]
    fn matches_tree_walk_on_errors() {
        // out of bounds mid-loop: both stop at the same trip with the same
        // partial array state
        differential(
            "float A[4]; int i; for (i = 0; i < 8; i++) A[i] = 1.0;",
            DEFAULT_BUDGET,
        );
        // opaque statement-level call
        differential("int x; f(x);", DEFAULT_BUDGET);
    }

    #[test]
    fn budget_boundary_is_identical() {
        // every budget from 0 up: exhaustion must land on the same step in
        // both walkers (same charge points)
        for b in 0..40 {
            differential("int i; int s; for (i = 0; i < 5; i++) s += i;", b);
        }
    }

    #[test]
    fn undeclared_is_lazy() {
        let p = parse_program("int i; if (0) notdecl = 1;").unwrap();
        let rp = resolve(&p);
        let mut env = Env::zeroed(&p);
        assert_eq!(run_resolved(&rp, &mut env, DEFAULT_BUDGET), Ok(()));

        let p = parse_program("int i; notdecl = 1;").unwrap();
        let rp = resolve(&p);
        let mut env = Env::zeroed(&p);
        assert!(matches!(
            run_resolved(&rp, &mut env, DEFAULT_BUDGET),
            Err(RuntimeError::UndeclaredScalar(n)) if n == "notdecl"
        ));
    }
}
