//! Machine presets approximating the paper's four evaluation targets.
//!
//! Parameters are drawn from the public microarchitecture descriptions of
//! each CPU, rounded to the granularity of our model. Absolute agreement
//! with the real silicon is not the goal (nor possible for a trace-level
//! model); what matters for the reproduction is the *relative ordering*:
//! a wide in-order EPIC machine with two FP units, a narrow register-starved
//! superscalar, a 4-issue superscalar with a big cache, and a single-issue
//! scalar embedded core.

use slc_machine::mach::{CacheConfig, IssueModel, MachineDesc};

/// Itanium II-like: 6-issue EPIC/VLIW, 2 FP units, 2 memory ports, large
/// register file (the paper's main target; figs 14–16, 18–19).
pub fn itanium2() -> MachineDesc {
    MachineDesc {
        name: "itanium2-like".into(),
        issue: IssueModel::StaticVliw,
        issue_width: 6,
        //      IntAlu IntMul FpAdd FpMul FpDiv Mem Branch
        units: [4, 2, 2, 2, 1, 2, 1],
        latency: [1, 3, 4, 4, 16, 2, 1],
        int_regs: 128,
        fp_regs: 128,
        cache: CacheConfig {
            size: 16 * 1024,
            line: 64,
            ways: 4,
            miss_penalty: 10,
        },
        elem_bytes: 8,
        spill_penalty: 2,
    }
}

/// Pentium-like: 2-issue in-order superscalar with a tiny architected
/// register file — MVE-heavy kernels spill (fig 17, kernel 10).
pub fn pentium() -> MachineDesc {
    MachineDesc {
        name: "pentium-like".into(),
        issue: IssueModel::DynamicInOrder,
        issue_width: 2,
        units: [2, 1, 1, 1, 1, 1, 1],
        latency: [1, 4, 3, 3, 18, 3, 1],
        int_regs: 8,
        fp_regs: 8,
        cache: CacheConfig {
            size: 8 * 1024,
            line: 32,
            ways: 2,
            miss_penalty: 14,
        },
        elem_bytes: 8,
        spill_penalty: 3,
    }
}

/// Power4-like: 4-issue superscalar, two FP pipes, generous caches
/// (fig 20).
pub fn power4() -> MachineDesc {
    MachineDesc {
        name: "power4-like".into(),
        issue: IssueModel::DynamicInOrder,
        issue_width: 4,
        units: [2, 1, 2, 2, 1, 2, 1],
        latency: [1, 3, 4, 4, 14, 2, 1],
        int_regs: 32,
        fp_regs: 32,
        cache: CacheConfig {
            size: 32 * 1024,
            line: 128,
            ways: 8,
            miss_penalty: 12,
        },
        elem_bytes: 8,
        spill_penalty: 2,
    }
}

/// ARM7TDMI-like: single-issue scalar, no FP hardware (FP ops emulated —
/// long latencies), small cache, blocking memory (figs 21–22).
pub fn arm7tdmi() -> MachineDesc {
    MachineDesc {
        name: "arm7tdmi-like".into(),
        issue: IssueModel::DynamicInOrder,
        issue_width: 1,
        units: [1, 1, 1, 1, 1, 1, 1],
        latency: [1, 5, 8, 10, 40, 3, 2],
        int_regs: 16,
        fp_regs: 8,
        cache: CacheConfig {
            size: 4 * 1024,
            line: 16,
            ways: 4,
            miss_penalty: 20,
        },
        elem_bytes: 4,
        spill_penalty: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_machine::ir::OpClass;

    #[test]
    fn preset_sanity() {
        let it = itanium2();
        assert_eq!(it.issue, IssueModel::StaticVliw);
        assert_eq!(it.units_of(OpClass::FpMul), 2);
        let p = pentium();
        assert!(p.int_regs < it.int_regs);
        let a = arm7tdmi();
        assert_eq!(a.issue_width, 1);
        assert!(a.latency_of(OpClass::FpMul) > it.latency_of(OpClass::FpMul));
    }
}
