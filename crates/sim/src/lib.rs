//! # slc-sim — execution substrate: interpreter, cycle simulator, power model
//!
//! The paper evaluates SLMS on Itanium II, Pentium, Power4 and an ARM7TDMI
//! simulator (sim-panalyzer). None of that hardware is available here, so
//! this crate provides the synthetic equivalent:
//!
//! * [`astinterp`] — a reference interpreter for the mini language. It is the
//!   **semantic oracle**: every source-level transformation in the workspace
//!   (SLMS, interchange, fusion, unrolling, …) must leave the observable
//!   final state bit-identical, and the interpreter checks exactly that. No
//!   re-association ever happens in our transformations, so float comparison
//!   is exact.
//! * [`fastinterp`] — the interpreter's hot path: programs resolved once to
//!   slot-indexed form (names interned via `slc-ast`), executed against flat
//!   `Vec` frames. [`astinterp`]'s entry points route through it; the tree
//!   walk remains as the reference the differential tests compare against.
//! * [`cycle`] — a cycle-level simulator executing scheduled IR from
//!   `slc-machine` on a parametric machine (issue width, functional units,
//!   operation latencies, L1 cache), standing in for the paper's hardware.
//! * [`power`] — a per-operation-class energy model standing in for
//!   sim-panalyzer (figure 21).
//! * [`presets`] — machine descriptions approximating the paper's four
//!   targets.

pub mod astinterp;
pub mod cycle;
pub mod fastinterp;
pub mod power;
pub mod presets;

pub use astinterp::{
    equivalent, random_env, run_in_env_spanned, run_program, Env, RuntimeError, Value,
};
pub use cycle::{
    simulate, simulate_spanned, simulate_with, CacheStats, CompiledProgram, FfStats, Seg,
    SimFidelity, SimLoop, SimOutcome, SimResult,
};
pub use fastinterp::{resolve, run_resolved, run_resolved_counted, ResolvedProgram};
pub use power::{EnergyModel, PowerReport};
pub use presets::{arm7tdmi, itanium2, pentium, power4};
