//! Energy model — the sim-panalyzer substitute for the figure-21 ARM
//! experiment.
//!
//! Energy is accumulated per executed operation class, per cache event and
//! per cycle (static/clock power). Absolute units are arbitrary; the
//! experiment reports *relative* power of the SLMS'd loop against the
//! original, exactly like the paper's bar charts.

use crate::cycle::SimResult;
use slc_machine::ir::ALL_CLASSES;

/// Per-event energy coefficients (arbitrary units).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// energy per op, indexed like `ALL_CLASSES`
    /// (IntAlu, IntMul, FpAdd, FpMul, FpDiv, Mem, Branch)
    pub per_op: [f64; 7],
    /// energy per L1 hit
    pub l1_hit: f64,
    /// energy per L1 miss (includes the memory access)
    pub l1_miss: f64,
    /// static/clock energy per cycle
    pub per_cycle: f64,
}

impl Default for EnergyModel {
    /// Coefficients with the usual ordering: memory ≫ multiply > add, and a
    /// large miss cost (DRAM access), as in the Panalyzer ARM model.
    fn default() -> Self {
        EnergyModel {
            per_op: [1.0, 3.0, 2.0, 4.0, 8.0, 2.5, 0.5],
            l1_hit: 1.5,
            l1_miss: 40.0,
            per_cycle: 0.8,
        }
    }
}

/// Energy/power report for one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerReport {
    /// total energy (arbitrary units)
    pub energy: f64,
    /// energy spent in the memory hierarchy
    pub memory_energy: f64,
    /// energy spent in functional units
    pub compute_energy: f64,
    /// static/clock energy
    pub static_energy: f64,
    /// average power = energy / cycles
    pub avg_power: f64,
}

impl EnergyModel {
    /// Evaluate the model on a simulation result.
    pub fn report(&self, sim: &SimResult) -> PowerReport {
        let mut compute = 0.0;
        for (k, _) in ALL_CLASSES.iter().enumerate() {
            compute += sim.class_counts[k] as f64 * self.per_op[k];
        }
        let memory = sim.cache.hits as f64 * self.l1_hit
            + sim.cache.misses as f64 * self.l1_miss
            + sim.spill_accesses as f64 * self.l1_hit;
        let stat = sim.cycles as f64 * self.per_cycle;
        let energy = compute + memory + stat;
        PowerReport {
            energy,
            memory_energy: memory,
            compute_energy: compute,
            static_energy: stat,
            avg_power: if sim.cycles > 0 {
                energy / sim.cycles as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_componentry() {
        let mut class_counts = [0u64; 7];
        class_counts[0] = 10; // IntAlu
        let sim = SimResult {
            cycles: 100,
            class_counts,
            cache: crate::cycle::CacheStats { hits: 5, misses: 1 },
            ..SimResult::default()
        };
        let r = EnergyModel::default().report(&sim);
        assert!((r.compute_energy - 10.0).abs() < 1e-9);
        assert!((r.memory_energy - (7.5 + 40.0)).abs() < 1e-9);
        assert!((r.static_energy - 80.0).abs() < 1e-9);
        assert!((r.energy - (10.0 + 47.5 + 80.0)).abs() < 1e-9);
        assert!(r.avg_power > 0.0);
    }

    #[test]
    fn fewer_cycles_less_static_energy() {
        let mk = |cycles| SimResult {
            cycles,
            ..SimResult::default()
        };
        let m = EnergyModel::default();
        assert!(m.report(&mk(50)).energy < m.report(&mk(100)).energy);
    }
}
