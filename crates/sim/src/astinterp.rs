//! Reference interpreter for the mini language — the semantic oracle.
//!
//! Semantics notes:
//!
//! * Flat namespace: all variables are global, zero-initialized unless the
//!   environment seeds them.
//! * A [`slc_ast::Stmt::Par`] group executes its members **in textual
//!   order** — exactly what the C emitted by the source-level compiler would
//!   do. The `||` annotation is a promise to the final compiler, not a
//!   semantic construct, so the oracle ignores it.
//! * Integer division/modulo follow Rust (`i64`) semantics; mixed int/float
//!   operations promote to float.
//! * Out-of-bounds array accesses are hard errors: a transformation that
//!   shifts a subscript out of the original access set has a bug, and the
//!   oracle must catch it rather than paper over it.
//! * A small set of pure intrinsics (`abs`, `min`, `max`, `sqrt`, `exp`,
//!   `sign`) is supported in *expression* position; statement-level calls
//!   (opaque side-effecting barriers) are runtime errors.

use slc_ast::{AssignOp, BinOp, CmpOp, Decl, Expr, LValue, Program, Stmt, Ty, UnOp};
use std::collections::HashMap;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    I(i64),
    /// 64-bit float.
    F(f64),
}

impl Value {
    /// Bit-exact equality: identical op sequences produce identical bits,
    /// including for NaN/inf results — which `PartialEq` on `f64` would
    /// spuriously report unequal.
    pub fn bit_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::I(a), Value::I(b)) => a == b,
            (Value::F(a), Value::F(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }

    /// Zero of a declared type.
    pub fn zero(ty: Ty) -> Value {
        match ty {
            Ty::Int => Value::I(0),
            Ty::Float => Value::F(0.0),
        }
    }

    /// Numeric value as f64 (for comparisons and promotion).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
        }
    }

    /// Truthiness (C semantics: non-zero is true).
    pub fn truthy(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::F(v) => v != 0.0,
        }
    }

    /// Integer view; floats must be integral (subscripts).
    pub fn as_index(self) -> Option<i64> {
        match self {
            Value::I(v) => Some(v),
            Value::F(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }
}

/// Execution environment: scalar and array storage.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Env {
    /// Scalar values by name.
    pub scalars: HashMap<String, Value>,
    /// Array contents by name (row-major for multi-dimensional arrays).
    pub arrays: HashMap<String, Vec<Value>>,
    /// Array dimension lists, used for row-major index linearization.
    pub dims: HashMap<String, Vec<usize>>,
}

impl Env {
    /// Environment with every declared variable zero-initialized.
    pub fn zeroed(prog: &Program) -> Env {
        let mut env = Env::default();
        for d in &prog.decls {
            env.declare(d);
        }
        env
    }

    /// Register one declaration (idempotent).
    pub fn declare(&mut self, d: &Decl) {
        if d.is_array() {
            self.arrays
                .entry(d.name.clone())
                .or_insert_with(|| vec![Value::zero(d.ty); d.len()]);
            self.dims.entry(d.name.clone()).or_insert(d.dims.clone());
        } else {
            self.scalars
                .entry(d.name.clone())
                .or_insert(Value::zero(d.ty));
        }
    }

    fn linear_index(&self, name: &str, idx: &[i64]) -> Result<usize, RuntimeError> {
        let dims = self
            .dims
            .get(name)
            .ok_or_else(|| RuntimeError::UndeclaredArray(name.to_string()))?;
        if dims.len() != idx.len() {
            return Err(RuntimeError::DimMismatch {
                array: name.to_string(),
                expected: dims.len(),
                got: idx.len(),
            });
        }
        let mut lin: i64 = 0;
        for (d, i) in dims.iter().zip(idx) {
            if *i < 0 || *i >= *d as i64 {
                return Err(RuntimeError::OutOfBounds {
                    array: name.to_string(),
                    index: *i,
                    dim: *d,
                });
            }
            lin = lin * (*d as i64) + i;
        }
        Ok(lin as usize)
    }

    /// Read an array element.
    pub fn load(&self, name: &str, idx: &[i64]) -> Result<Value, RuntimeError> {
        let lin = self.linear_index(name, idx)?;
        Ok(self.arrays[name][lin])
    }

    /// Write an array element.
    pub fn store(&mut self, name: &str, idx: &[i64], v: Value) -> Result<(), RuntimeError> {
        let lin = self.linear_index(name, idx)?;
        let arr = self.arrays.get_mut(name).unwrap();
        arr[lin] = v;
        Ok(())
    }
}

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Array access outside its declared bounds.
    OutOfBounds {
        /// array name
        array: String,
        /// offending index
        index: i64,
        /// dimension size
        dim: usize,
    },
    /// Array used with the wrong number of subscripts.
    DimMismatch {
        /// array name
        array: String,
        /// declared dimensionality
        expected: usize,
        /// used dimensionality
        got: usize,
    },
    /// Array name not declared.
    UndeclaredArray(String),
    /// Scalar name not declared.
    UndeclaredScalar(String),
    /// Non-integral value used as a subscript.
    BadSubscript(String),
    /// Division or modulo by zero.
    DivByZero,
    /// Opaque statement-level call (barrier) has no semantics.
    OpaqueCall(String),
    /// Unknown intrinsic in expression position.
    UnknownIntrinsic(String),
    /// `break` outside a loop (malformed program).
    StrayBreak,
    /// Exceeded the execution step budget (runaway loop).
    StepBudgetExhausted,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::OutOfBounds { array, index, dim } => {
                write!(f, "index {index} out of bounds for {array}[{dim}]")
            }
            RuntimeError::DimMismatch {
                array,
                expected,
                got,
            } => write!(f, "{array}: expected {expected} subscripts, got {got}"),
            RuntimeError::UndeclaredArray(n) => write!(f, "undeclared array {n}"),
            RuntimeError::UndeclaredScalar(n) => write!(f, "undeclared scalar {n}"),
            RuntimeError::BadSubscript(n) => write!(f, "non-integral subscript in {n}"),
            RuntimeError::DivByZero => write!(f, "division by zero"),
            RuntimeError::OpaqueCall(n) => write!(f, "opaque call {n}() has no semantics"),
            RuntimeError::UnknownIntrinsic(n) => write!(f, "unknown intrinsic {n}"),
            RuntimeError::StrayBreak => write!(f, "break outside loop"),
            RuntimeError::StepBudgetExhausted => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Control-flow signal from statement execution.
enum Flow {
    Normal,
    Break,
}

/// Interpreter with a step budget.
pub struct Interp<'a> {
    env: &'a mut Env,
    steps_left: u64,
}

pub(crate) fn arith(op: BinOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
    use Value::*;
    Ok(match (op, a, b) {
        (BinOp::Add, I(x), I(y)) => I(x.wrapping_add(y)),
        (BinOp::Sub, I(x), I(y)) => I(x.wrapping_sub(y)),
        (BinOp::Mul, I(x), I(y)) => I(x.wrapping_mul(y)),
        (BinOp::Div, I(x), I(y)) => {
            if y == 0 {
                return Err(RuntimeError::DivByZero);
            }
            I(x.wrapping_div(y))
        }
        (BinOp::Mod, I(x), I(y)) => {
            if y == 0 {
                return Err(RuntimeError::DivByZero);
            }
            I(x.wrapping_rem(y))
        }
        (BinOp::Mod, x, y) => {
            let (x, y) = (x.as_f64(), y.as_f64());
            if y == 0.0 {
                return Err(RuntimeError::DivByZero);
            }
            F(x % y)
        }
        (BinOp::Add, x, y) => F(x.as_f64() + y.as_f64()),
        (BinOp::Sub, x, y) => F(x.as_f64() - y.as_f64()),
        (BinOp::Mul, x, y) => F(x.as_f64() * y.as_f64()),
        (BinOp::Div, x, y) => F(x.as_f64() / y.as_f64()),
        (BinOp::And, x, y) => I((x.truthy() && y.truthy()) as i64),
        (BinOp::Or, x, y) => I((x.truthy() || y.truthy()) as i64),
        (BinOp::Cmp(c), x, y) => I(c.eval(x.as_f64(), y.as_f64()) as i64),
    })
}

impl<'a> Interp<'a> {
    /// New interpreter over `env` with a step budget (one budget unit per
    /// statement execution).
    pub fn new(env: &'a mut Env, budget: u64) -> Interp<'a> {
        Interp {
            env,
            steps_left: budget,
        }
    }

    fn eval_subscripts(&mut self, name: &str, idx: &[Expr]) -> Result<Vec<i64>, RuntimeError> {
        idx.iter()
            .map(|e| {
                self.eval(e)?
                    .as_index()
                    .ok_or_else(|| RuntimeError::BadSubscript(name.to_string()))
            })
            .collect()
    }

    /// Evaluate an expression.
    pub fn eval(&mut self, e: &Expr) -> Result<Value, RuntimeError> {
        match e {
            Expr::Int(v) => Ok(Value::I(*v)),
            Expr::Float(v) => Ok(Value::F(*v)),
            Expr::Var(n) => self
                .env
                .scalars
                .get(n)
                .copied()
                .ok_or_else(|| RuntimeError::UndeclaredScalar(n.clone())),
            Expr::Index(n, idx) => {
                let idx = self.eval_subscripts(n, idx)?;
                self.env.load(n, &idx)
            }
            Expr::Unary(UnOp::Neg, a) => Ok(match self.eval(a)? {
                Value::I(v) => Value::I(-v),
                Value::F(v) => Value::F(-v),
            }),
            Expr::Unary(UnOp::Not, a) => Ok(Value::I(!self.eval(a)?.truthy() as i64)),
            Expr::Binary(BinOp::And, a, b) => {
                // short-circuit
                if !self.eval(a)?.truthy() {
                    return Ok(Value::I(0));
                }
                Ok(Value::I(self.eval(b)?.truthy() as i64))
            }
            Expr::Binary(BinOp::Or, a, b) => {
                if self.eval(a)?.truthy() {
                    return Ok(Value::I(1));
                }
                Ok(Value::I(self.eval(b)?.truthy() as i64))
            }
            Expr::Binary(op, a, b) => {
                let (a, b) = (self.eval(a)?, self.eval(b)?);
                arith(*op, a, b)
            }
            Expr::Select(c, t, f) => {
                if self.eval(c)?.truthy() {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            Expr::Call(name, args) => {
                let vals: Result<Vec<Value>, _> = args.iter().map(|a| self.eval(a)).collect();
                let vals = vals?;
                intrinsic(name, &vals)
            }
        }
    }

    fn assign(&mut self, target: &LValue, op: AssignOp, value: &Expr) -> Result<(), RuntimeError> {
        let rhs = self.eval(value)?;
        let combine = |old: Value| -> Result<Value, RuntimeError> {
            match op {
                AssignOp::Set => Ok(rhs),
                AssignOp::Add => arith(BinOp::Add, old, rhs),
                AssignOp::Sub => arith(BinOp::Sub, old, rhs),
                AssignOp::Mul => arith(BinOp::Mul, old, rhs),
                AssignOp::Div => arith(BinOp::Div, old, rhs),
            }
        };
        match target {
            LValue::Var(n) => {
                let old = self
                    .env
                    .scalars
                    .get(n)
                    .copied()
                    .ok_or_else(|| RuntimeError::UndeclaredScalar(n.clone()))?;
                let newv = combine(old)?;
                // preserve the declared storage type
                let stored = match old {
                    Value::I(_) => Value::I(newv.as_index().unwrap_or(newv.as_f64() as i64)),
                    Value::F(_) => Value::F(newv.as_f64()),
                };
                self.env.scalars.insert(n.clone(), stored);
            }
            LValue::Index(n, idx) => {
                let idx = self.eval_subscripts(n, idx)?;
                let old = self.env.load(n, &idx)?;
                let newv = combine(old)?;
                let stored = match old {
                    Value::I(_) => Value::I(newv.as_index().unwrap_or(newv.as_f64() as i64)),
                    Value::F(_) => Value::F(newv.as_f64()),
                };
                self.env.store(n, &idx, stored)?;
            }
        }
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, RuntimeError> {
        for s in stmts {
            if let Flow::Break = self.exec(s)? {
                return Ok(Flow::Break);
            }
        }
        Ok(Flow::Normal)
    }

    /// Execute a statement list to completion (crate-internal entry point
    /// for the differential tests against [`crate::fastinterp`]).
    #[cfg(test)]
    pub(crate) fn run_block(&mut self, stmts: &[Stmt]) -> Result<(), RuntimeError> {
        self.exec_block(stmts).map(|_| ())
    }

    /// Execute one statement.
    fn exec(&mut self, s: &Stmt) -> Result<Flow, RuntimeError> {
        if self.steps_left == 0 {
            return Err(RuntimeError::StepBudgetExhausted);
        }
        self.steps_left -= 1;
        match s {
            Stmt::Assign { target, op, value } => {
                self.assign(target, *op, value)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond)?.truthy() {
                    self.exec_block(then_branch)
                } else {
                    self.exec_block(else_branch)
                }
            }
            Stmt::For(f) => {
                // hoisted out of the trip loop: one allocation per loop
                // entry instead of three per iteration
                let target = LValue::Var(f.var.clone());
                let cond_var = Expr::Var(f.var.clone());
                let step_expr = Expr::Int(f.step);
                // init
                self.assign(&target, AssignOp::Set, &f.init)?;
                loop {
                    if self.steps_left == 0 {
                        return Err(RuntimeError::StepBudgetExhausted);
                    }
                    self.steps_left -= 1;
                    let v = self.eval(&cond_var)?;
                    let b = self.eval(&f.bound)?;
                    let cont = match f.cmp {
                        CmpOp::Lt => v.as_f64() < b.as_f64(),
                        CmpOp::Le => v.as_f64() <= b.as_f64(),
                        CmpOp::Gt => v.as_f64() > b.as_f64(),
                        CmpOp::Ge => v.as_f64() >= b.as_f64(),
                        CmpOp::Eq => v.as_f64() == b.as_f64(),
                        CmpOp::Ne => v.as_f64() != b.as_f64(),
                    };
                    if !cont {
                        break;
                    }
                    if let Flow::Break = self.exec_block(&f.body)? {
                        break;
                    }
                    self.assign(&target, AssignOp::Add, &step_expr)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body } => {
                loop {
                    if self.steps_left == 0 {
                        return Err(RuntimeError::StepBudgetExhausted);
                    }
                    self.steps_left -= 1;
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    if let Flow::Break = self.exec_block(body)? {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Block(b) | Stmt::Par(b) => self.exec_block(b),
            Stmt::Break => Ok(Flow::Break),
            Stmt::Call(n, _) => Err(RuntimeError::OpaqueCall(n.clone())),
        }
    }
}

fn intrinsic(name: &str, args: &[Value]) -> Result<Value, RuntimeError> {
    let f = |k: usize| args.get(k).map(|v| v.as_f64()).unwrap_or(0.0);
    match (name, args.len()) {
        ("abs", 1) => Ok(match args[0] {
            Value::I(v) => Value::I(v.abs()),
            Value::F(v) => Value::F(v.abs()),
        }),
        ("sqrt", 1) => Ok(Value::F(f(0).sqrt())),
        ("exp", 1) => Ok(Value::F(f(0).exp())),
        ("sign", 1) => Ok(Value::F(f(0).signum())),
        ("min", 2) => Ok(Value::F(f(0).min(f(1)))),
        ("max", 2) => Ok(Value::F(f(0).max(f(1)))),
        _ => Err(RuntimeError::UnknownIntrinsic(name.to_string())),
    }
}

/// Default step budget: generous for the benchmark loops, small enough to
/// catch accidental infinite loops quickly.
pub const DEFAULT_BUDGET: u64 = 50_000_000;

/// Run a program to completion in `env`.
///
/// Routes through the slot-indexed interpreter in [`crate::fastinterp`];
/// semantics are bit-identical to the tree walk
/// (see [`run_in_env_tree`]).
pub fn run_in_env(prog: &Program, env: &mut Env) -> Result<(), RuntimeError> {
    for d in &prog.decls {
        env.declare(d);
    }
    let rp = crate::fastinterp::resolve(prog);
    crate::fastinterp::run_resolved(&rp, env, DEFAULT_BUDGET)
}

/// [`run_in_env`] with a wall-clock span (category `"interp"`, name
/// `interp.run`) on `tracer` and the number of interpreter steps executed
/// (the deterministic "statements simulated" measure) returned on success.
/// Semantics are identical to [`run_in_env`].
pub fn run_in_env_spanned(
    prog: &Program,
    env: &mut Env,
    tracer: &slc_trace::Tracer,
) -> Result<u64, RuntimeError> {
    let mut span = tracer.span("interp", "interp.run");
    for d in &prog.decls {
        env.declare(d);
    }
    let rp = crate::fastinterp::resolve(prog);
    let out = crate::fastinterp::run_resolved_counted(&rp, env, DEFAULT_BUDGET);
    if let Ok(steps) = &out {
        span.arg("steps", *steps);
    }
    out
}

/// [`run_in_env`] via the original tree-walking interpreter. Kept as the
/// reference implementation: the differential tests and the interpreter
/// throughput benchmark run both paths and hold them equal.
pub fn run_in_env_tree(prog: &Program, env: &mut Env) -> Result<(), RuntimeError> {
    for d in &prog.decls {
        env.declare(d);
    }
    let mut interp = Interp::new(env, DEFAULT_BUDGET);
    interp.exec_block(&prog.stmts).map(|_| ())
}

/// Run a program on a zeroed environment and return the final state.
///
/// ```
/// use slc_sim::astinterp::{run_program, Value};
/// use slc_ast::parse_program;
///
/// let p = parse_program("float s; int i; for (i = 1; i <= 4; i++) s += i;").unwrap();
/// let env = run_program(&p).unwrap();
/// assert_eq!(env.scalars["s"], Value::F(10.0));
/// ```
pub fn run_program(prog: &Program) -> Result<Env, RuntimeError> {
    let mut env = Env::zeroed(prog);
    run_in_env(prog, &mut env)?;
    Ok(env)
}

/// [`run_program`] with an explicit step budget.
pub fn run_program_budget(prog: &Program, budget: u64) -> Result<Env, RuntimeError> {
    let mut env = Env::zeroed(prog);
    let rp = crate::fastinterp::resolve(prog);
    crate::fastinterp::run_resolved(&rp, &mut env, budget)?;
    Ok(env)
}

/// Deterministic pseudo-random environment (xorshift64*), seeding every
/// declared variable with small non-trivial values. Floats get values in
/// (-4, 4) rounded to multiples of 1/8 so float arithmetic stays exact in
/// comparisons; ints get values in [-8, 8).
pub fn random_env(prog: &Program, seed: u64) -> Env {
    let mut state = seed.wrapping_mul(2685821657736338717).max(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(2685821657736338717);
        state
    };
    let mut env = Env::zeroed(prog);
    for d in &prog.decls {
        match d.ty {
            Ty::Int => {
                let gen_i = |r: u64| Value::I((r % 16) as i64 - 8);
                if d.is_array() {
                    let arr = env.arrays.get_mut(&d.name).unwrap();
                    for v in arr.iter_mut() {
                        *v = gen_i(next());
                    }
                } else {
                    env.scalars.insert(d.name.clone(), gen_i(next()));
                }
            }
            Ty::Float => {
                let gen_f = |r: u64| Value::F(((r % 64) as f64 - 32.0) / 8.0);
                if d.is_array() {
                    let arr = env.arrays.get_mut(&d.name).unwrap();
                    for v in arr.iter_mut() {
                        *v = gen_f(next());
                    }
                } else {
                    env.scalars.insert(d.name.clone(), gen_f(next()));
                }
            }
        }
    }
    env
}

/// A mismatch found by [`equivalent`].
#[derive(Debug, Clone, PartialEq)]
pub enum Mismatch {
    /// One of the programs failed at runtime.
    Runtime(RuntimeError),
    /// A compared variable differs.
    Differs {
        /// variable name
        name: String,
        /// rendered value from the first program
        left: String,
        /// rendered value from the second program
        right: String,
    },
}

/// Check observational equivalence of two programs over the variables
/// declared in `reference` (the original program): both run on identical
/// pseudo-random environments for each seed, and every reference-declared
/// scalar and array must end bit-identical.
pub fn equivalent(
    reference: &Program,
    transformed: &Program,
    seeds: &[u64],
) -> Result<(), Mismatch> {
    // resolve each program once; every seed reuses the resolved form
    let rp_ref = crate::fastinterp::resolve(reference);
    let rp_tr = crate::fastinterp::resolve(transformed);
    for &seed in seeds {
        let env0 = random_env(reference, seed);
        let mut e1 = env0.clone();
        for d in &reference.decls {
            e1.declare(d);
        }
        crate::fastinterp::run_resolved(&rp_ref, &mut e1, DEFAULT_BUDGET)
            .map_err(Mismatch::Runtime)?;
        let mut e2 = env0;
        // the transformed program may declare temporaries the reference
        // does not have; zero-init them exactly like `run_in_env` would
        for d in &transformed.decls {
            e2.declare(d);
        }
        crate::fastinterp::run_resolved(&rp_tr, &mut e2, DEFAULT_BUDGET)
            .map_err(Mismatch::Runtime)?;
        for d in &reference.decls {
            if d.is_array() {
                let (a, b) = (&e1.arrays[&d.name], &e2.arrays[&d.name]);
                if let Some(k) = a.iter().zip(b.iter()).position(|(x, y)| !x.bit_eq(*y)) {
                    return Err(Mismatch::Differs {
                        name: format!("{}[{k}]", d.name),
                        left: format!("{:?}", a[k]),
                        right: format!("{:?}", b[k]),
                    });
                }
            } else {
                let (a, b) = (e1.scalars[&d.name], e2.scalars[&d.name]);
                if !a.bit_eq(b) {
                    return Err(Mismatch::Differs {
                        name: d.name.clone(),
                        left: format!("{a:?}"),
                        right: format!("{b:?}"),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_program;

    #[test]
    fn basic_loop_semantics() {
        let p = parse_program(
            "float A[10]; float s; int i;\n\
             for (i = 0; i < 10; i++) A[i] = i * 2;\n\
             for (i = 0; i < 10; i++) s += A[i];",
        )
        .unwrap();
        let env = run_program(&p).unwrap();
        assert_eq!(env.scalars["s"], Value::F(90.0));
        assert_eq!(env.scalars["i"], Value::I(10));
    }

    #[test]
    fn par_executes_in_order() {
        let p = parse_program("float x; par { x = 1.0; x = x + 1.0; }").unwrap();
        let env = run_program(&p).unwrap();
        assert_eq!(env.scalars["x"], Value::F(2.0));
    }

    #[test]
    fn if_else_and_break() {
        let p = parse_program(
            "int i; int hits;\n\
             for (i = 0; i < 100; i++) { if (i == 5) break; else hits += 1; }",
        )
        .unwrap();
        let env = run_program(&p).unwrap();
        assert_eq!(env.scalars["hits"], Value::I(5));
        assert_eq!(env.scalars["i"], Value::I(5));
    }

    #[test]
    fn while_loop() {
        let p = parse_program("int i; int n; n = 10; while (i < n) i += 3;").unwrap();
        let env = run_program(&p).unwrap();
        assert_eq!(env.scalars["i"], Value::I(12));
    }

    #[test]
    fn out_of_bounds_detected() {
        let p = parse_program("float A[4]; int i; for (i = 0; i < 5; i++) A[i] = 1.0;").unwrap();
        assert!(matches!(
            run_program(&p),
            Err(RuntimeError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn two_dim_rowmajor() {
        let p = parse_program(
            "float M[3][4]; int i; int j;\n\
             for (i = 0; i < 3; i++) for (j = 0; j < 4; j++) M[i][j] = i * 10 + j;",
        )
        .unwrap();
        let env = run_program(&p).unwrap();
        assert_eq!(env.arrays["M"][0], Value::F(0.0));
        assert_eq!(env.arrays["M"][5], Value::F(11.0)); // [1][1]
        assert_eq!(env.arrays["M"][11], Value::F(23.0)); // [2][3]
    }

    #[test]
    fn int_division_truncates() {
        let p = parse_program("int a; a = 7 / 2;").unwrap();
        assert_eq!(run_program(&p).unwrap().scalars["a"], Value::I(3));
        let p = parse_program("float a; a = 7 / 2;").unwrap();
        // int literals divide as ints, then store to float
        assert_eq!(run_program(&p).unwrap().scalars["a"], Value::F(3.0));
    }

    #[test]
    fn short_circuit() {
        // `i != 0 && A[10/i] > 0` must not divide by zero when i == 0
        let p = parse_program(
            "float A[20]; int i; int ok; i = 0; if (i != 0 && A[10 / i] > 0.0) ok = 1;",
        )
        .unwrap();
        assert!(run_program(&p).is_ok());
    }

    #[test]
    fn ternary_and_intrinsics() {
        let p = parse_program("float a; float b; a = -3.5; b = a < 0.0 ? abs(a) : a;").unwrap();
        assert_eq!(run_program(&p).unwrap().scalars["b"], Value::F(3.5));
        let p = parse_program("float m; m = max(2.0, 5.0) + min(1.0, 0.5);").unwrap();
        assert_eq!(run_program(&p).unwrap().scalars["m"], Value::F(5.5));
    }

    #[test]
    fn opaque_call_errors() {
        let p = parse_program("int x; f(x);").unwrap();
        assert!(matches!(run_program(&p), Err(RuntimeError::OpaqueCall(_))));
    }

    #[test]
    fn infinite_loop_caught() {
        let p = parse_program("int i; while (1) i = 0;").unwrap();
        assert_eq!(
            run_program_budget(&p, 10_000),
            Err(RuntimeError::StepBudgetExhausted)
        );
    }

    #[test]
    fn random_env_deterministic() {
        let p = parse_program("float A[8]; int x;").unwrap();
        let a = random_env(&p, 42);
        let b = random_env(&p, 42);
        assert_eq!(a, b);
        let c = random_env(&p, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn equivalence_detects_difference() {
        let p1 = parse_program("float A[4]; int i; for (i = 0; i < 4; i++) A[i] += 1.0;").unwrap();
        let p2 = parse_program("float A[4]; int i; for (i = 0; i < 4; i++) A[i] += 2.0;").unwrap();
        assert!(equivalent(&p1, &p1, &[1, 2]).is_ok());
        assert!(matches!(
            equivalent(&p1, &p2, &[1]),
            Err(Mismatch::Differs { .. })
        ));
    }

    #[test]
    fn downward_loop() {
        let p = parse_program("float A[10]; int i; for (i = 9; i >= 0; i--) A[i] = i;").unwrap();
        let env = run_program(&p).unwrap();
        assert_eq!(env.arrays["A"][9], Value::F(9.0));
        assert_eq!(env.scalars["i"], Value::I(-1));
    }
}
