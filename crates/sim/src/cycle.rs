//! Trace-based cycle-level simulator.
//!
//! Executes *scheduled* IR (bundles from the list or modulo scheduler)
//! against a machine description, producing cycle counts, functional-unit
//! usage and L1 cache statistics. Values are never computed — the semantic
//! oracle is the AST interpreter — but **addresses are exact**: every memory
//! op carries a symbolic linear form over the enclosing loop variables,
//! evaluated against the live loop indices (plus the op's pipeline
//! iteration offset), which drives a set-associative LRU L1 model.
//!
//! Timing model:
//!
//! * **StaticVliw** — bundles issue as scheduled; a bundle stalls until all
//!   its source registers are ready (covers loop-carried latencies the
//!   per-block scheduler cannot see). A load miss extends its destination's
//!   ready time by the miss penalty (non-blocking loads); store misses are
//!   absorbed by the store buffer on multi-issue machines and stall the
//!   pipeline on single-issue machines.
//! * **DynamicInOrder** — the op stream issues in order, up to `issue_width`
//!   per cycle, constrained by per-class units and operand readiness
//!   (scoreboard). This models the paper's superscalar targets, where the
//!   hardware — not the compiler — finds the parallelism, and source order
//!   (hence SLMS) determines how much it can find.
//! * Spill traffic charged by the register allocator adds
//!   `⌈extra/mem_units⌉` cycles per loop iteration.
//!
//! # Fast path ([`SimFidelity::Fast`], the default)
//!
//! The hot shape — an innermost counted loop whose body is a single
//! scheduled block — is executed through a compiled fast path that is
//! **exact by construction** (no approximation; [`SimFidelity::Reference`]
//! keeps the naive trip-by-trip walk as the differential oracle):
//!
//! 1. **Compiled address streams.** Each memory op's linear form is lowered
//!    once per loop entry into `addr(t) = A + B·t` (element units); trips
//!    advance a cursor by `B` instead of re-walking the `LinForm` term map
//!    and hashing loop-variable names per access.
//! 2. **Decoupled cache pass.** The cache model's behaviour depends only on
//!    the address sequence — never on stall timing — so phase A runs the
//!    cache alone over *all* trips (streams + spill probes, in static op
//!    order, exactly the order the naive walk issues probes) and records a
//!    per-access miss flag.
//! 3. **Steady-state fast-forward.** Phase B replays timing trip by trip,
//!    consuming recorded flags. The timing recurrence is translation
//!    invariant: shifting the current cycle and every live scoreboard entry
//!    by Δ shifts the outcome by Δ. Per trip the simulator fingerprints the
//!    *relative* machine state (scoreboard ready offsets clamped at 0,
//!    current-cycle issue-slot usage); when a fingerprint repeats with
//!    period `p` **and** the remaining recorded miss flags are verified
//!    `p`-periodic by direct comparison, the remaining full periods are
//!    skipped and the cycle counter advanced by `periods × Δcycle`. Dynamic
//!    op counts, spill accesses and cache statistics are per-trip constants
//!    or already known from phase A, so every reported number is
//!    bit-identical to the reference walk.

use slc_machine::ir::{Bundle, Op, OpClass, ALL_CLASSES};
use slc_machine::mach::{IssueModel, MachineDesc};
use std::collections::HashMap;

/// L1 statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// cache hits
    pub hits: u64,
    /// cache misses
    pub misses: u64,
}

/// Simulation result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimResult {
    /// total cycles
    pub cycles: u64,
    /// dynamic operation count per class (indexed like `ALL_CLASSES`)
    pub class_counts: [u64; 7],
    /// L1 behaviour
    pub cache: CacheStats,
    /// dynamic spill accesses charged
    pub spill_accesses: u64,
}

impl SimResult {
    /// Total dynamic operations.
    pub fn total_ops(&self) -> u64 {
        self.class_counts.iter().sum()
    }
}

/// Simulation fidelity: same numbers, different wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimFidelity {
    /// Compiled address streams + decoupled cache pass + steady-state
    /// fast-forward. Exact; the production default.
    #[default]
    Fast,
    /// The naive symbolic trip-by-trip walk, kept as the differential
    /// oracle for the fast path.
    Reference,
}

/// Steady-state fast-forward counters (diagnostics; not part of
/// [`SimResult`] so reference and fast runs compare equal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FfStats {
    /// loop entries executed through the compiled fast path
    pub fast_loops: u64,
    /// loop entries that fell back to the trip-by-trip walk (nested bodies,
    /// oversized flag buffers, reference fidelity)
    pub fallback_loops: u64,
    /// fast-path loop entries where fast-forward fired
    pub ff_hits: u64,
    /// fast-path loop entries where no steady state was detected
    pub ff_misses: u64,
    /// total loop trips simulated or skipped
    pub trips_total: u64,
    /// trips skipped by fast-forward extrapolation
    pub trips_skipped: u64,
}

impl FfStats {
    /// Accumulate counters from another run.
    pub fn merge(&mut self, o: &FfStats) {
        self.fast_loops += o.fast_loops;
        self.fallback_loops += o.fallback_loops;
        self.ff_hits += o.ff_hits;
        self.ff_misses += o.ff_misses;
        self.trips_total += o.trips_total;
        self.trips_skipped += o.trips_skipped;
    }
}

/// Result of [`simulate_with`]: the reported numbers plus fast-path
/// diagnostics.
#[derive(Debug, Clone, Default)]
pub struct SimOutcome {
    /// the reported simulation numbers (fidelity-independent)
    pub result: SimResult,
    /// fast-path / steady-state counters
    pub ff: FfStats,
}

/// One compiled program segment.
#[derive(Debug, Clone)]
pub enum Seg {
    /// Straight-line scheduled code, executed once.
    Straight(Vec<Bundle>),
    /// A counted loop.
    Loop(SimLoop),
}

/// A loop ready for simulation. For software-pipelined loops the builder
/// already folded prologue/epilogue ramp iterations into `trips` and set
/// per-op `iter_offset`s.
#[derive(Debug, Clone)]
pub struct SimLoop {
    /// loop variable name (bound in the address environment)
    pub var: String,
    /// first index value
    pub init: i64,
    /// additive step
    pub step: i64,
    /// number of times the body executes
    pub trips: i64,
    /// body segments (bundles and nested loops)
    pub body: Vec<Seg>,
    /// extra memory accesses charged per iteration for register spills
    pub extra_mem_per_iter: usize,
}

/// A compiled program: segments plus the array address map.
#[derive(Debug, Clone, Default)]
pub struct CompiledProgram {
    /// program segments in execution order
    pub segs: Vec<Seg>,
    /// arrays sizes in elements (defines the address-space layout)
    pub arrays: Vec<(String, usize)>,
}

/// Set-associative L1 cache with LRU replacement.
struct Cache {
    nsets: usize,
    ways: usize,
    line: usize,
    /// per set: (tag, last-touch counter) per way
    sets: Vec<Vec<(u64, u64)>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    fn new(m: &MachineDesc) -> Cache {
        let ways = m.cache.ways.max(1);
        let nsets = (m.cache.size / m.cache.line / ways).max(1);
        Cache {
            nsets,
            ways,
            line: m.cache.line,
            sets: vec![Vec::new(); nsets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Probe a byte address; true on hit.
    fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let lineno = addr / self.line as u64;
        let set = (lineno % self.nsets as u64) as usize;
        let tag = lineno / self.nsets as u64;
        let ways = &mut self.sets[set];
        if let Some(slot) = ways.iter_mut().find(|(t, _)| *t == tag) {
            slot.1 = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if ways.len() < self.ways {
            ways.push((tag, self.tick));
        } else {
            // evict LRU
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k)
                .unwrap();
            ways[lru] = (tag, self.tick);
        }
        false
    }
}

fn class_idx(c: OpClass) -> usize {
    ALL_CLASSES.iter().position(|&x| x == c).unwrap()
}

/// Per-cycle issue-slot usage for the in-order model, as a tagged ring.
///
/// Exactness: the in-order walk only ever *reads* usage at cycles
/// `t ≥ current cycle`, and every written tag satisfies `tag ≤ current
/// cycle` immediately after the write (the issue advances `cycle` to the
/// slot it issued in). Operand readiness bounds the lookahead by
/// `max latency + miss penalty + 1`, so with a capacity larger than that
/// window two live cycles can never collide in a slot and stale tags can be
/// lazily reset — bit-identical to an unbounded map.
struct UsageRing {
    tags: Vec<u64>,
    classes: Vec<[u32; 7]>,
    issued: Vec<u32>,
    mask: u64,
}

impl UsageRing {
    fn new(m: &MachineDesc) -> UsageRing {
        let span =
            m.latency.iter().copied().max().unwrap_or(1) as u64 + m.cache.miss_penalty as u64 + 4;
        let cap = span.next_power_of_two().max(64) as usize;
        UsageRing {
            tags: vec![u64::MAX; cap],
            classes: vec![[0; 7]; cap],
            issued: vec![0; cap],
            mask: cap as u64 - 1,
        }
    }

    /// Usage counters for cycle `t`, resetting a stale slot.
    #[inline]
    fn slot(&mut self, t: u64) -> (&mut [u32; 7], &mut u32) {
        let i = (t & self.mask) as usize;
        if self.tags[i] != t {
            self.tags[i] = t;
            self.classes[i] = [0; 7];
            self.issued[i] = 0;
        }
        (&mut self.classes[i], &mut self.issued[i])
    }

    /// Read-only view of cycle `t`'s counters, if that slot is live.
    #[inline]
    fn peek(&self, t: u64) -> Option<(&[u32; 7], u32)> {
        let i = (t & self.mask) as usize;
        if self.tags[i] == t {
            Some((&self.classes[i], self.issued[i]))
        } else {
            None
        }
    }
}

/// A memory op's address stream inside one loop entry: `elem(t) = cur`,
/// advanced by `step` per trip, byte address
/// `base.saturating_add_signed(elem) * elem_bytes` — the exact arithmetic
/// of the symbolic walk, strength-reduced.
struct AddrStream {
    /// array base (element offset); `None` when the array is unmapped and
    /// the op never probes the cache (matches the symbolic walk)
    base: Option<u64>,
    cur: i64,
    step: i64,
}

/// Pre-resolved op for the fast path: class/latency/operands flattened so a
/// trip touches no `String`s, no `LinForm`s and no allocation.
struct FastOp {
    ci: usize,
    lat: u64,
    dst: Option<usize>,
    srcs: Vec<usize>,
    /// `(stream index, is_store)` for memory ops
    mem: Option<(usize, bool)>,
    fp_blocking: bool,
}

/// Flag-buffer ceiling for the decoupled cache pass (bytes); pathological
/// trip counts fall back to the trip-by-trip walk instead of allocating.
const MAX_FLAG_BYTES: usize = 64 << 20;

/// How many multiples of the base flag period the steady-state detector
/// compares against (covers scoreboard transients whose period is a small
/// multiple of the miss-pattern period).
const FF_PERIOD_MULTIPLES: i64 = 8;

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

struct SimState<'m> {
    m: &'m MachineDesc,
    tracer: &'m slc_trace::Tracer,
    fidelity: SimFidelity,
    cache: Cache,
    result: SimResult,
    ff: FfStats,
    /// register → cycle at which its value is ready (dense scoreboard;
    /// absent-from-map and 0 are equivalent: both mean "no constraint")
    ready: Vec<u64>,
    /// current cycle (next issue opportunity)
    cycle: u64,
    /// loop variable environment (plus `__step_<var>` entries)
    env: HashMap<String, i64>,
    /// array base element offsets
    base: HashMap<String, u64>,
    /// dedicated spill slot base
    spill_base: u64,
    /// per-cycle resource usage for the in-order model
    usage: UsageRing,
    /// reusable per-access miss-flag buffer for the decoupled cache pass
    flags: Vec<u8>,
}

impl SimState<'_> {
    fn addr_of(&self, op: &Op) -> Option<u64> {
        let (array, lin, _) = op.mem()?;
        let base = *self.base.get(array)?;
        let elem = match lin {
            Some(l) => {
                let mut v = l.konst;
                for (var, c) in &l.terms {
                    let val = self.env.get(var).copied().unwrap_or(0);
                    v += c * val;
                }
                // pipeline offset: the op runs `iter_offset` iterations
                // ahead of the loop's nominal index
                if op.iter_offset != 0 {
                    if let Some((var, c)) = l.terms.iter().next() {
                        let step = self.env.get(&format!("__step_{var}")).copied().unwrap_or(1);
                        v += c * op.iter_offset * step;
                    }
                }
                v
            }
            None => 0, // unknown address: array base (documented approximation)
        };
        Some(base.saturating_add_signed(elem) * self.m.elem_bytes as u64)
    }

    fn count(&mut self, op: &Op) {
        self.result.class_counts[class_idx(op.class())] += 1;
    }

    /// Charge a memory access; returns extra latency (0 on hit).
    fn mem_access(&mut self, op: &Op) -> u64 {
        let Some(addr) = self.addr_of(op) else {
            return 0;
        };
        if self.cache.access(addr) {
            0
        } else {
            self.m.cache.miss_penalty as u64
        }
    }

    fn exec_bundle_vliw(&mut self, bundle: &[Op]) {
        // stall until every source is ready
        let mut start = self.cycle;
        for op in bundle {
            op.visit_srcs(|r| start = start.max(self.ready[r as usize]));
        }
        let mut store_stall = 0u64;
        for op in bundle {
            self.count(op);
            let mut lat = self.m.latency_of(op.class()) as u64;
            if op.mem().is_some() {
                let extra = self.mem_access(op);
                let is_store = matches!(op.mem(), Some((_, _, true)));
                if is_store {
                    if self.m.issue_width == 1 {
                        store_stall += extra; // blocking writes on scalar cores
                    }
                } else {
                    lat += extra;
                }
            }
            if let Some(d) = op.dst() {
                self.ready[d as usize] = start + lat;
            }
        }
        self.cycle = start + 1 + store_stall;
    }

    fn exec_op_inorder(&mut self, op: &Op) {
        // operand readiness
        let mut t = self.cycle;
        op.visit_srcs(|r| t = t.max(self.ready[r as usize]));
        // find an issue slot with free resources
        let ci = class_idx(op.class());
        let width = self.m.issue_width as u32;
        let cap = self.m.units[ci].max(1) as u32;
        loop {
            let (classes, issued) = self.usage.slot(t);
            if *issued < width && classes[ci] < cap {
                classes[ci] += 1;
                *issued += 1;
                break;
            }
            t += 1;
        }
        self.count(op);
        let mut lat = self.m.latency_of(op.class()) as u64;
        let mut stall = 0u64;
        if op.mem().is_some() {
            let extra = self.mem_access(op);
            let is_store = matches!(op.mem(), Some((_, _, true)));
            if is_store {
                if self.m.issue_width == 1 {
                    stall = extra;
                }
            } else {
                lat += extra;
            }
        }
        if let Some(d) = op.dst() {
            self.ready[d as usize] = t + lat;
        }
        // Single-issue cores execute floating point in software (ARM7TDMI
        // has no FPU): the emulation routine blocks the pipeline for its
        // full latency instead of overlapping.
        let fp_blocking = self.m.issue_width == 1
            && matches!(op.class(), OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv);
        if fp_blocking {
            stall = stall.max(lat);
        }
        // in-order: the next op cannot issue before this one
        self.cycle = t + stall;
    }

    fn exec_seg(&mut self, seg: &Seg) {
        match seg {
            Seg::Straight(bundles) => match self.m.issue {
                IssueModel::StaticVliw => {
                    for b in bundles {
                        self.exec_bundle_vliw(b);
                    }
                }
                IssueModel::DynamicInOrder => {
                    for b in bundles {
                        for op in b {
                            self.exec_op_inorder(op);
                        }
                    }
                }
            },
            Seg::Loop(l) => {
                let mut span = self
                    .tracer
                    .span_dyn("sim", || format!("sim.loop {}", l.var));
                span.arg("trips", l.trips.max(0) as u64);
                self.env.insert(l.var.clone(), l.init);
                self.env.insert(format!("__step_{}", l.var), l.step);
                self.ff.trips_total += l.trips.max(0) as u64;
                if self.fidelity == SimFidelity::Fast && self.try_exec_loop_fast(l) {
                    span.arg("path", "fast");
                    return;
                }
                self.ff.fallback_loops += 1;
                span.arg("path", "fallback");
                self.exec_loop_reference(l);
            }
        }
    }

    /// The naive trip-by-trip walk (reference fidelity; also the fallback
    /// for loop shapes the fast path does not compile).
    fn exec_loop_reference(&mut self, l: &SimLoop) {
        // Spill stores/reloads are dependent memory traffic the
        // scheduler could not hide: each access costs its slot plus
        // the machine's spill penalty, spread over the memory ports.
        let spill_cycles = self.spill_cycles_of(l);
        for t in 0..l.trips {
            for s in &l.body {
                self.exec_seg(s);
            }
            if l.extra_mem_per_iter > 0 {
                // spill traffic: touches the spill slots (usually hits)
                self.probe_spills(l.extra_mem_per_iter);
                self.result.spill_accesses += l.extra_mem_per_iter as u64;
                self.cycle += spill_cycles;
            }
            self.env.insert(l.var.clone(), l.init + (t + 1) * l.step);
        }
    }

    fn spill_cycles_of(&self, l: &SimLoop) -> u64 {
        if l.extra_mem_per_iter > 0 {
            let units = self.m.units_of(OpClass::Mem).max(1) as u64;
            let cost = l.extra_mem_per_iter as u64 * (1 + self.m.spill_penalty as u64);
            cost.div_ceil(units)
        } else {
            0
        }
    }

    fn probe_spills(&mut self, extra: usize) {
        for k in 0..extra {
            let addr = (self.spill_base + (k % 64) as u64) * self.m.elem_bytes as u64;
            self.cache.access(addr);
        }
    }

    /// Compile one memory op's linear form into an address stream, exactly
    /// mirroring `addr_of` evaluated in the current environment (the loop
    /// variable contributes `init` to the anchor and `coeff · step` to the
    /// per-trip increment).
    fn compile_stream(&self, op: &Op, l: &SimLoop) -> AddrStream {
        let (array, lin, _) = op.mem().expect("mem op");
        let Some(&base) = self.base.get(array) else {
            return AddrStream {
                base: None,
                cur: 0,
                step: 0,
            };
        };
        let (anchor, step) = match lin {
            Some(lf) => {
                let mut v = lf.konst;
                let mut per_trip = 0i64;
                for (var, c) in &lf.terms {
                    let val = self.env.get(var).copied().unwrap_or(0);
                    v += c * val;
                    if *var == l.var {
                        per_trip += c * l.step;
                    }
                }
                if op.iter_offset != 0 {
                    if let Some((var, c)) = lf.terms.iter().next() {
                        let s = self.env.get(&format!("__step_{var}")).copied().unwrap_or(1);
                        v += c * op.iter_offset * s;
                    }
                }
                (v, per_trip)
            }
            None => (0, 0),
        };
        AddrStream {
            base: Some(base),
            cur: anchor,
            step,
        }
    }

    /// Fast path for an innermost loop whose body is one scheduled block.
    /// Returns false (having executed nothing) when the shape or size is
    /// ineligible. Exactness is argued in the module docs.
    fn try_exec_loop_fast(&mut self, l: &SimLoop) -> bool {
        let [Seg::Straight(bundles)] = l.body.as_slice() else {
            return false;
        };
        if l.trips <= 0 {
            // zero-trip loop: entry bindings stay, nothing executes
            self.ff.fast_loops += 1;
            return true;
        }
        let nstreams: usize = bundles
            .iter()
            .map(|b| b.iter().filter(|o| o.mem().is_some()).count())
            .sum();
        if (l.trips as u128) * (nstreams as u128) > MAX_FLAG_BYTES as u128 {
            return false;
        }
        self.ff.fast_loops += 1;

        // ---- compile: flatten ops, lower address streams ----
        let mut streams: Vec<AddrStream> = Vec::with_capacity(nstreams);
        let mut fast_bundles: Vec<Vec<FastOp>> = Vec::with_capacity(bundles.len());
        let mut per_trip_counts = [0u64; 7];
        let mut regs_used: Vec<usize> = Vec::new();
        for b in bundles {
            let mut fb = Vec::with_capacity(b.len());
            for op in b {
                let ci = class_idx(op.class());
                per_trip_counts[ci] += 1;
                let mem = op.mem().map(|(_, _, is_store)| {
                    streams.push(self.compile_stream(op, l));
                    (streams.len() - 1, is_store)
                });
                let mut srcs = Vec::new();
                op.visit_srcs(|r| srcs.push(r as usize));
                regs_used.extend_from_slice(&srcs);
                if let Some(d) = op.dst() {
                    regs_used.push(d as usize);
                }
                fb.push(FastOp {
                    ci,
                    lat: self.m.latency_of(op.class()) as u64,
                    dst: op.dst().map(|d| d as usize),
                    srcs,
                    mem,
                    fp_blocking: matches!(
                        op.class(),
                        OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv
                    ),
                });
            }
            fast_bundles.push(fb);
        }
        regs_used.sort_unstable();
        regs_used.dedup();

        // ---- phase A: decoupled cache pass over all trips ----
        let trips = l.trips;
        let extra = l.extra_mem_per_iter;
        let mut flags = std::mem::take(&mut self.flags);
        flags.clear();
        flags.reserve(trips as usize * nstreams);
        let eb = self.m.elem_bytes as u64;
        for _t in 0..trips {
            for s in &mut streams {
                match s.base {
                    Some(base) => {
                        let addr = base.saturating_add_signed(s.cur) * eb;
                        flags.push(!self.cache.access(addr) as u8);
                    }
                    None => flags.push(0),
                }
                s.cur += s.step;
            }
            if extra > 0 {
                self.probe_spills(extra);
            }
        }

        // per-trip invariants: dynamic counts and spill traffic
        for (i, c) in per_trip_counts.iter().enumerate() {
            self.result.class_counts[i] += c * trips as u64;
        }
        if extra > 0 {
            self.result.spill_accesses += extra as u64 * trips as u64;
        }
        let spill_cycles = self.spill_cycles_of(l);

        // ---- phase B: timing with steady-state fast-forward ----
        let miss_penalty = self.m.cache.miss_penalty as u64;
        let width = self.m.issue_width as u32;
        let single_issue = self.m.issue_width == 1;
        let vliw = self.m.issue == IssueModel::StaticVliw;
        let mut unit_caps = [0u32; 7];
        for (i, u) in self.m.units.iter().enumerate() {
            unit_caps[i] = (*u).max(1) as u32;
        }

        // Candidate miss-pattern period: an affine stream sweeping with byte
        // stride `s` crosses cache lines in a pattern of period
        // `line / gcd(s, line)` trips; the joint pattern's period divides
        // the lcm over streams. Each term divides the line size, so the lcm
        // does too — it stays small.
        let line = self.m.cache.line.max(1) as i64;
        let mut period: i64 = 1;
        for s in &streams {
            if s.base.is_some() && s.step != 0 {
                let p = line / gcd(s.step.saturating_mul(eb as i64), line);
                period = period / gcd(period, p) * p;
            }
        }
        // First trip from which the recorded flags repeat with `period`:
        // one backward scan (typically one block compare for aperiodic
        // tails, one pass for periodic ones).
        let steady_from: i64 = if nstreams == 0 {
            0
        } else {
            let ns = nstreams;
            let mut sf = period.min(trips);
            for tt in (period..trips).rev() {
                let a = tt as usize * ns;
                let b = (tt - period) as usize * ns;
                if flags[a..a + ns] != flags[b..b + ns] {
                    sf = tt + 1;
                    break;
                }
            }
            sf
        };

        let ff_possible = trips >= 3 && steady_from + period < trips;
        let kmax = FF_PERIOD_MULTIPLES.min((trips / period).max(1));
        let klen = regs_used.len() + if vliw { 0 } else { 8 };
        let rl = if ff_possible {
            (period * kmax) as usize
        } else {
            1
        };
        // ring of the last `rl` per-trip state keys (flat, allocation-free)
        let mut ring_keys = vec![0u64; rl * klen];
        let mut ring_cycle = vec![0u64; rl];
        let mut ring_set = vec![false; rl];
        let mut key_buf: Vec<u64> = vec![0; klen];
        let mut searching = ff_possible;
        let mut fired = false;
        let mut t: i64 = 0;
        while t < trips {
            if searching {
                key_buf.clear();
                for &r in &regs_used {
                    key_buf.push(self.ready[r].saturating_sub(self.cycle));
                }
                if !vliw {
                    match self.usage.peek(self.cycle) {
                        Some((classes, issued)) => {
                            key_buf.extend(classes.iter().map(|&c| c as u64));
                            key_buf.push(issued as u64);
                        }
                        None => key_buf.extend([0u64; 8]),
                    }
                }
                for k in 1..=kmax {
                    let t0 = t - k * period;
                    if t0 < steady_from {
                        break;
                    }
                    let slot = (t0 % rl as i64) as usize;
                    if !ring_set[slot] || ring_keys[slot * klen..(slot + 1) * klen] != key_buf {
                        continue;
                    }
                    // state repeated over a verified-periodic flag window:
                    // skip every remaining full period
                    let p = k * period;
                    let delta = self.cycle - ring_cycle[slot];
                    let periods = (trips - t) / p;
                    if periods > 0 {
                        let adv = periods as u64 * delta;
                        let old_cycle = self.cycle;
                        self.cycle += adv;
                        for &r in &regs_used {
                            if self.ready[r] > old_cycle {
                                self.ready[r] += adv;
                            }
                        }
                        if !vliw && adv > 0 {
                            // translate the live current-cycle slot
                            if let Some((classes, issued)) =
                                self.usage.peek(old_cycle).map(|(c, i)| (*c, i))
                            {
                                let (cl, is) = self.usage.slot(self.cycle);
                                *cl = classes;
                                *is = issued;
                            }
                        }
                        self.ff.ff_hits += 1;
                        self.ff.trips_skipped += (periods * p) as u64;
                        t += periods * p;
                        fired = true;
                    }
                    searching = false;
                    break;
                }
                if t >= trips {
                    break;
                }
                if searching {
                    let slot = (t % rl as i64) as usize;
                    ring_keys[slot * klen..(slot + 1) * klen].copy_from_slice(&key_buf);
                    ring_cycle[slot] = self.cycle;
                    ring_set[slot] = true;
                }
            }

            // ---- simulate trip t ----
            let fbase = t as usize * nstreams;
            if vliw {
                for fb in &fast_bundles {
                    let mut start = self.cycle;
                    for op in fb {
                        for &r in &op.srcs {
                            start = start.max(self.ready[r]);
                        }
                    }
                    let mut store_stall = 0u64;
                    for op in fb {
                        let mut lat = op.lat;
                        if let Some((si, is_store)) = op.mem {
                            let extra_lat = if flags[fbase + si] != 0 {
                                miss_penalty
                            } else {
                                0
                            };
                            if is_store {
                                if single_issue {
                                    store_stall += extra_lat;
                                }
                            } else {
                                lat += extra_lat;
                            }
                        }
                        if let Some(d) = op.dst {
                            self.ready[d] = start + lat;
                        }
                    }
                    self.cycle = start + 1 + store_stall;
                }
            } else {
                for fb in &fast_bundles {
                    for op in fb {
                        let mut ti = self.cycle;
                        for &r in &op.srcs {
                            ti = ti.max(self.ready[r]);
                        }
                        loop {
                            let (classes, issued) = self.usage.slot(ti);
                            if *issued < width && classes[op.ci] < unit_caps[op.ci] {
                                classes[op.ci] += 1;
                                *issued += 1;
                                break;
                            }
                            ti += 1;
                        }
                        let mut lat = op.lat;
                        let mut stall = 0u64;
                        if let Some((si, is_store)) = op.mem {
                            let extra_lat = if flags[fbase + si] != 0 {
                                miss_penalty
                            } else {
                                0
                            };
                            if is_store {
                                if single_issue {
                                    stall = extra_lat;
                                }
                            } else {
                                lat += extra_lat;
                            }
                        }
                        if let Some(d) = op.dst {
                            self.ready[d] = ti + lat;
                        }
                        if single_issue && op.fp_blocking {
                            stall = stall.max(lat);
                        }
                        self.cycle = ti + stall;
                    }
                }
            }
            if extra > 0 {
                self.cycle += spill_cycles;
            }
            t += 1;
        }
        if !fired {
            self.ff.ff_misses += 1;
        }
        // final loop-variable binding, as the trip-by-trip walk leaves it
        self.env.insert(l.var.clone(), l.init + trips * l.step);
        self.flags = flags;
        true
    }
}

/// Largest register index used anywhere in the program (for the dense
/// scoreboard).
fn max_reg(segs: &[Seg]) -> u32 {
    fn scan(segs: &[Seg], hi: &mut u32) {
        for s in segs {
            match s {
                Seg::Straight(bundles) => {
                    for b in bundles {
                        for op in b {
                            if let Some(d) = op.dst() {
                                *hi = (*hi).max(d);
                            }
                            op.visit_srcs(|r| *hi = (*hi).max(r));
                        }
                    }
                }
                Seg::Loop(l) => scan(&l.body, hi),
            }
        }
    }
    let mut hi = 0;
    scan(segs, &mut hi);
    hi
}

/// Simulate a compiled program on a machine at a chosen fidelity, returning
/// the reported numbers plus fast-path diagnostics. `Fast` and `Reference`
/// produce identical [`SimResult`]s (enforced by the differential suite).
pub fn simulate_with(prog: &CompiledProgram, m: &MachineDesc, fidelity: SimFidelity) -> SimOutcome {
    simulate_spanned(prog, m, fidelity, &slc_trace::Tracer::disabled())
}

/// [`simulate_with`] with wall-clock spans: one span per simulated loop
/// (category `"sim"`) carrying its trip count and which path executed it
/// (`fast` = steady-state fast-forward eligible, `fallback` = trip-by-trip
/// reference walk). The [`SimOutcome`] is identical to [`simulate_with`].
pub fn simulate_spanned(
    prog: &CompiledProgram,
    m: &MachineDesc,
    fidelity: SimFidelity,
    tracer: &slc_trace::Tracer,
) -> SimOutcome {
    let mut base = HashMap::new();
    let mut next: u64 = 64; // leave a guard region
    for (name, len) in &prog.arrays {
        base.insert(name.clone(), next);
        next += *len as u64 + 16;
    }
    let spill_base = next;
    let mut st = SimState {
        m,
        tracer,
        fidelity,
        cache: Cache::new(m),
        result: SimResult::default(),
        ff: FfStats::default(),
        ready: vec![0; max_reg(&prog.segs) as usize + 1],
        cycle: 0,
        env: HashMap::new(),
        base,
        spill_base,
        usage: UsageRing::new(m),
        flags: Vec::new(),
    };
    for seg in &prog.segs {
        st.exec_seg(seg);
    }
    // drain: final cycle count covers the last issue plus the longest
    // latency still in flight
    let drain = st.ready.iter().copied().max().unwrap_or(0);
    st.result.cycles = st.cycle.max(drain);
    st.result.cache = st.cache.stats;
    SimOutcome {
        result: st.result,
        ff: st.ff,
    }
}

/// Simulate a compiled program on a machine (fast fidelity).
pub fn simulate(prog: &CompiledProgram, m: &MachineDesc) -> SimResult {
    simulate_with(prog, m, SimFidelity::Fast).result
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_analysis::LinForm;
    use slc_machine::ir::{BinKind, OpKind, Operand};

    fn lin_i(k: i64) -> LinForm {
        LinForm::var("i").add(&LinForm::constant(k))
    }

    fn load(dst: u32, k: i64) -> Op {
        Op::new(OpKind::Load {
            dst,
            array: "A".into(),
            addr: Some(lin_i(k)),
        })
    }

    fn fadd(dst: u32, a: u32, b: u32) -> Op {
        Op::new(OpKind::Bin {
            op: BinKind::Add,
            fp: true,
            dst,
            a: Operand::Reg(a),
            b: Operand::Reg(b),
        })
    }

    fn prog_with_loop(body: Vec<Bundle>, trips: i64) -> CompiledProgram {
        CompiledProgram {
            segs: vec![Seg::Loop(SimLoop {
                var: "i".into(),
                init: 0,
                step: 1,
                trips,
                body: vec![Seg::Straight(body)],
                extra_mem_per_iter: 0,
            })],
            arrays: vec![("A".into(), 1024)],
        }
    }

    fn both(p: &CompiledProgram, m: &MachineDesc) -> SimResult {
        let fast = simulate_with(p, m, SimFidelity::Fast);
        let reference = simulate_with(p, m, SimFidelity::Reference);
        assert_eq!(fast.result, reference.result);
        fast.result
    }

    #[test]
    fn vliw_cycle_count_basic() {
        let m = MachineDesc::default();
        let p = prog_with_loop(vec![vec![load(0, 0)]], 10);
        let r = both(&p, &m);
        assert!(r.cycles >= 10);
        assert_eq!(r.class_counts[5], 10); // Mem class index 5
    }

    #[test]
    fn sequential_addresses_mostly_hit() {
        let m = MachineDesc::default(); // 64B lines, 8B elems → 8 per line
        let p = prog_with_loop(vec![vec![load(0, 0)]], 64);
        let r = both(&p, &m);
        assert_eq!(r.cache.hits + r.cache.misses, 64);
        assert_eq!(r.cache.misses, 8, "{:?}", r.cache); // one per line
    }

    #[test]
    fn associativity_avoids_conflict_thrash() {
        // two streams exactly one cache-way apart thrash a direct-mapped
        // cache but coexist in a 4-way cache
        let mut m = MachineDesc::default();
        m.cache.ways = 4;
        let stride = (m.cache.size / m.cache.ways / m.elem_bytes) as i64;
        let mk = || {
            let a = load(0, 0);
            let mut b = load(1, 0);
            if let slc_machine::ir::OpKind::Load { addr, .. } = &mut b.kind {
                *addr = Some(lin_i(stride));
            }
            prog_with_loop(vec![vec![a], vec![b]], 64)
        };
        let p = CompiledProgram {
            arrays: vec![("A".into(), 8192)],
            ..mk()
        };
        let r = both(&p, &m);
        // both streams are sequential: ~2 misses per line, not per access
        assert!(r.cache.misses < 40, "{:?}", r.cache);
    }

    #[test]
    fn loop_carried_latency_stalls_vliw() {
        let m = MachineDesc::default(); // FpAdd latency 3
        let p = prog_with_loop(vec![vec![fadd(7, 7, 7)]], 10);
        let r = both(&p, &m);
        assert!(r.cycles >= 3 * 9, "cycles {}", r.cycles);
    }

    #[test]
    fn inorder_width_matters() {
        let mk = |w| MachineDesc {
            issue: IssueModel::DynamicInOrder,
            issue_width: w,
            units: [4, 4, 4, 4, 4, 4, 4],
            ..MachineDesc::default()
        };
        let body = vec![vec![load(0, 0), load(1, 1)]];
        let p1 = prog_with_loop(body.clone(), 32);
        let r1 = both(&p1, &mk(1));
        let r2 = both(&p1, &mk(2));
        assert!(r2.cycles < r1.cycles, "{} !< {}", r2.cycles, r1.cycles);
    }

    #[test]
    fn iter_offset_shifts_addresses() {
        let m = MachineDesc::default();
        let mut op = load(0, 0);
        op.iter_offset = 2;
        let p = prog_with_loop(vec![vec![op]], 32);
        let r = both(&p, &m);
        assert_eq!(r.cache.hits + r.cache.misses, 32);
    }

    #[test]
    fn spill_traffic_costs_cycles() {
        let m = MachineDesc::default();
        let mk = |extra| CompiledProgram {
            segs: vec![Seg::Loop(SimLoop {
                var: "i".into(),
                init: 0,
                step: 1,
                trips: 50,
                body: vec![Seg::Straight(vec![vec![load(0, 0)]])],
                extra_mem_per_iter: extra,
            })],
            arrays: vec![("A".into(), 1024)],
        };
        let r0 = both(&mk(0), &m);
        let r4 = both(&mk(4), &m);
        assert!(r4.cycles > r0.cycles);
        assert_eq!(r4.spill_accesses, 200);
    }

    #[test]
    fn wider_vliw_schedule_is_faster() {
        let m = MachineDesc::default();
        // packed schedule: 2 loads per bundle vs serial 1 per bundle
        let packed = prog_with_loop(vec![vec![load(0, 0), load(1, 1)]], 64);
        let serial = prog_with_loop(vec![vec![load(0, 0)], vec![load(1, 1)]], 64);
        let rp = both(&packed, &m);
        let rs = both(&serial, &m);
        assert!(rp.cycles < rs.cycles);
    }

    #[test]
    fn fast_forward_fires_on_steady_loop() {
        let m = MachineDesc::default();
        let p = prog_with_loop(vec![vec![load(0, 0)], vec![fadd(1, 0, 1)]], 2000);
        let out = simulate_with(&p, &m, SimFidelity::Fast);
        assert!(out.ff.fast_loops >= 1);
        assert!(out.ff.ff_hits >= 1, "{:?}", out.ff);
        assert!(out.ff.trips_skipped > 0, "{:?}", out.ff);
        let reference = simulate_with(&p, &m, SimFidelity::Reference);
        assert_eq!(out.result, reference.result);
        assert_eq!(reference.ff.fallback_loops, 1);
    }

    #[test]
    fn nested_loops_fall_back_outside_and_fast_path_inside() {
        let m = MachineDesc::default();
        let inner = SimLoop {
            var: "j".into(),
            init: 0,
            step: 1,
            trips: 64,
            body: vec![Seg::Straight(vec![vec![load(0, 0)]])],
            extra_mem_per_iter: 0,
        };
        let p = CompiledProgram {
            segs: vec![Seg::Loop(SimLoop {
                var: "i".into(),
                init: 0,
                step: 1,
                trips: 8,
                body: vec![Seg::Loop(inner)],
                extra_mem_per_iter: 0,
            })],
            arrays: vec![("A".into(), 1024)],
        };
        let out = simulate_with(&p, &m, SimFidelity::Fast);
        assert_eq!(out.ff.fallback_loops, 1); // the outer loop
        assert_eq!(out.ff.fast_loops, 8); // one inner entry per outer trip
        let reference = simulate_with(&p, &m, SimFidelity::Reference);
        assert_eq!(out.result, reference.result);
    }

    #[test]
    fn zero_trip_loop_matches_reference() {
        let m = MachineDesc::default();
        let p = prog_with_loop(vec![vec![load(0, 0)]], 0);
        let r = both(&p, &m);
        assert_eq!(r.total_ops(), 0);
        assert_eq!(r.cycles, 0);
    }
}
