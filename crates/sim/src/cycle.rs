//! Trace-based cycle-level simulator.
//!
//! Executes *scheduled* IR (bundles from the list or modulo scheduler)
//! against a machine description, producing cycle counts, functional-unit
//! usage and L1 cache statistics. Values are never computed — the semantic
//! oracle is the AST interpreter — but **addresses are exact**: every memory
//! op carries a symbolic linear form over the enclosing loop variables,
//! evaluated against the live loop indices (plus the op's pipeline
//! iteration offset), which drives a set-associative LRU L1 model.
//!
//! Timing model:
//!
//! * **StaticVliw** — bundles issue as scheduled; a bundle stalls until all
//!   its source registers are ready (covers loop-carried latencies the
//!   per-block scheduler cannot see). A load miss extends its destination's
//!   ready time by the miss penalty (non-blocking loads); store misses are
//!   absorbed by the store buffer on multi-issue machines and stall the
//!   pipeline on single-issue machines.
//! * **DynamicInOrder** — the op stream issues in order, up to `issue_width`
//!   per cycle, constrained by per-class units and operand readiness
//!   (scoreboard). This models the paper's superscalar targets, where the
//!   hardware — not the compiler — finds the parallelism, and source order
//!   (hence SLMS) determines how much it can find.
//! * Spill traffic charged by the register allocator adds
//!   `⌈extra/mem_units⌉` cycles per loop iteration.

use slc_machine::ir::{Bundle, Op, OpClass, ALL_CLASSES};
use slc_machine::mach::{IssueModel, MachineDesc};
use std::collections::HashMap;

/// L1 statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// cache hits
    pub hits: u64,
    /// cache misses
    pub misses: u64,
}

/// Simulation result.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// total cycles
    pub cycles: u64,
    /// dynamic operation count per class (indexed like `ALL_CLASSES`)
    pub class_counts: [u64; 7],
    /// L1 behaviour
    pub cache: CacheStats,
    /// dynamic spill accesses charged
    pub spill_accesses: u64,
}

impl SimResult {
    /// Total dynamic operations.
    pub fn total_ops(&self) -> u64 {
        self.class_counts.iter().sum()
    }
}

/// One compiled program segment.
#[derive(Debug, Clone)]
pub enum Seg {
    /// Straight-line scheduled code, executed once.
    Straight(Vec<Bundle>),
    /// A counted loop.
    Loop(SimLoop),
}

/// A loop ready for simulation. For software-pipelined loops the builder
/// already folded prologue/epilogue ramp iterations into `trips` and set
/// per-op `iter_offset`s.
#[derive(Debug, Clone)]
pub struct SimLoop {
    /// loop variable name (bound in the address environment)
    pub var: String,
    /// first index value
    pub init: i64,
    /// additive step
    pub step: i64,
    /// number of times the body executes
    pub trips: i64,
    /// body segments (bundles and nested loops)
    pub body: Vec<Seg>,
    /// extra memory accesses charged per iteration for register spills
    pub extra_mem_per_iter: usize,
}

/// A compiled program: segments plus the array address map.
#[derive(Debug, Clone, Default)]
pub struct CompiledProgram {
    /// program segments in execution order
    pub segs: Vec<Seg>,
    /// arrays sizes in elements (defines the address-space layout)
    pub arrays: Vec<(String, usize)>,
}

/// Set-associative L1 cache with LRU replacement.
struct Cache {
    nsets: usize,
    ways: usize,
    line: usize,
    /// per set: (tag, last-touch counter) per way
    sets: Vec<Vec<(u64, u64)>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    fn new(m: &MachineDesc) -> Cache {
        let ways = m.cache.ways.max(1);
        let nsets = (m.cache.size / m.cache.line / ways).max(1);
        Cache {
            nsets,
            ways,
            line: m.cache.line,
            sets: vec![Vec::new(); nsets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Probe a byte address; true on hit.
    fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let lineno = addr / self.line as u64;
        let set = (lineno % self.nsets as u64) as usize;
        let tag = lineno / self.nsets as u64;
        let ways = &mut self.sets[set];
        if let Some(slot) = ways.iter_mut().find(|(t, _)| *t == tag) {
            slot.1 = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if ways.len() < self.ways {
            ways.push((tag, self.tick));
        } else {
            // evict LRU
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k)
                .unwrap();
            ways[lru] = (tag, self.tick);
        }
        false
    }
}

fn class_idx(c: OpClass) -> usize {
    ALL_CLASSES.iter().position(|&x| x == c).unwrap()
}

struct SimState<'m> {
    m: &'m MachineDesc,
    cache: Cache,
    result: SimResult,
    /// register → cycle at which its value is ready
    ready: HashMap<u32, u64>,
    /// current cycle (next issue opportunity)
    cycle: u64,
    /// loop variable environment (plus `__step_<var>` entries)
    env: HashMap<String, i64>,
    /// array base element offsets
    base: HashMap<String, u64>,
    /// dedicated spill slot base
    spill_base: u64,
    /// per-cycle resource usage for the in-order model (pruned window)
    usage: HashMap<u64, ([usize; 7], usize)>,
}

impl SimState<'_> {
    fn addr_of(&self, op: &Op) -> Option<u64> {
        let (array, lin, _) = op.mem()?;
        let base = *self.base.get(array)?;
        let elem = match lin {
            Some(l) => {
                let mut v = l.konst;
                for (var, c) in &l.terms {
                    let val = self.env.get(var).copied().unwrap_or(0);
                    v += c * val;
                }
                // pipeline offset: the op runs `iter_offset` iterations
                // ahead of the loop's nominal index
                if op.iter_offset != 0 {
                    if let Some((var, c)) = l.terms.iter().next() {
                        let step = self.env.get(&format!("__step_{var}")).copied().unwrap_or(1);
                        v += c * op.iter_offset * step;
                    }
                }
                v
            }
            None => 0, // unknown address: array base (documented approximation)
        };
        Some(base.saturating_add_signed(elem) * self.m.elem_bytes as u64)
    }

    fn count(&mut self, op: &Op) {
        self.result.class_counts[class_idx(op.class())] += 1;
    }

    /// Charge a memory access; returns extra latency (0 on hit).
    fn mem_access(&mut self, op: &Op) -> u64 {
        let Some(addr) = self.addr_of(op) else {
            return 0;
        };
        if self.cache.access(addr) {
            0
        } else {
            self.m.cache.miss_penalty as u64
        }
    }

    fn exec_bundle_vliw(&mut self, bundle: &[Op]) {
        // stall until every source is ready
        let mut start = self.cycle;
        for op in bundle {
            for r in op.srcs() {
                if let Some(&t) = self.ready.get(&r) {
                    start = start.max(t);
                }
            }
        }
        let mut store_stall = 0u64;
        for op in bundle {
            self.count(op);
            let mut lat = self.m.latency_of(op.class()) as u64;
            if op.mem().is_some() {
                let extra = self.mem_access(op);
                let is_store = matches!(op.mem(), Some((_, _, true)));
                if is_store {
                    if self.m.issue_width == 1 {
                        store_stall += extra; // blocking writes on scalar cores
                    }
                } else {
                    lat += extra;
                }
            }
            if let Some(d) = op.dst() {
                self.ready.insert(d, start + lat);
            }
        }
        self.cycle = start + 1 + store_stall;
    }

    fn exec_op_inorder(&mut self, op: &Op) {
        // operand readiness
        let mut t = self.cycle;
        for r in op.srcs() {
            if let Some(&rt) = self.ready.get(&r) {
                t = t.max(rt);
            }
        }
        // find an issue slot with free resources
        let ci = class_idx(op.class());
        loop {
            let (classes, issued) = self.usage.entry(t).or_insert(([0; 7], 0));
            if *issued < self.m.issue_width && classes[ci] < self.m.units[ci].max(1) {
                classes[ci] += 1;
                *issued += 1;
                break;
            }
            t += 1;
        }
        self.count(op);
        let mut lat = self.m.latency_of(op.class()) as u64;
        let mut stall = 0u64;
        if op.mem().is_some() {
            let extra = self.mem_access(op);
            let is_store = matches!(op.mem(), Some((_, _, true)));
            if is_store {
                if self.m.issue_width == 1 {
                    stall = extra;
                }
            } else {
                lat += extra;
            }
        }
        if let Some(d) = op.dst() {
            self.ready.insert(d, t + lat);
        }
        // Single-issue cores execute floating point in software (ARM7TDMI
        // has no FPU): the emulation routine blocks the pipeline for its
        // full latency instead of overlapping.
        let fp_blocking = self.m.issue_width == 1
            && matches!(op.class(), OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv);
        if fp_blocking {
            stall = stall.max(lat);
        }
        // in-order: the next op cannot issue before this one
        self.cycle = t + stall;
        // prune the usage window
        if self.usage.len() > 64 {
            let cutoff = self.cycle.saturating_sub(8);
            self.usage.retain(|&c, _| c >= cutoff);
        }
    }

    fn exec_seg(&mut self, seg: &Seg) {
        match seg {
            Seg::Straight(bundles) => match self.m.issue {
                IssueModel::StaticVliw => {
                    for b in bundles {
                        self.exec_bundle_vliw(b);
                    }
                }
                IssueModel::DynamicInOrder => {
                    for b in bundles {
                        for op in b {
                            self.exec_op_inorder(op);
                        }
                    }
                }
            },
            Seg::Loop(l) => {
                self.env.insert(l.var.clone(), l.init);
                self.env.insert(format!("__step_{}", l.var), l.step);
                // Spill stores/reloads are dependent memory traffic the
                // scheduler could not hide: each access costs its slot plus
                // the machine's spill penalty, spread over the memory ports.
                let spill_cycles = if l.extra_mem_per_iter > 0 {
                    let units = self.m.units_of(OpClass::Mem).max(1) as u64;
                    let cost = l.extra_mem_per_iter as u64 * (1 + self.m.spill_penalty as u64);
                    cost.div_ceil(units)
                } else {
                    0
                };
                for t in 0..l.trips {
                    for s in &l.body {
                        self.exec_seg(s);
                    }
                    if l.extra_mem_per_iter > 0 {
                        // spill traffic: touches the spill slots (usually hits)
                        for k in 0..l.extra_mem_per_iter {
                            let addr =
                                (self.spill_base + (k % 64) as u64) * self.m.elem_bytes as u64;
                            self.cache.access(addr);
                        }
                        self.result.spill_accesses += l.extra_mem_per_iter as u64;
                        self.cycle += spill_cycles;
                    }
                    self.env.insert(l.var.clone(), l.init + (t + 1) * l.step);
                }
            }
        }
    }
}

/// Simulate a compiled program on a machine.
pub fn simulate(prog: &CompiledProgram, m: &MachineDesc) -> SimResult {
    let mut base = HashMap::new();
    let mut next: u64 = 64; // leave a guard region
    for (name, len) in &prog.arrays {
        base.insert(name.clone(), next);
        next += *len as u64 + 16;
    }
    let spill_base = next;
    let mut st = SimState {
        m,
        cache: Cache::new(m),
        result: SimResult::default(),
        ready: HashMap::new(),
        cycle: 0,
        env: HashMap::new(),
        base,
        spill_base,
        usage: HashMap::new(),
    };
    for seg in &prog.segs {
        st.exec_seg(seg);
    }
    // drain: final cycle count covers the last issue plus the longest
    // latency still in flight
    let drain = st.ready.values().copied().max().unwrap_or(0);
    st.result.cycles = st.cycle.max(drain);
    st.result.cache = st.cache.stats;
    st.result
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_analysis::LinForm;
    use slc_machine::ir::{BinKind, OpKind, Operand};

    fn lin_i(k: i64) -> LinForm {
        LinForm::var("i").add(&LinForm::constant(k))
    }

    fn load(dst: u32, k: i64) -> Op {
        Op::new(OpKind::Load {
            dst,
            array: "A".into(),
            addr: Some(lin_i(k)),
        })
    }

    fn fadd(dst: u32, a: u32, b: u32) -> Op {
        Op::new(OpKind::Bin {
            op: BinKind::Add,
            fp: true,
            dst,
            a: Operand::Reg(a),
            b: Operand::Reg(b),
        })
    }

    fn prog_with_loop(body: Vec<Bundle>, trips: i64) -> CompiledProgram {
        CompiledProgram {
            segs: vec![Seg::Loop(SimLoop {
                var: "i".into(),
                init: 0,
                step: 1,
                trips,
                body: vec![Seg::Straight(body)],
                extra_mem_per_iter: 0,
            })],
            arrays: vec![("A".into(), 1024)],
        }
    }

    #[test]
    fn vliw_cycle_count_basic() {
        let m = MachineDesc::default();
        let p = prog_with_loop(vec![vec![load(0, 0)]], 10);
        let r = simulate(&p, &m);
        assert!(r.cycles >= 10);
        assert_eq!(r.class_counts[5], 10); // Mem class index 5
    }

    #[test]
    fn sequential_addresses_mostly_hit() {
        let m = MachineDesc::default(); // 64B lines, 8B elems → 8 per line
        let p = prog_with_loop(vec![vec![load(0, 0)]], 64);
        let r = simulate(&p, &m);
        assert_eq!(r.cache.hits + r.cache.misses, 64);
        assert_eq!(r.cache.misses, 8, "{:?}", r.cache); // one per line
    }

    #[test]
    fn associativity_avoids_conflict_thrash() {
        // two streams exactly one cache-way apart thrash a direct-mapped
        // cache but coexist in a 4-way cache
        let mut m = MachineDesc::default();
        m.cache.ways = 4;
        let stride = (m.cache.size / m.cache.ways / m.elem_bytes) as i64;
        let mk = || {
            let a = load(0, 0);
            let mut b = load(1, 0);
            if let slc_machine::ir::OpKind::Load { addr, .. } = &mut b.kind {
                *addr = Some(lin_i(stride));
            }
            prog_with_loop(vec![vec![a], vec![b]], 64)
        };
        let p = CompiledProgram {
            arrays: vec![("A".into(), 8192)],
            ..mk()
        };
        let r = simulate(&p, &m);
        // both streams are sequential: ~2 misses per line, not per access
        assert!(r.cache.misses < 40, "{:?}", r.cache);
    }

    #[test]
    fn loop_carried_latency_stalls_vliw() {
        let m = MachineDesc::default(); // FpAdd latency 3
        let p = prog_with_loop(vec![vec![fadd(7, 7, 7)]], 10);
        let r = simulate(&p, &m);
        assert!(r.cycles >= 3 * 9, "cycles {}", r.cycles);
    }

    #[test]
    fn inorder_width_matters() {
        let mk = |w| MachineDesc {
            issue: IssueModel::DynamicInOrder,
            issue_width: w,
            units: [4, 4, 4, 4, 4, 4, 4],
            ..MachineDesc::default()
        };
        let body = vec![vec![load(0, 0), load(1, 1)]];
        let p1 = prog_with_loop(body.clone(), 32);
        let r1 = simulate(&p1, &mk(1));
        let r2 = simulate(&p1, &mk(2));
        assert!(r2.cycles < r1.cycles, "{} !< {}", r2.cycles, r1.cycles);
    }

    #[test]
    fn iter_offset_shifts_addresses() {
        let m = MachineDesc::default();
        let mut op = load(0, 0);
        op.iter_offset = 2;
        let p = prog_with_loop(vec![vec![op]], 32);
        let r = simulate(&p, &m);
        assert_eq!(r.cache.hits + r.cache.misses, 32);
    }

    #[test]
    fn spill_traffic_costs_cycles() {
        let m = MachineDesc::default();
        let mk = |extra| CompiledProgram {
            segs: vec![Seg::Loop(SimLoop {
                var: "i".into(),
                init: 0,
                step: 1,
                trips: 50,
                body: vec![Seg::Straight(vec![vec![load(0, 0)]])],
                extra_mem_per_iter: extra,
            })],
            arrays: vec![("A".into(), 1024)],
        };
        let r0 = simulate(&mk(0), &m);
        let r4 = simulate(&mk(4), &m);
        assert!(r4.cycles > r0.cycles);
        assert_eq!(r4.spill_accesses, 200);
    }

    #[test]
    fn wider_vliw_schedule_is_faster() {
        let m = MachineDesc::default();
        // packed schedule: 2 loads per bundle vs serial 1 per bundle
        let packed = prog_with_loop(vec![vec![load(0, 0), load(1, 1)]], 64);
        let serial = prog_with_loop(vec![vec![load(0, 0)], vec![load(1, 1)]], 64);
        let rp = simulate(&packed, &m);
        let rs = simulate(&serial, &m);
        assert!(rp.cycles < rs.cycles);
    }
}
