//! Property-level invariants of the cycle simulator.

use proptest::prelude::*;
use slc_analysis::LinForm;
use slc_machine::ir::{BinKind, Bundle, Op, OpKind, Operand};
use slc_machine::mach::{IssueModel, MachineDesc};
use slc_sim::cycle::{simulate, CompiledProgram, Seg, SimLoop};

fn lin_i(c: i64, k: i64) -> LinForm {
    LinForm::var("i").scale(c).add(&LinForm::constant(k))
}

fn load(dst: u32, c: i64, k: i64) -> Op {
    Op::new(OpKind::Load {
        dst,
        array: "A".into(),
        addr: Some(lin_i(c, k)),
    })
}

fn fadd(dst: u32, a: u32, b: u32) -> Op {
    Op::new(OpKind::Bin {
        op: BinKind::Add,
        fp: true,
        dst,
        a: Operand::Reg(a),
        b: Operand::Reg(b),
    })
}

fn prog(body: Vec<Bundle>, trips: i64) -> CompiledProgram {
    CompiledProgram {
        segs: vec![Seg::Loop(SimLoop {
            var: "i".into(),
            init: 0,
            step: 1,
            trips,
            body: vec![Seg::Straight(body)],
            extra_mem_per_iter: 0,
        })],
        arrays: vec![("A".into(), 4096)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn cycles_monotone_in_trips(t1 in 1i64..40, extra in 1i64..40) {
        let m = MachineDesc::default();
        let body = vec![vec![load(0, 1, 0)], vec![fadd(1, 0, 0)]];
        let a = simulate(&prog(body.clone(), t1), &m);
        let b = simulate(&prog(body, t1 + extra), &m);
        prop_assert!(b.cycles > a.cycles);
        prop_assert!(b.total_ops() > a.total_ops());
    }

    #[test]
    fn accesses_equal_mem_ops(trips in 1i64..64, nloads in 1usize..4) {
        let m = MachineDesc::default();
        let body: Vec<Bundle> = (0..nloads)
            .map(|k| vec![load(k as u32, 1, k as i64)])
            .collect();
        let r = simulate(&prog(body, trips), &m);
        prop_assert_eq!(
            r.cache.hits + r.cache.misses,
            (trips as u64) * nloads as u64
        );
    }

    #[test]
    fn wider_issue_never_slower_inorder(trips in 4i64..32) {
        let mk = |w: usize| MachineDesc {
            issue: IssueModel::DynamicInOrder,
            issue_width: w,
            units: [4, 4, 4, 4, 4, 4, 4],
            ..MachineDesc::default()
        };
        let body = vec![vec![
            load(0, 1, 0),
            load(1, 1, 1),
            load(2, 1, 2),
            fadd(3, 0, 1),
        ]];
        let narrow = simulate(&prog(body.clone(), trips), &mk(1));
        let wide = simulate(&prog(body, trips), &mk(4));
        prop_assert!(wide.cycles <= narrow.cycles);
    }

    #[test]
    fn bigger_cache_never_more_misses(trips in 8i64..64) {
        let small = MachineDesc {
            cache: slc_machine::mach::CacheConfig {
                size: 512,
                line: 64,
                ways: 2,
                miss_penalty: 12,
            },
            ..MachineDesc::default()
        };
        let big = MachineDesc {
            cache: slc_machine::mach::CacheConfig {
                size: 64 * 1024,
                line: 64,
                ways: 2,
                miss_penalty: 12,
            },
            ..MachineDesc::default()
        };
        // strided loads stress capacity
        let body = vec![vec![load(0, 16, 0)], vec![load(1, 16, 8)]];
        let a = simulate(&prog(body.clone(), trips), &small);
        let b = simulate(&prog(body, trips), &big);
        prop_assert!(b.cache.misses <= a.cache.misses);
    }
}
