//! # slc-workloads — the paper's benchmark loops in the mini language
//!
//! The evaluation uses Livermore loops, Linpack loops, the NAS kernel
//! benchmark and the STONE benchmark (§9). This crate re-writes the
//! relevant kernels in the mini language with constant problem sizes.
//!
//! Substitution notes (see DESIGN.md):
//!
//! * Livermore kernels follow the classic C translations of McMahon's
//!   FORTRAN kernels; kernels with multi-phase control (2, 4, 6) are
//!   represented by their dominant inner loop.
//! * The NAS kernel benchmark is represented by characteristic inner loops
//!   of MXM (matrix multiply), VPENTA (penta-diagonal) and EMIT-style
//!   streaming updates.
//! * The STONE benchmark is not publicly archived; it is modeled as
//!   STREAM-style memory kernels (copy/scale/sum/triad) plus a shifted
//!   copy — memory-ratio-dominated loops matching the paper's description
//!   of where SLMS must be applied selectively.
//! * `paper` collects every worked example from the paper itself.

use slc_ast::{parse_program, Program};

/// Benchmark suite tags (the grouping used by the figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Livermore FORTRAN kernels
    Livermore,
    /// Linpack BLAS-1 style loops
    Linpack,
    /// NAS kernel benchmark loops
    Nas,
    /// STONE / streaming loops
    Stone,
    /// worked examples from the paper text
    Paper,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::Livermore => "livermore",
            Suite::Linpack => "linpack",
            Suite::Nas => "nas",
            Suite::Stone => "stone",
            Suite::Paper => "paper",
        };
        f.write_str(s)
    }
}

/// One benchmark loop: a complete parseable program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// short name used in figures (e.g. `kernel1`, `ddot`)
    pub name: &'static str,
    /// suite the loop belongs to
    pub suite: Suite,
    /// mini-language source
    pub source: &'static str,
}

impl Workload {
    /// Parse the program (sources are tested to parse).
    pub fn program(&self) -> Program {
        parse_program(self.source)
            .unwrap_or_else(|e| panic!("workload {} failed to parse: {e}", self.name))
    }
}

/// Problem size shared by the suites.
pub fn problem_size() -> usize {
    1000
}

/// Livermore kernels (subset exercised by the paper's figures).
pub fn livermore() -> Vec<Workload> {
    vec![
        Workload {
            name: "kernel1_hydro",
            suite: Suite::Livermore,
            source: "float x[1012]; float y[1012]; float z[1012]; float q; float r; float t; int k;\n\
                 for (k = 0; k < 990; k++) {\n\
                   x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);\n\
                 }",
        },
        Workload {
            name: "kernel2_iccg",
            suite: Suite::Livermore,
            source: "float x[1012]; float v[1012]; int i;\n\
                 for (i = 4; i < 996; i++) {\n\
                   x[i] = x[i + 4] - v[i] * x[i + 1] - v[i + 1] * x[i + 2];\n\
                 }",
        },
        Workload {
            name: "kernel3_inner_product",
            suite: Suite::Livermore,
            source: "float x[1012]; float z[1012]; float q; float t; int k;\n\
                 for (k = 0; k < 1000; k++) {\n\
                   t = z[k] * x[k];\n\
                   q = q + t;\n\
                 }",
        },
        Workload {
            name: "kernel5_tridiag",
            suite: Suite::Livermore,
            source: "float x[1012]; float y[1012]; float z[1012]; int i;\n\
                 for (i = 1; i < 1000; i++) {\n\
                   x[i] = z[i] * (y[i] - x[i - 1]);\n\
                 }",
        },
        Workload {
            name: "kernel7_eos",
            suite: Suite::Livermore,
            source: "float x[1012]; float y[1012]; float z[1012]; float u[1012]; float q; float r; float t; int k;\n\
                 for (k = 0; k < 990; k++) {\n\
                   x[k] = u[k] + r * (z[k] + r * y[k]) \
                        + t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1]) \
                        + t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4])));\n\
                 }",
        },
        Workload {
            name: "kernel8_adi",
            suite: Suite::Livermore,
            source: "float du1[1012]; float du2[1012]; float du3[1012];\n\
                 float u1[2024]; float u2[2024]; float u3[2024]; int ky;\n\
                 for (ky = 1; ky < 900; ky++) {\n\
                   du1[ky] = u1[ky + 1] - u1[ky - 1];\n\
                   du2[ky] = u2[ky + 1] - u2[ky - 1];\n\
                   du3[ky] = u3[ky + 1] - u3[ky - 1];\n\
                   u1[ky + 101] = u1[ky] + 2.0 * du1[ky] + 2.0 * du2[ky] + 2.0 * du3[ky];\n\
                   u2[ky + 101] = u2[ky] + 2.0 * du1[ky] + 2.0 * du2[ky] + 2.0 * du3[ky];\n\
                   u3[ky + 101] = u3[ky] + 2.0 * du1[ky] + 2.0 * du2[ky] + 2.0 * du3[ky];\n\
                 }",
        },
        Workload {
            name: "kernel9_integrate",
            suite: Suite::Livermore,
            source: "float px[1030]; float cx[1030]; float dm; int i;\n\
                 for (i = 0; i < 1000; i++) {\n\
                   px[i] = dm * px[i + 12] + 0.3 * px[i + 11] + 0.4 * px[i + 10] \
                         + 0.5 * px[i + 9] + cx[i + 4] + cx[i + 5];\n\
                 }",
        },
        Workload {
            name: "kernel10_diff_predict",
            suite: Suite::Livermore,
            source: "float px[1030]; float cx[1030]; int i;\n\
                 float ar; float br; float cr; float dr; float er; float fr;\n\
                 for (i = 0; i < 1000; i++) {\n\
                   ar = cx[i + 4];\n\
                   br = ar - px[i + 4];\n\
                   px[i + 4] = ar;\n\
                   cr = br - px[i + 5];\n\
                   px[i + 5] = br;\n\
                   dr = cr - px[i + 6];\n\
                   px[i + 6] = cr;\n\
                   er = dr - px[i + 7];\n\
                   px[i + 7] = dr;\n\
                   fr = er - px[i + 8];\n\
                   px[i + 8] = er;\n\
                   px[i + 9] = fr;\n\
                 }",
        },
        Workload {
            name: "kernel11_first_sum",
            suite: Suite::Livermore,
            source: "float x[1012]; float y[1012]; int k;\n\
                 for (k = 1; k < 1000; k++) {\n\
                   x[k] = x[k - 1] + y[k];\n\
                 }",
        },
        Workload {
            name: "kernel12_first_diff",
            suite: Suite::Livermore,
            source: "float x[1012]; float y[1012]; int k;\n\
                 for (k = 0; k < 999; k++) {\n\
                   x[k] = y[k + 1] - y[k];\n\
                 }",
        },
        Workload {
            name: "kernel4_banded",
            suite: Suite::Livermore,
            source: "float x[2024]; float y[2024]; float xz; int k;\n\
                 for (k = 6; k < 1000; k += 5) {\n\
                   xz = xz + y[k] * x[k - 1] + y[k + 1] * x[k - 2];\n\
                 }",
        },
        Workload {
            name: "kernel6_linear_rec",
            suite: Suite::Livermore,
            source: "float w[1012]; float b[1012]; int i;\n\
                 for (i = 1; i < 1000; i++) {\n\
                   w[i] = w[i] + b[i] * w[i - 1];\n\
                 }",
        },
        Workload {
            name: "kernel18_hydro2d",
            suite: Suite::Livermore,
            source: "float za[64][64]; float zb[64][64]; float zp[64][64]; float zq[64][64]; int j; int k;\n\
                 for (j = 1; j < 62; j++) {\n\
                   for (k = 1; k < 62; k++) {\n\
                     za[j][k] = (zp[j - 1][k + 1] + zq[j - 1][k + 1]) * (zb[j][k] + zb[j - 1][k]);\n\
                   }\n\
                 }",
        },
        Workload {
            name: "kernel21_matmul_col",
            suite: Suite::Livermore,
            source: "float px[64][64]; float vy[64][64]; float cx[64][64]; int i; int j; int k;\n\
                 j = 5; i = 9;\n\
                 for (k = 0; k < 64; k++) {\n\
                   px[j][i] = px[j][i] + vy[k][i] * cx[j][k];\n\
                 }",
        },
        Workload {
            name: "kernel22_planck",
            suite: Suite::Livermore,
            source: "float y[1012]; float u[1012]; float v[1012]; float w[1012]; float expmax; int k;\n\
                 expmax = 20.0;\n\
                 for (k = 0; k < 1000; k++) {\n\
                   y[k] = u[k] / v[k];\n\
                   w[k] = y[k] / (exp(y[k]) - 1.0 + expmax * 0.0);\n\
                 }",
        },
        Workload {
            name: "kernel23_implicit",
            suite: Suite::Livermore,
            source: "float za[64][64]; float zz[64][64]; float zr[64][64]; float zu[64][64]; float zv[64][64]; float qa; int j; int k;\n\
                 j = 17;\n\
                 for (k = 1; k < 62; k++) {\n\
                   qa = za[k][j + 1] * zr[k][j] + za[k][j - 1] * zu[k][j] + zv[k][j];\n\
                   zz[k][j] = zz[k][j] + 0.175 * (qa - zz[k][j]);\n\
                 }",
        },
        Workload {
            name: "kernel24_min_index",
            suite: Suite::Livermore,
            source: "float x[1012]; float xm; int m; int k;\n\
                 xm = x[0];\n\
                 for (k = 1; k < 1000; k++) {\n\
                   if (x[k] < xm) { xm = x[k]; m = k; }\n\
                 }",
        },
    ]
}

/// Linpack loops.
pub fn linpack() -> Vec<Workload> {
    vec![
        Workload {
            name: "daxpy",
            suite: Suite::Linpack,
            source: "float dx[1012]; float dy[1012]; float da; int i;\n\
                 for (i = 0; i < 1000; i++) {\n\
                   dy[i] = dy[i] + da * dx[i];\n\
                 }",
        },
        Workload {
            name: "ddot2",
            suite: Suite::Linpack,
            source: "float dx[1012]; float dy[1012]; float dtemp; float t; int i;\n\
                 for (i = 0; i < 1000; i++) {\n\
                   t = dx[i] * dy[i];\n\
                   dtemp = dtemp + t;\n\
                 }",
        },
        Workload {
            name: "dscal",
            suite: Suite::Linpack,
            source: "float dx[1012]; float da; int i;\n\
                 for (i = 0; i < 1000; i++) {\n\
                   dx[i] = da * dx[i];\n\
                 }",
        },
        Workload {
            name: "idamax2",
            suite: Suite::Linpack,
            source: "float dx[1012]; float dmax; int itemp; int i;\n\
                 dmax = abs(dx[0]);\n\
                 for (i = 1; i < 1000; i++) {\n\
                   if (abs(dx[i]) > dmax) { itemp = i; dmax = abs(dx[i]); }\n\
                 }",
        },
        Workload {
            name: "dmxpy_inner",
            suite: Suite::Linpack,
            source: "float y[404]; float x[404]; float m[404]; int i;\n\
                 for (i = 0; i < 400; i++) {\n\
                   y[i] = y[i] + x[i] * m[i] + x[i + 1] * m[i + 1] + x[i + 2] * m[i + 2];\n\
                 }",
        },
        Workload {
            name: "dgesl_solve",
            suite: Suite::Linpack,
            source: "float b[1012]; float a[1012]; float t; int i;\n\
                 for (i = 1; i < 1000; i++) {\n\
                   b[i] = b[i] - a[i] * t;\n\
                   t = b[i] * 0.5;\n\
                 }",
        },
        Workload {
            name: "dgefa_elim",
            suite: Suite::Linpack,
            source: "float a[1012]; float b[1012]; float t; int i;\n\
                 for (i = 0; i < 1000; i++) {\n\
                   a[i] = a[i] + t * b[i];\n\
                 }",
        },
    ]
}

/// NAS kernel benchmark loops.
pub fn nas() -> Vec<Workload> {
    vec![
        Workload {
            name: "mxm_inner",
            suite: Suite::Nas,
            source: "float a[128][32]; float b[32][128]; float c[128][128]; float s; int i; int j; int k;\n\
                 i = 8; j = 17;\n\
                 for (k = 0; k < 32; k++) {\n\
                   s = s + a[i][k] * b[k][j];\n\
                   c[i][j] = s;\n\
                 }",
        },
        Workload {
            name: "vpenta_fragment",
            suite: Suite::Nas,
            source: "float f[1012]; float x[1012]; float y[1012]; float z[1012]; int j;\n\
                 for (j = 2; j < 1000; j++) {\n\
                   f[j] = f[j] - x[j] * f[j - 1] - y[j] * f[j - 2] + z[j];\n\
                 }",
        },
        Workload {
            name: "emit_stream",
            suite: Suite::Nas,
            source: "float ps1[1012]; float ps2[1012]; float w[1012]; float u; float v; int i;\n\
                 for (i = 1; i < 999; i++) {\n\
                   ps1[i] = u * ps1[i] + v * ps2[i + 1] + w[i];\n\
                   ps2[i] = v * ps1[i] + u * ps2[i - 1];\n\
                 }",
        },
        Workload {
            name: "cholsky_fragment",
            suite: Suite::Nas,
            source: "float a[1012]; float d[1012]; float e[1012]; int i;\n\
                 for (i = 2; i < 1000; i++) {\n\
                   a[i] = a[i] - d[i - 1] * d[i - 1] * e[i] - d[i - 2] * d[i - 2] * e[i - 1];\n\
                 }",
        },
        Workload {
            name: "gmtry_gauss",
            suite: Suite::Nas,
            source: "float rmatrx[1030]; float rhs[1030]; float pivot; int i;\n\
                 pivot = 2.5;\n\
                 for (i = 4; i < 1000; i++) {\n\
                   rmatrx[i] = rmatrx[i] / pivot;\n\
                   rhs[i] = rhs[i] - rmatrx[i] * rhs[i - 4];\n\
                 }",
        },
        Workload {
            name: "cfft2d_butterfly",
            suite: Suite::Nas,
            source: "float xr[2024]; float xi[2024]; float wr; float wi; float tr; float ti; int i;\n\
                 for (i = 0; i < 1000; i++) {\n\
                   tr = wr * xr[i + 1000] - wi * xi[i + 1000];\n\
                   ti = wr * xi[i + 1000] + wi * xr[i + 1000];\n\
                   xr[i + 1000] = xr[i] - tr;\n\
                   xi[i + 1000] = xi[i] - ti;\n\
                   xr[i] = xr[i] + tr;\n\
                   xi[i] = xi[i] + ti;\n\
                 }",
        },
        Workload {
            name: "btrix_fragment",
            suite: Suite::Nas,
            source: "float q1[1012]; float q2[1012]; float q3[1012]; float r[1012]; int j;\n\
                 for (j = 1; j < 999; j++) {\n\
                   q1[j] = q1[j] - r[j] * q1[j + 1];\n\
                   q2[j] = q2[j] - r[j] * q2[j + 1];\n\
                   q3[j] = q3[j] - r[j] * q3[j + 1];\n\
                 }",
        },
    ]
}

/// STONE / streaming loops (see crate docs for the substitution note).
pub fn stone() -> Vec<Workload> {
    vec![
        Workload {
            name: "stone_copy",
            suite: Suite::Stone,
            source: "float a[1012]; float b[1012]; int i;\n\
                 for (i = 0; i < 1000; i++) { a[i] = b[i]; }",
        },
        Workload {
            name: "stone_scale",
            suite: Suite::Stone,
            source: "float a[1012]; float b[1012]; float q; int i;\n\
                 for (i = 0; i < 1000; i++) { a[i] = q * b[i]; }",
        },
        Workload {
            name: "stone_sum",
            suite: Suite::Stone,
            source: "float a[1012]; float b[1012]; float c[1012]; int i;\n\
                 for (i = 0; i < 1000; i++) { a[i] = b[i] + c[i]; }",
        },
        Workload {
            name: "stone_triad",
            suite: Suite::Stone,
            source: "float a[1012]; float b[1012]; float c[1012]; float q; int i;\n\
                 for (i = 0; i < 1000; i++) { a[i] = b[i] + q * c[i]; }",
        },
        Workload {
            name: "stone_shift_copy",
            suite: Suite::Stone,
            source: "float a[1012]; int i;\n\
                 for (i = 0; i < 1000; i++) { a[i] = a[i + 2]; }",
        },
        Workload {
            // gcd-disjoint strided references: a[4i] never meets a[2i+1]
            // (gcd(4,2) ∤ 1) — pipelinable only under a dependence test
            // that refutes coefficient-mismatched pairs instead of
            // widening them to "any distance".
            name: "stone_stride_disjoint",
            suite: Suite::Stone,
            source: "float a[4096]; float b[512]; int i;\n\
                 for (i = 0; i < 500; i++) {\n\
                   a[4 * i] = a[2 * i + 1] + 1.0;\n\
                   b[i] = a[2 * i + 1] * 2.0;\n\
                 }",
        },
        Workload {
            name: "stone_poly",
            suite: Suite::Stone,
            source: "float a[1012]; float b[1012]; float q; float r; int i;\n\
                 for (i = 0; i < 1000; i++) {\n\
                   a[i] = b[i] * (q + b[i] * (r + b[i] * (q + r * b[i])));\n\
                 }",
        },
    ]
}

/// Worked examples from the paper text.
pub fn paper_examples() -> Vec<Workload> {
    vec![
        Workload {
            name: "intro_dot",
            suite: Suite::Paper,
            source: "float A[1012]; float B[1012]; float s; float t; int i;\n\
                 for (i = 0; i < 1000; i++) { t = A[i] * B[i]; s = s + t; }",
        },
        Workload {
            name: "sec32_recurrence",
            suite: Suite::Paper,
            source: "float A[1012]; int i;\n\
                 for (i = 2; i < 1000; i++) {\n\
                   A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];\n\
                 }",
        },
        Workload {
            name: "fig7_two_variants",
            suite: Suite::Paper,
            source: "float A[1012]; float B[1012]; float C[1012]; float reg; float scal; int i;\n\
                 for (i = 1; i < 1000; i++) {\n\
                   reg = A[i + 1];\n\
                   A[i] = A[i - 1] + reg;\n\
                   scal = B[i] / 2.0;\n\
                   C[i] = scal * 3.0;\n\
                 }",
        },
        Workload {
            name: "sec5_max",
            suite: Suite::Paper,
            source: "float arr[1012]; float max; int i;\n\
                 max = arr[0];\n\
                 for (i = 1; i < 1000; i++) { if (max < arr[i]) max = arr[i]; }",
        },
        Workload {
            name: "sec92_fp_power",
            suite: Suite::Paper,
            source: "float X[1012]; int k;\n\
                 for (k = 1; k < 1000; k++) {\n\
                   X[k] = X[k - 1] * X[k - 1] * X[k - 1] * X[k - 1] * X[k - 1] \
                        + X[k + 1] * X[k + 1] * X[k + 1] * X[k + 1] * X[k + 1];\n\
                 }",
        },
        Workload {
            name: "sec4_swap",
            suite: Suite::Paper,
            source: "float X[64][64]; float CT; int k; int i; int j;\n\
                 i = 3; j = 9;\n\
                 for (k = 0; k < 64; k++) {\n\
                   CT = X[k][i];\n\
                   X[k][i] = X[k][j] * 2.0;\n\
                   X[k][j] = CT;\n\
                 }",
        },
        Workload {
            name: "sec4_bad_mem",
            suite: Suite::Paper,
            source: "float a[1012]; int i;\n\
                 for (i = 0; i < 1000; i++) { a[i] += i; a[i] *= 6.0; a[i] -= 1.0; }",
        },
        Workload {
            name: "sec8_lw",
            suite: Suite::Paper,
            source: "float x[2024]; float y[2024]; float temp; int lw; int j;\n\
                 lw = 6;\n\
                 for (j = 4; j < 2000; j += 2) { temp -= x[lw] * y[j]; lw += 1; }",
        },
    ]
}

/// Which side of the paper's original-vs-SLMS comparison a matrix cell
/// measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// the loop as written
    Original,
    /// after Source Level Modulo Scheduling
    Slms,
}

impl Variant {
    /// Both variants, in canonical report order.
    pub const ALL: [Variant; 2] = [Variant::Original, Variant::Slms];

    /// Short label used in reports (`orig` / `slms`).
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Original => "orig",
            Variant::Slms => "slms",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One cell of the experiment matrix, as indices into the axis vectors
/// (workload × machine × compiler personality × variant). Index-based so
/// this crate does not need to know machine or compiler types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixCell {
    /// index into the workload axis
    pub workload: usize,
    /// index into the machine axis
    pub machine: usize,
    /// index into the compiler-personality axis
    pub compiler: usize,
    /// original or SLMS'd source
    pub variant: Variant,
}

/// Enumerate the full cross product in canonical (deterministic) order:
/// workload-major, then machine, then compiler, with the original/SLMS
/// pair adjacent. The order is part of the batch report contract — cells
/// appear in the JSON exactly in this order regardless of thread count.
pub fn enumerate_matrix(
    n_workloads: usize,
    n_machines: usize,
    n_compilers: usize,
) -> Vec<MatrixCell> {
    let mut cells = Vec::with_capacity(n_workloads * n_machines * n_compilers * 2);
    for w in 0..n_workloads {
        for m in 0..n_machines {
            for c in 0..n_compilers {
                for v in Variant::ALL {
                    cells.push(MatrixCell {
                        workload: w,
                        machine: m,
                        compiler: c,
                        variant: v,
                    });
                }
            }
        }
    }
    cells
}

/// Every workload.
pub fn all() -> Vec<Workload> {
    let mut v = livermore();
    v.extend(linpack());
    v.extend(nas());
    v.extend(stone());
    v.extend(paper_examples());
    v
}

/// Workloads of one suite.
pub fn by_suite(suite: Suite) -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite == suite).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse() {
        let ws = all();
        assert!(
            ws.len() >= 30,
            "expected a substantial suite, got {}",
            ws.len()
        );
        for w in &ws {
            let p = w.program();
            assert!(!p.stmts.is_empty(), "{} has no statements", w.name);
        }
    }

    #[test]
    fn names_unique() {
        let ws = all();
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ws.len());
    }

    #[test]
    fn suites_populated() {
        for s in [
            Suite::Livermore,
            Suite::Linpack,
            Suite::Nas,
            Suite::Stone,
            Suite::Paper,
        ] {
            assert!(by_suite(s).len() >= 5, "suite {s} too small");
        }
    }

    #[test]
    fn matrix_order_is_canonical() {
        let cells = enumerate_matrix(2, 2, 1);
        assert_eq!(cells.len(), 8);
        // workload-major, orig/slms adjacent
        assert_eq!(
            (cells[0].workload, cells[0].machine, cells[0].variant),
            (0, 0, Variant::Original)
        );
        assert_eq!(
            (cells[1].workload, cells[1].machine, cells[1].variant),
            (0, 0, Variant::Slms)
        );
        assert_eq!((cells[2].workload, cells[2].machine), (0, 1));
        assert_eq!(cells[4].workload, 1);
        // enumeration is deterministic
        assert_eq!(cells, enumerate_matrix(2, 2, 1));
    }

    #[test]
    fn every_workload_has_a_loop() {
        for w in all() {
            let p = w.program();
            assert!(
                p.stmts.iter().any(|s| matches!(s, slc_ast::Stmt::For(_))),
                "{} has no for loop",
                w.name
            );
        }
    }
}
