//! The persistent compile daemon behind `slc serve`.
//!
//! A [`Server`] owns one shared [`CompileService`] and listens on a TCP
//! socket (or, on Unix, a Unix-domain socket) for newline-delimited JSON
//! requests ([`crate::proto`]). Design points:
//!
//! * **One thread per connection**, synchronous request/response — the
//!   protocol never reorders responses within a connection, matching the
//!   deterministic `cached`-flag semantics the differential tests pin.
//! * **Admission control**: at most `queue` compile-class requests are in
//!   flight across all connections. Past that the daemon answers `busy`
//!   (exit-code class 3) immediately instead of queueing unboundedly —
//!   backpressure, never a wedge. `ping`/`stats`/`dump`/`metrics`/
//!   `shutdown` are answered inline and never occupy a slot.
//! * **Per-request timeout**: each admitted request runs on its own worker
//!   thread; if it exceeds the deadline the connection answers `timeout`
//!   and moves on. The worker is not cancelled (safe Rust cannot kill a
//!   thread) — it finishes detached and *keeps holding its admission slot*
//!   until done, so a flood of pathological requests degrades into `busy`
//!   responses rather than unbounded thread growth.
//! * **Graceful drain**: a `shutdown` request, [`ServerHandle::stop`], or
//!   SIGTERM/SIGINT (Unix) stops the accept loop; connection threads
//!   finish their current request, and [`ServerHandle::wait`] joins them
//!   and waits for in-flight work to reach zero before reporting
//!   [`DrainStats`].
//! * **Tracing**: with an enabled tracer every connection gets its own
//!   track (`conn N`, tid = N) and every admitted request a
//!   `serve.request` span on it, exported through the same
//!   Chrome-trace/Perfetto pipeline as `slc batch --trace`.

use crate::metrics::render_prometheus;
use crate::proto::{ErrorKind, Request, Response};
use slc_pipeline::CompileService;
use slc_trace::{FlightRecorder, RecKind, Tracer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How long the accept/read loops sleep-poll the stop flag.
const POLL: Duration = Duration::from_millis(5);

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// max compile-class requests in flight across all connections;
    /// admission past this answers `busy`
    pub queue: usize,
    /// per-request deadline; past it the connection answers `timeout`
    pub timeout: Duration,
    /// artifact-store LRU capacity (`None` = unbounded, like `slc batch`)
    pub capacity: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue: 64,
            timeout: Duration::from_secs(30),
            capacity: None,
        }
    }
}

/// Where to listen.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// TCP, e.g. `127.0.0.1:0` (port 0 = ephemeral; see
    /// [`ServerHandle::local_addr`])
    Tcp(String),
    /// Unix-domain socket path (Unix only)
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, d: Duration) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(d)),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(Some(d)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// What the drained daemon reports on exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainStats {
    /// every connection thread joined and in-flight work reached zero
    /// before the drain deadline
    pub drained_clean: bool,
    /// connections accepted over the daemon's lifetime
    pub connections: u64,
    /// requests still running when the drain deadline expired (0 when
    /// `drained_clean`)
    pub abandoned: usize,
}

struct Shared {
    service: Arc<CompileService>,
    tracer: Tracer,
    cfg: ServeConfig,
    stop: AtomicBool,
    inflight: AtomicUsize,
    connections: AtomicU64,
}

/// SIGTERM/SIGINT latch. Installed once per process by
/// [`Server::spawn`]; the accept loop polls it alongside the in-process
/// stop flag so `kill <pid>` drains exactly like a `shutdown` request.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }

    pub fn raised() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn raised() -> bool {
        false
    }
}

/// The daemon. Construct with [`Server::spawn`]; interact through the
/// returned [`ServerHandle`].
pub struct Server;

/// Handle to a running daemon.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: Option<SocketAddr>,
    accept_thread: Option<std::thread::JoinHandle<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind `endpoint` and start serving on background threads. Returns
    /// immediately; use [`ServerHandle::local_addr`] to discover an
    /// ephemeral TCP port, [`ServerHandle::stop`] + [`ServerHandle::wait`]
    /// to drain.
    pub fn spawn(
        endpoint: &Endpoint,
        cfg: ServeConfig,
        tracer: Tracer,
    ) -> std::io::Result<ServerHandle> {
        sig::install();
        // post-mortem safety net: a panic anywhere in the daemon dumps the
        // flight ring to stderr before unwinding
        slc_trace::install_panic_hook();
        let (listener, addr) = match endpoint {
            Endpoint::Tcp(spec) => {
                let l = TcpListener::bind(spec.as_str())?;
                let addr = l.local_addr()?;
                (Listener::Tcp(l), Some(addr))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // a stale socket file from a previous run would fail bind
                let _ = std::fs::remove_file(path);
                (
                    Listener::Unix(std::os::unix::net::UnixListener::bind(path)?),
                    None,
                )
            }
        };
        match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }
        let service = match cfg.capacity {
            Some(cap) => Arc::new(CompileService::bounded(cap)),
            None => Arc::new(CompileService::new()),
        };
        tracer.set_thread_track(0, "acceptor");
        let shared = Arc::new(Shared {
            service,
            tracer,
            cfg,
            stop: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(ServerHandle {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }
}

impl ServerHandle {
    /// The bound TCP address (None for Unix-domain endpoints).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// The shared compile service (counters, cache report).
    pub fn service(&self) -> &Arc<CompileService> {
        &self.shared.service
    }

    /// Ask the daemon to drain (same effect as a `shutdown` request or
    /// SIGTERM).
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Block until the accept loop and every connection thread exit, then
    /// wait (up to 2× the request timeout) for detached in-flight work to
    /// finish. Call [`ServerHandle::stop`] first, or send a `shutdown`
    /// request.
    pub fn wait(mut self) -> DrainStats {
        let conn_threads = self
            .accept_thread
            .take()
            .expect("wait() consumes the handle")
            .join()
            .unwrap_or_default();
        for t in conn_threads {
            let _ = t.join();
        }
        // connection threads are gone; only detached (timed-out) request
        // workers can still hold in-flight slots
        let deadline = Instant::now() + self.shared.cfg.timeout * 2;
        while self.shared.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(POLL);
        }
        let abandoned = self.shared.inflight.load(Ordering::SeqCst);
        DrainStats {
            drained_clean: abandoned == 0,
            connections: self.shared.connections.load(Ordering::SeqCst),
            abandoned,
        }
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) -> Vec<std::thread::JoinHandle<()>> {
    let mut conn_threads = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        if sig::raised() {
            shared.stop.store(true, Ordering::SeqCst);
            break;
        }
        let accepted = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        };
        match accepted {
            Ok(conn) => {
                let id = shared.connections.fetch_add(1, Ordering::SeqCst) + 1;
                let conn_shared = shared.clone();
                conn_threads.push(std::thread::spawn(move || {
                    serve_connection(conn, id, conn_shared)
                }));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(POLL);
            }
            Err(_) => break,
        }
    }
    conn_threads
}

/// Read newline-delimited requests off one connection until EOF or drain.
fn serve_connection(mut conn: Conn, conn_id: u64, shared: Arc<Shared>) {
    let _ = conn.set_read_timeout(Duration::from_millis(100));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'outer: while !shared.stop.load(Ordering::SeqCst) {
        // answer every complete line already buffered
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..nl]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            let resp = handle_line(&line, conn_id, &shared);
            let done = matches!(resp, Response::ShutdownAck);
            // one write per response (line + newline together): two small
            // writes would tangle Nagle with delayed ACKs and add ~40 ms
            // to every request-response round trip
            let mut wire = resp.to_line().into_bytes();
            wire.push(b'\n');
            if conn.write_all(&wire).is_err() || conn.flush().is_err() {
                break 'outer;
            }
            if done {
                shared.stop.store(true, Ordering::SeqCst);
                break 'outer;
            }
        }
        match conn.read(&mut chunk) {
            Ok(0) => break, // EOF: client closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // no data yet — loop back to re-check the stop flag; any
                // partial line stays buffered
            }
            Err(_) => break,
        }
    }
}

/// Decrements the in-flight gauge when the request worker finishes, even
/// if the compile panics.
struct SlotGuard(Arc<Shared>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_line(line: &str, conn_id: u64, shared: &Arc<Shared>) -> Response {
    let req = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            return Response::Error {
                kind: ErrorKind::Usage,
                message: e,
            }
        }
    };
    match req {
        // control-plane requests: answered inline, never queued, so they
        // stay responsive however loaded the compile plane is
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats {
            counters: shared.service.counters(),
        },
        Request::Dump => Response::Dump {
            trace: shared.tracer.export_process_dump("slc-serve"),
            flight: FlightRecorder::global().dump_jsonl(),
        },
        Request::Metrics => {
            let mut hists = shared.service.histograms();
            hists.merge(&shared.service.wall_histograms());
            Response::Metrics {
                text: render_prometheus(&shared.service.counters(), &hists),
            }
        }
        Request::Shutdown => Response::ShutdownAck,
        // compile-plane requests: admission-controlled + deadline-bounded
        compile_class => dispatch(compile_class, conn_id, shared),
    }
}

/// Admit, run on a worker thread, enforce the deadline.
fn dispatch(req: Request, conn_id: u64, shared: &Arc<Shared>) -> Response {
    // admission: claim a slot or answer busy
    let admitted = shared
        .inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.cfg.queue).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        shared.service.note_rejection();
        return Response::Error {
            kind: ErrorKind::Busy,
            message: format!("admission queue full ({} in flight)", shared.cfg.queue),
        };
    }
    shared.service.note_request();
    FlightRecorder::global().record(RecKind::Mark, "serve.admit", conn_id, 0);
    let (tx, rx) = mpsc::channel::<Response>();
    let worker_shared = shared.clone();
    std::thread::spawn(move || {
        let _slot = SlotGuard(worker_shared.clone());
        let tracer = &worker_shared.tracer;
        if tracer.is_enabled() {
            tracer.set_thread_track(conn_id as u32, &format!("conn {conn_id}"));
        }
        let resp = run_request(&req, &worker_shared.service, tracer);
        let _ = tx.send(resp);
    });
    match rx.recv_timeout(shared.cfg.timeout) {
        Ok(resp) => resp,
        Err(_) => {
            // deadline expired (or the worker panicked and dropped the
            // channel): the detached worker keeps its slot until it
            // finishes, which is exactly the backpressure we want
            shared.service.note_timeout();
            Response::Error {
                kind: ErrorKind::Timeout,
                message: format!(
                    "request exceeded the {} ms deadline",
                    shared.cfg.timeout.as_millis()
                ),
            }
        }
    }
}

/// Execute one admitted compile-plane request against the shared service.
fn run_request(req: &Request, service: &CompileService, tracer: &Tracer) -> Response {
    // a caller-supplied trace context binds the daemon into the caller's
    // distributed trace (first binding wins; later contexts still tag
    // their own request spans below)
    let ctx = match req {
        Request::Compile { opts, .. }
        | Request::Explain { opts, .. }
        | Request::Verify { opts, .. } => opts.ctx,
        _ => None,
    };
    if let Some(c) = ctx {
        tracer.set_ctx(c);
    }
    let mut span = tracer.span("serve", "serve.request");
    if let Some(c) = ctx {
        span.arg("trace_id", c.trace_id_hex());
        span.arg("parent_span", c.parent_span_hex());
    }
    match req {
        Request::Compile { source, opts } => {
            span.arg("kind", "compile");
            let (plan, cfg) = match opts.resolve() {
                Ok(x) => x,
                Err(e) => {
                    return Response::Error {
                        kind: ErrorKind::Usage,
                        message: e,
                    }
                }
            };
            match service.compile_request(source, &plan, &cfg, opts.paper_style, tracer) {
                Ok(out) => Response::Compile {
                    cached: out.cached,
                    output: out.output,
                },
                Err(e) => Response::from_service_error(&e),
            }
        }
        Request::Explain { source, opts } => {
            span.arg("kind", "explain");
            let (plan, cfg) = match opts.resolve() {
                Ok(x) => x,
                Err(e) => {
                    return Response::Error {
                        kind: ErrorKind::Usage,
                        message: e,
                    }
                }
            };
            Response::Explain {
                output: service.explain_request(source, &plan, &cfg),
            }
        }
        Request::Verify { source, opts } => {
            span.arg("kind", "verify");
            let (_, cfg) = match opts.resolve() {
                Ok(x) => x,
                Err(e) => {
                    return Response::Error {
                        kind: ErrorKind::Usage,
                        message: e,
                    }
                }
            };
            match service.verify_request(source, &cfg, tracer) {
                Ok(out) => Response::Verify {
                    clean: out.clean,
                    output: out.output,
                },
                Err(e) => Response::from_service_error(&e),
            }
        }
        // control-plane requests never reach dispatch()
        Request::Stats | Request::Dump | Request::Metrics | Request::Ping | Request::Shutdown => {
            Response::Error {
                kind: ErrorKind::Usage,
                message: "control request on the compile plane".to_string(),
            }
        }
    }
}
