//! A minimal blocking client for the `slc serve` line protocol.

use crate::proto::{Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

enum Stream {
    Tcp(BufReader<TcpStream>),
    #[cfg(unix)]
    Unix(BufReader<std::os::unix::net::UnixStream>),
}

/// One connection to a daemon: send a [`Request`], block for the
/// [`Response`] (the protocol answers strictly in order).
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connect over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream: Stream::Tcp(BufReader::new(stream)),
        })
    }

    /// Connect over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> std::io::Result<Client> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        Ok(Client {
            stream: Stream::Unix(BufReader::new(stream)),
        })
    }

    /// Send one request line and block for the response line.
    pub fn request(&mut self, req: &Request) -> Result<Response, String> {
        // single write per request (line + newline): a separate newline
        // write would trip Nagle/delayed-ACK latency on TCP
        let mut wire = req.to_line().into_bytes();
        wire.push(b'\n');
        let mut reply = String::new();
        match &mut self.stream {
            Stream::Tcp(r) => {
                let s = r.get_mut();
                s.write_all(&wire)
                    .and_then(|_| s.flush())
                    .map_err(|e| format!("send: {e}"))?;
                r.read_line(&mut reply).map_err(|e| format!("recv: {e}"))?;
            }
            #[cfg(unix)]
            Stream::Unix(r) => {
                let s = r.get_mut();
                s.write_all(&wire)
                    .and_then(|_| s.flush())
                    .map_err(|e| format!("send: {e}"))?;
                r.read_line(&mut reply).map_err(|e| format!("recv: {e}"))?;
            }
        }
        if reply.is_empty() {
            return Err("connection closed before a response arrived".to_string());
        }
        Response::parse(reply.trim_end())
    }
}
