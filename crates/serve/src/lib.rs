//! SLMS as a service: the persistent `slc serve` daemon.
//!
//! The compilation engine itself lives in `slc_pipeline::CompileService` —
//! the same stores, keys and counters that back one-shot `slc batch`. This
//! crate adds the long-running process around it:
//!
//! - [`proto`] — the newline-delimited JSON wire protocol
//!   (`compile` / `explain` / `verify` / `stats` / `ping` / `shutdown`
//!   requests, typed error responses that preserve the CLI exit-code
//!   contract).
//! - [`daemon`] — the server: TCP or Unix-socket listener, admission
//!   control with backpressure `busy` responses, per-request deadlines,
//!   graceful drain on `shutdown` / SIGTERM, one trace track per
//!   connection worker.
//! - [`client`] — a minimal blocking client for the protocol.
//! - [`metrics`] — Prometheus text exposition of the deterministic
//!   counters and histograms, behind the daemon's `metrics` verb.
//! - [`bench`] — the `slc bench-serve` load generator and its
//!   `BENCH_serve.json` report (deterministic counts separated from
//!   wall-clock latency histograms).
//!
//! Responses are byte-identical to one-shot `slc` output for the same
//! source and knobs — pinned by `tests/serve_differential.rs`.

pub mod bench;
pub mod client;
pub mod daemon;
pub mod metrics;
pub mod proto;

pub use bench::{run_bench, BenchConfig, BenchCounts, BenchReport, BENCH_SCHEMA};
pub use client::Client;
pub use daemon::{DrainStats, Endpoint, ServeConfig, Server, ServerHandle};
pub use metrics::{prometheus_name, render_prometheus};
pub use proto::{ErrorKind, Request, RequestOpts, Response, PROTO_SCHEMA};
