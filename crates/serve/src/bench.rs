//! `slc bench-serve` — the daemon load generator.
//!
//! Replays the workload × pass-plan corpus against a daemon at a
//! configurable client concurrency, in `passes` full passes with a barrier
//! between them: with a fresh daemon, pass 1 populates the shared artifact
//! cache (every distinct (program, plan) key misses exactly once) and
//! every later pass is answered from it — so the *count* fields of the
//! report are deterministic and gateable, while latency distributions and
//! wall clock live in a separate `timing` section, following the
//! timing-sidecar discipline of `BENCH_batch.json`. Since v2 latencies are
//! folded into a log2-bucketed [`Histogram`] (the same type the daemon's
//! `metrics` verb exposes): percentiles are bucket upper bounds except the
//! exact max, and the report records the occupied bucket boundaries so the
//! baseline is self-describing.
//!
//! With no `addr` the bench owns the daemon: it spawns an in-process
//! [`Server`] on an ephemeral loopback port, replays the corpus, fetches a
//! `stats` snapshot, sends `shutdown` and verifies the drain was clean —
//! the full lifecycle the CI serve-smoke job gates.

use crate::client::Client;
use crate::daemon::{Endpoint, ServeConfig, Server};
use crate::proto::{Request, RequestOpts, Response};
use slc_pipeline::Json;
use slc_trace::{bucket_upper, Histogram, Tracer};
use std::time::{Duration, Instant};

/// Schema tag of the `BENCH_serve.json` document. v2: latency percentiles
/// come from a log2-bucketed histogram (p99.9 and exact max added, bucket
/// boundaries recorded); the `counts` section is unchanged from v1 so
/// count-based gates carry over.
pub const BENCH_SCHEMA: &str = "slc-serve-bench-v2";

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// daemon address (`host:port`); `None` = spawn an in-process daemon
    /// on an ephemeral loopback port and drive its full lifecycle
    pub addr: Option<String>,
    /// concurrent client connections
    pub clients: usize,
    /// full corpus replays (pass 2+ must be answered from cache)
    pub passes: usize,
    /// pass plans; the corpus is every plan × every built-in workload
    pub plans: Vec<String>,
    /// in-process daemon: per-request deadline
    pub timeout: Duration,
    /// in-process daemon: admission queue bound (clamped to ≥ `clients`
    /// so the bench itself is never backpressured)
    pub queue: usize,
    /// in-process daemon: artifact-store LRU capacity (`None` unbounded)
    pub capacity: Option<usize>,
    /// also send `shutdown` to an external daemon (`addr` mode) when done
    pub shutdown_external: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            addr: None,
            clients: 8,
            passes: 2,
            plans: vec!["slms".to_string(), "normalize,slms".to_string()],
            timeout: Duration::from_secs(30),
            queue: 64,
            capacity: None,
            shutdown_external: false,
        }
    }
}

/// Deterministic count fields of one bench run (gateable; no wall clock).
#[derive(Debug, Clone)]
pub struct BenchCounts {
    /// concurrent client connections
    pub clients: usize,
    /// corpus replays
    pub passes: usize,
    /// pass plans replayed
    pub plans: Vec<String>,
    /// distinct (workload, plan) corpus items
    pub corpus: usize,
    /// compile requests sent (corpus × passes)
    pub requests: usize,
    /// successful responses
    pub responses_ok: usize,
    /// error responses (the smoke gate requires 0)
    pub responses_error: usize,
    /// cache-hit responses per pass, pass-ordered
    pub pass_hits: Vec<usize>,
    /// hit rate of the final pass (the ≥ 90% gate)
    pub final_pass_hit_rate: f64,
    /// `serve.*` counter snapshot from the daemon's `stats` response
    /// (requests, rejections, timeouts, evictions, hits, refp_mismatches)
    pub serve: Vec<(String, u64)>,
    /// drain outcome (`None` when an external daemon was left running)
    pub drained_clean: Option<bool>,
}

/// One bench run: deterministic counts + wall-clock timing.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// deterministic, gateable counts
    pub counts: BenchCounts,
    /// end-to-end wall time
    pub wall_ns: u64,
    /// per-request latency distribution, nanoseconds, log2-bucketed
    pub latency: Histogram,
}

impl BenchReport {
    /// Render `BENCH_serve.json`: a `counts` section (deterministic,
    /// count-based — what gates compare) strictly separated from a
    /// `timing` section (the latency histogram and wall clock — baselines
    /// to eyeball, never gate).
    pub fn to_json(&self) -> String {
        let c = &self.counts;
        let mut serve = Json::obj();
        for (k, v) in &c.serve {
            serve = serve.field(k, *v as i64);
        }
        // occupied log2 buckets: inclusive upper bound (ms) → sample count
        let mut buckets = Json::obj();
        for (idx, &n) in self.latency.buckets().iter().enumerate() {
            if n > 0 {
                buckets = buckets.field(&format!("{}", bucket_upper(idx) as f64 / 1e6), n);
            }
        }
        let ms = |ns: u64| ns as f64 / 1e6;
        Json::obj()
            .field("schema", BENCH_SCHEMA)
            .field(
                "counts",
                Json::obj()
                    .field("clients", c.clients)
                    .field("passes", c.passes)
                    .field(
                        "plans",
                        Json::Arr(c.plans.iter().map(|p| Json::Str(p.clone())).collect()),
                    )
                    .field("corpus", c.corpus)
                    .field("requests", c.requests)
                    .field("responses_ok", c.responses_ok)
                    .field("responses_error", c.responses_error)
                    .field(
                        "pass_hits",
                        Json::Arr(c.pass_hits.iter().map(|&h| Json::from(h as i64)).collect()),
                    )
                    .field("final_pass_hit_rate", c.final_pass_hit_rate)
                    .field("serve", serve)
                    .field(
                        "drained_clean",
                        match c.drained_clean {
                            Some(b) => Json::Bool(b),
                            None => Json::Null,
                        },
                    ),
            )
            .field(
                "timing",
                Json::obj()
                    .field("wall_ms", self.wall_ns as f64 / 1e6)
                    .field(
                        "latency_ms",
                        Json::obj()
                            .field("p50", ms(self.latency.percentile(0.50)))
                            .field("p90", ms(self.latency.percentile(0.90)))
                            .field("p99", ms(self.latency.percentile(0.99)))
                            .field("p99_9", ms(self.latency.percentile(0.999)))
                            .field("max", ms(self.latency.max())),
                    )
                    .field(
                        "latency_buckets_ms",
                        Json::obj()
                            .field("rule", "log2-ns")
                            .field("samples", self.latency.count())
                            .field("buckets", buckets),
                    ),
            )
            .to_pretty()
    }

    /// The serve-smoke gate: zero error responses, a final-pass hit rate
    /// of at least `min_hit_rate`, and (when the bench owned the daemon) a
    /// clean drain. Count-based only — wall clock never gates.
    pub fn gate(&self, min_hit_rate: f64) -> Result<(), String> {
        let c = &self.counts;
        if c.responses_error > 0 {
            return Err(format!("{} error response(s)", c.responses_error));
        }
        if c.final_pass_hit_rate < min_hit_rate {
            return Err(format!(
                "final-pass hit rate {:.3} below the {min_hit_rate:.3} gate",
                c.final_pass_hit_rate
            ));
        }
        if c.drained_clean == Some(false) {
            return Err("daemon did not drain cleanly".to_string());
        }
        Ok(())
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let c = &self.counts;
        format!(
            "{} request(s) over {} client(s) × {} pass(es): {} ok, {} error(s), \
             final-pass hit rate {:.1}%, p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms, wall {:.1} ms",
            c.requests,
            c.clients,
            c.passes,
            c.responses_ok,
            c.responses_error,
            c.final_pass_hit_rate * 100.0,
            self.latency.percentile(0.50) as f64 / 1e6,
            self.latency.percentile(0.99) as f64 / 1e6,
            self.latency.max() as f64 / 1e6,
            self.wall_ns as f64 / 1e6,
        )
    }
}

/// Build the corpus: every pass plan × every built-in workload.
fn corpus(plans: &[String]) -> Vec<Request> {
    let mut items = Vec::new();
    for plan in plans {
        for w in slc_workloads::all() {
            items.push(Request::Compile {
                source: w.source.to_string(),
                opts: RequestOpts {
                    passes: Some(plan.clone()),
                    filter: true,
                    ..RequestOpts::default()
                },
            });
        }
    }
    items
}

/// Run the bench. See [`BenchConfig`]; returns the report or a transport
/// error (a daemon that answers with typed `error` responses is NOT a
/// transport error — those are counted and fail [`BenchReport::gate`]).
pub fn run_bench(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let items = corpus(&cfg.plans);
    if items.is_empty() || cfg.clients == 0 || cfg.passes == 0 {
        return Err("empty bench: need plans, clients ≥ 1 and passes ≥ 1".to_string());
    }

    // spawn the in-process daemon unless pointed at an external one
    let (addr, handle) = match &cfg.addr {
        Some(a) => (a.clone(), None),
        None => {
            let serve_cfg = ServeConfig {
                queue: cfg.queue.max(cfg.clients),
                timeout: cfg.timeout,
                capacity: cfg.capacity,
            };
            let handle = Server::spawn(
                &Endpoint::Tcp("127.0.0.1:0".to_string()),
                serve_cfg,
                Tracer::disabled(),
            )
            .map_err(|e| format!("cannot spawn daemon: {e}"))?;
            let addr = handle
                .local_addr()
                .ok_or("in-process daemon has no TCP address")?
                .to_string();
            (addr, Some(handle))
        }
    };

    // per client: Ok(vec of (ok, cached, latency_ns)) or a transport error
    type ClientResults = Result<Vec<(bool, bool, u64)>, String>;

    let t0 = Instant::now();
    let mut pass_hits: Vec<usize> = Vec::new();
    let mut responses_ok = 0usize;
    let mut responses_error = 0usize;
    let mut latency = Histogram::new();
    for _pass in 0..cfg.passes {
        // one pass: every client replays its round-robin share, barrier at
        // the end (so the next pass starts against a fully-warm cache)
        let results: Vec<ClientResults> = std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for client_id in 0..cfg.clients {
                let items = &items;
                let addr = &addr;
                joins.push(scope.spawn(move || {
                    let mut conn = Client::connect_tcp(addr)
                        .map_err(|e| format!("client {client_id}: connect: {e}"))?;
                    let mut out = Vec::new();
                    for req in items.iter().skip(client_id).step_by(cfg.clients.max(1)) {
                        let t = Instant::now();
                        let resp = conn
                            .request(req)
                            .map_err(|e| format!("client {client_id}: {e}"))?;
                        let ns = t.elapsed().as_nanos() as u64;
                        match resp {
                            Response::Compile { cached, .. } => out.push((true, cached, ns)),
                            r if r.is_error() => out.push((false, false, ns)),
                            _ => {
                                return Err(format!("client {client_id}: unexpected response type"))
                            }
                        }
                    }
                    Ok(out)
                }));
            }
            joins
                .into_iter()
                .map(|j| j.join().unwrap_or_else(|_| Err("client panicked".into())))
                .collect()
        });
        let mut hits = 0usize;
        for r in results {
            for (ok, cached, ns) in r? {
                if ok {
                    responses_ok += 1;
                    if cached {
                        hits += 1;
                    }
                } else {
                    responses_error += 1;
                }
                latency.record(ns);
            }
        }
        pass_hits.push(hits);
    }

    // final stats snapshot + lifecycle teardown on one control connection
    let mut control = Client::connect_tcp(&addr).map_err(|e| format!("control connect: {e}"))?;
    let serve = match control.request(&Request::Stats)? {
        Response::Stats { counters } => [
            "serve.requests",
            "serve.rejections",
            "serve.timeouts",
            "serve.evictions",
            "serve.hits",
            "serve.refp_mismatches",
        ]
        .iter()
        .map(|k| (k.to_string(), counters.get(k)))
        .collect(),
        other => return Err(format!("stats request answered with {other:?}")),
    };
    let drained_clean = if handle.is_some() || cfg.shutdown_external {
        match control.request(&Request::Shutdown)? {
            Response::ShutdownAck => {}
            other => return Err(format!("shutdown answered with {other:?}")),
        }
        handle.map(|h| h.wait().drained_clean)
    } else {
        None
    };
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let last_pass_total = items.len().max(1);
    let final_pass_hit_rate = *pass_hits.last().unwrap_or(&0) as f64 / last_pass_total as f64;
    Ok(BenchReport {
        counts: BenchCounts {
            clients: cfg.clients,
            passes: cfg.passes,
            plans: cfg.plans.clone(),
            corpus: items.len(),
            requests: items.len() * cfg.passes,
            responses_ok,
            responses_error,
            pass_hits,
            final_pass_hit_rate,
            serve,
            drained_clean,
        },
        wall_ns,
        latency,
    })
}
