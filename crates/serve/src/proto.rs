//! The `slc serve` wire protocol: newline-delimited JSON.
//!
//! One request per line, one response per line, always in order — the
//! daemon never reorders responses within a connection. Every object
//! carries a `type` tag. The protocol version rides in the handshake-free
//! schema constant [`PROTO_SCHEMA`], which the `stats` response echoes.
//!
//! The sharded batch tier speaks a sibling NDJSON protocol over worker
//! pipes (`slc-shard-proto-v1`, `slc_pipeline::shard`) with the same
//! framing discipline — one line, one typed object, malformed input is a
//! protocol fault rather than a wedge. They are deliberately separate
//! schemas: this one is request/response for interactive clients, that
//! one is a streaming dispatcher/worker conversation.
//!
//! ## Requests
//!
//! ```json
//! {"type":"compile","source":"…","passes":"normalize,slms","paper_style":false}
//! {"type":"explain","source":"…","passes":"slms"}
//! {"type":"verify","source":"…","scheduler":"exact"}
//! {"type":"stats"}
//! {"type":"dump"}
//! {"type":"metrics"}
//! {"type":"ping"}
//! {"type":"shutdown"}
//! ```
//!
//! `source` is required for compile/explain/verify. Optional knobs mirror
//! the one-shot CLI flags and default the same way: `passes` (plan text,
//! default `slms`), `expansion` (`mve`/`scalar`/`off`), `filter` (bool,
//! default true — `false` is `--no-filter`), `scheduler`
//! (`heuristic`/`exact`; like the CLI, `exact` without an explicit
//! `passes` swaps in the `exact` plan), `paper_style` (compile only).
//!
//! Compile/explain/verify requests may additionally carry a distributed
//! trace context — `trace_id` and `parent_span`, each a 16-digit hex u64.
//! A traced daemon binds its tracer to the first context it sees, tags the
//! request span with both fields, and the `dump` verb returns a
//! `slc-span-dump-v1` document the client can import to stitch daemon
//! spans into its own Chrome trace.
//!
//! ## Responses
//!
//! ```json
//! {"type":"compile","ok":true,"cached":false,"output":"…"}
//! {"type":"explain","ok":true,"output":"…"}
//! {"type":"verify","ok":true,"clean":true,"output":"…"}
//! {"type":"stats","ok":true,"schema":"slc-serve-proto-v1","counters":{…}}
//! {"type":"dump","ok":true,"trace":"…","flight":"…"}
//! {"type":"metrics","ok":true,"text":"…"}
//! {"type":"pong","ok":true}
//! {"type":"shutdown","ok":true}
//! {"type":"error","ok":false,"kind":"…","exit_code":1,"message":"…"}
//! ```
//!
//! `output` is byte-identical to the corresponding one-shot CLI stdout
//! (`slc`, `slc explain --json`, `slc verify`). Error kinds map onto the
//! CLI exit-code contract: `parse` and `plan` (the [`ServiceError`]
//! stages, whose messages embed the structured `SlmsError` reasons) carry
//! exit code 1, `usage` (malformed request line, unknown type, bad knob
//! value) carries 2, and the daemon-transient kinds `busy` (admission
//! queue full), `timeout` (per-request deadline expired) and `shutdown`
//! (daemon draining) carry 3 — retryable, with no one-shot equivalent.

use slc_core::{Expansion, SchedulerKind, SlmsConfig};
use slc_pipeline::{Json, PassPlan, ServiceError};
use slc_trace::{CounterRegistry, TraceCtx};

/// Protocol schema tag, echoed by the `stats` response.
pub const PROTO_SCHEMA: &str = "slc-serve-proto-v1";

/// Knobs shared by compile/explain/verify requests, mirroring the one-shot
/// CLI flags (and defaulting identically).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestOpts {
    /// pass plan text (`--passes`); `None` = the default `slms` plan
    pub passes: Option<String>,
    /// expansion kind (`--expansion`)
    pub expansion: Option<Expansion>,
    /// apply the §4 memory-ref-ratio filter (`false` = `--no-filter`)
    pub filter: bool,
    /// MI placement scheduler (`--scheduler`)
    pub scheduler: Option<SchedulerKind>,
    /// render `stmt; || stmt;` kernels (`--paper-style`; compile only)
    pub paper_style: bool,
    /// caller-supplied distributed trace context (`trace_id` +
    /// `parent_span` hex wire fields); when present the daemon binds its
    /// tracer to this trace so the client can stitch daemon spans into its
    /// own timeline
    pub ctx: Option<TraceCtx>,
}

impl RequestOpts {
    /// Resolve the knobs into the pass plan and SLMS config the one-shot
    /// CLI would build: defaults from [`SlmsConfig::default`], and
    /// `scheduler: exact` without explicit `passes` swaps in the `exact`
    /// plan.
    pub fn resolve(&self) -> Result<(PassPlan, SlmsConfig), String> {
        let mut cfg = SlmsConfig::default();
        if let Some(x) = self.expansion {
            cfg.expansion = x;
        }
        if let Some(s) = self.scheduler {
            cfg.scheduler = s;
        }
        cfg.apply_filter = self.filter;
        let plan = match &self.passes {
            Some(text) => PassPlan::parse(text).map_err(|e| format!("passes: {e}"))?,
            None if cfg.scheduler == SchedulerKind::Exact => PassPlan::exact_only(),
            None => PassPlan::slms_only(),
        };
        Ok((plan, cfg))
    }
}

/// One request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// run a pass plan and return the optimized source
    Compile {
        /// program text
        source: String,
        /// CLI-mirroring knobs
        opts: RequestOpts,
    },
    /// per-loop JSONL decision trace (like `slc explain --json`)
    Explain {
        /// program text
        source: String,
        /// CLI-mirroring knobs
        opts: RequestOpts,
    },
    /// lint + static verification report (like `slc verify`)
    Verify {
        /// program text
        source: String,
        /// CLI-mirroring knobs
        opts: RequestOpts,
    },
    /// deterministic counter snapshot
    Stats,
    /// observability dump: span-dump document (if tracing) + flight ring
    Dump,
    /// Prometheus text exposition of counters and histograms
    Metrics,
    /// liveness probe (answered inline, never queued)
    Ping,
    /// begin graceful drain; the response is the last line on this socket
    Shutdown,
}

/// Typed error classes, each mapped onto the CLI exit-code contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// malformed request (bad JSON, unknown type, invalid knob) — exit 2
    Usage,
    /// the source did not parse — exit 1
    Parse,
    /// the pass plan failed structurally — exit 1
    Plan,
    /// admission queue full; retry later — exit 3 (daemon-transient)
    Busy,
    /// per-request deadline expired — exit 3 (daemon-transient)
    Timeout,
    /// daemon is draining — exit 3 (daemon-transient)
    Shutdown,
}

impl ErrorKind {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorKind::Usage => "usage",
            ErrorKind::Parse => "parse",
            ErrorKind::Plan => "plan",
            ErrorKind::Busy => "busy",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Shutdown => "shutdown",
        }
    }

    /// The exit code a one-shot CLI invocation hitting this error class
    /// would return (3 = daemon-transient, retryable, no CLI equivalent).
    pub fn exit_code(&self) -> i64 {
        match self {
            ErrorKind::Usage => 2,
            ErrorKind::Parse | ErrorKind::Plan => 1,
            ErrorKind::Busy | ErrorKind::Timeout | ErrorKind::Shutdown => 3,
        }
    }

    fn from_label(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "usage" => ErrorKind::Usage,
            "parse" => ErrorKind::Parse,
            "plan" => ErrorKind::Plan,
            "busy" => ErrorKind::Busy,
            "timeout" => ErrorKind::Timeout,
            "shutdown" => ErrorKind::Shutdown,
            _ => return None,
        })
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// successful compile
    Compile {
        /// plan artifact came from cache (deterministic under a fixed
        /// request order)
        cached: bool,
        /// optimized source, byte-identical to one-shot `slc` stdout
        output: String,
    },
    /// successful explain (JSONL text)
    Explain {
        /// the per-loop trace, byte-identical to `slc explain --json`
        output: String,
    },
    /// successful verify
    Verify {
        /// no violations and no error-severity lints
        clean: bool,
        /// report text, byte-identical to `slc verify` stdout
        output: String,
    },
    /// counter snapshot
    Stats {
        /// the deterministic counter registry (includes the `serve.*`
        /// family)
        counters: CounterRegistry,
    },
    /// observability dump
    Dump {
        /// `slc-span-dump-v1` JSONL document of the daemon's spans so far;
        /// `None` when the daemon is not tracing
        trace: Option<String>,
        /// flight-recorder ring as `slc-flight-v1` JSONL
        flight: String,
    },
    /// Prometheus text exposition
    Metrics {
        /// `# TYPE`-annotated counter and histogram families
        text: String,
    },
    /// ping acknowledgement
    Pong,
    /// drain acknowledged; the daemon stops accepting new requests
    ShutdownAck,
    /// typed failure
    Error {
        /// error class
        kind: ErrorKind,
        /// human-readable detail
        message: String,
    },
}

impl Response {
    /// A typed error from a compile-service failure.
    pub fn from_service_error(e: &ServiceError) -> Response {
        match e {
            ServiceError::Parse(m) => Response::Error {
                kind: ErrorKind::Parse,
                message: m.clone(),
            },
            ServiceError::Plan(m) => Response::Error {
                kind: ErrorKind::Plan,
                message: m.clone(),
            },
        }
    }

    /// Is this an `error` response?
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }

    /// Serialize as one compact JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Compile { cached, output } => Json::obj()
                .field("type", "compile")
                .field("ok", true)
                .field("cached", *cached)
                .field("output", output.as_str()),
            Response::Explain { output } => Json::obj()
                .field("type", "explain")
                .field("ok", true)
                .field("output", output.as_str()),
            Response::Verify { clean, output } => Json::obj()
                .field("type", "verify")
                .field("ok", true)
                .field("clean", *clean)
                .field("output", output.as_str()),
            Response::Stats { counters } => {
                let mut obj = Json::obj();
                for (k, v) in counters.iter() {
                    obj = obj.field(k, v as i64);
                }
                Json::obj()
                    .field("type", "stats")
                    .field("ok", true)
                    .field("schema", PROTO_SCHEMA)
                    .field("counters", obj)
            }
            Response::Dump { trace, flight } => {
                let obj = Json::obj().field("type", "dump").field("ok", true);
                let obj = match trace {
                    Some(t) => obj.field("trace", t.as_str()),
                    None => obj,
                };
                obj.field("flight", flight.as_str())
            }
            Response::Metrics { text } => Json::obj()
                .field("type", "metrics")
                .field("ok", true)
                .field("text", text.as_str()),
            Response::Pong => Json::obj().field("type", "pong").field("ok", true),
            Response::ShutdownAck => Json::obj().field("type", "shutdown").field("ok", true),
            Response::Error { kind, message } => Json::obj()
                .field("type", "error")
                .field("ok", false)
                .field("kind", kind.label())
                .field("exit_code", kind.exit_code())
                .field("message", message.as_str()),
        }
        .to_string()
    }

    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let obj = Json::parse(line)?;
        let ty = obj
            .get("type")
            .and_then(Json::as_str)
            .ok_or("response has no type")?;
        let text = |key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("{ty} response has no {key}"))
        };
        let flag = |key: &str| matches!(obj.get(key), Some(Json::Bool(true)));
        Ok(match ty {
            "compile" => Response::Compile {
                cached: flag("cached"),
                output: text("output")?,
            },
            "explain" => Response::Explain {
                output: text("output")?,
            },
            "verify" => Response::Verify {
                clean: flag("clean"),
                output: text("output")?,
            },
            "stats" => {
                let mut counters = CounterRegistry::default();
                if let Some(fields) = obj.get("counters").and_then(Json::as_obj) {
                    for (k, v) in fields {
                        counters.set(k, v.as_i64().unwrap_or(0).max(0) as u64);
                    }
                }
                Response::Stats { counters }
            }
            "dump" => Response::Dump {
                trace: obj.get("trace").and_then(Json::as_str).map(str::to_string),
                flight: text("flight")?,
            },
            "metrics" => Response::Metrics {
                text: text("text")?,
            },
            "pong" => Response::Pong,
            "shutdown" => Response::ShutdownAck,
            "error" => Response::Error {
                kind: obj
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(ErrorKind::from_label)
                    .ok_or("error response has no known kind")?,
                message: text("message")?,
            },
            other => return Err(format!("unknown response type `{other}`")),
        })
    }
}

fn opts_fields(obj: Json, opts: &RequestOpts) -> Json {
    let mut obj = obj;
    if let Some(p) = &opts.passes {
        obj = obj.field("passes", p.as_str());
    }
    if let Some(x) = opts.expansion {
        obj = obj.field(
            "expansion",
            match x {
                Expansion::Mve => "mve",
                Expansion::ScalarExpand => "scalar",
                Expansion::Off => "off",
            },
        );
    }
    if !opts.filter {
        obj = obj.field("filter", false);
    }
    if let Some(s) = opts.scheduler {
        obj = obj.field(
            "scheduler",
            match s {
                SchedulerKind::Heuristic => "heuristic",
                SchedulerKind::Exact => "exact",
            },
        );
    }
    if opts.paper_style {
        obj = obj.field("paper_style", true);
    }
    if let Some(ctx) = &opts.ctx {
        obj = obj
            .field("trace_id", ctx.trace_id_hex().as_str())
            .field("parent_span", ctx.parent_span_hex().as_str());
    }
    obj
}

fn parse_opts(obj: &Json) -> Result<RequestOpts, String> {
    let mut opts = RequestOpts {
        filter: true,
        ..RequestOpts::default()
    };
    if let Some(p) = obj.get("passes") {
        opts.passes = Some(p.as_str().ok_or("`passes` must be a string")?.to_string());
    }
    if let Some(x) = obj.get("expansion") {
        opts.expansion = Some(match x.as_str() {
            Some("mve") => Expansion::Mve,
            Some("scalar") => Expansion::ScalarExpand,
            Some("off") => Expansion::Off,
            _ => return Err("`expansion` must be mve|scalar|off".to_string()),
        });
    }
    if let Some(f) = obj.get("filter") {
        opts.filter = match f {
            Json::Bool(b) => *b,
            _ => return Err("`filter` must be a boolean".to_string()),
        };
    }
    if let Some(s) = obj.get("scheduler") {
        opts.scheduler = Some(match s.as_str() {
            Some("heuristic") => SchedulerKind::Heuristic,
            Some("exact") => SchedulerKind::Exact,
            _ => return Err("`scheduler` must be heuristic|exact".to_string()),
        });
    }
    if let Some(p) = obj.get("paper_style") {
        opts.paper_style = match p {
            Json::Bool(b) => *b,
            _ => return Err("`paper_style` must be a boolean".to_string()),
        };
    }
    match (
        obj.get("trace_id").and_then(Json::as_str),
        obj.get("parent_span").and_then(Json::as_str),
    ) {
        (Some(tid), Some(ps)) => opts.ctx = Some(TraceCtx::from_hex(tid, ps)?),
        (None, None) => {}
        _ => {
            return Err("`trace_id` and `parent_span` must be provided together".to_string());
        }
    }
    Ok(opts)
}

impl Request {
    /// Serialize as one compact JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Compile { source, opts } => opts_fields(
                Json::obj()
                    .field("type", "compile")
                    .field("source", source.as_str()),
                opts,
            ),
            Request::Explain { source, opts } => opts_fields(
                Json::obj()
                    .field("type", "explain")
                    .field("source", source.as_str()),
                opts,
            ),
            Request::Verify { source, opts } => opts_fields(
                Json::obj()
                    .field("type", "verify")
                    .field("source", source.as_str()),
                opts,
            ),
            Request::Stats => Json::obj().field("type", "stats"),
            Request::Dump => Json::obj().field("type", "dump"),
            Request::Metrics => Json::obj().field("type", "metrics"),
            Request::Ping => Json::obj().field("type", "ping"),
            Request::Shutdown => Json::obj().field("type", "shutdown"),
        }
        .to_string()
    }

    /// Parse one request line. Errors are usage-class: the daemon answers
    /// them with an `error` response (`kind: "usage"`, exit code 2) and
    /// keeps the connection alive.
    pub fn parse(line: &str) -> Result<Request, String> {
        let obj = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let ty = obj
            .get("type")
            .and_then(Json::as_str)
            .ok_or("request has no `type` field")?;
        let source = || -> Result<String, String> {
            obj.get("source")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("`{ty}` request requires a `source` string"))
        };
        Ok(match ty {
            "compile" => Request::Compile {
                source: source()?,
                opts: parse_opts(&obj)?,
            },
            "explain" => Request::Explain {
                source: source()?,
                opts: parse_opts(&obj)?,
            },
            "verify" => Request::Verify {
                source: source()?,
                opts: parse_opts(&obj)?,
            },
            "stats" => Request::Stats,
            "dump" => Request::Dump,
            "metrics" => Request::Metrics,
            "ping" => Request::Ping,
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown request type `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Compile {
                source: "int i;\nfor (i = 0; i < 4; i++) ;".to_string(),
                opts: RequestOpts {
                    passes: Some("normalize,slms".to_string()),
                    expansion: Some(Expansion::ScalarExpand),
                    filter: false,
                    scheduler: Some(SchedulerKind::Exact),
                    paper_style: true,
                    ctx: Some(TraceCtx::from_hex("00000000deadbeef", "0000000000000007").unwrap()),
                },
            },
            Request::Explain {
                source: "x".to_string(),
                opts: RequestOpts {
                    filter: true,
                    ..RequestOpts::default()
                },
            },
            Request::Verify {
                source: "y \"quoted\"".to_string(),
                opts: RequestOpts {
                    filter: true,
                    scheduler: Some(SchedulerKind::Heuristic),
                    ..RequestOpts::default()
                },
            },
            Request::Stats,
            Request::Dump,
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = r.to_line();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let mut counters = CounterRegistry::default();
        counters.set("serve.requests", 7);
        let resps = [
            Response::Compile {
                cached: true,
                output: "a;\nb;\n".to_string(),
            },
            Response::Explain {
                output: "{}\n".to_string(),
            },
            Response::Verify {
                clean: false,
                output: "  summary: …\n".to_string(),
            },
            Response::Stats { counters },
            Response::Dump {
                trace: Some("{\"schema\":\"slc-span-dump-v1\"}\n".to_string()),
                flight: "{\"schema\":\"slc-flight-v1\"}\n".to_string(),
            },
            Response::Dump {
                trace: None,
                flight: String::new(),
            },
            Response::Metrics {
                text: "# TYPE slc_serve_requests counter\nslc_serve_requests 7\n".to_string(),
            },
            Response::Pong,
            Response::ShutdownAck,
            Response::Error {
                kind: ErrorKind::Busy,
                message: "admission queue full".to_string(),
            },
        ];
        for r in resps {
            let line = r.to_line();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Response::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn error_kinds_keep_the_exit_code_contract() {
        assert_eq!(ErrorKind::Usage.exit_code(), 2);
        assert_eq!(ErrorKind::Parse.exit_code(), 1);
        assert_eq!(ErrorKind::Plan.exit_code(), 1);
        for transient in [ErrorKind::Busy, ErrorKind::Timeout, ErrorKind::Shutdown] {
            assert_eq!(transient.exit_code(), 3);
        }
    }

    #[test]
    fn resolve_mirrors_cli_defaults() {
        let (plan, cfg) = RequestOpts {
            filter: true,
            ..RequestOpts::default()
        }
        .resolve()
        .unwrap();
        assert_eq!(plan.to_string(), "slms");
        assert!(cfg.apply_filter);
        // exact without passes swaps in the exact plan, like the CLI
        let (plan, cfg) = RequestOpts {
            filter: true,
            scheduler: Some(SchedulerKind::Exact),
            ..RequestOpts::default()
        }
        .resolve()
        .unwrap();
        assert_eq!(plan.to_string(), "exact");
        assert_eq!(cfg.scheduler, SchedulerKind::Exact);
        // explicit passes win
        let (plan, _) = RequestOpts {
            filter: true,
            passes: Some("normalize,slms".to_string()),
            scheduler: Some(SchedulerKind::Exact),
            ..RequestOpts::default()
        }
        .resolve()
        .unwrap();
        assert_eq!(plan.to_string(), "normalize,slms");
    }

    #[test]
    fn malformed_lines_are_usage_errors() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"type\":\"nope\"}",
            "{\"type\":\"compile\"}",
            "{\"type\":\"compile\",\"source\":\"x\",\"expansion\":\"huge\"}",
            "{\"type\":\"compile\",\"source\":\"x\",\"trace_id\":\"ab\"}",
            "{\"type\":\"compile\",\"source\":\"x\",\"trace_id\":\"zz\",\"parent_span\":\"0\"}",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
    }
}
