//! Prometheus text exposition for the daemon's `metrics` verb.
//!
//! Renders the deterministic counter registry and the histogram registries
//! into the Prometheus text format (one `# TYPE` line per family, dotted
//! slc names mapped onto `slc_`-prefixed underscore names). Counters stay
//! exactly the values `slc stats --json` reports — the exposition is a
//! projection, never a second bookkeeping path — so a scrape and a `stats`
//! request taken from the same quiesced daemon agree number for number.
//!
//! Histograms follow the Prometheus cumulative-bucket convention: one
//! `_bucket{le="…"}` sample per occupied log2 bucket (upper bounds from
//! [`slc_trace::bucket_upper`]), a closing `le="+Inf"` bucket, and the
//! usual `_sum`/`_count` pair.

use slc_trace::{bucket_upper, CounterRegistry, HistogramRegistry};

/// Map a dotted slc metric name (`cache.slms.hits`) onto a Prometheus
/// metric name (`slc_cache_slms_hits`). Prometheus names admit
/// `[a-zA-Z0-9_:]`; everything else becomes `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("slc_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render counters + histograms as Prometheus text exposition.
///
/// Counter values are identical to the `stats` response; histogram
/// buckets are cumulative with log2 upper bounds. The output is
/// deterministic for a quiesced daemon: both registries iterate in
/// BTreeMap name order.
pub fn render_prometheus(counters: &CounterRegistry, hists: &HistogramRegistry) -> String {
    let mut out = String::new();
    for (name, value) in counters.iter() {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} counter\n{pname} {value}\n"));
    }
    for (name, h) in hists.iter() {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} histogram\n"));
        let mut cumulative = 0u64;
        for (idx, &n) in h.buckets().iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            let le = bucket_upper(idx);
            if le != u64::MAX {
                // the top bucket has no finite bound; the closing +Inf
                // sample below carries its count
                out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
        }
        out.push_str(&format!(
            "{pname}_bucket{{le=\"+Inf\"}} {count}\n{pname}_sum {sum}\n{pname}_count {count}\n",
            count = h.count(),
            sum = h.sum()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_trace::HistogramRegistry;

    #[test]
    fn names_are_prometheus_safe() {
        assert_eq!(prometheus_name("cache.slms.hits"), "slc_cache_slms_hits");
        assert_eq!(prometheus_name("wall.sim_ns"), "slc_wall_sim_ns");
        assert_eq!(prometheus_name("p99.9"), "slc_p99_9");
    }

    #[test]
    fn exposition_carries_counters_and_cumulative_buckets() {
        let mut counters = CounterRegistry::default();
        counters.set("serve.requests", 12);
        counters.set("cache.slms.hits", 3);
        let mut hists = HistogramRegistry::new();
        hists.record("slms.mis_per_loop", 1);
        hists.record("slms.mis_per_loop", 3);
        hists.record("slms.mis_per_loop", 3);
        let text = render_prometheus(&counters, &hists);
        // counters in BTreeMap order, values verbatim
        assert!(text.contains("# TYPE slc_cache_slms_hits counter\nslc_cache_slms_hits 3\n"));
        assert!(text.contains("# TYPE slc_serve_requests counter\nslc_serve_requests 12\n"));
        // histogram: value 1 → bucket upper 1, value 3 → bucket upper 3,
        // buckets cumulative, then +Inf / sum / count
        assert!(text.contains("# TYPE slc_slms_mis_per_loop histogram\n"));
        assert!(text.contains("slc_slms_mis_per_loop_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("slc_slms_mis_per_loop_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("slc_slms_mis_per_loop_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("slc_slms_mis_per_loop_sum 7\n"));
        assert!(text.contains("slc_slms_mis_per_loop_count 3\n"));
        // every non-comment line is `name[{labels}] value`
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn empty_registries_render_empty() {
        let text = render_prometheus(&CounterRegistry::default(), &HistogramRegistry::new());
        assert!(text.is_empty());
    }
}
