//! # slc-bench — benchmark harness regenerating every figure of the paper
//!
//! See [`harness`] for one function per figure; the criterion benches under
//! `benches/` print each figure's table once and then time a representative
//! end-to-end measurement.

pub mod harness;
