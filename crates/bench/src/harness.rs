//! Figure-regeneration harness.
//!
//! One function per figure of §9 (and per §6/§7 case study). Each returns
//! the measured rows *and* a formatted table identical to what the criterion
//! benches print and EXPERIMENTS.md records. The absolute numbers come from
//! the workspace's synthetic machines, so only the *shape* (who wins, by
//! roughly what factor) is comparable with the paper.

use slc_core::{slms_program, Expansion, SlmsConfig};
use slc_machine::mach::MachineDesc;
use slc_pipeline::{
    format_rows, measure_gap, measure_suite_on, measure_workload, run, BatchEngine, CompilerKind,
    GapRow, LoopRow, PassManager, PassPlan,
};
use slc_sim::presets::{arm7tdmi, itanium2, pentium, power4};
use slc_workloads::{by_suite, linpack, livermore, nas, paper_examples, stone, Suite, Workload};
use std::sync::OnceLock;

/// One artifact cache shared by every figure of the harness: fig14/fig18
/// (same workloads, different personality) share parse + SLMS + LIR work,
/// the ablations share everything but the changed axis, and so on.
fn engine() -> &'static BatchEngine {
    static ENGINE: OnceLock<BatchEngine> = OnceLock::new();
    ENGINE.get_or_init(BatchEngine::new)
}

/// Default SLMS configuration used by the figures (filter on, MVE on).
pub fn default_cfg() -> SlmsConfig {
    SlmsConfig::default()
}

/// SLMS configuration with the §4 filter disabled (ablations).
pub fn nofilter_cfg() -> SlmsConfig {
    SlmsConfig {
        apply_filter: false,
        ..SlmsConfig::default()
    }
}

/// A complete figure result.
pub struct Figure {
    /// figure identifier (`fig14`, …)
    pub id: &'static str,
    /// measured rows
    pub rows: Vec<LoopRow>,
    /// formatted table
    pub table: String,
}

fn make_figure(
    id: &'static str,
    title: &str,
    ws: &[Workload],
    m: &MachineDesc,
    kind: CompilerKind,
    cfg: &SlmsConfig,
) -> Figure {
    let rows = measure_suite_on(engine(), ws, m, kind, cfg);
    let table = format_rows(title, &rows);
    Figure { id, rows, table }
}

/// Figure 14: Livermore & Linpack over a GCC-class compiler on Itanium II.
/// Returns the −O0-class (`Weak`) and −O3-class (`Optimizing`) variants.
pub fn fig14() -> (Figure, Figure) {
    let mut ws = livermore();
    ws.extend(linpack());
    let m = itanium2();
    (
        make_figure(
            "fig14-O0",
            "Fig 14 — Livermore & Linpack, GCC-class -O0, Itanium-II-like VLIW",
            &ws,
            &m,
            CompilerKind::Weak,
            &default_cfg(),
        ),
        make_figure(
            "fig14-O3",
            "Fig 14 — Livermore & Linpack, GCC-class -O3 (list scheduling), Itanium-II-like VLIW",
            &ws,
            &m,
            CompilerKind::Optimizing,
            &default_cfg(),
        ),
    )
}

/// Figure 15: Stone & NAS over the GCC-class compiler on Itanium II.
pub fn fig15() -> (Figure, Figure) {
    let mut ws = stone();
    ws.extend(nas());
    let m = itanium2();
    (
        make_figure(
            "fig15-O0",
            "Fig 15 — Stone & NAS, GCC-class -O0, Itanium-II-like VLIW",
            &ws,
            &m,
            CompilerKind::Weak,
            &default_cfg(),
        ),
        make_figure(
            "fig15-O3",
            "Fig 15 — Stone & NAS, GCC-class -O3 (list scheduling), Itanium-II-like VLIW",
            &ws,
            &m,
            CompilerKind::Optimizing,
            &default_cfg(),
        ),
    )
}

/// Figure 16: SLMS without −O3 closing the (−O0 → −O3) gap.
///
/// Measured on the superscalar preset: with a `Weak` final compiler the
/// instruction *order* is all the hardware has to work with, so the gap a
/// scheduling `-O3` opens is exactly what source-level reordering can
/// recover. (On a VLIW a compiler that refuses to bundle wastes the width
/// regardless of source order, so no source tool can close that gap.)
pub fn fig16() -> (Vec<GapRow>, String) {
    let mut ws = livermore();
    ws.extend(linpack());
    ws.extend(nas());
    let m = power4();
    let cfg = default_cfg();
    let rows: Vec<GapRow> = ws
        .iter()
        .map(|w| measure_gap(w, &m, &cfg).expect("lowerable workload"))
        .collect();
    let mut table = String::from(
        "== Fig 16 — SLMS w/o -O3 closes the gap to -O3 (Power4-like superscalar) ==\n",
    );
    table.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>12} {:>10}\n",
        "loop", "weak(cyc)", "O3(cyc)", "slms+weak", "gap-closed"
    ));
    for r in &rows {
        table.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>12} {:>9.1}%\n",
            r.name,
            r.weak,
            r.opt,
            r.slms_weak,
            100.0 * r.gap_closed
        ));
    }
    let avg = rows.iter().map(|r| r.gap_closed).sum::<f64>() / rows.len().max(1) as f64;
    table.push_str(&format!("-- mean gap closed: {:.1}%\n", 100.0 * avg));
    (rows, table)
}

/// Figure 17: superscalar Pentium-class machine, GCC-class compiler.
pub fn fig17() -> (Figure, Figure) {
    let mut ws = livermore();
    ws.extend(linpack());
    let m = pentium();
    (
        make_figure(
            "fig17-O0",
            "Fig 17 — Livermore & Linpack, GCC-class -O0, Pentium-like superscalar",
            &ws,
            &m,
            CompilerKind::Weak,
            &default_cfg(),
        ),
        make_figure(
            "fig17-O3",
            "Fig 17 — Livermore & Linpack, GCC-class -O3, Pentium-like superscalar",
            &ws,
            &m,
            CompilerKind::Optimizing,
            &default_cfg(),
        ),
    )
}

/// Figure 18: Livermore & Linpack over an ICC-class compiler (machine-level
/// IMS enabled) on Itanium II.
pub fn fig18() -> Figure {
    let mut ws = livermore();
    ws.extend(linpack());
    make_figure(
        "fig18",
        "Fig 18 — Livermore & Linpack, ICC-class (-O3 + machine MS), Itanium-II-like VLIW",
        &ws,
        &itanium2(),
        CompilerKind::OptimizingMs,
        &default_cfg(),
    )
}

/// Figure 19: Stone & NAS over the ICC-class compiler.
pub fn fig19() -> Figure {
    let mut ws = stone();
    ws.extend(nas());
    make_figure(
        "fig19",
        "Fig 19 — Stone & NAS, ICC-class (-O3 + machine MS), Itanium-II-like VLIW",
        &ws,
        &itanium2(),
        CompilerKind::OptimizingMs,
        &default_cfg(),
    )
}

/// Figure 20: Livermore & Linpack + NAS over an XLC-class compiler on
/// Power4.
pub fn fig20() -> Figure {
    let mut ws = livermore();
    ws.extend(linpack());
    ws.extend(nas());
    make_figure(
        "fig20",
        "Fig 20 — Livermore & Linpack + NAS, XLC-class, Power4-like superscalar",
        &ws,
        &power4(),
        CompilerKind::OptimizingMs,
        &default_cfg(),
    )
}

/// Figures 21 & 22: ARM power dissipation and cycle count. Returns the rows
/// (power ratio and cycle ratio live in the same [`LoopRow`]).
pub fn fig21_22() -> Figure {
    let mut ws = livermore();
    ws.extend(linpack());
    ws.extend(stone());
    make_figure(
        "fig21-22",
        "Fig 21/22 — power dissipation and cycles, ARM7TDMI-like scalar core",
        &ws,
        &arm7tdmi(),
        CompilerKind::Optimizing,
        &default_cfg(),
    )
}

/// §7 case studies: loops engineered so machine-level IMS struggles where
/// SLMS succeeds. Returns a formatted report.
pub fn sec7_cases() -> String {
    let mut out = String::from("== §7 — cases where SLMS beats machine-level MS ==\n");
    // Case A (Fig. 11): long-latency producer feeding a tight recurrence —
    // IMS at small II keeps many stage-crossing values alive → pressure.
    // Several long-latency producer chains (x-style ops of Fig. 11) feeding
    // a 1-cycle recurrence (y/z): IMS reaches a small II, so each producer's
    // value stays live across many stages → modulo-expanded register
    // pressure beyond the 16 architected registers → spill traffic. SLMS
    // with plain list scheduling keeps one iteration in flight.
    let src = "float z[2012]; float x1[2012]; float x2[2012]; float x3[2012]; \
               float x4[2012]; float y; int i;\n\
               for (i = 1; i < 2000; i++) {\n\
                 x1[i] = z[i - 1] * z[i - 1] * 3.5;\n\
                 x2[i] = z[i - 1] * z[i - 1] * 4.5;\n\
                 x3[i] = z[i - 1] * z[i - 1] * 5.5;\n\
                 x4[i] = z[i - 1] * z[i - 1] * 6.5;\n\
                 y = y + z[i];\n\
                 z[i] = y * 0.25;\n\
               }";
    let prog = slc_ast::parse_program(src).unwrap();
    // few-register wide machine (VLIW with a Pentium-sized register file)
    let mut m = pentium();
    m.issue = slc_machine::mach::IssueModel::StaticVliw;
    m.issue_width = 6;
    m.units = [4, 2, 2, 2, 1, 2, 1];
    let base = run(&prog, &m, CompilerKind::OptimizingMs).unwrap();
    let (slmsed, _) = slms_program(&prog, &nofilter_cfg());
    let after = run(&slmsed, &m, CompilerKind::Optimizing).unwrap();
    let binfo = &base.compile.loops[0];
    let ainfo = &after.compile.loops[0];
    out.push_str(&format!(
        "fig11-style: IMS pressure={} spills={} cycles={} | SLMS+list pressure={} spills={} cycles={}\n",
        binfo.reg_pressure,
        binfo.spilled,
        base.sim.cycles,
        ainfo.reg_pressure,
        ainfo.spilled,
        after.sim.cycles
    ));
    // Case B (Fig. 12): the Rau A1..A4 shape — two loads + two FP ops that
    // collide in the reservation table rows at the recurrence II.
    let src2 = "float A[2012]; float B[2012]; float r0; float r1; float r2; int i;\n\
               for (i = 1; i < 2000; i++) {\n\
                 r1 = r0 + A[i];\n\
                 r2 = r1 * B[i];\n\
                 A[i + 1] = r2 * 0.5;\n\
                 B[i + 1] = r2 + r0;\n\
               }";
    let prog2 = slc_ast::parse_program(src2).unwrap();
    let m2 = itanium2();
    let base2 = run(&prog2, &m2, CompilerKind::OptimizingMs).unwrap();
    let (slmsed2, oc2) = slms_program(&prog2, &nofilter_cfg());
    let after2 = run(&slmsed2, &m2, CompilerKind::Optimizing).unwrap();
    out.push_str(&format!(
        "fig12-style: machine-MS applied={} cycles={} | SLMS ok={} cycles={}\n",
        base2.compile.loops[0].ms_applied,
        base2.sim.cycles,
        oc2.iter().any(|o| o.result.is_ok()),
        after2.sim.cycles
    ));
    out
}

/// Source of the §6 / Fig. 9 order-study loops, shared with the tests that
/// cross-check the plan-driven study against hand-applied transforms.
pub const SEC6_SRC: &str = "float a[2012]; float b[2012]; int i;\n\
               for (i = 1; i < 2000; i++) { a[i] = a[i - 1] * 2.0 + a[i + 1] * 2.0; }\n\
               for (i = 1; i < 2000; i++) { b[i] = b[i - 1] * 2.0 + b[i + 1] * 2.0; }";

/// The two §6 orderings as pass plans: SLMS alone vs fusion-then-SLMS.
pub fn sec6_plans() -> (PassPlan, PassPlan) {
    (
        PassPlan::parse("slms").unwrap(),
        PassPlan::parse("fuse:0+1,slms").unwrap(),
    )
}

/// §6 interaction study: SLMS∘fusion vs fusion∘SLMS (Fig. 9 loops), driven
/// by the two [`sec6_plans`] — the ordering is *data*, not code.
pub fn sec6_interactions() -> String {
    let prog = slc_ast::parse_program(SEC6_SRC).unwrap();
    let m = itanium2();
    let pm = PassManager::new(nofilter_cfg());
    let (plan_slms, plan_fuse_slms) = sec6_plans();
    let mut out = String::from("== §6 — transformation-order study (Fig. 9) ==\n");

    // original
    let base = run(&prog, &m, CompilerKind::Optimizing).unwrap();
    out.push_str(&format!("original:      {} cycles\n", base.sim.cycles));

    // SLMS → fusion order: SLMS each loop separately (kernels differ, so
    // fusion of the two SLMS'd loops is not header-compatible — the paper's
    // point is exactly that order changes the result; we measure SLMS-only).
    let (slms_first, sink_a) = pm.run(&prog, &plan_slms).expect("plan applies");
    let a = run(&slms_first, &m, CompilerKind::Optimizing).unwrap();
    out.push_str(&format!("SLMS per loop: {} cycles\n", a.sim.cycles));

    // fusion → SLMS order
    let (slms_after_fuse, sink_b) = pm.run(&prog, &plan_fuse_slms).expect("plan applies");
    let b = run(&slms_after_fuse, &m, CompilerKind::Optimizing).unwrap();
    out.push_str(&format!("fusion→SLMS:   {} cycles\n", b.sim.cycles));

    let iis = |sink: &slc_core::DiagSink| -> Vec<i64> {
        sink.all_outcomes()
            .filter_map(|o| o.result.as_ref().ok().map(|r| r.ii))
            .collect()
    };
    out.push_str(&format!(
        "plan `{plan_slms}`: per-loop II {:?} | plan `{plan_fuse_slms}`: per-loop II {:?}\n",
        iis(&sink_a),
        iis(&sink_b)
    ));
    out
}

/// §4 ablation: filter on vs off across the full suite; the filter should
/// remove most regressions while keeping the wins.
pub fn ablation_filter() -> String {
    let ws = slc_workloads::all();
    let m = itanium2();
    let on = measure_suite_on(engine(), &ws, &m, CompilerKind::Optimizing, &default_cfg());
    let off = measure_suite_on(engine(), &ws, &m, CompilerKind::Optimizing, &nofilter_cfg());
    let mut out = String::from("== §4 ablation — memory-ref-ratio filter ==\n");
    out.push_str(&format!(
        "{:<24} {:>10} {:>10} {:>9} {:>9}\n",
        "loop", "off", "on", "off-spd", "on-spd"
    ));
    for (a, b) in off.iter().zip(&on) {
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>9.3} {:>9.3}{}\n",
            a.name,
            a.slms_cycles,
            b.slms_cycles,
            a.speedup,
            b.speedup,
            if !b.transformed && a.transformed {
                "   [filtered]"
            } else {
                ""
            }
        ));
    }
    let regress = |rows: &[LoopRow]| rows.iter().filter(|r| r.speedup < 0.98).count();
    out.push_str(&format!(
        "-- regressions: {} with filter off, {} with filter on\n",
        regress(&off),
        regress(&on)
    ));
    out
}

/// §9 remark (2) ablation: "SLMS was tested with and without source level
/// MVE, the presented results show the best time" — compare all three
/// expansion modes per loop and report which wins.
pub fn ablation_expansion() -> String {
    let ws = slc_workloads::all();
    let m = itanium2();
    let mut out = String::from("== expansion-mode ablation (Itanium-II-like, -O3 class) ==\n");
    out.push_str(&format!(
        "{:<24} {:>9} {:>9} {:>9} {:>12}\n",
        "loop", "off", "mve", "scal-exp", "best"
    ));
    let mut best_counts = [0usize; 3];
    for w in &ws {
        let mut speeds = [0.0f64; 3];
        for (k, exp) in [Expansion::Off, Expansion::Mve, Expansion::ScalarExpand]
            .into_iter()
            .enumerate()
        {
            let cfg = SlmsConfig {
                apply_filter: false,
                expansion: exp,
                ..SlmsConfig::default()
            };
            speeds[k] = measure_workload(w, &m, CompilerKind::Optimizing, &cfg)
                .expect("lowerable")
                .speedup;
        }
        let best = (0..3)
            .max_by(|&a, &b| speeds[a].total_cmp(&speeds[b]))
            .unwrap();
        best_counts[best] += 1;
        out.push_str(&format!(
            "{:<24} {:>9.3} {:>9.3} {:>9.3} {:>12}\n",
            w.name,
            speeds[0],
            speeds[1],
            speeds[2],
            ["off", "mve", "scalar-expand"][best]
        ));
    }
    out.push_str(&format!(
        "-- best mode counts: off {} / mve {} / scalar-expand {}\n",
        best_counts[0], best_counts[1], best_counts[2]
    ));
    out
}

/// Derived II table: source-level II (placement), the paper's cycle MII,
/// and the machine scheduler's II per workload.
pub fn ii_table() -> String {
    let ws = slc_workloads::all();
    let m = itanium2();
    let cfg = nofilter_cfg();
    let mut out = String::from("== derived — initiation intervals per loop ==\n");
    out.push_str(&format!(
        "{:<24} {:>6} {:>10} {:>8} {:>8}\n",
        "loop", "MIs", "SLMS-II", "cyc-MII", "IMS-II"
    ));
    for w in &ws {
        let prog = w.program();
        let (_, outcomes) = slms_program(&prog, &cfg);
        let (ii, n, cmii) = outcomes
            .iter()
            .find_map(|o| o.result.as_ref().ok())
            .map(|r| {
                (
                    r.ii.to_string(),
                    r.n_mis.to_string(),
                    r.cycles_mii.map_or("-".into(), |v| v.to_string()),
                )
            })
            .unwrap_or(("-".into(), "-".into(), "-".into()));
        let ims_ii = run(&prog, &m, CompilerKind::OptimizingMs)
            .ok()
            .and_then(|r| r.compile.loops.iter().find_map(|l| l.ii))
            .map_or("-".to_string(), |v| v.to_string());
        out.push_str(&format!(
            "{:<24} {:>6} {:>10} {:>8} {:>8}\n",
            w.name, n, ii, cmii, ims_ii
        ));
    }
    out
}

/// Collect every figure table into one report (used by the `figures`
/// example and the EXPERIMENTS.md refresh flow).
pub fn full_report() -> String {
    let mut out = String::new();
    let (a, b) = fig14();
    out.push_str(&a.table);
    out.push('\n');
    out.push_str(&b.table);
    out.push('\n');
    let (a, b) = fig15();
    out.push_str(&a.table);
    out.push('\n');
    out.push_str(&b.table);
    out.push('\n');
    out.push_str(&fig16().1);
    out.push('\n');
    let (a, b) = fig17();
    out.push_str(&a.table);
    out.push('\n');
    out.push_str(&b.table);
    out.push('\n');
    out.push_str(&fig18().table);
    out.push('\n');
    out.push_str(&fig19().table);
    out.push('\n');
    out.push_str(&fig20().table);
    out.push('\n');
    let f = fig21_22();
    out.push_str(&f.table);
    out.push('\n');
    out.push_str(&sec7_cases());
    out.push('\n');
    out.push_str(&sec6_interactions());
    out.push('\n');
    out.push_str(&ablation_filter());
    out.push('\n');
    out.push_str(&ablation_expansion());
    out.push('\n');
    out.push_str(&ii_table());
    out
}

/// Workloads of a suite — re-export convenience for the benches.
pub fn suite(s: Suite) -> Vec<Workload> {
    by_suite(s)
}

/// The paper-examples suite.
pub fn paper_suite() -> Vec<Workload> {
    paper_examples()
}

/// Itanium-II preset passthrough for benches.
pub fn default_machine() -> MachineDesc {
    itanium2()
}

/// Expansion modes (for MVE-vs-scalar-expansion ablations).
pub fn expansion_modes() -> [(&'static str, Expansion); 3] {
    [
        ("off", Expansion::Off),
        ("mve", Expansion::Mve),
        ("scalar-expand", Expansion::ScalarExpand),
    ]
}

/// One representative quick measurement (used as the criterion benchmark
/// body so `cargo bench` measures real end-to-end work).
pub fn quick_measure() -> f64 {
    let w = paper_examples()
        .into_iter()
        .find(|w| w.name == "intro_dot")
        .unwrap();
    measure_workload(&w, &itanium2(), CompilerKind::Optimizing, &default_cfg())
        .unwrap()
        .speedup
}
