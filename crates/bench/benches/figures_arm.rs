//! Figures 21–22: power dissipation and cycle counts on the ARM7TDMI-like
//! scalar core (sim-panalyzer substitute).

use criterion::{criterion_group, criterion_main, Criterion};
use slc_bench::harness;
use slc_core::SlmsConfig;
use slc_pipeline::{measure_workload, CompilerKind};
use slc_sim::presets::arm7tdmi;

fn bench(c: &mut Criterion) {
    let f = harness::fig21_22();
    println!("\n{}", f.table);
    // companion: explicit power/cycle ratio listing
    println!("== Fig 21/22 — ratios (power× >1 saves energy; speedup >1 saves cycles) ==");
    for r in &f.rows {
        println!(
            "{:<24} power×{:>6.3}  cycles×{:>6.3}",
            r.name, r.power_ratio, r.speedup
        );
    }
    println!();

    let mut g = c.benchmark_group("figures_arm");
    g.sample_size(10);
    let w = slc_workloads::linpack()
        .into_iter()
        .find(|w| w.name == "ddot2")
        .unwrap();
    g.bench_function("arm_power_pipeline", |bch| {
        bch.iter(|| {
            measure_workload(
                &w,
                &arm7tdmi(),
                CompilerKind::Optimizing,
                &SlmsConfig::default(),
            )
            .unwrap()
            .power_ratio
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
