//! §6 and §7 case studies plus the §4 filter ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use slc_bench::harness;

fn bench(c: &mut Criterion) {
    println!("\n{}", harness::sec7_cases());
    println!("{}", harness::sec6_interactions());
    println!("{}", harness::ablation_filter());
    println!("{}", harness::ablation_expansion());

    let mut g = c.benchmark_group("case_studies");
    g.sample_size(10);
    g.bench_function("sec6_order_study", |bch| {
        bch.iter(harness::sec6_interactions)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
