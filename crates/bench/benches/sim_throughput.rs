//! Simulator and interpreter throughput: the hot-path optimisations this
//! workspace ships (symbol interning, compiled address streams, steady-state
//! fast-forward) are wall-clock-only — results are bit-identical — so this
//! bench is where their effect is visible. Reported both as ns/iter (shim
//! default) and as simulated trips per second, Fast vs Reference fidelity.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slc_pipeline::{compile, CompilerKind};
use slc_sim::astinterp::{run_in_env, run_in_env_tree, Env, DEFAULT_BUDGET};
use slc_sim::cycle::{simulate_with, SimFidelity};
use slc_sim::presets::itanium2;
use slc_sim::{resolve, run_resolved};
use std::time::Instant;

/// Median-of-batches trips/sec for one simulator invocation.
fn trips_per_sec(trips: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    trips as f64 / best.max(1e-12)
}

fn bench(c: &mut Criterion) {
    let m = itanium2();
    let mut g = c.benchmark_group("sim_throughput");
    for name in ["kernel1_hydro", "kernel18_hydro2d"] {
        let w = slc_workloads::livermore()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let prog = w.program();
        let comp = compile(&prog, &m, CompilerKind::Optimizing).unwrap();

        // cycle simulator, fast vs reference fidelity
        let trips = simulate_with(&comp.compiled, &m, SimFidelity::Fast)
            .ff
            .trips_total;
        g.bench_function(&format!("cycle_fast/{name}"), |b| {
            b.iter(|| simulate_with(black_box(&comp.compiled), &m, SimFidelity::Fast))
        });
        g.bench_function(&format!("cycle_reference/{name}"), |b| {
            b.iter(|| simulate_with(black_box(&comp.compiled), &m, SimFidelity::Reference))
        });
        let fast = trips_per_sec(trips, || {
            black_box(simulate_with(&comp.compiled, &m, SimFidelity::Fast));
        });
        let reference = trips_per_sec(trips, || {
            black_box(simulate_with(&comp.compiled, &m, SimFidelity::Reference));
        });
        println!(
            "  throughput cycle/{name}: fast {fast:.0} trips/s, reference {reference:.0} trips/s ({:.1}x)",
            fast / reference.max(1e-12)
        );

        // AST interpreter, resolved vs tree walk
        let rp = resolve(&prog);
        let env0 = Env::zeroed(&prog);
        g.bench_function(&format!("interp_resolved/{name}"), |b| {
            b.iter(|| {
                let mut env = env0.clone();
                run_resolved(black_box(&rp), &mut env, DEFAULT_BUDGET)
            })
        });
        g.bench_function(&format!("interp_resolve_and_run/{name}"), |b| {
            b.iter(|| {
                let mut env = env0.clone();
                run_in_env(black_box(&prog), &mut env)
            })
        });
        g.bench_function(&format!("interp_tree/{name}"), |b| {
            b.iter(|| {
                let mut env = env0.clone();
                run_in_env_tree(black_box(&prog), &mut env)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
