//! Figures 18–20: SLMS over highly optimizing compilers (machine-level
//! iterative modulo scheduling enabled) on Itanium-II-like and Power4-like
//! machines — the co-existence claim.

use criterion::{criterion_group, criterion_main, Criterion};
use slc_bench::harness;
use slc_core::SlmsConfig;
use slc_pipeline::{measure_workload, CompilerKind};
use slc_sim::presets::itanium2;

fn bench(c: &mut Criterion) {
    println!("\n{}", harness::fig18().table);
    println!("{}", harness::fig19().table);
    println!("{}", harness::fig20().table);
    println!("{}", harness::ii_table());

    let mut g = c.benchmark_group("figures_icc_xlc");
    g.sample_size(10);
    let w = slc_workloads::livermore()
        .into_iter()
        .find(|w| w.name == "kernel8_adi")
        .unwrap();
    g.bench_function("kernel8_ms_pipeline", |bch| {
        bch.iter(|| {
            measure_workload(
                &w,
                &itanium2(),
                CompilerKind::OptimizingMs,
                &SlmsConfig::default(),
            )
            .unwrap()
            .speedup
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
