//! Bench guard for the tracing subsystem's zero-cost claim: the `_spanned`
//! entry points with a *disabled* tracer must run at the same speed as the
//! plain entry points. The hard guarantees (no clock syscalls, no
//! allocations when disabled) live in `crates/trace/tests/zero_cost.rs`;
//! this bench makes the wall-clock consequence visible and prints the
//! measured overhead ratio so regressions show up in perf-smoke logs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slc_pipeline::{compile, CompilerKind};
use slc_sim::cycle::{simulate_spanned, simulate_with, SimFidelity};
use slc_sim::presets::itanium2;
use slc_trace::Tracer;
use std::time::Instant;

/// Best-of-batches seconds for one invocation.
fn best_secs(mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..7 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best.max(1e-12)
}

fn bench(c: &mut Criterion) {
    let m = itanium2();
    let mut g = c.benchmark_group("trace_overhead");
    for name in ["kernel1_hydro", "kernel18_hydro2d"] {
        let w = slc_workloads::livermore()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let prog = w.program();
        let comp = compile(&prog, &m, CompilerKind::Optimizing).unwrap();
        let off = Tracer::disabled();
        let on = Tracer::enabled();

        g.bench_function(&format!("plain/{name}"), |b| {
            b.iter(|| simulate_with(black_box(&comp.compiled), &m, SimFidelity::Fast))
        });
        g.bench_function(&format!("spanned_disabled/{name}"), |b| {
            b.iter(|| simulate_spanned(black_box(&comp.compiled), &m, SimFidelity::Fast, &off))
        });
        g.bench_function(&format!("spanned_enabled/{name}"), |b| {
            b.iter(|| simulate_spanned(black_box(&comp.compiled), &m, SimFidelity::Fast, &on))
        });

        let plain = best_secs(|| {
            black_box(simulate_with(&comp.compiled, &m, SimFidelity::Fast));
        });
        let disabled = best_secs(|| {
            black_box(simulate_spanned(
                &comp.compiled,
                &m,
                SimFidelity::Fast,
                &off,
            ));
        });
        let enabled = best_secs(|| {
            black_box(simulate_spanned(&comp.compiled, &m, SimFidelity::Fast, &on));
        });
        println!(
            "  trace_overhead/{name}: disabled {:.3}x plain, enabled {:.3}x plain",
            disabled / plain,
            enabled / plain
        );
        // generous guard: disabled-tracer overhead should be measurement
        // noise; 1.5x headroom keeps this from flaking on loaded CI boxes
        assert!(
            disabled / plain < 1.5,
            "disabled tracer costs {:.2}x over plain simulate — zero-cost path broken",
            disabled / plain
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
