//! Figures 14–17: SLMS over GCC-class compilers (weak and -O3) on the
//! Itanium-II-like VLIW and the Pentium-like superscalar.
//!
//! Running `cargo bench` prints each figure's table (the reproduction
//! artifact) and then times one representative end-to-end measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use slc_bench::harness;

fn bench(c: &mut Criterion) {
    let (a, b) = harness::fig14();
    println!("\n{}", a.table);
    println!("{}", b.table);
    let (a, b) = harness::fig15();
    println!("{}", a.table);
    println!("{}", b.table);
    let (_rows, table) = harness::fig16();
    println!("{}", table);
    let (a, b) = harness::fig17();
    println!("{}", a.table);
    println!("{}", b.table);

    let mut g = c.benchmark_group("figures_gcc");
    g.sample_size(10);
    g.bench_function("fig14_single_loop_end_to_end", |bch| {
        bch.iter(harness::quick_measure)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
