//! Compiler-throughput microbenchmarks: how fast are the SLMS pass and the
//! supporting analyses/schedulers themselves (tooling speed, not a paper
//! figure — the paper's SLC is interactive, so pass latency matters).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slc_core::{slms_program, SlmsConfig};
use slc_machine::ir::Lir;
use slc_machine::{list_schedule, lower_program, modulo_schedule};
use slc_sim::presets::itanium2;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform_speed");
    let cfg = SlmsConfig {
        apply_filter: false,
        ..SlmsConfig::default()
    };
    let prog = slc_workloads::livermore()
        .into_iter()
        .find(|w| w.name == "kernel8_adi")
        .unwrap()
        .program();
    g.bench_function("slms_kernel8", |b| {
        b.iter(|| slms_program(black_box(&prog), &cfg))
    });
    let m = itanium2();
    let lir = lower_program(&prog).unwrap();
    let body: Vec<_> = lir
        .items
        .iter()
        .find_map(|it| match it {
            Lir::Loop(l) => l.body.iter().find_map(|b| match b {
                Lir::Block(ops) => Some(ops.clone()),
                _ => None,
            }),
            _ => None,
        })
        .unwrap();
    g.bench_function("list_schedule_kernel8", |b| {
        b.iter(|| list_schedule(black_box(&body), &m))
    });
    g.bench_function("ims_kernel8", |b| {
        b.iter(|| modulo_schedule(black_box(&body), &m, "ky", 1))
    });
    g.bench_function("lower_kernel8", |b| {
        b.iter(|| lower_program(black_box(&prog)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
