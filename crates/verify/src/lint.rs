//! Source-level lint suite for SLMS inputs and outputs.
//!
//! Each lint has a stable code. `SLMS-L001` is an **error** (it describes a
//! program whose sequential meaning is underdefined, so neither scheduling
//! nor verification can be trusted); the rest are **warnings** that explain
//! why a loop will resist transformation or static checking:
//!
//! | code        | severity | finding                                        |
//! |-------------|----------|------------------------------------------------|
//! | `SLMS-L001` | error    | scalar read on a path where it may be unwritten |
//! | `SLMS-L002` | warning  | alias hazard: unanalyzable same-array pair      |
//! | `SLMS-L003` | warning  | non-affine array subscript                     |
//! | `SLMS-L004` | warning  | innermost loop with symbolic trip count        |
//!
//! L001 uses a three-state forward dataflow per scalar — *unwritten*
//! (never assigned: a loop *parameter*, fine to read), *written*, and
//! *maybe-written* (assigned on some paths only). Only *maybe* reads fire:
//! reading a parameter is how every reduction starts (`s = s + t`), while
//! reading a scalar that one branch initialised and another did not is the
//! classic source-level pipelining hazard (the kernel replays branches out
//! of order, so "it happened to work" orderings break).

use std::collections::{HashMap, HashSet};

use slc_analysis::deps::DepDist;
use slc_analysis::linform::linearize;
use slc_analysis::{
    accesses_of_stmt, analyze_pair, array_dep_distances, DepCertificate, DepStats, DepVerdict,
    LoopRange,
};
use slc_ast::pretty::{expr_to_string, stmts_to_source};
use slc_ast::visit::{for_each_expr, walk_expr};
use slc_ast::{AssignOp, Expr, ForLoop, LValue, Program, Stmt};

/// How serious a lint finding is. Errors affect the `slc verify` exit code;
/// warnings are reported but do not fail the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintSeverity {
    /// Program meaning (and thus any schedule of it) is suspect.
    Error,
    /// Transformation/verification quality is limited, meaning is fine.
    Warning,
}

impl std::fmt::Display for LintSeverity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintSeverity::Error => f.write_str("error"),
            LintSeverity::Warning => f.write_str("warning"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Lint {
    /// stable code, e.g. `SLMS-L001`
    pub code: &'static str,
    /// severity class
    pub severity: LintSeverity,
    /// human-readable finding
    pub message: String,
    /// source excerpt the finding anchors to
    pub excerpt: String,
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.severity, self.code, self.message)?;
        if !self.excerpt.is_empty() {
            write!(f, "\n      at: {}", self.excerpt)
        } else {
            Ok(())
        }
    }
}

/// Run the whole lint suite over `prog`.
pub fn lint_program(prog: &Program) -> Vec<Lint> {
    let mut out = Vec::new();
    uninit_scalar_reads(prog, &mut out);
    alias_hazards(prog, &mut out);
    non_affine_subscripts(prog, &mut out);
    symbolic_trip_counts(prog, &mut out);
    out
}

/// True when no finding is an error.
pub fn lints_clean(lints: &[Lint]) -> bool {
    lints.iter().all(|l| l.severity != LintSeverity::Error)
}

// ── L001: maybe-uninitialized scalar reads ─────────────────────────────

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Unwritten,
    Maybe,
    Written,
}

type Env = HashMap<String, St>;

fn get(env: &Env, name: &str) -> St {
    env.get(name).copied().unwrap_or(St::Unwritten)
}

fn merge(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    let keys: HashSet<&String> = a.keys().chain(b.keys()).collect();
    for k in keys {
        let (sa, sb) = (get(a, k), get(b, k));
        let s = if sa == sb {
            sa
        } else {
            // One path wrote (or maybe-wrote), another did not.
            St::Maybe
        };
        out.insert(k.clone(), s);
    }
    out
}

struct UninitCx<'a> {
    prog: &'a Program,
    fired: HashSet<String>,
    out: &'a mut Vec<Lint>,
}

impl UninitCx<'_> {
    fn is_scalar(&self, name: &str) -> bool {
        self.prog.decl(name).is_some_and(|d| !d.is_array())
    }

    fn check_expr(&mut self, e: &Expr, env: &Env, at: &str) {
        walk_expr(e, &mut |node| {
            if let Expr::Var(n) = node {
                if self.is_scalar(n) && get(env, n) == St::Maybe && self.fired.insert(n.clone()) {
                    self.out.push(Lint {
                        code: "SLMS-L001",
                        severity: LintSeverity::Error,
                        message: format!(
                            "scalar `{n}` is read here but only written on some \
                             paths; under pipelining the write/read order is not preserved"
                        ),
                        excerpt: at.to_string(),
                    });
                }
            }
        });
    }

    fn walk(&mut self, stmts: &[Stmt], env: &mut Env) {
        for s in stmts {
            let at = one_line(s);
            match s {
                Stmt::Assign { target, op, value } => {
                    self.check_expr(value, env, &at);
                    match target {
                        LValue::Index(_, idx) => {
                            for e in idx {
                                self.check_expr(e, env, &at);
                            }
                        }
                        LValue::Var(n) => {
                            if *op != AssignOp::Set {
                                // compound op reads the target first
                                self.check_expr(&Expr::Var(n.clone()), env, &at);
                            }
                            env.insert(n.clone(), St::Written);
                        }
                    }
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    self.check_expr(cond, env, &at);
                    let mut t_env = env.clone();
                    let mut e_env = env.clone();
                    self.walk(then_branch, &mut t_env);
                    self.walk(else_branch, &mut e_env);
                    *env = merge(&t_env, &e_env);
                }
                Stmt::For(f) => {
                    self.check_expr(&f.init, env, &at);
                    self.check_expr(&f.bound, env, &at);
                    env.insert(f.var.clone(), St::Written);
                    let entry = env.clone();
                    self.walk(&f.body, env);
                    if !matches!(f.trip_count(), Some(t) if t >= 1) {
                        // body may not run at all
                        *env = merge(&entry, env);
                    }
                }
                Stmt::While { cond, body } => {
                    self.check_expr(cond, env, &at);
                    let entry = env.clone();
                    self.walk(body, env);
                    *env = merge(&entry, env);
                }
                Stmt::Block(b) | Stmt::Par(b) => self.walk(b, env),
                Stmt::Call(_, args) => {
                    for e in args {
                        self.check_expr(e, env, &at);
                    }
                }
                Stmt::Break => {}
            }
        }
    }
}

fn uninit_scalar_reads(prog: &Program, out: &mut Vec<Lint>) {
    let mut cx = UninitCx {
        prog,
        fired: HashSet::new(),
        out,
    };
    let mut env = Env::new();
    cx.walk(&prog.stmts, &mut env);
}

// ── L002: alias hazards ────────────────────────────────────────────────

fn innermost_loops<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a ForLoop>) {
    for s in stmts {
        match s {
            Stmt::For(f) => {
                if f.body.iter().any(Stmt::contains_loop) {
                    innermost_loops(&f.body, out);
                } else {
                    out.push(f);
                }
            }
            Stmt::While { body, .. } => innermost_loops(body, out),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                innermost_loops(then_branch, out);
                innermost_loops(else_branch, out);
            }
            Stmt::Block(b) | Stmt::Par(b) => innermost_loops(b, out),
            _ => {}
        }
    }
}

/// True when a subscript pair leaves the iteration distance in this
/// dimension statically undecidable: a non-linear subscript, or a symbolic
/// residue (after dropping the induction variable) that may or may not
/// coincide depending on runtime scalar values. This catches hazards that
/// [`array_dep_distances`] papers over when *another* dimension pins an
/// exact candidate distance (`X[k][i]` vs `X[k][j]`: dimension one gives
/// distance 0, dimension two depends on whether `i == j`).
fn dim_undecidable(a: &Expr, b: &Expr, var: &str) -> bool {
    let (Some(la), Some(lb)) = (linearize(a), linearize(b)) else {
        return true;
    };
    let (ca, ra) = la.split_var(var);
    let (cb, rb) = lb.split_var(var);
    if ca == cb {
        !ra.sub(&rb).is_const()
    } else {
        true
    }
}

fn alias_hazards(prog: &Program, out: &mut Vec<Lint>) {
    let mut loops = Vec::new();
    innermost_loops(&prog.stmts, &mut loops);
    for f in loops {
        let range = LoopRange::of_loop(f);
        let mut seen: HashSet<String> = HashSet::new();
        let accs: Vec<_> = f
            .body
            .iter()
            .flat_map(|s| accesses_of_stmt(s).arrays)
            .collect();
        for (i, a) in accs.iter().enumerate() {
            for b in &accs[i + 1..] {
                if a.array != b.array || !(a.write || b.write) {
                    continue;
                }
                let dist = array_dep_distances(a, b, &f.var);
                let fuzzy_dim = dist != DepDist::None
                    && a.indices.len() == b.indices.len()
                    && a.indices
                        .iter()
                        .zip(&b.indices)
                        .any(|(ia, ib)| dim_undecidable(ia, ib, &f.var));
                if !(dist == DepDist::Any || fuzzy_dim) {
                    continue;
                }
                // The legacy test gave up on this pair. When the loop range
                // is constant, ask the exact engine for a precise verdict
                // before warning: proven-independent or exact-distance pairs
                // are not hazards, and a dependent-but-wide pair names its
                // concrete witness instead of a vague "may alias".
                let message = match &range {
                    Some(r) => {
                        let mut st = DepStats::default();
                        let ana = analyze_pair(a, b, &f.var, r, &mut st);
                        match (&ana.verdict, &ana.certificate) {
                            (DepVerdict::Independent, _) | (DepVerdict::Distances(_), _) => {
                                continue; // precisely decided: no hazard
                            }
                            (
                                DepVerdict::AnyWithWitness,
                                Some(DepCertificate::Dependent { t1, t2 }),
                            ) => format!(
                                "references to `{}` conflict at too many distances to \
                                 enumerate (witness: iterations {t1} and {t2} touch the \
                                 same cell); SLMS must assume a loop-carried dependence \
                                 at every distance",
                                a.array
                            ),
                            _ => undecidable_alias_message(&a.array, &f.var),
                        }
                    }
                    None => undecidable_alias_message(&a.array, &f.var),
                };
                if seen.insert(a.array.clone()) {
                    out.push(Lint {
                        code: "SLMS-L002",
                        severity: LintSeverity::Warning,
                        message,
                        excerpt: one_line_loop(f),
                    });
                }
            }
        }
    }
}

fn undecidable_alias_message(array: &str, var: &str) -> String {
    format!(
        "references to `{array}` cannot be disambiguated at loop variable \
         `{var}`; SLMS must assume a loop-carried dependence at every distance"
    )
}

// ── L003: non-affine subscripts ────────────────────────────────────────

fn non_affine_subscripts(prog: &Program, out: &mut Vec<Lint>) {
    let mut seen: HashSet<String> = HashSet::new();
    for s in &prog.stmts {
        for_each_expr(s, true, &mut |e| {
            walk_expr(e, &mut |node| {
                if let Expr::Index(arr, idx) = node {
                    for sub in idx {
                        if linearize(sub).is_none() {
                            let rendered = expr_to_string(sub);
                            if seen.insert(format!("{arr}[{rendered}]")) {
                                out.push(Lint {
                                    code: "SLMS-L003",
                                    severity: LintSeverity::Warning,
                                    message: format!(
                                        "subscript of `{arr}` is not affine; even the \
                                         exact dependence engine cannot decide pairs \
                                         involving it"
                                    ),
                                    excerpt: format!("{arr}[{rendered}]"),
                                });
                            }
                        }
                    }
                }
            });
        });
        collect_lvalue_subscripts(s, &mut seen, out);
    }
}

fn collect_lvalue_subscripts(s: &Stmt, seen: &mut HashSet<String>, out: &mut Vec<Lint>) {
    match s {
        Stmt::Assign {
            target: LValue::Index(arr, idx),
            ..
        } => {
            for sub in idx {
                if linearize(sub).is_none() {
                    let rendered = expr_to_string(sub);
                    if seen.insert(format!("{arr}[{rendered}]")) {
                        out.push(Lint {
                            code: "SLMS-L003",
                            severity: LintSeverity::Warning,
                            message: format!(
                                "subscript of `{arr}` is not affine; even the exact \
                                 dependence engine cannot decide pairs involving it"
                            ),
                            excerpt: format!("{arr}[{rendered}]"),
                        });
                    }
                }
            }
        }
        Stmt::Assign { .. } => {}
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for t in then_branch.iter().chain(else_branch) {
                collect_lvalue_subscripts(t, seen, out);
            }
        }
        Stmt::For(f) => {
            for t in &f.body {
                collect_lvalue_subscripts(t, seen, out);
            }
        }
        Stmt::While { body, .. } => {
            for t in body {
                collect_lvalue_subscripts(t, seen, out);
            }
        }
        Stmt::Block(b) | Stmt::Par(b) => {
            for t in b {
                collect_lvalue_subscripts(t, seen, out);
            }
        }
        _ => {}
    }
}

// ── L004: symbolic trip counts ─────────────────────────────────────────

fn symbolic_trip_counts(prog: &Program, out: &mut Vec<Lint>) {
    let mut loops = Vec::new();
    innermost_loops(&prog.stmts, &mut loops);
    for f in loops {
        if f.trip_count().is_none() {
            out.push(Lint {
                code: "SLMS-L004",
                severity: LintSeverity::Warning,
                message: format!(
                    "innermost loop over `{}` has a symbolic trip count; SLMS \
                     emits a runtime-guarded pipeline that static verification \
                     must skip",
                    f.var
                ),
                excerpt: one_line_loop(f),
            });
        }
    }
}

// ── helpers ────────────────────────────────────────────────────────────

fn one_line(s: &Stmt) -> String {
    let full = stmts_to_source(std::slice::from_ref(s));
    let joined = full.split_whitespace().collect::<Vec<_>>().join(" ");
    if joined.len() > 72 {
        format!("{}…", &joined[..71])
    } else {
        joined
    }
}

fn one_line_loop(f: &ForLoop) -> String {
    one_line(&Stmt::For(f.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_program;

    fn codes(src: &str) -> Vec<&'static str> {
        let prog = parse_program(src).unwrap();
        lint_program(&prog).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn parameter_reads_are_clean() {
        // `s` is never written before the loop: it is a parameter, and the
        // reduction read must NOT fire L001.
        let c = codes(
            "float A[16]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * 2.0; s = s + t; }",
        );
        assert!(!c.contains(&"SLMS-L001"), "{c:?}");
    }

    #[test]
    fn branch_initialized_scalar_fires() {
        let c = codes(
            "float A[10]; float s; int i; int c;\n\
             if (c > 0) s = 1.0;\n\
             A[0] = s;",
        );
        assert_eq!(c.iter().filter(|c| **c == "SLMS-L001").count(), 1, "{c:?}");
    }

    #[test]
    fn both_branches_initialized_clean() {
        let c = codes(
            "float A[10]; float s; int c;\n\
             if (c > 0) s = 1.0; else s = 2.0;\n\
             A[0] = s;",
        );
        assert!(!c.contains(&"SLMS-L001"), "{c:?}");
    }

    #[test]
    fn zero_trip_loop_write_is_maybe() {
        let c = codes(
            "float A[10]; float s; int i; int n;\n\
             for (i = 0; i < n; i++) s = A[i];\n\
             A[0] = s;",
        );
        assert!(c.contains(&"SLMS-L001"), "{c:?}");
        // and the symbolic loop itself warns
        assert!(c.contains(&"SLMS-L004"), "{c:?}");
    }

    #[test]
    fn const_trip_loop_write_is_definite() {
        let c = codes(
            "float A[10]; float s; int i;\n\
             for (i = 0; i < 10; i++) s = A[i];\n\
             A[0] = s;",
        );
        assert!(!c.contains(&"SLMS-L001"), "{c:?}");
    }

    #[test]
    fn alias_hazard_fires_on_indirection() {
        let c = codes(
            "float A[16]; int P[16]; int i;\n\
             for (i = 0; i < 16; i++) A[P[i]] = A[i] * 2.0;",
        );
        assert!(c.contains(&"SLMS-L002"), "{c:?}");
        assert!(c.contains(&"SLMS-L003"), "{c:?}");
    }

    #[test]
    fn affine_streams_lint_clean() {
        let c = codes(
            "float A[32]; float B[32]; int i;\n\
             for (i = 0; i < 32; i++) A[i] = B[i + 1] * 2.0;",
        );
        assert!(c.is_empty(), "{c:?}");
    }
}
