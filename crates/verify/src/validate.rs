//! Translation validation of SLMS emission (§5 placement algebra).
//!
//! Given the original loop, the transformation report and the emitted
//! prologue/kernel/epilogue statements, [`verify_emission`] statically
//! re-derives the placement every statement instance must occupy and proves:
//!
//! 1. **structure** — exactly one kernel loop with the §5 header
//!    (`init`, `cmp`, `bound = init + passes·unroll·step`, `step·unroll`),
//!    `II·unroll` kernel rows with the members `row(k) = k + II·off_k −
//!    (n − II)` prescribes, in descending-`k` order;
//! 2. **faithfulness** — every kernel row member, un-renamed and un-shifted,
//!    is exactly one of the original multi-instructions (modulo the
//!    decomposition temporaries recorded in the report, which are inlined
//!    back before comparison);
//! 3. **instance completeness** — the prologue, residual and epilogue
//!    contain precisely the constant instances `(k, j)` the placement
//!    formulas demand, each with subscripts evaluated at the right
//!    iteration;
//! 4. **dependences** — every edge of the original body's DDG, at every
//!    recorded distance, is executed source-before-sink under the global
//!    time map `(region, pass, row, member)`;
//! 5. **renaming** — MVE kernel copies use the statically-known residue
//!    `(off_k + copy) mod p` of each version rotation, scalar-expansion
//!    subscripts index exactly iteration `j`'s cell, and live-out values of
//!    original variables are restored after the epilogue;
//! 6. **II ≥ MII** — the achieved II is no smaller than the placement MII
//!    of the recovered body (with expansion-removable edges excluded).
//!
//! Every failed proof becomes a [`Violation`] naming the broken rule; the
//! count of discharged obligations is reported for `slc explain`.

use crate::{Violation, VERIFY_SKIP_SYMBOLIC};
use slc_analysis::{
    build_ddg, build_ddg_ranged, check_dep_certificate, partition_mis, DepCertificate, DepKind,
    DepPairSummary, DepStats, DepVerdict, Distance, LoopRange,
};
use slc_ast::pretty::stmts_to_source;
use slc_ast::visit::{
    map_exprs, rewrite_expr, rewrite_lvalues, scalars_read, scalars_written, shift_induction,
    simplify, substitute_scalar,
};
use slc_ast::{CmpOp, Expr, ForLoop, LValue, Program, Stmt};
use slc_core::{
    constraints_of, if_convert, needs_if_conversion, placement_mii, Constraint, Expansion,
    SchedulerKind, SlmsConfig, SlmsReport,
};
use std::collections::HashMap;

/// Outcome of validating one emission.
#[derive(Debug, Clone)]
pub struct EmissionVerdict {
    /// Number of elementary obligations discharged.
    pub obligations: usize,
    /// Violations found (empty = the schedule is proven correct).
    pub violations: Vec<Violation>,
}

impl EmissionVerdict {
    /// True when every obligation was discharged.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Render one statement on a single line for violation evidence.
fn stmt_str(s: &Stmt) -> String {
    stmts_to_source(std::slice::from_ref(s))
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

/// Global execution time of one statement instance: lexicographic
/// `(region, major, row, member)` with region 0 = prologue, 1 = kernel,
/// 2 = residual/epilogue.
type Time = (u8, i64, i64, i64);

/// Per-variable renaming plan reconstructed from the report.
enum Plan {
    Versions { vers: Vec<String> },
    Array { arr: String, base: i64 },
}

/// Statically verify that `emitted` is a correct software pipeline of loop
/// `f` as claimed by `report`. `original` must be the program as it stood
/// *before* the transformation (its declarations decide which renamed
/// variables are live-out and need restoring).
pub fn verify_emission(
    original: &Program,
    f: &ForLoop,
    report: &SlmsReport,
    emitted: &[Stmt],
    cfg: &SlmsConfig,
) -> EmissionVerdict {
    let mut v: Vec<Violation> = Vec::new();
    let mut obligations = 0usize;

    // ---- setup: recompute the placement constants -------------------------
    let n = report.n_mis;
    let ii = report.ii;
    if n < 2 || ii < 1 || ii >= n as i64 {
        return EmissionVerdict {
            obligations,
            violations: vec![Violation::KernelShape {
                detail: format!("II = {ii} outside the valid range 1..{n}"),
            }],
        };
    }
    let (Some(t_count), Some(init)) = (f.trip_count(), f.init.const_int()) else {
        return EmissionVerdict {
            obligations,
            violations: vec![Violation::KernelShape {
                detail: VERIFY_SKIP_SYMBOLIC.into(),
            }],
        };
    };
    let s = f.step;
    let off = |k: usize| ((n - 1 - k) as i64) / ii;
    let m = off(0);
    let k_iters = t_count - m;
    let unroll = report.unroll;
    if m != report.max_offset {
        v.push(Violation::KernelShape {
            detail: format!(
                "pipeline depth: placement gives {m}, report claims {}",
                report.max_offset
            ),
        });
    }
    if unroll < 1 || k_iters < unroll {
        return EmissionVerdict {
            obligations,
            violations: vec![Violation::KernelShape {
                detail: format!("unroll {unroll} invalid for {k_iters} kernel iterations"),
            }],
        };
    }
    let passes = k_iters / unroll;

    // Renaming plans. Version counts must divide the unroll factor or the
    // per-copy residues are not statically known.
    let mut plans: Vec<(String, Plan)> = Vec::new();
    let last = init + (t_count - 1) * s;
    let expand_base = init.min(last);
    for (name, vers) in &report.renamed {
        let p = vers.len() as i64;
        if p < 2 || unroll % p != 0 {
            v.push(Violation::UnrollInconsistent {
                unroll,
                var: name.clone(),
                p,
            });
        } else {
            obligations += 1;
        }
        plans.push((name.clone(), Plan::Versions { vers: vers.clone() }));
    }
    for (name, arr) in &report.expanded_arrays {
        plans.push((
            name.clone(),
            Plan::Array {
                arr: arr.clone(),
                base: expand_base,
            },
        ));
    }
    // The report may only claim the kind of renaming the configuration
    // enables.
    let claim_ok = match cfg.expansion {
        Expansion::Off => report.renamed.is_empty() && report.expanded_arrays.is_empty(),
        Expansion::Mve => report.expanded_arrays.is_empty(),
        Expansion::ScalarExpand => report.renamed.is_empty(),
    };
    if claim_ok {
        obligations += 1;
    } else {
        v.push(Violation::KernelShape {
            detail: format!(
                "report claims {} renamed scalars and {} expanded scalars under \
                 expansion mode {:?}",
                report.renamed.len(),
                report.expanded_arrays.len(),
                cfg.expansion
            ),
        });
    }

    // ---- structure: locate the kernel loop --------------------------------
    let kernel_positions: Vec<usize> = emitted
        .iter()
        .enumerate()
        .filter_map(|(i, st)| matches!(st, Stmt::For(_)).then_some(i))
        .collect();
    let [kpos] = kernel_positions[..] else {
        v.push(Violation::KernelShape {
            detail: format!(
                "expected exactly one kernel loop, found {}",
                kernel_positions.len()
            ),
        });
        return EmissionVerdict {
            obligations,
            violations: v,
        };
    };
    obligations += 1;
    let prologue = &emitted[..kpos];
    let Stmt::For(kf) = &emitted[kpos] else {
        unreachable!("position selected by matches!(Stmt::For)")
    };
    let rest = &emitted[kpos + 1..];

    // ---- kernel header -----------------------------------------------------
    let strict = matches!(f.cmp, CmpOp::Lt | CmpOp::Gt);
    let expect_bound = if strict {
        init + passes * unroll * s
    } else {
        init + (passes * unroll - 1) * s
    };
    let mut header = |ok: bool, what: &str, found: String| {
        if ok {
            obligations += 1;
        } else {
            v.push(Violation::BadHeader {
                detail: format!("{what}: expected per placement, found {found}"),
            });
        }
    };
    header(kf.var == f.var, "kernel induction variable", kf.var.clone());
    header(
        kf.init == Expr::Int(init),
        &format!("kernel init (expected {init})"),
        slc_ast::pretty::expr_to_string(&kf.init),
    );
    header(
        kf.cmp == f.cmp,
        "kernel comparison",
        format!("{:?}", kf.cmp),
    );
    header(
        kf.step == s * unroll,
        &format!("kernel step (expected {})", s * unroll),
        kf.step.to_string(),
    );
    header(
        kf.bound == Expr::Int(expect_bound),
        &format!("kernel bound (expected {expect_bound})"),
        slc_ast::pretty::expr_to_string(&kf.bound),
    );

    // ---- kernel rows: recover the original MIs ----------------------------
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); ii as usize];
    for k in 0..n {
        let r = (k as i64 + ii * off(k) - (n as i64 - ii)) as usize;
        rows[r].push(k);
    }
    for row in &mut rows {
        row.sort_unstable_by(|a, b| b.cmp(a));
    }
    if kf.body.len() as i64 != ii * unroll {
        v.push(Violation::KernelShape {
            detail: format!(
                "kernel body has {} rows, placement demands {} (II {ii} × unroll {unroll})",
                kf.body.len(),
                ii * unroll
            ),
        });
        return EmissionVerdict {
            obligations,
            violations: v,
        };
    }
    obligations += 1;

    let mut recovered: Vec<Option<Stmt>> = vec![None; n];
    for c in 0..unroll {
        for (r, row) in rows.iter().enumerate() {
            let row_stmt = &kf.body[(c * ii) as usize + r];
            let members: Vec<&Stmt> = match row_stmt {
                Stmt::Par(ms) => ms.iter().collect(),
                other => vec![other],
            };
            if members.len() != row.len() {
                v.push(Violation::KernelShape {
                    detail: format!(
                        "kernel copy {c} row {r} has {} members, placement demands {} \
                         (MIs {:?} in descending order)",
                        members.len(),
                        row.len(),
                        row
                    ),
                });
                continue;
            }
            obligations += 1;
            for (&k, member) in row.iter().zip(members) {
                let j_res = off(k) + c;
                let shift = j_res * s;
                let mut st = (*member).clone();
                if un_rename_kernel(
                    &mut st,
                    &plans,
                    j_res,
                    shift,
                    &f.var,
                    c,
                    r,
                    &mut v,
                    &mut obligations,
                ) {
                    continue;
                }
                shift_induction(&mut st, &f.var, -shift);
                map_exprs(&mut st, &mut simplify);
                match &recovered[k] {
                    None => recovered[k] = Some(st),
                    Some(first) => {
                        if *first == st {
                            obligations += 1;
                        } else {
                            v.push(Violation::CopyMismatch {
                                k,
                                copy: c,
                                detail: format!(
                                    "kernel copy {c} of MI {k} recovers `{}`, copy 0 recovered `{}`",
                                    stmt_str(&st),
                                    stmt_str(first)
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    let recovered: Vec<Stmt> = match recovered.into_iter().collect::<Option<Vec<_>>>() {
        Some(r) => r,
        None => {
            // some MI never recovered (row mismatch already reported)
            return EmissionVerdict {
                obligations,
                violations: v,
            };
        }
    };

    // ---- faithfulness: recovered MIs == original body MIs ------------------
    check_faithful(original, f, report, &recovered, &mut v, &mut obligations);

    // ---- constant instances: prologue, residual, epilogue ------------------
    let expected_restores = restore_tail(original, f, report, init, s, t_count, expand_base);
    let consts: &[Stmt] = if rest.len() < expected_restores.len() {
        v.push(Violation::RestoreViolated {
            var: f.var.clone(),
            detail: format!(
                "expected {} trailing restore statements, found only {} statements \
                 after the kernel",
                expected_restores.len(),
                rest.len()
            ),
        });
        rest
    } else {
        let (consts, tail) = rest.split_at(rest.len() - expected_restores.len());
        for (got, want) in tail.iter().zip(&expected_restores) {
            if got == want {
                obligations += 1;
            } else {
                let var = match want {
                    Stmt::Assign {
                        target: LValue::Var(nm),
                        ..
                    } => nm.clone(),
                    _ => f.var.clone(),
                };
                v.push(Violation::RestoreViolated {
                    var,
                    detail: format!(
                        "live-out restore: expected `{}`, found `{}`",
                        stmt_str(want),
                        stmt_str(got)
                    ),
                });
            }
        }
        consts
    };

    // Expected constant instances in emission order, with their origins.
    let mut expected_pro: Vec<(usize, i64)> = Vec::new();
    for j in 0..m {
        for k in 0..n {
            if j < off(k) {
                expected_pro.push((k, j));
            }
        }
    }
    let mut expected_post: Vec<(usize, i64)> = Vec::new();
    for jj in passes * unroll..k_iters {
        for row in &rows {
            for &k in row {
                expected_post.push((k, jj + off(k)));
            }
        }
    }
    for j in k_iters..t_count {
        for k in 0..n {
            if j >= k_iters + off(k) {
                expected_post.push((k, j));
            }
        }
    }

    let const_instance = |k: usize, j: i64| -> Option<Stmt> {
        let mut st = recovered[k].clone();
        if scalars_written(&st).contains(&f.var) {
            return None; // would not be an SLMS-eligible body
        }
        for (name, plan) in &plans {
            match plan {
                Plan::Versions { vers } => {
                    let p = vers.len() as i64;
                    if p >= 1 {
                        let q = j.rem_euclid(p) as usize;
                        substitute_scalar(&mut st, name, &Expr::Var(vers[q].clone()));
                    }
                }
                Plan::Array { arr, base } => {
                    substitute_scalar(
                        &mut st,
                        name,
                        &Expr::Index(arr.clone(), vec![Expr::Int(init + j * s - base)]),
                    );
                }
            }
        }
        substitute_scalar(&mut st, &f.var, &Expr::Int(init + j * s));
        map_exprs(&mut st, &mut simplify);
        Some(st)
    };

    // Greedy in-order matching of emitted instances against expected ones;
    // the emitted position becomes the instance's execution time.
    let mut times: HashMap<(usize, i64), Time> = HashMap::new();
    let mut match_region = |stmts: &[Stmt], expected: &[(usize, i64)], region: u8, where_: &str| {
        let flat: Vec<&Stmt> = stmts
            .iter()
            .flat_map(|st| match st {
                Stmt::Par(ms) => ms.iter().collect::<Vec<_>>(),
                other => vec![other],
            })
            .collect();
        let want: Vec<Option<Stmt>> = expected
            .iter()
            .map(|&(k, j)| const_instance(k, j))
            .collect();
        let mut used = vec![false; expected.len()];
        for (pos, got) in flat.iter().enumerate() {
            let hit = (0..expected.len()).find(|&i| !used[i] && want[i].as_ref() == Some(*got));
            match hit {
                Some(i) => {
                    used[i] = true;
                    obligations += 1;
                    times.insert(expected[i], (region, pos as i64, 0, 0));
                }
                None => v.push(Violation::UnknownInstance {
                    where_: where_.into(),
                    stmt: stmt_str(got),
                }),
            }
        }
        for (i, u) in used.iter().enumerate() {
            if !u {
                let (k, j) = expected[i];
                v.push(Violation::MissingInstance {
                    k,
                    j,
                    where_: where_.into(),
                });
            }
        }
    };
    match_region(prologue, &expected_pro, 0, "prologue");
    match_region(consts, &expected_post, 2, "residual/epilogue");

    // Kernel instance times from the (already verified) placement.
    let row_of = |k: usize| k as i64 + ii * off(k) - (n as i64 - ii);
    let member_pos = |k: usize| -> i64 {
        let r = row_of(k) as usize;
        rows[r].iter().position(|&x| x == k).unwrap_or(0) as i64
    };
    let time_of = |k: usize, j: i64, times: &HashMap<(usize, i64), Time>| -> Option<Time> {
        let jo = off(k);
        if j >= jo && j < jo + passes * unroll {
            let jj = j - jo;
            let t = jj / unroll;
            let c = jj % unroll;
            Some((1, t, c * ii + row_of(k), member_pos(k)))
        } else {
            times.get(&(k, j)).copied()
        }
    };

    // ---- dependence obligations -------------------------------------------
    let mis = match partition_mis(&recovered) {
        Ok(mis) => mis,
        Err(e) => {
            v.push(Violation::UnfaithfulMi {
                k: 0,
                detail: format!("recovered kernel body cannot be partitioned into MIs: {e}"),
            });
            return EmissionVerdict {
                obligations,
                violations: v,
            };
        }
    };
    // The dependence obligations use the same engine the driver used: the
    // exact, certificate-producing analysis whenever the range is constant
    // (without it, loops pipelined on proven independence would fail here
    // with spurious unknown-distance edges).
    let range = LoopRange::of_loop(f);
    let mut dep_stats = DepStats::default();
    let (ddg, fresh_pairs) = match &range {
        Some(r) => {
            let rd = build_ddg_ranged(&mis, &f.var, r, &mut dep_stats);
            (rd.ddg, rd.pairs)
        }
        None => (build_ddg(&mis, &f.var, f.step), Vec::new()),
    };
    let p_of = |name: &str| -> Option<i64> {
        report
            .renamed
            .iter()
            .find(|(nm, _)| nm == name)
            .map(|(_, vers)| vers.len() as i64)
    };
    let expanded = |name: &str| report.expanded_arrays.iter().any(|(nm, _)| nm == name);

    for e in &ddg.edges {
        for dist in &e.dists {
            let d = match dist {
                Distance::Const(d) => *d,
                Distance::Unknown => {
                    v.push(Violation::DependenceViolated {
                        from: e.from,
                        to: e.to,
                        kind: format!("{:?}", e.kind),
                        dist: -1,
                        at_iter: 0,
                        detail: "dependence with unknown distance cannot be scheduled".into(),
                    });
                    continue;
                }
            };
            // Effective distance after renaming.
            let d_eff = match e.scalar.as_deref() {
                Some(name) => {
                    if let Some(p) = p_of(name) {
                        match e.kind {
                            DepKind::Flow => {
                                if d != 0 {
                                    v.push(Violation::RenamingViolated {
                                        var: name.into(),
                                        detail: format!(
                                            "cross-iteration flow (distance {d}) on an \
                                             MVE-renamed scalar is unsound"
                                        ),
                                    });
                                    continue;
                                }
                                0
                            }
                            // Same version recurs every p iterations.
                            DepKind::Anti | DepKind::Output => {
                                if d == 0 {
                                    0
                                } else {
                                    p
                                }
                            }
                        }
                    } else if expanded(name) {
                        match e.kind {
                            DepKind::Flow if d != 0 => {
                                v.push(Violation::RenamingViolated {
                                    var: name.into(),
                                    detail: format!(
                                        "cross-iteration flow (distance {d}) on an \
                                         expanded scalar is unsound"
                                    ),
                                });
                                continue;
                            }
                            // distinct array cells: no cross-iteration hazard
                            _ if d != 0 => continue,
                            _ => 0,
                        }
                    } else {
                        d
                    }
                }
                None => d,
            };
            let mut edge_ok = true;
            for j in 0..t_count - d_eff {
                let (Some(tu), Some(tv)) =
                    (time_of(e.from, j, &times), time_of(e.to, j + d_eff, &times))
                else {
                    continue; // instance missing — already reported
                };
                if tu >= tv {
                    v.push(Violation::DependenceViolated {
                        from: e.from,
                        to: e.to,
                        kind: format!("{:?}", e.kind),
                        dist: d_eff,
                        at_iter: j,
                        detail: format!(
                            "{:?} dependence MI{} →(d={}) MI{}{}: source instance of \
                             iteration {} at time {:?} does not precede sink instance of \
                             iteration {} at time {:?}",
                            e.kind,
                            e.from,
                            d_eff,
                            e.to,
                            e.scalar
                                .as_ref()
                                .map(|s| format!(" on `{s}`"))
                                .unwrap_or_default(),
                            j,
                            tu,
                            j + d_eff,
                            tv
                        ),
                    });
                    edge_ok = false;
                    break;
                }
            }
            if edge_ok {
                obligations += 1;
            }
        }
    }

    // ---- II >= MII ---------------------------------------------------------
    let renamed_or_expanded = |name: &str| p_of(name).is_some() || expanded(name);
    let removable = |e: &slc_analysis::DepEdge| -> bool {
        matches!(e.kind, DepKind::Anti | DepKind::Output)
            && e.scalar.as_deref().is_some_and(renamed_or_expanded)
    };
    let cons = constraints_of(&ddg, &removable);
    match placement_mii(&cons, n) {
        Some(mii) if ii >= mii => obligations += 1,
        Some(mii) => v.push(Violation::IiBelowMii { ii, mii }),
        None => v.push(Violation::IiBelowMii { ii, mii: n as i64 }),
    }

    // ---- exact-scheduler optimality certificate ----------------------------
    verify_certificate(report, cfg, &cons, n, ii, &mut v, &mut obligations);

    // ---- dependence certificates -------------------------------------------
    if let Some(r) = &range {
        verify_dep_certificates(
            report,
            &ddg,
            &f.var,
            r,
            &fresh_pairs,
            &mut v,
            &mut obligations,
        );
    }

    EmissionVerdict {
        obligations,
        violations: v,
    }
}

/// Re-check the exact dependence engine's certificates against the
/// *recovered* body (never trusting the producer). Every access pair the
/// fresh analysis decides must have a certificate in the report that
/// re-validates under [`check_dep_certificate`]: a witness iteration pair
/// that really collides, or an independence system that re-derives
/// identically and re-solves UNSAT. Undecidable pairs carry no certificate
/// and are exempt.
#[allow(clippy::too_many_arguments)]
fn verify_dep_certificates(
    report: &SlmsReport,
    ddg: &slc_analysis::Ddg,
    var: &str,
    range: &LoopRange,
    fresh: &[DepPairSummary],
    v: &mut Vec<Violation>,
    obligations: &mut usize,
) {
    for p in fresh {
        if matches!(p.verdict, DepVerdict::Undecidable) {
            continue;
        }
        let id = format!(
            "`{}` pair MI{}#{} vs MI{}#{}",
            p.array, p.from_mi, p.from_ord, p.to_mi, p.to_ord
        );
        let stored = report.dep_pairs.iter().find(|q| {
            q.from_mi == p.from_mi
                && q.from_ord == p.from_ord
                && q.to_mi == p.to_mi
                && q.to_ord == p.to_ord
        });
        let Some(cert) = stored.and_then(|q| q.certificate.as_ref()) else {
            v.push(Violation::DepCertMissing {
                detail: format!(
                    "{id} was decided ({}) but the report carries no certificate for it",
                    p.verdict.name()
                ),
            });
            continue;
        };
        let a = &ddg.accesses[p.from_mi].arrays[p.from_ord];
        let b = &ddg.accesses[p.to_mi].arrays[p.to_ord];
        match check_dep_certificate(a, b, var, range, cert) {
            Ok(()) => *obligations += 1,
            Err(e) => {
                let detail = format!("{id}: {e}");
                v.push(match cert {
                    DepCertificate::Dependent { .. } => Violation::DepCertWitness { detail },
                    DepCertificate::Independent { .. } => Violation::DepCertProof { detail },
                });
            }
        }
    }
}

/// Re-check the exact scheduler's II-optimality certificate against the
/// dependences of the *recovered* body (never trusting the scheduler): the
/// claimed II must be the achieved one, the recorded heuristic II must not
/// beat it, and [`slc_exact::check_certificate`] must accept the witness,
/// the recomputed MII, and the infeasibility proof. When the configuration
/// requested exact scheduling and the loop is in solver scope, a missing
/// certificate is itself a violation.
fn verify_certificate(
    report: &SlmsReport,
    cfg: &SlmsConfig,
    cons: &[Constraint],
    n: usize,
    ii: i64,
    v: &mut Vec<Violation>,
    obligations: &mut usize,
) {
    let Some(cert) = &report.certificate else {
        if cfg.scheduler == SchedulerKind::Exact && n <= slc_exact::MAX_EXACT_MIS {
            v.push(Violation::CertificateMissing { n_mis: n });
        }
        return;
    };
    if cert.ii != ii {
        v.push(Violation::CertificateIi {
            detail: format!(
                "certificate claims optimal II = {}, the schedule achieves II = {ii}",
                cert.ii
            ),
        });
        return;
    }
    *obligations += 1;
    if let Some(h) = report.heuristic_ii {
        if h < ii {
            v.push(Violation::CertificateIi {
                detail: format!(
                    "recorded heuristic II = {h} beats the certified optimum II = {ii}"
                ),
            });
            return;
        }
        *obligations += 1;
    }
    let deps: Vec<slc_exact::Dep> = cons
        .iter()
        .map(|c| slc_exact::Dep {
            from: c.u,
            to: c.v,
            dist: c.d,
        })
        .collect();
    match slc_exact::check_certificate(&deps, n, cert) {
        Ok(()) => {
            // witness + MII + (possibly) a re-solved refutation
            *obligations += 2 + cert.proof.as_ref().map_or(0, |p| p.clauses.len());
        }
        Err(e) => {
            let detail = e.to_string();
            v.push(match e {
                slc_exact::CertError::MiiMismatch { .. }
                | slc_exact::CertError::WrongMiCount { .. } => Violation::CertificateMii { detail },
                slc_exact::CertError::WitnessInfeasible { .. } => {
                    Violation::CertificateWitness { detail }
                }
                slc_exact::CertError::ProofMissing
                | slc_exact::CertError::ProofUnexpected
                | slc_exact::CertError::ProofIiMismatch { .. }
                | slc_exact::CertError::UnfoundedClause { .. } => {
                    Violation::CertificateProofClause { detail }
                }
                slc_exact::CertError::ProofSatisfiable => Violation::CertificateProofSat { detail },
            });
        }
    }
}

/// Undo the kernel renaming of one row member in place, verifying the MVE
/// residue / expansion subscript first. Returns `true` when the member is
/// too broken to recover (violation already recorded).
#[allow(clippy::too_many_arguments)]
fn un_rename_kernel(
    st: &mut Stmt,
    plans: &[(String, Plan)],
    j_res: i64,
    shift: i64,
    var: &str,
    copy: i64,
    row: usize,
    v: &mut Vec<Violation>,
    obligations: &mut usize,
) -> bool {
    for (name, plan) in plans {
        match plan {
            Plan::Versions { vers } => {
                let p = vers.len() as i64;
                if p < 1 {
                    continue;
                }
                let q = j_res.rem_euclid(p) as usize;
                let mut names = scalars_read(st);
                for w in scalars_written(st) {
                    if !names.contains(&w) {
                        names.push(w);
                    }
                }
                let mut bad = false;
                for (qq, ver) in vers.iter().enumerate() {
                    if qq != q && names.iter().any(|nm| nm == ver) {
                        v.push(Violation::RenamingViolated {
                            var: name.clone(),
                            detail: format!(
                                "kernel copy {copy} row {row}: uses version `{ver}` \
                                 (residue {qq}), placement demands `{}` (residue {q} = \
                                 ({j_res}) mod {p})",
                                vers[q]
                            ),
                        });
                        bad = true;
                    }
                }
                if !vers.iter().any(|vr| vr == name) && names.iter().any(|nm| nm == name) {
                    v.push(Violation::RenamingViolated {
                        var: name.clone(),
                        detail: format!(
                            "kernel copy {copy} row {row}: un-renamed occurrence of `{name}`, \
                             placement demands version `{}`",
                            vers[q]
                        ),
                    });
                    bad = true;
                }
                if bad {
                    return true;
                }
                *obligations += 1;
                substitute_scalar(st, &vers[q], &Expr::Var(name.clone()));
            }
            Plan::Array { arr, base } => {
                let mut expect =
                    slc_ast::visit::add_const(Expr::Var(var.to_string()), shift - base);
                simplify(&mut expect);
                let mut bad = false;
                let mut check_idx = |idx: &[Expr]| {
                    let mut got = idx.to_vec();
                    for g in &mut got {
                        simplify(g);
                    }
                    if got.len() != 1 || got[0] != expect {
                        bad = true;
                    }
                };
                slc_ast::visit::for_each_expr(st, true, &mut |e| {
                    slc_ast::visit::walk_expr(e, &mut |node| {
                        if let Expr::Index(nm, idx) = node {
                            if nm == arr {
                                check_idx(idx);
                            }
                        }
                    });
                });
                // assignment-target occurrences
                let mut tgt: Vec<Vec<Expr>> = Vec::new();
                collect_lvalue_indices(st, arr, &mut tgt);
                for idx in &tgt {
                    check_idx(idx);
                }
                if bad {
                    v.push(Violation::ExpansionSubscript {
                        var: name.clone(),
                        detail: format!(
                            "kernel copy {copy} row {row}: `{arr}[…]` must index \
                             `{}` (iteration {j_res}'s cell)",
                            slc_ast::pretty::expr_to_string(&expect)
                        ),
                    });
                    return true;
                }
                *obligations += 1;
                // replace every arr[…] occurrence by the scalar
                rewrite_lvalues(st, &mut |lv| {
                    if let LValue::Index(nm, _) = lv {
                        if nm == arr {
                            *lv = LValue::Var(name.clone());
                        }
                    }
                });
                map_exprs(st, &mut |e| {
                    rewrite_expr(e, &mut |node| {
                        if let Expr::Index(nm, _) = node {
                            if nm == arr {
                                *node = Expr::Var(name.clone());
                            }
                        }
                    });
                });
            }
        }
    }
    false
}

fn collect_lvalue_indices(st: &Stmt, arr: &str, out: &mut Vec<Vec<Expr>>) {
    match st {
        Stmt::Assign {
            target: LValue::Index(nm, idx),
            ..
        } if nm == arr => out.push(idx.clone()),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                collect_lvalue_indices(s, arr, out);
            }
        }
        Stmt::Block(b) | Stmt::Par(b) => {
            for s in b {
                collect_lvalue_indices(s, arr, out);
            }
        }
        _ => {}
    }
}

/// The exact restore statements §5 emission appends: the induction
/// variable's final value, then the live-out value of every renamed or
/// expanded variable that existed before SLMS ran.
fn restore_tail(
    original: &Program,
    f: &ForLoop,
    report: &SlmsReport,
    init: i64,
    s: i64,
    t_count: i64,
    expand_base: i64,
) -> Vec<Stmt> {
    let mut out = vec![Stmt::assign(
        LValue::Var(f.var.clone()),
        Expr::Int(init + t_count * s),
    )];
    let last_j = t_count - 1;
    for (name, vers) in &report.renamed {
        if original.decl(name).is_none() || vers.is_empty() {
            continue;
        }
        let p = vers.len() as i64;
        out.push(Stmt::assign(
            LValue::Var(name.clone()),
            Expr::Var(vers[last_j.rem_euclid(p) as usize].clone()),
        ));
    }
    for (name, arr) in &report.expanded_arrays {
        if original.decl(name).is_none() {
            continue;
        }
        out.push(Stmt::assign(
            LValue::Var(name.clone()),
            Expr::Index(
                arr.clone(),
                vec![Expr::Int(init + last_j * s - expand_base)],
            ),
        ));
    }
    out
}

/// Prove the recovered kernel MIs are exactly the original loop body —
/// after undoing the exact scheduler's reordering (if any), replaying
/// if-conversion and inlining decomposition temporaries.
fn check_faithful(
    original: &Program,
    f: &ForLoop,
    report: &SlmsReport,
    recovered: &[Stmt],
    v: &mut Vec<Violation>,
    obligations: &mut usize,
) {
    // Undo the exact reordering first: `exact_order[p]` names the MI of
    // the *pre-reorder* (source-order) body emitted at position `p`, so
    // source order is recovered by scattering position `p` back to index
    // `exact_order[p]`. The order must be a genuine permutation.
    let depermuted: Vec<Stmt>;
    let recovered = match &report.exact_order {
        None => recovered,
        Some(order) => {
            let nn = recovered.len();
            let mut slots: Vec<Option<Stmt>> = vec![None; nn];
            let mut ok = order.len() == nn;
            for (p, &k) in order.iter().enumerate() {
                if !ok || k >= nn || slots[k].is_some() {
                    ok = false;
                    break;
                }
                slots[k] = Some(recovered[p].clone());
            }
            if !ok {
                v.push(Violation::ExactOrderInvalid {
                    detail: format!(
                        "exact order {order:?} is not a permutation of the {nn}-MI body"
                    ),
                });
                return;
            }
            *obligations += 1;
            depermuted = slots.into_iter().map(|s| s.unwrap()).collect();
            &depermuted
        }
    };
    let mut replay = original.clone();
    let mut body = f.body.clone();
    let needs_ic = needs_if_conversion(&body);
    if needs_ic != report.if_converted {
        v.push(Violation::UnfaithfulMi {
            k: 0,
            detail: format!(
                "if-conversion flag: body {} it, report claims {}",
                if needs_ic {
                    "requires"
                } else {
                    "does not require"
                },
                report.if_converted
            ),
        });
        return;
    }
    if needs_ic {
        body = if_convert(&mut replay, &body).body;
    }
    let orig_mis = match partition_mis(&body) {
        Ok(mis) => mis,
        Err(e) => {
            v.push(Violation::UnfaithfulMi {
                k: 0,
                detail: format!("original body cannot be partitioned into MIs: {e}"),
            });
            return;
        }
    };
    let mut orig: Vec<Stmt> = orig_mis.iter().map(|mi| mi.stmt.clone()).collect();
    for st in &mut orig {
        map_exprs(st, &mut simplify);
    }

    // Inline decomposition temporaries back, newest first.
    let mut inlined: Vec<Stmt> = recovered.to_vec();
    for t in report.decomposed.iter().rev() {
        let def = inlined.iter().position(|st| {
            matches!(st, Stmt::Assign { target: LValue::Var(nm), op, .. }
                     if nm == t && *op == slc_ast::AssignOp::Set)
        });
        let Some(pos) = def else {
            v.push(Violation::UnfaithfulMi {
                k: 0,
                detail: format!("decomposition temp `{t}` has no defining MI in the kernel"),
            });
            return;
        };
        let removed = inlined.remove(pos);
        let Stmt::Assign { value, .. } = removed else {
            // position was selected by the matches! above
            continue;
        };
        for st in &mut inlined {
            substitute_scalar(st, t, &value);
        }
    }
    for st in &mut inlined {
        map_exprs(st, &mut simplify);
    }

    if orig.len() != inlined.len() {
        v.push(Violation::UnfaithfulMi {
            k: 0,
            detail: format!(
                "after inlining {} decomposition temps the kernel recovers {} MIs, \
                 the original body has {}",
                report.decomposed.len(),
                inlined.len(),
                orig.len()
            ),
        });
        return;
    }
    for (k, (got, want)) in inlined.iter().zip(&orig).enumerate() {
        if got == want {
            *obligations += 1;
        } else {
            v.push(Violation::UnfaithfulMi {
                k,
                detail: format!(
                    "recovered MI `{}` is not the original `{}`",
                    stmt_str(got),
                    stmt_str(want)
                ),
            });
        }
    }
}
