//! # slc-verify — static schedule verification for SLMS
//!
//! The paper's central claim is that a modulo schedule produced at source
//! level is *visible* at source level: every placement decision — which
//! iteration's instance of which multi-instruction occupies which kernel
//! row, which MVE version a copy must use, what the prologue and epilogue
//! must contain — is a closed-form function of `(II, n, trip count)`
//! documented in `slc-core`'s emitter. This crate exploits that visibility
//! in two ways:
//!
//! * **Translation validation** ([`verify_emission`], [`verify_slms_program`])
//!   — maps every statement instance of an emitted pipeline back to its
//!   `(MI k, original iteration j)` origin, rebuilds the original body's
//!   dependence graph with `slc-analysis`, and statically proves each
//!   edge's distance is respected by the schedule, that `II ≥ MII`, that
//!   MVE renaming is a consistent rotation with statically-known residues
//!   (and live-out restoration), and that scalar-expansion subscripts index
//!   the right iteration. No execution involved — unlike the interpreter
//!   equivalence tests, the proof covers *all* inputs.
//! * **Source linting** ([`lint_program`]) — flags constructs that make a
//!   schedule unverifiable or a loop untransformable: uninitialized scalar
//!   reads, alias hazards between array references, non-affine subscripts,
//!   unguarded symbolic trip counts. Each finding carries a stable
//!   `SLMS-Lxxx` code.
//!
//! The SAT/SMT modulo-scheduling literature (optimal software pipelining
//! via SMT solvers, SAT-MapIt) treats schedule validity as constraint
//! checking; this crate is the checking half of that pairing, specialised
//! to the fixed §5 placement so it runs in linear time without a solver.

pub mod lint;
pub mod validate;

pub use lint::{lint_program, Lint, LintSeverity};
pub use validate::{verify_emission, EmissionVerdict};

use slc_ast::{LoopId, Program, Stmt};
use slc_core::{slms_loop, DiagEvent, SlmsConfig};
use slc_trace::Tracer;

/// Reason string used when an emission is skipped because the loop has
/// symbolic bounds (guarded emission is checked dynamically, not here).
pub const VERIFY_SKIP_SYMBOLIC: &str =
    "symbolic trip count: runtime-guarded emission is not statically checkable";

/// One statically-proven-false property of an emitted schedule. Each
/// variant names the placement/dependence/renaming rule it violates;
/// [`Violation::rule`] gives the stable short name used in reports.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The emitted statements do not have the §5 prologue/kernel/epilogue
    /// shape (row counts, member counts, one kernel loop).
    KernelShape {
        /// what deviates
        detail: String,
    },
    /// The kernel `for` header deviates from the placement formulas.
    BadHeader {
        /// which header field deviates
        detail: String,
    },
    /// A constant-region statement matches no expected `(MI, iteration)`
    /// instance.
    UnknownInstance {
        /// region the statement was found in
        where_: String,
        /// the offending statement
        stmt: String,
    },
    /// An expected `(MI, iteration)` instance is missing from the emitted
    /// constant region.
    MissingInstance {
        /// MI position
        k: usize,
        /// original iteration
        j: i64,
        /// region the instance should appear in
        where_: String,
    },
    /// A dependence edge is executed sink-before-source.
    DependenceViolated {
        /// source MI position
        from: usize,
        /// sink MI position
        to: usize,
        /// dependence kind (`Flow`/`Anti`/`Output`)
        kind: String,
        /// violated iteration distance (after renaming adjustment)
        dist: i64,
        /// first source iteration exhibiting the violation
        at_iter: i64,
        /// rendered evidence
        detail: String,
    },
    /// MVE renaming is not the consistent rotation the placement demands.
    RenamingViolated {
        /// renamed variable
        var: String,
        /// rendered evidence
        detail: String,
    },
    /// Two kernel copies of the same MI disagree (after un-renaming and
    /// un-shifting they must be identical).
    CopyMismatch {
        /// MI position
        k: usize,
        /// offending kernel copy
        copy: i64,
        /// rendered evidence
        detail: String,
    },
    /// A scalar-expansion subscript does not index its iteration's cell.
    ExpansionSubscript {
        /// expanded variable
        var: String,
        /// rendered evidence
        detail: String,
    },
    /// The achieved II is below the placement MII of the scheduled body.
    IiBelowMii {
        /// achieved initiation interval
        ii: i64,
        /// required minimum
        mii: i64,
    },
    /// The kernel unroll factor is not a multiple of a version count, so
    /// per-copy residues are not statically known.
    UnrollInconsistent {
        /// kernel unroll factor
        unroll: i64,
        /// renamed variable
        var: String,
        /// its version count
        p: i64,
    },
    /// A live-out restore (induction variable or renamed scalar) is wrong
    /// or missing.
    RestoreViolated {
        /// variable whose restore is wrong
        var: String,
        /// rendered evidence
        detail: String,
    },
    /// A kernel row member, un-renamed and un-shifted, is not the original
    /// multi-instruction.
    UnfaithfulMi {
        /// MI position
        k: usize,
        /// rendered evidence
        detail: String,
    },
    /// The report's exact reordering is not a valid permutation of the
    /// scheduled body, or it breaks a same-iteration dependence.
    ExactOrderInvalid {
        /// rendered evidence
        detail: String,
    },
    /// The exact scheduler was requested and in scope, but the report
    /// carries no optimality certificate to re-check.
    CertificateMissing {
        /// MIs in the scheduled body
        n_mis: usize,
    },
    /// The certificate's claimed II disagrees with the achieved schedule
    /// (or the recorded heuristic II is below it).
    CertificateIi {
        /// rendered evidence
        detail: String,
    },
    /// The certificate's claimed MII does not match the independently
    /// recomputed lower bound.
    CertificateMii {
        /// rendered evidence
        detail: String,
    },
    /// The emitted order itself does not satisfy the dependences at the
    /// certificate's claimed II — the optimality witness fails.
    CertificateWitness {
        /// rendered evidence
        detail: String,
    },
    /// The infeasibility proof is structurally broken: missing, redundant,
    /// refuting the wrong II, or containing a clause the encoding cannot
    /// derive.
    CertificateProofClause {
        /// rendered evidence
        detail: String,
    },
    /// The infeasibility proof's clause set is satisfiable — it refutes
    /// nothing, so the optimality claim is unproven.
    CertificateProofSat {
        /// rendered evidence
        detail: String,
    },
    /// The exact dependence engine decided an array pair but the report
    /// carries no certificate for it to re-check.
    DepCertMissing {
        /// rendered evidence
        detail: String,
    },
    /// A dependence-witness certificate does not re-evaluate to a genuine
    /// conflict (wrong iterations, infeasible equation, or claimed for an
    /// independent pair).
    DepCertWitness {
        /// rendered evidence
        detail: String,
    },
    /// An independence-proof certificate is broken: its Diophantine system
    /// does not match the re-derived one, or re-solving it finds a
    /// satisfying iteration pair (the "proof" proves nothing).
    DepCertProof {
        /// rendered evidence
        detail: String,
    },
}

impl Violation {
    /// Stable short rule name (used by `slc explain`, tests and reports).
    pub fn rule(&self) -> &'static str {
        match self {
            Violation::KernelShape { .. } => "kernel-shape",
            Violation::BadHeader { .. } => "loop-header",
            Violation::UnknownInstance { .. } => "unknown-instance",
            Violation::MissingInstance { .. } => "missing-instance",
            Violation::DependenceViolated { .. } => "dependence",
            Violation::RenamingViolated { .. } => "mve-residue",
            Violation::CopyMismatch { .. } => "kernel-copy",
            Violation::ExpansionSubscript { .. } => "expansion-subscript",
            Violation::IiBelowMii { .. } => "ii-below-mii",
            Violation::UnrollInconsistent { .. } => "unroll-residue",
            Violation::RestoreViolated { .. } => "live-out-restore",
            Violation::UnfaithfulMi { .. } => "mi-faithfulness",
            Violation::ExactOrderInvalid { .. } => "exact-order",
            Violation::CertificateMissing { .. } => "cert-missing",
            Violation::CertificateIi { .. } => "cert-ii",
            Violation::CertificateMii { .. } => "cert-mii",
            Violation::CertificateWitness { .. } => "cert-witness",
            Violation::CertificateProofClause { .. } => "cert-proof-clause",
            Violation::CertificateProofSat { .. } => "cert-proof-sat",
            Violation::DepCertMissing { .. } => "dep-cert-missing",
            Violation::DepCertWitness { .. } => "dep-cert-witness",
            Violation::DepCertProof { .. } => "dep-cert-proof",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] ", self.rule())?;
        match self {
            Violation::KernelShape { detail }
            | Violation::BadHeader { detail }
            | Violation::RenamingViolated { detail, .. }
            | Violation::CopyMismatch { detail, .. }
            | Violation::ExpansionSubscript { detail, .. }
            | Violation::RestoreViolated { detail, .. }
            | Violation::UnfaithfulMi { detail, .. }
            | Violation::DependenceViolated { detail, .. }
            | Violation::ExactOrderInvalid { detail }
            | Violation::CertificateIi { detail }
            | Violation::CertificateMii { detail }
            | Violation::CertificateWitness { detail }
            | Violation::CertificateProofClause { detail }
            | Violation::CertificateProofSat { detail }
            | Violation::DepCertMissing { detail }
            | Violation::DepCertWitness { detail }
            | Violation::DepCertProof { detail } => f.write_str(detail),
            Violation::CertificateMissing { n_mis } => {
                write!(
                    f,
                    "exact scheduling requested but the {n_mis}-MI loop carries no \
                     optimality certificate"
                )
            }
            Violation::UnknownInstance { where_, stmt } => {
                write!(
                    f,
                    "{where_} contains `{stmt}`, which is no instance the placement expects"
                )
            }
            Violation::MissingInstance { k, j, where_ } => {
                write!(
                    f,
                    "instance of MI {k} at original iteration {j} missing from {where_}"
                )
            }
            Violation::IiBelowMii { ii, mii } => {
                write!(f, "achieved II = {ii} is below the placement MII = {mii}")
            }
            Violation::UnrollInconsistent { unroll, var, p } => {
                write!(
                    f,
                    "kernel unroll {unroll} is not a multiple of `{var}`'s {p} versions; \
                     copy residues are not statically known"
                )
            }
        }
    }
}

/// Verdict for one loop of a program.
#[derive(Debug, Clone)]
pub enum LoopVerdict {
    /// Every obligation discharged.
    Verified {
        /// number of elementary obligations proved
        obligations: usize,
    },
    /// Verification did not apply (loop untransformed, or symbolic-guarded).
    Skipped {
        /// why
        reason: String,
    },
    /// At least one obligation failed.
    Violated {
        /// obligations that did succeed
        obligations: usize,
        /// the failed ones
        violations: Vec<Violation>,
    },
}

/// One loop's identity plus its verdict.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// stable loop identity (same scheme as `slc-core` outcomes)
    pub id: LoopId,
    /// the verdict
    pub verdict: LoopVerdict,
}

/// Verdict for a whole program (one entry per innermost loop, in the same
/// pre-order the SLMS driver visits them).
#[derive(Debug, Clone, Default)]
pub struct ProgramVerdict {
    /// per-loop verdicts
    pub loops: Vec<LoopReport>,
}

impl ProgramVerdict {
    /// True when no loop has violations.
    pub fn clean(&self) -> bool {
        self.violation_count() == 0
    }

    /// Total violations across all loops.
    pub fn violation_count(&self) -> usize {
        self.loops
            .iter()
            .map(|l| match &l.verdict {
                LoopVerdict::Violated { violations, .. } => violations.len(),
                _ => 0,
            })
            .sum()
    }

    /// Total obligations discharged across all loops.
    pub fn obligation_count(&self) -> usize {
        self.loops
            .iter()
            .map(|l| match &l.verdict {
                LoopVerdict::Verified { obligations }
                | LoopVerdict::Violated { obligations, .. } => *obligations,
                LoopVerdict::Skipped { .. } => 0,
            })
            .sum()
    }

    /// Diagnostic events for the `slc explain` / `DiagSink` machinery.
    pub fn events(&self) -> Vec<DiagEvent> {
        let mut out = Vec::new();
        for l in &self.loops {
            match &l.verdict {
                LoopVerdict::Verified { obligations } => out.push(DiagEvent::Verified {
                    obligations: *obligations,
                }),
                LoopVerdict::Violated { violations, .. } => {
                    for viol in violations {
                        out.push(DiagEvent::VerifyViolation {
                            rule: viol.rule().into(),
                            detail: viol.to_string(),
                        });
                    }
                }
                LoopVerdict::Skipped { .. } => {}
            }
        }
        out
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.loops {
            match &l.verdict {
                LoopVerdict::Verified { obligations } => out.push_str(&format!(
                    "  {}: verified — {obligations} obligations discharged\n",
                    l.id
                )),
                LoopVerdict::Skipped { reason } => {
                    out.push_str(&format!("  {}: skipped — {reason}\n", l.id))
                }
                LoopVerdict::Violated {
                    obligations,
                    violations,
                } => {
                    out.push_str(&format!(
                        "  {}: {} VIOLATION(S) ({obligations} obligations passed)\n",
                        l.id,
                        violations.len()
                    ));
                    for viol in violations {
                        out.push_str(&format!("    ✗ {viol}\n"));
                    }
                }
            }
        }
        if self.loops.is_empty() {
            out.push_str("  (no innermost loops)\n");
        }
        out
    }
}

/// Re-run SLMS over `prog` (deterministically, with `cfg`) and statically
/// validate every emitted schedule against the §5 placement rules — the
/// translation-validation entry point. Mirrors the driver's own traversal:
/// innermost loops in pre-order, with the program's declaration environment
/// evolving exactly as the driver evolves it.
pub fn verify_slms_program(prog: &Program, cfg: &SlmsConfig) -> ProgramVerdict {
    verify_slms_program_spanned(prog, cfg, &Tracer::disabled())
}

/// [`verify_slms_program`] with wall-clock spans: one span per innermost
/// loop (category `"verify"`, named after the [`LoopId`]) carrying the
/// obligation/violation counts as span arguments. The verdict is identical
/// to [`verify_slms_program`] — spans record timings only.
pub fn verify_slms_program_spanned(
    prog: &Program,
    cfg: &SlmsConfig,
    tracer: &Tracer,
) -> ProgramVerdict {
    let mut cur = prog.clone();
    let mut loops = Vec::new();
    let mut next = 0usize;
    let stmts = cur.stmts.clone();
    walk(&mut cur, &stmts, cfg, &mut loops, &mut next, tracer);
    ProgramVerdict { loops }
}

fn walk(
    cur: &mut Program,
    stmts: &[Stmt],
    cfg: &SlmsConfig,
    out: &mut Vec<LoopReport>,
    next: &mut usize,
    tracer: &Tracer,
) {
    for s in stmts {
        match s {
            Stmt::For(f) => {
                let is_innermost = !f.body.iter().any(Stmt::contains_loop);
                if is_innermost {
                    let id = LoopId::of(f, *next);
                    *next += 1;
                    let mut span = tracer.span_dyn("verify", || format!("verify {}", id.verbose()));
                    let mut work = cur.clone();
                    match slms_loop(&mut work, s, cfg) {
                        Ok(res) => {
                            let verdict = if f.trip_count().is_none() {
                                LoopVerdict::Skipped {
                                    reason: VERIFY_SKIP_SYMBOLIC.into(),
                                }
                            } else {
                                let ev = verify_emission(cur, f, &res.report, &res.stmts, cfg);
                                if ev.clean() {
                                    LoopVerdict::Verified {
                                        obligations: ev.obligations,
                                    }
                                } else {
                                    LoopVerdict::Violated {
                                        obligations: ev.obligations,
                                        violations: ev.violations,
                                    }
                                }
                            };
                            match &verdict {
                                LoopVerdict::Verified { obligations } => {
                                    span.arg("obligations", *obligations);
                                }
                                LoopVerdict::Violated {
                                    obligations,
                                    violations,
                                } => {
                                    span.arg("obligations", *obligations);
                                    span.arg("violations", violations.len());
                                }
                                LoopVerdict::Skipped { reason } => {
                                    span.arg("skipped", reason.as_str());
                                }
                            }
                            *cur = work;
                            out.push(LoopReport { id, verdict });
                        }
                        Err(e) => {
                            span.arg("skipped", "not transformed");
                            out.push(LoopReport {
                                id,
                                verdict: LoopVerdict::Skipped {
                                    reason: format!("not transformed: {e}"),
                                },
                            });
                        }
                    }
                } else {
                    walk(cur, &f.body, cfg, out, next, tracer);
                }
            }
            Stmt::Block(b) => walk(cur, b, cfg, out, next, tracer),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk(cur, then_branch, cfg, out, next, tracer);
                walk(cur, else_branch, cfg, out, next, tracer);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_program;

    #[test]
    fn intro_example_verifies() {
        let prog = parse_program(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
        )
        .unwrap();
        let verdict = verify_slms_program(&prog, &SlmsConfig::default());
        assert_eq!(verdict.loops.len(), 1);
        assert!(verdict.clean(), "{}", verdict.render());
        assert!(verdict.obligation_count() > 10, "{}", verdict.render());
    }

    #[test]
    fn decomposed_recurrence_verifies() {
        let prog = parse_program(
            "float A[64]; int i;\n\
             for (i = 2; i < 60; i++) A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];",
        )
        .unwrap();
        let cfg = SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        };
        let verdict = verify_slms_program(&prog, &cfg);
        assert!(verdict.clean(), "{}", verdict.render());
    }

    #[test]
    fn scalar_expansion_verifies() {
        let prog = parse_program(
            "float A[64]; int i;\n\
             for (i = 2; i < 60; i++) A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];",
        )
        .unwrap();
        let cfg = SlmsConfig {
            apply_filter: false,
            expansion: slc_core::Expansion::ScalarExpand,
            ..SlmsConfig::default()
        };
        let verdict = verify_slms_program(&prog, &cfg);
        assert!(verdict.clean(), "{}", verdict.render());
    }

    #[test]
    fn exact_scheduled_loops_verify_with_certificates() {
        // One loop the heuristic already schedules optimally (identity
        // order, proof-free certificate) and one the exact scheduler must
        // reorder (heuristic II = 3 → exact II = 1): both must verify
        // clean, discharging the extra certificate obligations.
        let prog = parse_program(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             float P[64]; float Q[64]; float R[64]; float Z[64]; int k;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }\n\
             for (k = 1; k < 60; k++) {\n\
               P[k] = Z[k - 1];\n\
               Q[k] = Q[k] + 1.0;\n\
               R[k] = R[k] * 2.0;\n\
               Z[k] = P[k] + 1.0;\n\
             }",
        )
        .unwrap();
        let heuristic_cfg = SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        };
        let base = verify_slms_program(&prog, &heuristic_cfg);
        assert!(base.clean(), "{}", base.render());
        let cfg = SlmsConfig {
            apply_filter: false,
            scheduler: slc_core::SchedulerKind::Exact,
            ..SlmsConfig::default()
        };
        let verdict = verify_slms_program(&prog, &cfg);
        assert_eq!(verdict.loops.len(), 2);
        assert!(verdict.clean(), "{}", verdict.render());
        assert!(
            verdict.obligation_count() > base.obligation_count(),
            "certificate re-checks must add obligations ({} vs {})",
            verdict.obligation_count(),
            base.obligation_count()
        );
    }

    #[test]
    fn untransformed_loops_are_skipped_clean() {
        let prog =
            parse_program("float A[64]; int i; for (i = 1; i < 60; i++) A[i] = A[i - 1] * 2.0;")
                .unwrap();
        let cfg = SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        };
        let verdict = verify_slms_program(&prog, &cfg);
        assert_eq!(verdict.loops.len(), 1);
        assert!(matches!(
            verdict.loops[0].verdict,
            LoopVerdict::Skipped { .. }
        ));
        assert!(verdict.clean());
    }
}
