//! # criterion (workspace shim)
//!
//! Minimal stand-in for the `criterion` benchmarking crate: the build
//! environment has no registry access, so the workspace benches run on this
//! shim. It implements the API surface the benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — with a plain
//! wall-clock timer (median of a few batches) and stdout reporting.

use std::time::Instant;

/// Opaque value barrier (best-effort without inline asm).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Lower the number of timed samples (API-compatible knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time one closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or(0);
        println!(
            "  {}/{id}: median {median} ns/iter over {} samples",
            self.name,
            b.samples.len()
        );
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing state handed to the closure.
pub struct Bencher {
    samples: Vec<u64>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly and record per-iteration wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // warm-up and calibration: aim for ~1ms per sample
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_nanos().max(1) as u64;
        self.iters_per_sample = (1_000_000 / once).clamp(1, 1_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as u64 / self.iters_per_sample;
            self.samples.push(ns);
        }
    }
}

/// Bundle benchmark functions, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
