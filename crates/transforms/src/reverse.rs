//! Loop reversal (§6): iterate the same index set in the opposite order.
//! The paper mentions peeling + reversal as the "usual" (complex) way to
//! make its last fusion example legal — which SLMS replaces.

use crate::TransformError;
use slc_ast::{CmpOp, Expr, ForLoop, Stmt};

/// Reverse a constant-bounds loop: `for (i = a; i < b; i += s)` becomes
/// `for (i = last; i >= a; i -= s)` where `last` is the final executed
/// index value, followed by a restore of the variable's original exit
/// value (so the rewrite is observationally identity even when the
/// induction variable is live after the loop).
pub fn reverse(s: &Stmt) -> Result<Vec<Stmt>, TransformError> {
    let Stmt::For(f) = s else {
        return Err(TransformError::ShapeMismatch("not a for loop".into()));
    };
    let trip = f.trip_count().ok_or(TransformError::SymbolicBounds)?;
    let init = f.init.const_int().ok_or(TransformError::SymbolicBounds)?;
    if trip == 0 {
        // empty loop reverses to itself
        return Ok(vec![s.clone()]);
    }
    let last = init + (trip - 1) * f.step;
    let (cmp, bound) = if f.step > 0 {
        (CmpOp::Ge, init)
    } else {
        (CmpOp::Le, init)
    };
    Ok(vec![
        Stmt::For(ForLoop {
            var: f.var.clone(),
            init: Expr::Int(last),
            cmp,
            bound: Expr::Int(bound),
            step: -f.step,
            body: f.body.clone(),
        }),
        Stmt::assign(
            slc_ast::LValue::Var(f.var.clone()),
            Expr::Int(init + trip * f.step),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_stmts;
    use slc_ast::pretty::stmts_to_source;

    #[test]
    fn reverses_upward_loop() {
        let s = parse_stmts("for (i = 2; i < 10; i++) A[i] = 1.0;").unwrap();
        let out = reverse(&s[0]).unwrap();
        let src = stmts_to_source(&out);
        assert!(src.starts_with("for (i = 9; i >= 2; i--)"), "got {src}");
        assert!(src.contains("i = 10;"), "restore missing: {src}");
    }

    #[test]
    fn reverses_strided_loop() {
        // i = 1, 4, 7 → reversed: 7, 4, 1
        let s = parse_stmts("for (i = 1; i < 9; i += 3) A[i] = 1.0;").unwrap();
        let out = reverse(&s[0]).unwrap();
        let src = stmts_to_source(&out);
        assert!(src.starts_with("for (i = 7; i >= 1; i -= 3)"), "got {src}");
    }

    #[test]
    fn double_reverse_same_index_set() {
        let s = parse_stmts("for (i = 0; i < 7; i += 2) A[i] = 1.0;").unwrap();
        let once = reverse(&s[0]).unwrap();
        let twice = reverse(&once[0]).unwrap();
        let Stmt::For(f) = &twice[0] else { panic!() };
        assert_eq!(f.trip_count(), Some(4));
        assert_eq!(f.init.const_int(), Some(0));
    }
}
