//! Loop peeling (§6): move the first `k` iterations out of the loop as
//! straight-line code.

use crate::TransformError;
use slc_ast::visit::{map_exprs, simplify, substitute_scalar};
use slc_ast::{Expr, ForLoop, Stmt};

/// Peel the first `k` iterations of a constant-bounds loop into
/// straight-line statements before a shortened loop.
pub fn peel_front(s: &Stmt, k: i64) -> Result<Vec<Stmt>, TransformError> {
    let Stmt::For(f) = s else {
        return Err(TransformError::ShapeMismatch("not a for loop".into()));
    };
    let trip = f.trip_count().ok_or(TransformError::SymbolicBounds)?;
    let init = f.init.const_int().ok_or(TransformError::SymbolicBounds)?;
    if k < 1 || k > trip {
        return Err(TransformError::BadParameter(format!(
            "peel {k} of {trip} iterations"
        )));
    }
    let mut out = Vec::new();
    for j in 0..k {
        for st in &f.body {
            let mut stc = st.clone();
            substitute_scalar(&mut stc, &f.var, &Expr::Int(init + j * f.step));
            map_exprs(&mut stc, &mut simplify);
            out.push(stc);
        }
    }
    out.push(Stmt::For(ForLoop {
        var: f.var.clone(),
        init: Expr::Int(init + k * f.step),
        cmp: f.cmp,
        bound: f.bound.clone(),
        step: f.step,
        body: f.body.clone(),
    }));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_stmts;
    use slc_ast::pretty::stmts_to_source;

    #[test]
    fn peels_two() {
        let s = parse_stmts("for (i = 1; i < 9; i++) A[i] = A[i - 1];").unwrap();
        let out = peel_front(&s[0], 2).unwrap();
        let src = stmts_to_source(&out);
        assert!(src.contains("A[1] = A[0];"), "got {src}");
        assert!(src.contains("A[2] = A[1];"), "got {src}");
        assert!(src.contains("for (i = 3; i < 9; i++)"), "got {src}");
    }

    #[test]
    fn bad_peel_counts() {
        let s = parse_stmts("for (i = 0; i < 3; i++) x = 1;").unwrap();
        assert!(peel_front(&s[0], 0).is_err());
        assert!(peel_front(&s[0], 4).is_err());
        assert!(peel_front(&s[0], 3).is_ok());
    }
}
