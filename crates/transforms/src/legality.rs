//! Dependence-based legality checking for loop interchange.
//!
//! The paper's SLC is user-directed, but Tiny's array analysis flags
//! obviously illegal requests. This module implements the classic direction
//! -vector test for perfect 2-deep nests: interchange is illegal iff some
//! dependence has direction `(<, >)` — carried forward by the outer loop
//! and backward by the inner one — which interchange would reverse.
//!
//! The test is exact for the common subscript shapes (each dimension affine
//! in at most one of the two loop variables, equal coefficients across the
//! access pair) and conservative otherwise. Scalars written in the body are
//! allowed only when privatizable (single unconditional definition read
//! within the same iteration), which also keeps the check sound for the
//! workspace's bit-exact semantics.

use crate::TransformError;
use slc_analysis::linform::linearize;
use slc_analysis::{accesses_of_stmt, ArrayAccess};
use slc_ast::{AssignOp, ForLoop, LValue, Stmt};

/// Verdict of the interchange legality test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterchangeLegality {
    /// provably safe
    Legal,
    /// a dependence with direction `(<, >)` exists (or could not be ruled
    /// out) — the string names the offending array or scalar
    Illegal(String),
}

fn collect_accesses(body: &[Stmt]) -> (Vec<ArrayAccess>, Vec<(String, bool, bool)>) {
    // arrays + (scalar name, written, plain_single_assign)
    let mut arrays = Vec::new();
    let mut scalars: Vec<(String, bool, bool)> = Vec::new();
    for s in body {
        let acc = accesses_of_stmt(s);
        arrays.extend(acc.arrays);
        for sc in acc.scalars {
            if sc.in_subscript && !sc.write {
                continue;
            }
            match scalars.iter_mut().find(|(n, _, _)| *n == sc.name) {
                Some(e) => e.1 |= sc.write,
                None => scalars.push((sc.name.clone(), sc.write, false)),
            }
        }
        // mark plain single-assignment defs (privatization candidates)
        if let Stmt::Assign {
            target: LValue::Var(n),
            op: AssignOp::Set,
            ..
        } = s
        {
            if let Some(e) = scalars.iter_mut().find(|(name, _, _)| name == n) {
                e.2 = true;
            }
        }
    }
    (arrays, scalars)
}

/// True when the scalar is privatizable in the nest body: defined exactly
/// once per iteration by a plain top-level assignment that precedes every
/// use (checked positionally).
fn privatizable(body: &[Stmt], name: &str) -> bool {
    let mut def_seen = false;
    let mut def_count = 0;
    for s in body {
        let acc = accesses_of_stmt(s);
        let reads = acc
            .scalars
            .iter()
            .any(|x| !x.write && !x.in_subscript && x.name == name);
        if reads && !def_seen {
            return false; // upward-exposed read: value crosses iterations
        }
        let is_def_here = matches!(
            s,
            Stmt::Assign { target: LValue::Var(n), op: AssignOp::Set, .. } if n == name
        );
        if is_def_here {
            def_seen = true;
            def_count += 1;
        } else if acc.scalars.iter().any(|x| x.write && x.name == name) {
            return false; // conditional/compound write
        }
    }
    def_count == 1
}

/// Per-dimension dependence solution between two accesses over the two
/// loop variables.
enum DimSol {
    /// distances unconstrained by this dimension
    Any,
    /// outer distance pinned
    Outer(i64),
    /// inner distance pinned
    Inner(i64),
    /// never equal
    Never,
    /// can't tell
    Unknown,
}

fn dim_sol(a: &slc_ast::Expr, b: &slc_ast::Expr, outer: (&str, i64), inner: (&str, i64)) -> DimSol {
    let (Some(la), Some(lb)) = (linearize(a), linearize(b)) else {
        return DimSol::Unknown;
    };
    let (co_a, rest_a) = la.split_var(outer.0);
    let (ci_a, rest_a) = rest_a.split_var(inner.0);
    let (co_b, rest_b) = lb.split_var(outer.0);
    let (ci_b, rest_b) = rest_b.split_var(inner.0);
    if co_a != co_b || ci_a != ci_b {
        return DimSol::Unknown;
    }
    let diff = rest_a.sub(&rest_b);
    if !diff.is_const() {
        return DimSol::Unknown;
    }
    let c = diff.konst;
    match (co_a, ci_a) {
        (0, 0) => {
            if c == 0 {
                DimSol::Any
            } else {
                DimSol::Never
            }
        }
        (co, 0) => {
            let denom = co * outer.1;
            if c % denom == 0 {
                DimSol::Outer(c / denom)
            } else {
                DimSol::Never
            }
        }
        (0, ci) => {
            let denom = ci * inner.1;
            if c % denom == 0 {
                DimSol::Inner(c / denom)
            } else {
                DimSol::Never
            }
        }
        // both variables in one dimension (A[i + j]): a line of solutions —
        // some of them may sit in the illegal quadrant; be conservative
        _ => DimSol::Unknown,
    }
}

/// Check the direction-vector condition for one access pair. Returns true
/// when a `(<, >)` direction (after normalization) cannot be ruled out.
fn pair_blocks(x: &ArrayAccess, y: &ArrayAccess, outer: (&str, i64), inner: (&str, i64)) -> bool {
    if x.array != y.array || (!x.write && !y.write) {
        return false;
    }
    if x.indices.len() != y.indices.len() {
        return true;
    }
    let mut d_outer: Option<i64> = None;
    let mut d_inner: Option<i64> = None;
    for (ia, ib) in x.indices.iter().zip(&y.indices) {
        match dim_sol(ia, ib, outer, inner) {
            DimSol::Never => return false,
            DimSol::Any => {}
            DimSol::Outer(d) => match d_outer {
                None => d_outer = Some(d),
                Some(p) if p != d => return false,
                _ => {}
            },
            DimSol::Inner(d) => match d_inner {
                None => d_inner = Some(d),
                Some(p) if p != d => return false,
                _ => {}
            },
            DimSol::Unknown => return true, // conservative
        }
    }
    match (d_outer, d_inner) {
        (Some(mut o), Some(mut i)) => {
            // normalize orientation: the dependence source executes first
            if o < 0 || (o == 0 && i < 0) {
                o = -o;
                i = -i;
            }
            o > 0 && i < 0
        }
        // an unpinned distance ranges over all values: the illegal
        // direction is reachable unless the pinned one forbids it
        (Some(o), None) => o != 0,
        (None, Some(_)) => false, // (=, d): interchange swaps it to (d, =) — safe
        (None, None) => true,     // same cell every iteration: conservative
    }
}

/// Direction-vector legality test for interchanging a perfect 2-deep nest.
pub fn interchange_legal(outer_loop: &ForLoop) -> Result<InterchangeLegality, TransformError> {
    let inner_loop = match outer_loop.body.as_slice() {
        [Stmt::For(f)] => f,
        [Stmt::Block(b)] => match b.as_slice() {
            [Stmt::For(f)] => f,
            _ => {
                return Err(TransformError::ShapeMismatch(
                    "not a perfect 2-deep nest".into(),
                ))
            }
        },
        _ => {
            return Err(TransformError::ShapeMismatch(
                "not a perfect 2-deep nest".into(),
            ))
        }
    };
    let body = &inner_loop.body;
    let (arrays, scalars) = collect_accesses(body);
    for (name, written, _) in &scalars {
        if *name == outer_loop.var || *name == inner_loop.var {
            continue;
        }
        if *written && !privatizable(body, name) {
            return Ok(InterchangeLegality::Illegal(format!("scalar {name}")));
        }
    }
    let outer = (outer_loop.var.as_str(), outer_loop.step);
    let inner = (inner_loop.var.as_str(), inner_loop.step);
    for (k, x) in arrays.iter().enumerate() {
        for y in &arrays[k..] {
            if pair_blocks(x, y, outer, inner) {
                return Ok(InterchangeLegality::Illegal(format!("array {}", x.array)));
            }
        }
    }
    Ok(InterchangeLegality::Legal)
}

/// [`crate::interchange()`] with the legality check in front.
pub fn interchange_checked(stmt: &Stmt) -> Result<Stmt, TransformError> {
    let Stmt::For(f) = stmt else {
        return Err(TransformError::ShapeMismatch("outer is not a for".into()));
    };
    match interchange_legal(f)? {
        InterchangeLegality::Legal => crate::interchange(stmt),
        InterchangeLegality::Illegal(why) => Err(TransformError::ShapeMismatch(format!(
            "interchange illegal: dependence on {why}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_stmts;

    fn legality(src: &str) -> InterchangeLegality {
        let s = parse_stmts(src).unwrap();
        let Stmt::For(f) = &s[0] else { panic!() };
        interchange_legal(f).unwrap()
    }

    #[test]
    fn independent_nest_legal() {
        let v = legality(
            "for (j = 1; j < 8; j++) { for (i = 1; i < 8; i++) { a[i][j] = a[i][j] * 2.0; } }",
        );
        assert_eq!(v, InterchangeLegality::Legal);
    }

    #[test]
    fn paper_example_legal() {
        // t privatizable; array dep is (outer 1, inner 0) → safe
        let v = legality(
            "for (j = 0; j < 8; j++) { for (i = 0; i < 8; i++) { t = a[i][j]; a[i][j + 1] = t; } }",
        );
        assert_eq!(v, InterchangeLegality::Legal);
    }

    #[test]
    fn wavefront_illegal() {
        // a[i][j] = a[i-1][j+1]: dep (outer +1, inner −1) → (<, >) illegal
        let v = legality(
            "for (j = 1; j < 8; j++) { for (i = 1; i < 7; i++) { a[j][i] = a[j - 1][i + 1]; } }",
        );
        assert!(matches!(v, InterchangeLegality::Illegal(_)), "{v:?}");
    }

    #[test]
    fn forward_both_legal() {
        // dep (outer +1, inner +1): stays forward after interchange
        let v = legality(
            "for (j = 1; j < 8; j++) { for (i = 1; i < 8; i++) { a[j][i] = a[j - 1][i - 1]; } }",
        );
        assert_eq!(v, InterchangeLegality::Legal);
    }

    #[test]
    fn accumulator_blocks() {
        let v =
            legality("for (j = 0; j < 8; j++) { for (i = 0; i < 8; i++) { s = s + a[j][i]; } }");
        assert!(matches!(v, InterchangeLegality::Illegal(_)));
    }

    #[test]
    fn coupled_subscript_conservative() {
        let v = legality(
            "for (j = 1; j < 8; j++) { for (i = 1; i < 8; i++) { b[i + j] = b[i + j - 1]; } }",
        );
        assert!(matches!(v, InterchangeLegality::Illegal(_)));
    }

    #[test]
    fn checked_api() {
        let s = parse_stmts(
            "for (j = 1; j < 8; j++) { for (i = 1; i < 7; i++) { a[j][i] = a[j - 1][i + 1]; } }",
        )
        .unwrap();
        assert!(interchange_checked(&s[0]).is_err());
        let s =
            parse_stmts("for (j = 0; j < 8; j++) { for (i = 0; i < 8; i++) { a[i][j] = 0.0; } }")
                .unwrap();
        assert!(interchange_checked(&s[0]).is_ok());
    }
}
