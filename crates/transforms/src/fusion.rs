//! Loop fusion and distribution (§6).
//!
//! Fusion concatenates the bodies of two adjacent loops with identical
//! headers; the paper uses it both *before* SLMS (to give SLMS a bigger body
//! — the fused loop in §6 reaches II = 3) and *after* per-loop SLMS,
//! obtaining different final schedules depending on the order (figure 9).
//! Distribution is the inverse: split one body into two loops.

use crate::{same_header, TransformError};
use slc_ast::{ForLoop, Stmt};

/// Fuse two adjacent loops with identical headers into one.
///
/// Legality (caller-checked in the user-directed SLC, asserted structurally
/// here): headers must match exactly. The workspace's equivalence tests
/// cover the §6 use cases.
pub fn fuse(a: &Stmt, b: &Stmt) -> Result<Stmt, TransformError> {
    let (Stmt::For(fa), Stmt::For(fb)) = (a, b) else {
        return Err(TransformError::ShapeMismatch(
            "both must be for loops".into(),
        ));
    };
    if !same_header(fa, fb) {
        return Err(TransformError::HeaderMismatch);
    }
    let mut body = fa.body.clone();
    body.extend(fb.body.iter().cloned());
    Ok(Stmt::For(ForLoop {
        var: fa.var.clone(),
        init: fa.init.clone(),
        cmp: fa.cmp,
        bound: fa.bound.clone(),
        step: fa.step,
        body,
    }))
}

/// Distribute (fission) a loop at statement index `split`: statements
/// `[0, split)` form the first loop, the rest the second.
pub fn distribute(s: &Stmt, split: usize) -> Result<(Stmt, Stmt), TransformError> {
    let Stmt::For(f) = s else {
        return Err(TransformError::ShapeMismatch("not a for loop".into()));
    };
    if split == 0 || split >= f.body.len() {
        return Err(TransformError::BadParameter(format!(
            "split {split} outside body of {} statements",
            f.body.len()
        )));
    }
    let first = ForLoop {
        var: f.var.clone(),
        init: f.init.clone(),
        cmp: f.cmp,
        bound: f.bound.clone(),
        step: f.step,
        body: f.body[..split].to_vec(),
    };
    let second = ForLoop {
        body: f.body[split..].to_vec(),
        ..first.clone()
    };
    Ok((Stmt::For(first), Stmt::For(second)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_stmts;
    use slc_ast::pretty::stmts_to_source;

    #[test]
    fn fuse_identical_headers() {
        let s = parse_stmts(
            "for (i = 1; i < 9; i++) { B[i] = B[i] + t; } \
             for (i = 1; i < 9; i++) { C[i] = q * B[i]; }",
        )
        .unwrap();
        let out = fuse(&s[0], &s[1]).unwrap();
        let src = stmts_to_source(std::slice::from_ref(&out));
        assert!(src.contains("B[i] = B[i] + t;"), "got {src}");
        assert!(src.contains("C[i] = q * B[i];"), "got {src}");
        let Stmt::For(f) = out else { panic!() };
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn fuse_rejects_different_bounds() {
        let s =
            parse_stmts("for (i = 1; i < 9; i++) x = 1; for (i = 1; i < 8; i++) y = 2;").unwrap();
        assert_eq!(
            fuse(&s[0], &s[1]).unwrap_err(),
            TransformError::HeaderMismatch
        );
    }

    #[test]
    fn distribute_roundtrips_with_fuse() {
        let s = parse_stmts("for (i = 0; i < 5; i++) { x = A[i]; B[i] = x; C[i] = x; }").unwrap();
        let (a, b) = distribute(&s[0], 1).unwrap();
        let refused = fuse(&a, &b).unwrap();
        assert_eq!(refused, s[0]);
    }

    #[test]
    fn distribute_bad_split() {
        let s = parse_stmts("for (i = 0; i < 5; i++) { x = 1; }").unwrap();
        assert!(distribute(&s[0], 0).is_err());
        assert!(distribute(&s[0], 1).is_err());
    }
}
