//! Loop normalization: rewrite a constant-bounds loop with arbitrary
//! start/step into the canonical `for (k = 0; k < T; k++)` form, replacing
//! every occurrence of the original variable with `init + k·step`.
//!
//! Normalization is the front door of classic loop restructurers (Tiny
//! normalizes before analysis); here it is exposed as a standalone
//! transformation so strided loops can be fed to passes that prefer unit
//! stride.

use crate::TransformError;
use slc_ast::visit::{add_const, rewrite_expr, simplify};
use slc_ast::{BinOp, CmpOp, Expr, ForLoop, LValue, Program, Stmt, Ty};

/// Normalize a constant-bounds loop. Returns the replacement statements:
/// the canonical loop plus the original variable's exit-value restore. A
/// fresh induction variable named from `prefix` is registered in `prog`.
pub fn normalize(
    prog: &mut Program,
    stmt: &Stmt,
    prefix: &str,
) -> Result<Vec<Stmt>, TransformError> {
    let Stmt::For(f) = stmt else {
        return Err(TransformError::ShapeMismatch("not a for loop".into()));
    };
    let trip = f.trip_count().ok_or(TransformError::SymbolicBounds)?;
    let init = f.init.const_int().ok_or(TransformError::SymbolicBounds)?;
    if f.step == 1 && init == 0 && f.cmp == CmpOp::Lt {
        return Ok(vec![stmt.clone()]); // already canonical
    }
    let k = prog.fresh_name(prefix);
    prog.ensure_scalar(&k, Ty::Int);
    // var ↦ init + k·step inside the body
    let repl = if f.step == 1 {
        add_const(Expr::var(k.clone()), init)
    } else {
        add_const(
            Expr::bin(BinOp::Mul, Expr::var(k.clone()), Expr::Int(f.step)),
            init,
        )
    };
    let mut body = Vec::new();
    for s in &f.body {
        let mut sc = s.clone();
        slc_ast::visit::map_exprs(&mut sc, &mut |e| {
            rewrite_expr(e, &mut |node| {
                if let Expr::Var(n) = node {
                    if *n == f.var {
                        *node = repl.clone();
                    }
                }
            });
            simplify(e);
        });
        // writes through the old variable would change the replacement's
        // meaning — the caller must not normalize such loops (checked below)
        body.push(sc);
    }
    // reject loops that write the induction variable in the body
    for s in &f.body {
        if slc_ast::visit::scalars_written(s).contains(&f.var) {
            return Err(TransformError::ShapeMismatch(
                "body writes the induction variable".into(),
            ));
        }
    }
    let mut out = vec![Stmt::For(ForLoop {
        var: k,
        init: Expr::Int(0),
        cmp: CmpOp::Lt,
        bound: Expr::Int(trip),
        step: 1,
        body,
    })];
    out.push(Stmt::assign(
        LValue::Var(f.var.clone()),
        Expr::Int(init + trip * f.step),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::pretty::stmts_to_source;
    use slc_ast::{parse_program, parse_stmts};

    #[test]
    fn normalizes_strided() {
        let mut prog = parse_program("float A[64]; int i;").unwrap();
        let s = parse_stmts("for (i = 4; i < 40; i += 3) A[i] = 1.0;").unwrap();
        let out = normalize(&mut prog, &s[0], "k").unwrap();
        let src = stmts_to_source(&out);
        assert!(src.contains("for (k1 = 0; k1 < 12; k1++)"), "got {src}");
        assert!(src.contains("A[k1 * 3 + 4] = 1.0;"), "got {src}");
        assert!(src.contains("i = 40;"), "got {src}");
    }

    #[test]
    fn canonical_loop_untouched() {
        let mut prog = parse_program("float A[8]; int i;").unwrap();
        let s = parse_stmts("for (i = 0; i < 8; i++) A[i] = 1.0;").unwrap();
        let out = normalize(&mut prog, &s[0], "k").unwrap();
        assert_eq!(out, s);
    }

    #[test]
    fn downward_normalized() {
        let mut prog = parse_program("float A[64]; int i;").unwrap();
        let s = parse_stmts("for (i = 30; i > 10; i -= 2) A[i] = 1.0;").unwrap();
        let out = normalize(&mut prog, &s[0], "k").unwrap();
        let src = stmts_to_source(&out);
        assert!(src.contains("k1 < 10"), "got {src}");
        assert!(
            src.contains("A[k1 * -2 + 30]")
                || src.contains("A[30 - k1 * 2]")
                || src.contains("A[k1 * (-2) + 30]"),
            "got {src}"
        );
    }

    #[test]
    fn rejects_var_writes() {
        let mut prog = parse_program("float A[64]; int i;").unwrap();
        let s = parse_stmts("for (i = 2; i < 9; i += 2) { A[i] = 1.0; i += 1; }").unwrap();
        assert!(normalize(&mut prog, &s[0], "k").is_err());
    }
}
