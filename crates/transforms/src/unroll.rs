//! Loop unrolling (§6): used by the paper to resolve too-high IIs and to
//! improve resource utilization of an SLMS'd kernel, and by the §10
//! while-loop extension.

use crate::TransformError;
use slc_ast::visit::shift_induction;
use slc_ast::{CmpOp, Expr, ForLoop, LValue, Stmt};

/// Unroll a constant-trip-count loop by `factor`: the main loop executes
/// `⌊T/factor⌋` passes of `factor` copies (copy `c` index-shifted by
/// `c·step`), and the `T mod factor` leftover iterations are fully peeled
/// after it. The induction variable ends with its original final value.
pub fn unroll(s: &Stmt, factor: i64) -> Result<Vec<Stmt>, TransformError> {
    let Stmt::For(f) = s else {
        return Err(TransformError::ShapeMismatch("not a for loop".into()));
    };
    if factor < 2 {
        return Err(TransformError::BadParameter(format!(
            "unroll factor {factor} < 2"
        )));
    }
    let trip = f.trip_count().ok_or(TransformError::SymbolicBounds)?;
    let init = f.init.const_int().ok_or(TransformError::SymbolicBounds)?;
    let s_step = f.step;
    let passes = trip / factor;
    let mut out = Vec::new();

    // main unrolled loop
    let mut body = Vec::new();
    for c in 0..factor {
        for st in &f.body {
            let mut stc = st.clone();
            shift_induction(&mut stc, &f.var, c * s_step);
            body.push(stc);
        }
    }
    let strict = matches!(f.cmp, CmpOp::Lt | CmpOp::Gt);
    let bound_val = if strict {
        init + passes * factor * s_step
    } else {
        init + (passes * factor - 1) * s_step
    };
    out.push(Stmt::For(ForLoop {
        var: f.var.clone(),
        init: Expr::Int(init),
        cmp: f.cmp,
        bound: Expr::Int(bound_val),
        step: s_step * factor,
        body,
    }));

    // peeled remainder
    for j in passes * factor..trip {
        for st in &f.body {
            let mut stc = st.clone();
            slc_ast::visit::substitute_scalar(&mut stc, &f.var, &Expr::Int(init + j * s_step));
            slc_ast::visit::map_exprs(&mut stc, &mut slc_ast::visit::simplify);
            out.push(stc);
        }
    }
    // final induction value
    out.push(Stmt::assign(
        LValue::Var(f.var.clone()),
        Expr::Int(init + trip * s_step),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_stmts;
    use slc_ast::pretty::stmts_to_source;

    #[test]
    fn unroll_by_two() {
        let s = parse_stmts("for (i = 0; i < 10; i++) A[i] = B[i];").unwrap();
        let out = unroll(&s[0], 2).unwrap();
        let src = stmts_to_source(&out);
        assert!(src.contains("A[i] = B[i];"), "got {src}");
        assert!(src.contains("A[i + 1] = B[i + 1];"), "got {src}");
        assert!(src.contains("i += 2"), "got {src}");
        assert!(src.contains("i = 10;"), "got {src}");
    }

    #[test]
    fn remainder_peeled() {
        let s = parse_stmts("for (i = 0; i < 11; i++) A[i] = B[i];").unwrap();
        let out = unroll(&s[0], 2).unwrap();
        let src = stmts_to_source(&out);
        assert!(src.contains("A[10] = B[10];"), "got {src}");
    }

    #[test]
    fn bad_factor() {
        let s = parse_stmts("for (i = 0; i < 4; i++) x = 1;").unwrap();
        assert!(unroll(&s[0], 1).is_err());
    }
}
