//! Loop interchange (§6): swap the headers of a perfect 2-deep loop nest.
//!
//! The paper's motivating use: `for j { for i { t = a[i][j]; a[i][j+1] = t } }`
//! cannot be SLMS'd over `j` (the distance-1 anti dependence and the `t`
//! recurrence pin the kernel), but after interchanging to iterate `i`
//! innermost, SLMS finds `II = 1`.

use crate::TransformError;
use slc_ast::{ForLoop, Stmt};

/// Interchange a perfect 2-deep nest: `for a { for b { body } }` becomes
/// `for b { for a { body } }`. The nest must be *perfect* — the outer body
/// is exactly the inner loop.
pub fn interchange(outer: &Stmt) -> Result<Stmt, TransformError> {
    let Stmt::For(of) = outer else {
        return Err(TransformError::ShapeMismatch("outer is not a for".into()));
    };
    let inner = perfect_inner(of)?;
    let new_inner = ForLoop {
        var: of.var.clone(),
        init: of.init.clone(),
        cmp: of.cmp,
        bound: of.bound.clone(),
        step: of.step,
        body: inner.body.clone(),
    };
    let new_outer = ForLoop {
        var: inner.var.clone(),
        init: inner.init.clone(),
        cmp: inner.cmp,
        bound: inner.bound.clone(),
        step: inner.step,
        body: vec![Stmt::For(new_inner)],
    };
    Ok(Stmt::For(new_outer))
}

fn perfect_inner(of: &ForLoop) -> Result<&ForLoop, TransformError> {
    let body: &[Stmt] = &of.body;
    // allow one level of block wrapping
    let body = match body {
        [Stmt::Block(b)] => &b[..],
        other => other,
    };
    match body {
        [Stmt::For(inner)] => {
            // inner bounds must not depend on the outer variable
            // (rectangular iteration space)
            let mentions = |e: &slc_ast::Expr| {
                let mut found = false;
                slc_ast::visit::walk_expr(e, &mut |n| {
                    if let slc_ast::Expr::Var(v) = n {
                        if *v == of.var {
                            found = true;
                        }
                    }
                });
                found
            };
            if mentions(&inner.init) || mentions(&inner.bound) {
                return Err(TransformError::ShapeMismatch(
                    "inner bounds depend on outer variable (non-rectangular nest)".into(),
                ));
            }
            Ok(inner)
        }
        _ => Err(TransformError::ShapeMismatch(
            "not a perfect 2-deep nest".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_stmts;
    use slc_ast::pretty::stmts_to_source;

    #[test]
    fn swaps_headers() {
        let s = parse_stmts(
            "for (j = 0; j < 8; j++) { for (i = 0; i < 4; i++) { a[i][j + 1] = a[i][j]; } }",
        )
        .unwrap();
        let out = interchange(&s[0]).unwrap();
        let src = stmts_to_source(&[out]);
        assert!(src.starts_with("for (i = 0; i < 4; i++)"), "got:\n{src}");
        assert!(src.contains("for (j = 0; j < 8; j++)"), "got:\n{src}");
    }

    #[test]
    fn rejects_imperfect_nest() {
        let s = parse_stmts("for (j = 0; j < 8; j++) { x = 1; for (i = 0; i < 4; i++) y = 2; }")
            .unwrap();
        assert!(interchange(&s[0]).is_err());
    }

    #[test]
    fn rejects_triangular_nest() {
        let s = parse_stmts("for (j = 0; j < 8; j++) { for (i = 0; i < j; i++) y = 2; }").unwrap();
        assert!(interchange(&s[0]).is_err());
    }
}
