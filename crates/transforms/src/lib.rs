//! # slc-transforms — classic loop transformations for the SLC (§6)
//!
//! The paper studies SLMS *in combination* with the loop transformations of
//! Wolfe's Tiny / Bacon-Graham-Sharp: interchange, fusion, distribution,
//! unrolling, reversal and peeling. Like Tiny, the source-level compiler is
//! **user-directed**: the user picks a transformation from the menu and the
//! tool applies it. This crate therefore performs structural validation
//! (loop shapes, matching headers, constant bounds where the rewrite needs
//! them) plus cheap conservative legality checks, while full legality
//! remains the caller's responsibility — exactly the contract the paper's
//! interactive SLC has. The workspace's integration tests validate each use
//! against the reference interpreter.

pub mod fusion;
pub mod interchange;
pub mod legality;
pub mod normalize;
pub mod peel;
pub mod reverse;
pub mod unroll;

pub use fusion::{distribute, fuse};
pub use interchange::interchange;
pub use legality::{interchange_checked, interchange_legal, InterchangeLegality};
pub use normalize::normalize;
pub use peel::peel_front;
pub use reverse::reverse;
pub use unroll::unroll;

use slc_ast::ForLoop;

/// Errors from loop transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// Statement is not a `for` loop (or not a perfect nest, for
    /// interchange).
    ShapeMismatch(String),
    /// Headers of the two loops differ (fusion).
    HeaderMismatch,
    /// The transformation needs constant loop bounds.
    SymbolicBounds,
    /// Requested split/peel/unroll parameter out of range.
    BadParameter(String),
    /// A pass plan addressed a loop index the program does not have.
    TargetNotFound {
        /// requested top-level loop index
        index: usize,
        /// top-level loops actually present
        n_loops: usize,
    },
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            TransformError::HeaderMismatch => write!(f, "loop headers differ"),
            TransformError::SymbolicBounds => write!(f, "constant bounds required"),
            TransformError::BadParameter(m) => write!(f, "bad parameter: {m}"),
            TransformError::TargetNotFound { index, n_loops } => write!(
                f,
                "no loop #{index}: program has {n_loops} top-level loop(s)"
            ),
        }
    }
}

impl std::error::Error for TransformError {}

/// True when two loops have identical headers (variable, bounds, step).
pub fn same_header(a: &ForLoop, b: &ForLoop) -> bool {
    a.var == b.var && a.init == b.init && a.cmp == b.cmp && a.bound == b.bound && a.step == b.step
}
