//! # slc-pipeline — end-to-end experiment pipeline
//!
//! Glues the workspace together the way the paper's Figure 4 does:
//!
//! ```text
//!  source program ──(slc-core SLMS / slc-transforms)──▶ optimized source
//!        │                                                   │
//!        └──────────────▶ final compiler (slc-machine) ◀─────┘
//!                                │ personalities: Weak / Optimizing / +MS
//!                                ▼
//!                     cycle simulator + power model (slc-sim)
//! ```
//!
//! [`fn@compile`] builds simulatable programs; [`experiments`] produces the
//! per-loop speedup rows behind each figure of §9.

pub mod compile;
pub mod experiments;

pub use compile::{compile, CompileResult, CompilerKind, LoopInfo};
pub use experiments::{
    format_rows, measure_gap, measure_suite, measure_workload, run, GapRow, LoopRow, Metrics,
};
