//! # slc-pipeline — end-to-end experiment pipeline
//!
//! Glues the workspace together the way the paper's Figure 4 does:
//!
//! ```text
//!  source program ──(slc-core SLMS / slc-transforms)──▶ optimized source
//!        │                                                   │
//!        └──────────────▶ final compiler (slc-machine) ◀─────┘
//!                                │ personalities: Weak / Optimizing / +MS
//!                                ▼
//!                     cycle simulator + power model (slc-sim)
//! ```
//!
//! [`fn@compile`] builds simulatable programs; [`experiments`] produces the
//! per-loop speedup rows behind each figure of §9; [`passes`] wraps SLMS
//! and every §6 transformation behind one [`Pass`] signature driven by
//! parseable [`PassPlan`]s; [`explain`] renders their per-loop decision
//! traces; [`batch`] evaluates the whole workload × machine × personality
//! matrix concurrently with memoization of every shared artifact, keyed by
//! plan fingerprints.

pub mod batch;
pub mod cache;
pub mod compile;
pub mod experiments;
pub mod explain;
pub mod par;
pub mod passes;
pub mod service;
pub mod shard;

/// Deterministic JSON value + writer/reader (moved to [`slc_trace::json`];
/// re-exported here so existing `slc_pipeline::json::Json` paths keep
/// working).
pub mod json {
    pub use slc_trace::json::*;
}

pub use batch::{
    run_batch, BatchConfig, BatchEngine, BatchReport, CellId, CellMetrics, CellResult, ShardStats,
    TimingReport, COUNTER_TOLERANCES, REPORT_SCHEMA, TIMING_SCHEMA,
};
pub use cache::{CacheReport, KeyedStore, StoreStats};
pub use compile::{compile, compile_lir, CompileResult, CompilerKind, LoopInfo};
pub use experiments::{
    format_rows, measure_gap, measure_suite, measure_suite_on, measure_workload, run, GapRow,
    LoopRow, Metrics,
};
pub use explain::{
    explain_all, explain_all_json, explain_source, explain_source_json, explain_workload,
    explain_workload_json,
};
pub use json::Json;
pub use par::{effective_threads, par_map_indexed, par_map_indexed_stats, WorkerStats};
pub use passes::{
    CompiledPass, Pass, PassError, PassManager, PassPlan, PassSpec, PlanParseError, PLAN_SYNTAX,
};
pub use service::{
    verify_report, CellKeys, CellSpec, CompileOutcome, CompileService, PassTiming, ServiceError,
    StageNs, VerifyOutcome, VerifySummary,
};
pub use shard::{
    chunk_ranges, partition, run_sharded, shard_worker, ShardFault, ShardOptions,
    SHARD_BENCH_SCHEMA, SHARD_PROTO_SCHEMA,
};
