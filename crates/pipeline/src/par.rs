//! Minimal data-parallel executor for the batch engine.
//!
//! The environment this workspace builds in has no registry access, so
//! `rayon` is unavailable; this module provides the one primitive the
//! engine needs — an ordered parallel map over an index range — on plain
//! `std::thread::scope` with an atomic work queue. Results are returned in
//! index order, so the output is independent of how work interleaves
//! across threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Resolve a requested thread count: `None` means "all available cores",
/// and the result is always clamped to `[1, n_items]`.
pub fn effective_threads(requested: Option<usize>, n_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    requested.unwrap_or(hw).clamp(1, n_items.max(1))
}

/// Per-worker accounting from one [`par_map_indexed_stats`] run. The values
/// depend on OS scheduling, so they belong in the wall-clock timing sidecar
/// only — never in counters, fingerprints, or the canonical report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// worker index, `0..threads`
    pub worker: usize,
    /// items this worker claimed from the shared queue
    pub claimed: u64,
    /// claim attempts that found the queue drained (the worker's exit
    /// probe)
    pub empty_polls: u64,
    /// wall-clock nanoseconds this worker spent inside the mapped closure
    /// (busy time, excluding queue claims and result sends)
    pub busy_ns: u64,
}

/// Apply `f` to every index in `0..n` using up to `threads` worker
/// threads, returning results in index order. With `threads == 1` the map
/// runs on the caller's thread; the output is identical either way as long
/// as `f` is a pure function of its index.
pub fn par_map_indexed<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_indexed_stats(n, threads, |_, i| f(i)).0
}

/// [`par_map_indexed`] with worker identity: `f(worker, index)` learns
/// which worker runs it (workers are numbered `0..threads`), and the
/// returned [`WorkerStats`] record how many queue items each worker
/// claimed. Results stay in index order regardless of interleaving.
pub fn par_map_indexed_stats<U, F>(n: usize, threads: usize, f: F) -> (Vec<U>, Vec<WorkerStats>)
where
    U: Send,
    F: Fn(usize, usize) -> U + Sync,
{
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        let t0 = Instant::now();
        let out = (0..n).map(|i| f(0, i)).collect();
        let stats = vec![WorkerStats {
            worker: 0,
            claimed: n as u64,
            empty_polls: 1,
            busy_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }];
        return (out, stats);
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                s.spawn(move || {
                    let mut stats = WorkerStats {
                        worker: w,
                        claimed: 0,
                        empty_polls: 0,
                        busy_ns: 0,
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            stats.empty_polls += 1;
                            break;
                        }
                        stats.claimed += 1;
                        let t0 = Instant::now();
                        let u = f(w, i);
                        stats.busy_ns = stats.busy_ns.saturating_add(
                            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                        // receiver outlives all senders inside the scope
                        let _ = tx.send((i, u));
                    }
                    stats
                })
            })
            .collect();
        drop(tx);
        let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, u) in rx {
            out[i] = Some(u);
        }
        let stats = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        let out = out
            .into_iter()
            .map(|o| o.expect("worker delivered every index"))
            .collect();
        (out, stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_and_complete() {
        let out = par_map_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_equals_parallel() {
        let serial = par_map_indexed(57, 1, |i| i as u64 * 3 + 1);
        let parallel = par_map_indexed(57, 7, |i| i as u64 * 3 + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_stats_cover_every_item() {
        for threads in [1, 4] {
            let (out, stats) = par_map_indexed_stats(40, threads, |w, i| {
                assert!(w < threads);
                i * 2
            });
            assert_eq!(out, (0..40).map(|i| i * 2).collect::<Vec<_>>());
            assert_eq!(stats.len(), threads);
            assert_eq!(stats.iter().map(|s| s.claimed).sum::<u64>(), 40);
            for (w, s) in stats.iter().enumerate() {
                assert_eq!(s.worker, w);
                assert!(s.empty_polls >= 1);
            }
        }
    }

    #[test]
    fn empty_and_oversubscribed() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(2, 64, |i| i), vec![0, 1]);
        assert_eq!(effective_threads(Some(0), 10), 1);
        assert_eq!(effective_threads(Some(99), 3), 3);
    }
}
