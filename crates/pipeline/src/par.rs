//! Minimal data-parallel executor for the batch engine.
//!
//! The environment this workspace builds in has no registry access, so
//! `rayon` is unavailable; this module provides the one primitive the
//! engine needs — an ordered parallel map over an index range — on plain
//! `std::thread::scope` with an atomic work queue. Results are returned in
//! index order, so the output is independent of how work interleaves
//! across threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolve a requested thread count: `None` means "all available cores",
/// and the result is always clamped to `[1, n_items]`.
pub fn effective_threads(requested: Option<usize>, n_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    requested.unwrap_or(hw).clamp(1, n_items.max(1))
}

/// Apply `f` to every index in `0..n` using up to `threads` worker
/// threads, returning results in index order. With `threads == 1` the map
/// runs on the caller's thread; the output is identical either way as long
/// as `f` is a pure function of its index.
pub fn par_map_indexed<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // receiver outlives all senders inside the scope
                let _ = tx.send((i, f(i)));
            });
        }
        drop(tx);
        let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, u) in rx {
            out[i] = Some(u);
        }
        out.into_iter()
            .map(|o| o.expect("worker delivered every index"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_and_complete() {
        let out = par_map_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_equals_parallel() {
        let serial = par_map_indexed(57, 1, |i| i as u64 * 3 + 1);
        let parallel = par_map_indexed(57, 7, |i| i as u64 * 3 + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_oversubscribed() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(2, 64, |i| i), vec![0, 1]);
        assert_eq!(effective_threads(Some(0), 10), 1);
        assert_eq!(effective_threads(Some(99), 3), 3);
    }
}
