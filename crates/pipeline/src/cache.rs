//! Content-hash-keyed memoization of expensive compilation artifacts.
//!
//! The batch engine evaluates a large experiment matrix in which many
//! cells share work: the SLMS transformation of a workload is identical
//! for every machine and personality, the lowered LIR is identical for
//! every machine, and a (program, machine, personality) schedule is
//! identical for both the figure harness and the CLI. Each such artifact
//! is cached once under a stable content fingerprint
//! (see `slc_analysis::fingerprint`).
//!
//! **Determinism invariant.** Each key is computed *exactly once*: the
//! first thread to claim a key holds a per-slot lock while computing, and
//! every other thread blocks on that slot and then records a hit. Total
//! misses therefore equal the number of distinct keys ever requested and
//! total lookups equal hits + misses — both independent of thread count
//! and scheduling, which is what lets cache statistics appear in the
//! byte-identical batch report.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/entry counters of one store, snapshot for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// lookups answered from the map
    pub hits: u64,
    /// lookups that had to compute (== distinct keys)
    pub misses: u64,
}

impl StoreStats {
    /// Fraction of lookups answered from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// One memoization map: `u64` fingerprint → shared artifact.
pub struct KeyedStore<V> {
    map: Mutex<HashMap<u64, Slot<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> Default for KeyedStore<V> {
    fn default() -> Self {
        KeyedStore {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<V> KeyedStore<V> {
    /// Return the artifact for `key`, computing it with `compute` on the
    /// first request. Concurrent requests for the same key block until the
    /// first computation finishes and then share its result; `compute`
    /// runs exactly once per key.
    pub fn get_or_compute<F: FnOnce() -> V>(&self, key: u64, compute: F) -> Arc<V> {
        let slot = {
            let mut map = self.map.lock().expect("cache map poisoned");
            map.entry(key).or_default().clone()
        };
        // the global map lock is released; only this key's slot is held
        let mut guard = slot.lock().expect("cache slot poisoned");
        if let Some(v) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(compute());
        *guard = Some(v.clone());
        v
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Cache statistics of every artifact kind, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheReport {
    /// source text → parsed program
    pub parse: StoreStats,
    /// (program, SLMS config) → transformed program + outcomes
    pub slms: StoreStats,
    /// program → lowered LIR (machine-independent)
    pub lir: StoreStats,
    /// (program, machine, personality) → schedules + compile facts
    pub compile: StoreStats,
    /// (program, machine, personality) → simulation result
    pub sim: StoreStats,
}

impl CacheReport {
    /// Aggregate hit rate across all stores.
    pub fn overall_hit_rate(&self) -> f64 {
        let (mut h, mut m) = (0u64, 0u64);
        for s in [self.parse, self.slms, self.lir, self.compile, self.sim] {
            h += s.hits;
            m += s.misses;
        }
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_per_key() {
        let store: KeyedStore<u64> = KeyedStore::default();
        let calls = AtomicUsize::new(0);
        for _ in 0..10 {
            let v = store.get_or_compute(42, || {
                calls.fetch_add(1, Ordering::SeqCst);
                7
            });
            assert_eq!(*v, 7);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (9, 1));
        assert!(s.hit_rate() > 0.89 && s.hit_rate() < 0.91);
    }

    #[test]
    fn concurrent_misses_are_deterministic() {
        let store: Arc<KeyedStore<usize>> = Arc::new(KeyedStore::default());
        let calls = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = store.clone();
                let calls = calls.clone();
                s.spawn(move || {
                    for k in 0..50u64 {
                        let v = store.get_or_compute(k % 5, || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            (k % 5) as usize
                        });
                        assert_eq!(*v, (k % 5) as usize);
                    }
                });
            }
        });
        // 5 distinct keys → exactly 5 computations and 5 misses,
        // regardless of interleaving
        assert_eq!(calls.load(Ordering::SeqCst), 5);
        let s = store.stats();
        assert_eq!(s.misses, 5);
        assert_eq!(s.hits, 8 * 50 - 5);
    }
}
