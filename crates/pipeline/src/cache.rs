//! Content-hash-keyed memoization of expensive compilation artifacts.
//!
//! The batch engine and the `slc serve` daemon both evaluate requests in
//! which much work is shared: the SLMS transformation of a workload is
//! identical for every machine and personality, the lowered LIR is
//! identical for every machine, and a (program, machine, personality)
//! schedule is identical for both the figure harness and the CLI. Each
//! such artifact is cached once under a stable content fingerprint
//! (see `slc_analysis::fingerprint`).
//!
//! **Determinism invariant.** Each key is computed *exactly once while it
//! is resident*: the first thread to claim a key holds a per-slot lock
//! while computing, and every other thread blocks on that slot and then
//! records a hit. With an unbounded store (the batch engine's default)
//! total misses therefore equal the number of distinct keys ever requested
//! and total lookups equal hits + misses — both independent of thread
//! count and scheduling, which is what lets cache statistics appear in the
//! byte-identical batch report.
//!
//! **Bounded (LRU) mode.** A store built with [`KeyedStore::bounded`]
//! additionally carries a capacity: when an insert pushes the store past
//! it, the least-recently-used *completed* entries are evicted (entries
//! still being computed are never touched). Under a fixed request order
//! the recency sequence — and therefore the eviction sequence — is
//! deterministic. Evictions are counted, and when an artifact
//! fingerprinting function is supplied, a re-computed artifact for a
//! previously-evicted key is checked against the fingerprint recorded at
//! eviction time: a mismatch means recompilation was not reproducible and
//! is surfaced through [`StoreStats::refp_mismatches`] (and trips a debug
//! assertion).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/eviction counters of one store, snapshot for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// lookups answered from the map
    pub hits: u64,
    /// lookups that had to compute (== distinct keys for unbounded stores;
    /// bounded stores also re-miss evicted keys)
    pub misses: u64,
    /// completed entries dropped by the LRU bound (0 for unbounded stores)
    pub evictions: u64,
    /// evicted-then-recomputed artifacts whose fingerprint changed
    /// (should always be 0: recompilation must be reproducible)
    pub refp_mismatches: u64,
}

impl StoreStats {
    /// Fraction of lookups answered from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// Recency + eviction bookkeeping behind the store's map lock.
struct LruState<V> {
    map: HashMap<u64, Slot<V>>,
    /// logical access clock; bumped on every lookup
    tick: u64,
    /// key → last-access tick (present iff the key is in `map`)
    last_use: HashMap<u64, u64>,
    /// key → artifact fingerprint recorded when the key was evicted
    evicted_fp: HashMap<u64, u64>,
}

impl<V> Default for LruState<V> {
    fn default() -> Self {
        LruState {
            map: HashMap::new(),
            tick: 0,
            last_use: HashMap::new(),
            evicted_fp: HashMap::new(),
        }
    }
}

/// One memoization map: `u64` fingerprint → shared artifact, optionally
/// bounded by an LRU capacity.
pub struct KeyedStore<V> {
    state: Mutex<LruState<V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    refp_mismatches: AtomicU64,
    /// max resident entries; `None` = unbounded (the batch default)
    capacity: Option<usize>,
    /// artifact fingerprint, for the evict-then-recompute identity check
    fp: Option<fn(&V) -> u64>,
}

impl<V> Default for KeyedStore<V> {
    fn default() -> Self {
        KeyedStore {
            state: Mutex::new(LruState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            refp_mismatches: AtomicU64::new(0),
            capacity: None,
            fp: None,
        }
    }
}

impl<V> KeyedStore<V> {
    /// A store that keeps at most `capacity` completed entries, evicting
    /// least-recently-used ones past that. `fp` (optional) fingerprints an
    /// artifact so that an evicted-then-recomputed key can be checked for
    /// byte-identity against what was evicted.
    pub fn bounded(capacity: usize, fp: Option<fn(&V) -> u64>) -> Self {
        KeyedStore {
            capacity: Some(capacity.max(1)),
            fp,
            ..KeyedStore::default()
        }
    }

    /// Return the artifact for `key`, computing it with `compute` on the
    /// first request. Concurrent requests for the same key block until the
    /// first computation finishes and then share its result; `compute`
    /// runs exactly once per key while the key stays resident.
    pub fn get_or_compute<F: FnOnce() -> V>(&self, key: u64, compute: F) -> Arc<V> {
        self.get_or_compute_hit(key, compute).0
    }

    /// [`KeyedStore::get_or_compute`] that also reports whether the lookup
    /// was answered from the cache (`true` = hit). The daemon uses this to
    /// stamp responses with their cache provenance.
    pub fn get_or_compute_hit<F: FnOnce() -> V>(&self, key: u64, compute: F) -> (Arc<V>, bool) {
        let slot = {
            let mut st = self.state.lock().expect("cache map poisoned");
            st.tick += 1;
            let tick = st.tick;
            st.last_use.insert(key, tick);
            let fresh = !st.map.contains_key(&key);
            let slot = st.map.entry(key).or_default().clone();
            if fresh {
                if let Some(cap) = self.capacity {
                    self.evict_over(&mut st, cap, key);
                }
            }
            slot
        };
        // the global map lock is released; only this key's slot is held
        let mut guard = slot.lock().expect("cache slot poisoned");
        if let Some(v) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (v.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(compute());
        if let Some(fp_fn) = self.fp {
            let got = fp_fn(&v);
            let st = self.state.lock().expect("cache map poisoned");
            if let Some(&recorded) = st.evicted_fp.get(&key) {
                if recorded != got {
                    self.refp_mismatches.fetch_add(1, Ordering::Relaxed);
                    debug_assert_eq!(
                        recorded, got,
                        "recomputed artifact for key {key:#x} differs from the evicted one"
                    );
                }
            }
        }
        *guard = Some(v.clone());
        (v, false)
    }

    /// Evict least-recently-used completed entries until at most `cap`
    /// remain. `protect` (the key being inserted) and entries still being
    /// computed are never evicted; if nothing is evictable the store is
    /// allowed to exceed its bound transiently.
    fn evict_over(&self, st: &mut LruState<V>, cap: usize, protect: u64) {
        while st.map.len() > cap {
            let mut victim: Option<(u64, u64)> = None; // (key, tick)
            for (&k, slot) in st.map.iter() {
                if k == protect {
                    continue;
                }
                // completed entries only: an uncontended slot holding Some
                let done = slot.try_lock().map(|g| g.is_some()).unwrap_or(false);
                if !done {
                    continue;
                }
                let tick = st.last_use.get(&k).copied().unwrap_or(0);
                if victim.is_none_or(|(_, best)| tick < best) {
                    victim = Some((k, tick));
                }
            }
            let Some((k, _)) = victim else { break };
            if let Some(slot) = st.map.remove(&k) {
                if let (Some(fp_fn), Ok(guard)) = (self.fp, slot.try_lock()) {
                    if let Some(v) = guard.as_ref() {
                        st.evicted_fp.insert(k, fp_fn(v));
                    }
                }
            }
            st.last_use.remove(&k);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of resident entries (completed or in flight).
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache map poisoned").map.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            refp_mismatches: self.refp_mismatches.load(Ordering::Relaxed),
        }
    }
}

/// Cache statistics of every artifact kind, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheReport {
    /// source text → parsed program
    pub parse: StoreStats,
    /// (program, SLMS config) → transformed program + outcomes
    pub slms: StoreStats,
    /// program → lowered LIR (machine-independent)
    pub lir: StoreStats,
    /// (program, machine, personality) → schedules + compile facts
    pub compile: StoreStats,
    /// (program, machine, personality) → simulation result
    pub sim: StoreStats,
}

impl CacheReport {
    /// Aggregate hit rate across all stores.
    pub fn overall_hit_rate(&self) -> f64 {
        let (mut h, mut m) = (0u64, 0u64);
        for s in [self.parse, self.slms, self.lir, self.compile, self.sim] {
            h += s.hits;
            m += s.misses;
        }
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Total completed entries dropped by LRU bounds, across stores.
    pub fn total_evictions(&self) -> u64 {
        [self.parse, self.slms, self.lir, self.compile, self.sim]
            .iter()
            .map(|s| s.evictions)
            .sum()
    }

    /// Total cache hits across stores.
    pub fn total_hits(&self) -> u64 {
        [self.parse, self.slms, self.lir, self.compile, self.sim]
            .iter()
            .map(|s| s.hits)
            .sum()
    }

    /// Total evict-then-recompute fingerprint mismatches (must stay 0).
    pub fn total_refp_mismatches(&self) -> u64 {
        [self.parse, self.slms, self.lir, self.compile, self.sim]
            .iter()
            .map(|s| s.refp_mismatches)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_per_key() {
        let store: KeyedStore<u64> = KeyedStore::default();
        let calls = AtomicUsize::new(0);
        for _ in 0..10 {
            let v = store.get_or_compute(42, || {
                calls.fetch_add(1, Ordering::SeqCst);
                7
            });
            assert_eq!(*v, 7);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (9, 1, 0));
        assert!(s.hit_rate() > 0.89 && s.hit_rate() < 0.91);
    }

    #[test]
    fn concurrent_misses_are_deterministic() {
        let store: Arc<KeyedStore<usize>> = Arc::new(KeyedStore::default());
        let calls = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = store.clone();
                let calls = calls.clone();
                s.spawn(move || {
                    for k in 0..50u64 {
                        let v = store.get_or_compute(k % 5, || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            (k % 5) as usize
                        });
                        assert_eq!(*v, (k % 5) as usize);
                    }
                });
            }
        });
        // 5 distinct keys → exactly 5 computations and 5 misses,
        // regardless of interleaving
        assert_eq!(calls.load(Ordering::SeqCst), 5);
        let s = store.stats();
        assert_eq!(s.misses, 5);
        assert_eq!(s.hits, 8 * 50 - 5);
    }

    #[test]
    fn hit_flag_reports_cache_provenance() {
        let store: KeyedStore<u64> = KeyedStore::default();
        let (_, hit) = store.get_or_compute_hit(1, || 10);
        assert!(!hit);
        let (_, hit) = store.get_or_compute_hit(1, || unreachable!());
        assert!(hit);
    }

    #[test]
    fn lru_evicts_least_recently_used_deterministically() {
        let store: KeyedStore<u64> = KeyedStore::bounded(2, Some(|v| *v));
        store.get_or_compute(1, || 100); // resident: {1}
        store.get_or_compute(2, || 200); // resident: {1, 2}
        store.get_or_compute(1, || unreachable!()); // touch 1 → 2 is LRU
        store.get_or_compute(3, || 300); // evicts 2
        assert_eq!(store.stats().evictions, 1);
        assert_eq!(store.len(), 2);
        // 1 and 3 still resident …
        store.get_or_compute(1, || unreachable!());
        store.get_or_compute(3, || unreachable!());
        // … and 2 recomputes (re-miss), identical artifact → no mismatch
        let (v, hit) = store.get_or_compute_hit(2, || 200);
        assert_eq!((*v, hit), (200, false));
        assert_eq!(store.stats().refp_mismatches, 0);
        assert_eq!(store.stats().misses, 4);
    }

    #[test]
    fn eviction_order_is_a_pure_function_of_request_order() {
        // same request sequence twice → identical eviction count and
        // identical resident set
        let run = || {
            let store: KeyedStore<u64> = KeyedStore::bounded(3, Some(|v| *v));
            for &k in &[1u64, 2, 3, 4, 2, 5, 1, 6, 3] {
                store.get_or_compute(k, || k * 10);
            }
            let mut resident: Vec<u64> = Vec::new();
            for k in 1..=6u64 {
                let (_, hit) = store.get_or_compute_hit(k, || k * 10);
                if hit {
                    resident.push(k);
                }
            }
            (store.stats().evictions, resident)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn refp_mismatch_detected_on_nondeterministic_recompute() {
        let store: KeyedStore<u64> = KeyedStore::bounded(1, Some(|v| *v));
        let calls = AtomicUsize::new(0);
        let unstable = || (calls.fetch_add(1, Ordering::SeqCst) as u64) + 7;
        store.get_or_compute(1, unstable); // 7
        store.get_or_compute(2, || 99); // evicts 1 (fp 7 recorded)
                                        // recompute of key 1 yields a different artifact → flagged
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.get_or_compute(1, unstable); // 8 ≠ 7
        }));
        if cfg!(debug_assertions) {
            assert!(caught.is_err(), "debug_assert should have tripped");
        } else {
            assert!(caught.is_ok());
        }
        assert_eq!(store.stats().refp_mismatches, 1);
    }

    #[test]
    fn in_flight_entries_are_never_evicted() {
        // capacity 1; a slot being computed must survive an insert storm
        let store: Arc<KeyedStore<u64>> = Arc::new(KeyedStore::bounded(1, None));
        std::thread::scope(|s| {
            let st = store.clone();
            let slow = s.spawn(move || {
                st.get_or_compute(1, || {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    11
                })
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            // while key 1 is computing, churn other keys through the store
            for k in 2..6u64 {
                store.get_or_compute(k, || k);
            }
            assert_eq!(*slow.join().unwrap(), 11);
        });
        // key 1 completed and was either resident or evicted afterwards —
        // but its computation ran exactly once
        assert_eq!(store.stats().refp_mismatches, 0);
    }
}
