//! Rendering of pass-plan decision traces — the engine behind `slc explain`.
//!
//! The paper's SLC is an interactive tool: the user applies a
//! transformation and inspects what happened. `slc explain` is the batch
//! form of that inspection — it runs a [`PassPlan`](crate::PassPlan) over a
//! program and prints, for every loop, the full decision trace: the §4
//! filter verdict with its measured memory-ref ratio, each MII /
//! decomposition round, and the final II (or the structured reason the
//! loop was left alone).

use crate::json::Json;
use crate::passes::{PassManager, PassPlan};
use slc_ast::parse_program;
use slc_core::{loop_outcome_json, SlmsConfig};
use slc_workloads::Workload;

/// Run `plan` over `src` and render the per-loop decision trace. On a hard
/// failure (parse error, structural transform error) the rendered text
/// reports it — `explain` never panics on a valid plan over any workload.
pub fn explain_source(src: &str, plan: &PassPlan, cfg: &SlmsConfig) -> String {
    let prog = match parse_program(src) {
        Ok(p) => p,
        Err(e) => return format!("plan: {plan}\nparse error: {e}\n"),
    };
    let pm = PassManager::new(cfg.clone());
    match pm.run(&prog, plan) {
        Ok((out, sink)) => {
            let mut text = format!("plan: {plan}\n");
            text.push_str(&sink.render());
            let total: usize = sink.all_outcomes().count();
            let transformed: usize = sink.all_outcomes().filter(|o| o.result.is_ok()).count();
            let n_passes = sink.passes.len();
            text.push_str(&format!(
                "summary: {n_passes} pass(es), {transformed}/{total} loop(s) pipelined, \
                 {} statement(s) in output\n",
                out.stmts.len()
            ));
            text
        }
        Err(e) => format!("plan: {plan}\nplan failed: {e}\n"),
    }
}

/// Machine-readable `explain`: run `plan` over `src` and emit one compact
/// JSON object **per loop** (JSONL), each carrying the stable fields
/// `workload` (null for raw sources), `plan`, `pass`, then the
/// [`loop_outcome_json`] schema (`loop` / `transformed` / `report` /
/// `error` / `trace`). Hard failures (parse error, structural transform
/// error) become a single line with `plan` and `error` fields instead —
/// like [`explain_source`], this never panics on a valid plan.
pub fn explain_source_json(src: &str, plan: &PassPlan, cfg: &SlmsConfig) -> String {
    render_lines(explain_json_lines(None, src, plan, cfg))
}

/// One JSONL line per loop of one named workload (the `workload` field
/// carries its name; see [`explain_source_json`] for the schema).
pub fn explain_workload_json(w: &Workload, plan: &PassPlan, cfg: &SlmsConfig) -> String {
    render_lines(explain_json_lines(Some(w), w.source, plan, cfg))
}

/// JSONL traces for every workload in every suite (`slc explain --all
/// --json`).
pub fn explain_all_json(plan: &PassPlan, cfg: &SlmsConfig) -> String {
    let mut out = String::new();
    for w in slc_workloads::all() {
        out.push_str(&explain_workload_json(&w, plan, cfg));
    }
    out
}

fn render_lines(lines: Vec<Json>) -> String {
    let mut out = String::new();
    for line in lines {
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

fn explain_json_lines(
    w: Option<&Workload>,
    src: &str,
    plan: &PassPlan,
    cfg: &SlmsConfig,
) -> Vec<Json> {
    let head = |mut obj: Json| -> Json {
        obj = match w {
            Some(w) => obj
                .field("workload", w.name)
                .field("suite", w.suite.to_string()),
            None => obj.field("workload", Json::Null),
        };
        obj.field("plan", plan.to_string())
    };
    let prog = match parse_program(src) {
        Ok(p) => p,
        Err(e) => return vec![head(Json::obj()).field("error", format!("parse: {e}"))],
    };
    let pm = PassManager::new(cfg.clone());
    match pm.run(&prog, plan) {
        Ok((_, sink)) => {
            let mut lines = Vec::new();
            for pd in &sink.passes {
                for o in &pd.loops {
                    let mut line = head(Json::obj()).field("pass", pd.pass.as_str());
                    if let Json::Obj(fields) = loop_outcome_json(o) {
                        for (k, v) in fields {
                            line = line.field(&k, v);
                        }
                    }
                    lines.push(line);
                }
            }
            lines
        }
        Err(e) => vec![head(Json::obj()).field("error", format!("plan: {e}"))],
    }
}

/// Render the decision trace of one named workload.
pub fn explain_workload(w: &Workload, plan: &PassPlan, cfg: &SlmsConfig) -> String {
    format!(
        "═══ {} [{}] ═══\n{}",
        w.name,
        w.suite,
        explain_source(w.source, plan, cfg)
    )
}

/// Render traces for every workload in every suite (the `slc explain --all`
/// mode, and the guarantee the integration tests pin down: no loop in any
/// suite panics the explainer).
pub fn explain_all(plan: &PassPlan, cfg: &SlmsConfig) -> String {
    let mut out = String::new();
    for w in slc_workloads::all() {
        out.push_str(&explain_workload(&w, plan, cfg));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_reports_filter_ratio_or_schedule() {
        let plan = PassPlan::slms_only();
        let cfg = SlmsConfig::default();
        let text = explain_source(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
            &plan,
            &cfg,
        );
        assert!(text.contains("── pass slms ──"), "{text}");
        assert!(text.contains("scheduled: II = 1"), "{text}");
        assert!(
            text.contains("summary: 1 pass(es), 1/1 loop(s) pipelined"),
            "{text}"
        );
    }

    #[test]
    fn explain_json_emits_one_parsable_object_per_loop() {
        let plan = PassPlan::slms_only();
        let cfg = SlmsConfig::default();
        let text = explain_source_json(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
            &plan,
            &cfg,
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "{text}");
        let obj = Json::parse(lines[0]).unwrap();
        assert_eq!(obj.get("workload"), Some(&Json::Null));
        assert_eq!(obj.get("plan").and_then(Json::as_str), Some("slms"));
        assert_eq!(obj.get("pass").and_then(Json::as_str), Some("slms"));
        assert_eq!(obj.get("transformed"), Some(&Json::Bool(true)));
        let report = obj.get("report").unwrap();
        assert_eq!(report.get("ii").and_then(Json::as_i64), Some(1));
        let trace = obj.get("trace").and_then(Json::as_arr).unwrap();
        assert!(!trace.is_empty());

        // hard failures still produce exactly one stable line
        let failed = explain_source_json("int x; x = ;", &plan, &cfg);
        let obj = Json::parse(failed.lines().next().unwrap()).unwrap();
        assert!(obj
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("parse:"));
    }

    #[test]
    fn explain_all_json_lines_all_parse_and_name_workloads() {
        let plan = PassPlan::slms_only();
        let cfg = SlmsConfig::default();
        let text = explain_all_json(&plan, &cfg);
        assert!(!text.is_empty());
        for line in text.lines() {
            let obj = Json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert!(obj.get("workload").and_then(Json::as_str).is_some());
            assert!(obj.get("loop").is_some() || obj.get("error").is_some());
        }
    }

    #[test]
    fn explain_survives_hard_plan_failure() {
        let plan = PassPlan::parse("fuse:0+7,slms").unwrap();
        let cfg = SlmsConfig::default();
        let text = explain_source(
            "float A[8]; int i; for (i = 0; i < 4; i++) A[i] = 1.0;",
            &plan,
            &cfg,
        );
        assert!(text.contains("plan failed: pass fuse:0+7"), "{text}");
    }
}
