//! Rendering of pass-plan decision traces — the engine behind `slc explain`.
//!
//! The paper's SLC is an interactive tool: the user applies a
//! transformation and inspects what happened. `slc explain` is the batch
//! form of that inspection — it runs a [`PassPlan`](crate::PassPlan) over a
//! program and prints, for every loop, the full decision trace: the §4
//! filter verdict with its measured memory-ref ratio, each MII /
//! decomposition round, and the final II (or the structured reason the
//! loop was left alone).

use crate::passes::{PassManager, PassPlan};
use slc_ast::parse_program;
use slc_core::SlmsConfig;
use slc_workloads::Workload;

/// Run `plan` over `src` and render the per-loop decision trace. On a hard
/// failure (parse error, structural transform error) the rendered text
/// reports it — `explain` never panics on a valid plan over any workload.
pub fn explain_source(src: &str, plan: &PassPlan, cfg: &SlmsConfig) -> String {
    let prog = match parse_program(src) {
        Ok(p) => p,
        Err(e) => return format!("plan: {plan}\nparse error: {e}\n"),
    };
    let pm = PassManager::new(cfg.clone());
    match pm.run(&prog, plan) {
        Ok((out, sink)) => {
            let mut text = format!("plan: {plan}\n");
            text.push_str(&sink.render());
            let total: usize = sink.all_outcomes().count();
            let transformed: usize = sink.all_outcomes().filter(|o| o.result.is_ok()).count();
            let n_passes = sink.passes.len();
            text.push_str(&format!(
                "summary: {n_passes} pass(es), {transformed}/{total} loop(s) pipelined, \
                 {} statement(s) in output\n",
                out.stmts.len()
            ));
            text
        }
        Err(e) => format!("plan: {plan}\nplan failed: {e}\n"),
    }
}

/// Render the decision trace of one named workload.
pub fn explain_workload(w: &Workload, plan: &PassPlan, cfg: &SlmsConfig) -> String {
    format!(
        "═══ {} [{}] ═══\n{}",
        w.name,
        w.suite,
        explain_source(w.source, plan, cfg)
    )
}

/// Render traces for every workload in every suite (the `slc explain --all`
/// mode, and the guarantee the integration tests pin down: no loop in any
/// suite panics the explainer).
pub fn explain_all(plan: &PassPlan, cfg: &SlmsConfig) -> String {
    let mut out = String::new();
    for w in slc_workloads::all() {
        out.push_str(&explain_workload(&w, plan, cfg));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_reports_filter_ratio_or_schedule() {
        let plan = PassPlan::slms_only();
        let cfg = SlmsConfig::default();
        let text = explain_source(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
            &plan,
            &cfg,
        );
        assert!(text.contains("── pass slms ──"), "{text}");
        assert!(text.contains("scheduled: II = 1"), "{text}");
        assert!(
            text.contains("summary: 1 pass(es), 1/1 loop(s) pipelined"),
            "{text}"
        );
    }

    #[test]
    fn explain_survives_hard_plan_failure() {
        let plan = PassPlan::parse("fuse:0+7,slms").unwrap();
        let cfg = SlmsConfig::default();
        let text = explain_source(
            "float A[8]; int i; for (i = 0; i < 4; i++) A[i] = 1.0;",
            &plan,
            &cfg,
        );
        assert!(text.contains("plan failed: pass fuse:0+7"), "{text}");
    }
}
