//! The experiment harness: run a workload original-vs-SLMS on a machine
//! with a compiler personality and report paper-style rows.

use crate::compile::{compile, CompileResult, CompilerKind};
use slc_ast::Program;
use slc_core::{slms_program, SlmsConfig};
use slc_machine::lower::LowerError;
use slc_machine::mach::MachineDesc;
use slc_sim::cycle::{simulate, SimResult};
use slc_sim::power::{EnergyModel, PowerReport};
use slc_workloads::Workload;

/// Everything measured for one (program, machine, compiler) combination.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// raw simulation result
    pub sim: SimResult,
    /// energy model evaluation
    pub power: PowerReport,
    /// compile-time facts per innermost loop
    pub compile: CompileResult,
}

impl Metrics {
    /// cycles, shorthand
    pub fn cycles(&self) -> u64 {
        self.sim.cycles
    }
}

/// Compile and simulate one program.
pub fn run(prog: &Program, m: &MachineDesc, kind: CompilerKind) -> Result<Metrics, LowerError> {
    let c = compile(prog, m, kind)?;
    let sim = simulate(&c.compiled, m);
    let power = EnergyModel::default().report(&sim);
    Ok(Metrics {
        sim,
        power,
        compile: c,
    })
}

/// One row of a paper figure: a loop and its SLMS speedup.
#[derive(Debug, Clone)]
pub struct LoopRow {
    /// workload name
    pub name: &'static str,
    /// suite label
    pub suite: String,
    /// original cycles
    pub base_cycles: u64,
    /// SLMS'd cycles
    pub slms_cycles: u64,
    /// speedup = base / slms (>1 is a win)
    pub speedup: f64,
    /// power ratio = base_energy / slms_energy (>1 = SLMS saves energy)
    pub power_ratio: f64,
    /// did SLMS transform the loop at all?
    pub transformed: bool,
    /// source-level II when transformed
    pub slms_ii: Option<i64>,
    /// machine-level MS applied to the base compile?
    pub base_ms: bool,
    /// machine-level MS applied after SLMS?
    pub slms_ms: bool,
    /// bundles per iteration, base vs SLMS (innermost loop, first loop)
    pub base_bundles: usize,
    /// bundles per iteration after SLMS
    pub slms_bundles: usize,
}

/// Run one workload through original-vs-SLMS and produce a figure row.
pub fn measure_workload(
    w: &Workload,
    m: &MachineDesc,
    kind: CompilerKind,
    slms_cfg: &SlmsConfig,
) -> Result<LoopRow, LowerError> {
    let orig = w.program();
    let (slmsed, outcomes) = slms_program(&orig, slms_cfg);
    let transformed = outcomes.iter().any(|o| o.result.is_ok());
    let slms_ii = outcomes
        .iter()
        .find_map(|o| o.result.as_ref().ok().map(|r| r.ii));

    let base = run(&orig, m, kind)?;
    let after = run(&slmsed, m, kind)?;
    let pick = |c: &CompileResult| {
        c.loops
            .iter()
            .max_by_key(|l| l.trips)
            .map(|l| (l.bundles_per_iter, l.ms_applied))
            .unwrap_or((0, false))
    };
    let (base_bundles, base_ms) = pick(&base.compile);
    let (slms_bundles, slms_ms) = pick(&after.compile);
    Ok(LoopRow {
        name: w.name,
        suite: w.suite.to_string(),
        base_cycles: base.cycles(),
        slms_cycles: after.cycles(),
        speedup: base.cycles() as f64 / after.cycles().max(1) as f64,
        power_ratio: base.power.energy / after.power.energy.max(1e-12),
        transformed,
        slms_ii,
        base_ms,
        slms_ms,
        base_bundles,
        slms_bundles,
    })
}

/// Run a whole suite through the batch engine (cells evaluated
/// concurrently, shared artifacts memoized); failures to lower (none
/// expected in the shipped workloads) panic, as the serial path did. The
/// rows are bit-identical to mapping [`measure_workload`] over the suite —
/// `tests/batch_differential.rs` holds the engine to that.
pub fn measure_suite(
    ws: &[Workload],
    m: &MachineDesc,
    kind: CompilerKind,
    slms_cfg: &SlmsConfig,
) -> Vec<LoopRow> {
    measure_suite_on(&crate::batch::BatchEngine::new(), ws, m, kind, slms_cfg)
}

/// [`measure_suite`] against a caller-owned engine, so several suites (the
/// figure harness runs a dozen overlapping ones) share one artifact cache.
pub fn measure_suite_on(
    engine: &crate::batch::BatchEngine,
    ws: &[Workload],
    m: &MachineDesc,
    kind: CompilerKind,
    slms_cfg: &SlmsConfig,
) -> Vec<LoopRow> {
    let cfg = crate::batch::BatchConfig {
        workloads: ws.to_vec(),
        machines: vec![m.clone()],
        compilers: vec![kind],
        slms: slms_cfg.clone(),
        plan: crate::passes::PassPlan::slms_only(),
        threads: None,
        verify: false,
    };
    let report = engine.run(&cfg);
    rows_from_report(ws, &report)
}

/// Pair up the `orig`/`slms` cells of a single-machine single-personality
/// batch report into figure rows.
pub(crate) fn rows_from_report(
    ws: &[Workload],
    report: &crate::batch::BatchReport,
) -> Vec<LoopRow> {
    assert_eq!(
        report.cells.len(),
        2 * ws.len(),
        "one machine × one personality"
    );
    ws.iter()
        .enumerate()
        .map(|(i, w)| {
            let metrics = |cell: &crate::batch::CellResult| {
                cell.outcome
                    .clone()
                    .unwrap_or_else(|e| panic!("workload {} failed: {e}", w.name))
            };
            let base = metrics(&report.cells[2 * i]);
            let after = metrics(&report.cells[2 * i + 1]);
            let pick = |loops: &[crate::compile::LoopInfo]| {
                loops
                    .iter()
                    .max_by_key(|l| l.trips)
                    .map(|l| (l.bundles_per_iter, l.ms_applied))
                    .unwrap_or((0, false))
            };
            let (base_bundles, base_ms) = pick(&base.loops);
            let (slms_bundles, slms_ms) = pick(&after.loops);
            LoopRow {
                name: w.name,
                suite: w.suite.to_string(),
                base_cycles: base.cycles,
                slms_cycles: after.cycles,
                speedup: base.cycles as f64 / after.cycles.max(1) as f64,
                power_ratio: base.energy / after.energy.max(1e-12),
                transformed: after.transformed,
                slms_ii: after.slms_ii,
                base_ms,
                slms_ms,
                base_bundles,
                slms_bundles,
            }
        })
        .collect()
}

/// Figure-16 style gap closure: how much of the (weak → optimizing) gap
/// does SLMS-on-weak recover?
#[derive(Debug, Clone)]
pub struct GapRow {
    /// workload name
    pub name: &'static str,
    /// weak-compiler cycles
    pub weak: u64,
    /// optimizing-compiler cycles
    pub opt: u64,
    /// SLMS + weak-compiler cycles
    pub slms_weak: u64,
    /// fraction of the gap closed (1.0 = all of it, may exceed 1)
    pub gap_closed: f64,
}

/// Measure gap closure for one workload.
pub fn measure_gap(
    w: &Workload,
    m: &MachineDesc,
    slms_cfg: &SlmsConfig,
) -> Result<GapRow, LowerError> {
    let orig = w.program();
    let (slmsed, _) = slms_program(&orig, slms_cfg);
    let weak = run(&orig, m, CompilerKind::Weak)?.cycles();
    let opt = run(&orig, m, CompilerKind::Optimizing)?.cycles();
    let slms_weak = run(&slmsed, m, CompilerKind::Weak)?.cycles();
    let gap = weak.saturating_sub(opt) as f64;
    let closed = weak.saturating_sub(slms_weak) as f64;
    Ok(GapRow {
        name: w.name,
        weak,
        opt,
        slms_weak,
        gap_closed: if gap > 0.0 { closed / gap } else { 0.0 },
    })
}

/// Render rows as an aligned text table (the form the harness prints and
/// EXPERIMENTS.md records).
pub fn format_rows(title: &str, rows: &[LoopRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>8} {:>8} {:>6} {:>8} {:>8}\n",
        "loop", "base(cyc)", "slms(cyc)", "speedup", "power×", "II", "base-MS", "slms-MS"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>8.3} {:>8.3} {:>6} {:>8} {:>8}\n",
            r.name,
            r.base_cycles,
            r.slms_cycles,
            r.speedup,
            r.power_ratio,
            r.slms_ii.map_or("-".into(), |v| v.to_string()),
            if r.base_ms { "yes" } else { "no" },
            if r.slms_ms { "yes" } else { "no" },
        ));
    }
    let wins = rows.iter().filter(|r| r.speedup > 1.0).count();
    let gm: f64 = if rows.is_empty() {
        1.0
    } else {
        (rows.iter().map(|r| r.speedup.max(1e-9).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    out.push_str(&format!(
        "-- {} of {} loops speed up; geometric-mean speedup {:.3}\n",
        wins,
        rows.len(),
        gm
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_core::SlmsConfig;
    use slc_sim::presets::itanium2;
    use slc_workloads::paper_examples;

    #[test]
    fn dot_product_speeds_up_on_weak_vliw() {
        let w = paper_examples()
            .into_iter()
            .find(|w| w.name == "intro_dot")
            .unwrap();
        let row =
            measure_workload(&w, &itanium2(), CompilerKind::Weak, &SlmsConfig::default()).unwrap();
        assert!(row.transformed);
        assert!(
            row.speedup > 1.0,
            "expected speedup on weak VLIW, got {row:?}"
        );
    }

    #[test]
    fn kernel8_like_loop_wins_with_list_scheduling() {
        let w = slc_workloads::livermore()
            .into_iter()
            .find(|w| w.name == "kernel8_adi")
            .unwrap();
        let row = measure_workload(
            &w,
            &itanium2(),
            CompilerKind::Optimizing,
            &SlmsConfig::default(),
        )
        .unwrap();
        assert!(row.transformed, "{row:?}");
        assert!(row.speedup > 1.0, "{row:?}");
        // fewer bundles per iteration, like the paper's 23 → 16
        assert!(row.slms_bundles < row.base_bundles, "{row:?}");
    }

    #[test]
    fn gap_closure_positive_for_dot() {
        let w = paper_examples()
            .into_iter()
            .find(|w| w.name == "intro_dot")
            .unwrap();
        let g = measure_gap(&w, &itanium2(), &SlmsConfig::default()).unwrap();
        assert!(g.weak >= g.opt);
        assert!(g.gap_closed > 0.0, "{g:?}");
    }
}
