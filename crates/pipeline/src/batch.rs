//! The parallel batch experiment engine.
//!
//! The paper's evaluation is a cross product — every workload × machine ×
//! final-compiler personality × {original, SLMS} (§9, figs. 14–22). This
//! module evaluates that matrix concurrently with memoization of every
//! expensive intermediate artifact:
//!
//! * **parse** — source text → AST, keyed by source fingerprint;
//! * **slms** — AST → transformed AST + per-loop outcomes for the
//!   configured [`PassPlan`] (this is where the DDG construction and the
//!   MII/difMin iteration happen), keyed by (program, *plan*) fingerprint —
//!   the plan fingerprint covers every pass, its arguments and the
//!   resolved SLMS config, and the artifact is shared by every
//!   machine/personality;
//! * **lir** — AST → lowered LIR, machine-independent, shared likewise;
//! * **compile** — LIR → schedules + per-loop compile facts, keyed by
//!   (program, machine, personality);
//! * **sim** — compiled program → cycle-level simulation, same key.
//!
//! **Determinism invariants** (asserted by `tests/batch_differential.rs`
//! and the property tests):
//!
//! 1. cell results are bit-identical to the serial
//!    `compile` + `simulate` path;
//! 2. the canonical JSON report is byte-identical across runs and thread
//!    counts — cells appear in matrix-enumeration order, every artifact is
//!    computed exactly once per distinct key (so cache counters are
//!    schedule-independent), and wall-clock timing lives in a separate
//!    non-deterministic sidecar ([`BatchReport::timing_json`]);
//! 3. a failing cell (parse, plan or lowering error) degrades to a
//!    recorded per-cell error while every other cell still completes.

use crate::cache::{CacheReport, KeyedStore};
use crate::compile::{compile_lir, CompilerKind, LoopInfo};
use crate::json::Json;
use crate::par::{effective_threads, par_map_indexed};
use crate::passes::{PassManager, PassPlan};
use slc_ast::{parse_program, Program};
use slc_core::{LoopOutcome, SlmsConfig};
use slc_machine::ir::LirProgram;
use slc_machine::lower::{lower_program, LowerError};
use slc_machine::mach::MachineDesc;
use slc_sim::cycle::{simulate_with, FfStats, SimFidelity, SimResult};
use slc_sim::power::EnergyModel;
use slc_workloads::{enumerate_matrix, MatrixCell, Variant, Workload};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema tag written into every report.
pub const REPORT_SCHEMA: &str = "slc-batch-report-v1";

impl CompilerKind {
    /// Every personality, in canonical report order.
    pub const ALL: [CompilerKind; 3] = [
        CompilerKind::Weak,
        CompilerKind::Optimizing,
        CompilerKind::OptimizingMs,
    ];

    /// Short label used in reports and CLI flags (`weak` / `opt` / `ms`).
    pub fn label(&self) -> &'static str {
        match self {
            CompilerKind::Weak => "weak",
            CompilerKind::Optimizing => "opt",
            CompilerKind::OptimizingMs => "ms",
        }
    }

    /// Stable code for fingerprinting.
    fn code(&self) -> u64 {
        match self {
            CompilerKind::Weak => 0,
            CompilerKind::Optimizing => 1,
            CompilerKind::OptimizingMs => 2,
        }
    }
}

/// What to run: the axes of the experiment matrix plus engine knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// workload axis
    pub workloads: Vec<Workload>,
    /// machine axis
    pub machines: Vec<MachineDesc>,
    /// personality axis
    pub compilers: Vec<CompilerKind>,
    /// SLMS configuration for the `slms` variant of every cell
    pub slms: SlmsConfig,
    /// pass plan the `slms` variant runs (default: `slms` alone; the §6
    /// ordering studies swap in plans like `fuse:0+1,slms`)
    pub plan: PassPlan,
    /// worker threads (`None` = all available cores)
    pub threads: Option<usize>,
    /// statically verify every `slms` pass and record per-workload
    /// verdicts in the timing sidecar (the canonical report is unaffected)
    pub verify: bool,
}

impl BatchConfig {
    /// The paper's full matrix: every workload × the four machine presets
    /// × the three personalities × {original, SLMS}.
    pub fn full_matrix() -> Self {
        use slc_sim::presets::{arm7tdmi, itanium2, pentium, power4};
        BatchConfig {
            workloads: slc_workloads::all(),
            machines: vec![itanium2(), pentium(), power4(), arm7tdmi()],
            compilers: CompilerKind::ALL.to_vec(),
            slms: SlmsConfig::default(),
            plan: PassPlan::slms_only(),
            threads: None,
            verify: false,
        }
    }

    /// Number of cells this config enumerates.
    pub fn n_cells(&self) -> usize {
        self.workloads.len() * self.machines.len() * self.compilers.len() * Variant::ALL.len()
    }
}

/// Identity of one matrix cell in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellId {
    /// workload name
    pub workload: String,
    /// suite label
    pub suite: String,
    /// machine name
    pub machine: String,
    /// personality label
    pub compiler: &'static str,
    /// variant label (`orig` / `slms`)
    pub variant: &'static str,
}

/// Everything measured for one completed cell.
#[derive(Debug, Clone)]
pub struct CellMetrics {
    /// simulated cycles
    pub cycles: u64,
    /// dynamic operations executed
    pub ops: u64,
    /// L1 hits
    pub l1_hits: u64,
    /// L1 misses
    pub l1_misses: u64,
    /// dynamic spill accesses
    pub spill_accesses: u64,
    /// modeled energy
    pub energy: f64,
    /// did SLMS transform at least one loop (always false for `orig`)
    pub transformed: bool,
    /// source-level II of the first transformed loop
    pub slms_ii: Option<i64>,
    /// per-innermost-loop compile facts
    pub loops: Vec<LoopInfo>,
}

/// One row of the report: identity plus outcome. Failures carry a
/// stage-prefixed message (`parse: …` / `plan: …` / `lower: …`) instead of
/// aborting the batch.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// which cell
    pub id: CellId,
    /// metrics, or the degradation error
    pub outcome: Result<CellMetrics, String>,
}

/// Static-verification outcome of one workload's `slms` pass(es), as
/// recorded when [`BatchConfig::verify`] gates the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifySummary {
    /// workload name
    pub workload: String,
    /// loops whose emission was proven correct
    pub verified: usize,
    /// loops skipped (untransformed or symbolic-guarded)
    pub skipped: usize,
    /// total obligations discharged
    pub obligations: usize,
    /// total violations found (0 = clean)
    pub violations: usize,
}

/// Wall clock and run count of one pass across every plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassTiming {
    /// plan-syntax pass name (`slms`, `fuse:0+1`)
    pub pass: String,
    /// cumulative wall time inside the pass
    pub ns: u64,
    /// times the pass executed (cache hits do not re-run passes)
    pub runs: u64,
}

/// Wall-clock accounting (non-deterministic; reported separately from the
/// canonical JSON).
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// worker threads used
    pub threads: usize,
    /// end-to-end wall time
    pub wall_ns: u64,
    /// time inside parse misses
    pub parse_ns: u64,
    /// time inside plan misses (all passes, SLMS included)
    pub slms_ns: u64,
    /// time inside lowering misses
    pub lower_ns: u64,
    /// time inside scheduling misses
    pub compile_ns: u64,
    /// time inside simulation misses
    pub sim_ns: u64,
    /// per-pass breakdown of `slms_ns`, sorted by pass name
    pub passes: Vec<PassTiming>,
    /// per-workload static-verification verdicts, sorted by workload name
    /// (empty unless [`BatchConfig::verify`] was set)
    pub verify: Vec<VerifySummary>,
    /// steady-state fast-forward counters accumulated over simulation
    /// misses (deterministic per config, but reported in the sidecar next
    /// to the wall-clock they explain)
    pub steady: FfStats,
}

/// Result of one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// per-cell rows in matrix-enumeration order
    pub cells: Vec<CellResult>,
    /// cache statistics (cumulative over the engine's lifetime)
    pub cache: CacheReport,
    /// wall-clock accounting for this run
    pub timing: TimingReport,
}

impl BatchReport {
    /// Cells that completed.
    pub fn completed(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_ok()).count()
    }

    /// Cells that degraded to an error.
    pub fn failed(&self) -> usize {
        self.cells.len() - self.completed()
    }

    /// Total static-verification violations across workloads (0 unless the
    /// run was gated with [`BatchConfig::verify`] and something is wrong).
    pub fn verify_violations(&self) -> usize {
        self.timing.verify.iter().map(|v| v.violations).sum()
    }

    /// The canonical report: deterministic — byte-identical across runs
    /// and thread counts for the same `BatchConfig` and engine history.
    pub fn to_json(&self) -> String {
        let cells: Vec<Json> = self.cells.iter().map(cell_json).collect();
        Json::obj()
            .field("schema", REPORT_SCHEMA)
            .field("cells_total", self.cells.len())
            .field("cells_completed", self.completed())
            .field("cells_failed", self.failed())
            .field(
                "cache",
                Json::obj()
                    .field("parse", store_json(self.cache.parse))
                    .field("slms", store_json(self.cache.slms))
                    .field("lir", store_json(self.cache.lir))
                    .field("compile", store_json(self.cache.compile))
                    .field("sim", store_json(self.cache.sim)),
            )
            .field("cells", Json::Arr(cells))
            .to_pretty()
    }

    /// Wall-clock sidecar (not deterministic). v2 adds the per-pass
    /// breakdown of the transformation stage.
    pub fn timing_json(&self) -> String {
        let t = &self.timing;
        let mut passes = Json::obj();
        for p in &t.passes {
            passes = passes.field(
                p.pass.as_str(),
                Json::obj()
                    .field("ms", p.ns as f64 / 1e6)
                    .field("runs", p.runs),
            );
        }
        Json::obj()
            .field("schema", "slc-batch-timing-v2")
            .field("threads", t.threads)
            .field("wall_ms", t.wall_ns as f64 / 1e6)
            .field(
                "stage_ms",
                Json::obj()
                    .field("parse", t.parse_ns as f64 / 1e6)
                    .field("slms", t.slms_ns as f64 / 1e6)
                    .field("lower", t.lower_ns as f64 / 1e6)
                    .field("compile", t.compile_ns as f64 / 1e6)
                    .field("simulate", t.sim_ns as f64 / 1e6),
            )
            .field("pass_ms", passes)
            .field("verify", {
                let mut verify = Json::obj();
                for v in &t.verify {
                    verify = verify.field(
                        v.workload.as_str(),
                        Json::obj()
                            .field("verified_loops", v.verified)
                            .field("skipped_loops", v.skipped)
                            .field("obligations", v.obligations)
                            .field("violations", v.violations),
                    );
                }
                verify
            })
            .field(
                "sim_steady_state",
                Json::obj()
                    .field("fast_loops", t.steady.fast_loops)
                    .field("fallback_loops", t.steady.fallback_loops)
                    .field("ff_hits", t.steady.ff_hits)
                    .field("ff_misses", t.steady.ff_misses)
                    .field("trips_total", t.steady.trips_total)
                    .field("trips_skipped", t.steady.trips_skipped),
            )
            .to_pretty()
    }

    /// Simulator throughput baseline (`BENCH_sim.json`): the simulate
    /// stage's wall clock against the trip counts it covered, plus the
    /// steady-state fast-forward counters that explain the rate. Derived
    /// from the v2 timing sidecar, so it is wall-clock data — a baseline to
    /// compare against, not part of the canonical deterministic report.
    pub fn sim_bench_json(&self) -> String {
        let t = &self.timing;
        let sim_s = t.sim_ns as f64 / 1e9;
        let trips_per_sec = if sim_s > 0.0 {
            t.steady.trips_total as f64 / sim_s
        } else {
            0.0
        };
        Json::obj()
            .field("schema", "slc-sim-bench-v1")
            .field("threads", t.threads)
            .field("simulate_ms", t.sim_ns as f64 / 1e6)
            .field("trips_total", t.steady.trips_total)
            .field("trips_per_sec", trips_per_sec)
            .field(
                "steady_state",
                Json::obj()
                    .field("fast_loops", t.steady.fast_loops)
                    .field("fallback_loops", t.steady.fallback_loops)
                    .field("ff_hits", t.steady.ff_hits)
                    .field("ff_misses", t.steady.ff_misses)
                    .field("trips_skipped", t.steady.trips_skipped),
            )
            .to_pretty()
    }

    /// Short human summary (cells, failures, hit rate, wall time).
    pub fn summary(&self) -> String {
        format!(
            "{} cells ({} ok, {} failed) on {} threads in {:.1} ms; \
             cache hit-rate {:.1}% (slms {}/{}, lir {}/{}, compile {}/{}, sim {}/{})",
            self.cells.len(),
            self.completed(),
            self.failed(),
            self.timing.threads,
            self.timing.wall_ns as f64 / 1e6,
            self.cache.overall_hit_rate() * 100.0,
            self.cache.slms.hits,
            self.cache.slms.hits + self.cache.slms.misses,
            self.cache.lir.hits,
            self.cache.lir.hits + self.cache.lir.misses,
            self.cache.compile.hits,
            self.cache.compile.hits + self.cache.compile.misses,
            self.cache.sim.hits,
            self.cache.sim.hits + self.cache.sim.misses,
        )
    }
}

fn store_json(s: crate::cache::StoreStats) -> Json {
    Json::obj().field("hits", s.hits).field("misses", s.misses)
}

fn loop_json(l: &LoopInfo) -> Json {
    Json::obj()
        .field("var", l.var.as_str())
        .field("trips", l.trips)
        .field("bundles_per_iter", l.bundles_per_iter)
        .field("ms_applied", l.ms_applied)
        .field("ii", l.ii)
        .field("stages", l.stages)
        .field("reg_pressure", l.reg_pressure)
        .field("spilled", l.spilled)
}

fn cell_json(c: &CellResult) -> Json {
    let base = Json::obj()
        .field("workload", c.id.workload.as_str())
        .field("suite", c.id.suite.as_str())
        .field("machine", c.id.machine.as_str())
        .field("compiler", c.id.compiler)
        .field("variant", c.id.variant);
    match &c.outcome {
        Err(e) => base.field("ok", false).field("error", e.as_str()),
        Ok(m) => base
            .field("ok", true)
            .field("cycles", m.cycles)
            .field("ops", m.ops)
            .field("l1_hits", m.l1_hits)
            .field("l1_misses", m.l1_misses)
            .field("spill_accesses", m.spill_accesses)
            .field("energy", m.energy)
            .field("transformed", m.transformed)
            .field("slms_ii", m.slms_ii)
            .field("loops", Json::Arr(m.loops.iter().map(loop_json).collect())),
    }
}

type ParseArtifact = Result<(Program, u64), String>;
/// Transformed program + all per-loop outcomes across the plan + program
/// fingerprint — or the plan's structural failure, which degrades the cell.
type PlanArtifact = Result<(Program, Vec<LoopOutcome>, u64), String>;

/// The engine: the artifact stores plus per-stage timing accumulators.
/// Create once and call [`BatchEngine::run`] repeatedly to share the cache
/// across runs (a second identical run is answered almost entirely from
/// the cache).
#[derive(Default)]
pub struct BatchEngine {
    parse: KeyedStore<ParseArtifact>,
    slms: KeyedStore<PlanArtifact>,
    lir: KeyedStore<Result<LirProgram, LowerError>>,
    compile: KeyedStore<Result<crate::compile::CompileResult, LowerError>>,
    sim: KeyedStore<SimResult>,
    parse_ns: AtomicU64,
    slms_ns: AtomicU64,
    lower_ns: AtomicU64,
    compile_ns: AtomicU64,
    sim_ns: AtomicU64,
    pass_ns: Mutex<BTreeMap<String, (u64, u64)>>,
    /// per-workload verification verdicts (filled only when the config
    /// gates the run; keyed by workload name so repeat runs overwrite)
    verify_stats: Mutex<BTreeMap<String, VerifySummary>>,
    /// steady-state fast-forward counters (six lanes matching `FfStats`)
    ff: [AtomicU64; 6],
}

fn timed<T>(slot: &AtomicU64, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    slot.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

impl BatchEngine {
    /// Fresh engine with empty caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot cumulative cache statistics.
    pub fn cache_report(&self) -> CacheReport {
        CacheReport {
            parse: self.parse.stats(),
            slms: self.slms.stats(),
            lir: self.lir.stats(),
            compile: self.compile.stats(),
            sim: self.sim.stats(),
        }
    }

    /// Evaluate the whole matrix. Cells run concurrently; the result
    /// vector is in matrix-enumeration order regardless of thread count.
    pub fn run(&self, cfg: &BatchConfig) -> BatchReport {
        let cells = enumerate_matrix(cfg.workloads.len(), cfg.machines.len(), cfg.compilers.len());
        let threads = effective_threads(cfg.threads, cells.len());
        let t0 = Instant::now();
        let results = par_map_indexed(cells.len(), threads, |i| self.eval_cell(cfg, cells[i]));
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let passes = self
            .pass_ns
            .lock()
            .unwrap()
            .iter()
            .map(|(pass, &(ns, runs))| PassTiming {
                pass: pass.clone(),
                ns,
                runs,
            })
            .collect();
        BatchReport {
            cells: results,
            cache: self.cache_report(),
            timing: TimingReport {
                threads,
                wall_ns,
                parse_ns: self.parse_ns.load(Ordering::Relaxed),
                slms_ns: self.slms_ns.load(Ordering::Relaxed),
                lower_ns: self.lower_ns.load(Ordering::Relaxed),
                compile_ns: self.compile_ns.load(Ordering::Relaxed),
                sim_ns: self.sim_ns.load(Ordering::Relaxed),
                passes,
                verify: self
                    .verify_stats
                    .lock()
                    .unwrap()
                    .values()
                    .cloned()
                    .collect(),
                steady: FfStats {
                    fast_loops: self.ff[0].load(Ordering::Relaxed),
                    fallback_loops: self.ff[1].load(Ordering::Relaxed),
                    ff_hits: self.ff[2].load(Ordering::Relaxed),
                    ff_misses: self.ff[3].load(Ordering::Relaxed),
                    trips_total: self.ff[4].load(Ordering::Relaxed),
                    trips_skipped: self.ff[5].load(Ordering::Relaxed),
                },
            },
        }
    }

    fn eval_cell(&self, cfg: &BatchConfig, cell: MatrixCell) -> CellResult {
        let w = &cfg.workloads[cell.workload];
        let m = &cfg.machines[cell.machine];
        let kind = cfg.compilers[cell.compiler];
        let id = CellId {
            workload: w.name.to_string(),
            suite: w.suite.to_string(),
            machine: m.name.clone(),
            compiler: kind.label(),
            variant: cell.variant.label(),
        };

        // 1. parse (cached per source text)
        let src_fp = slc_analysis::fingerprint_str(w.source);
        let parsed = self.parse.get_or_compute(src_fp, || {
            timed(&self.parse_ns, || {
                parse_program(w.source)
                    .map(|p| {
                        let fp = slc_analysis::program_fingerprint(&p);
                        (p, fp)
                    })
                    .map_err(|e| e.to_string())
            })
        });
        let (orig_prog, orig_fp) = match parsed.as_ref() {
            Ok(x) => x,
            Err(e) => {
                return CellResult {
                    id,
                    outcome: Err(format!("parse: {e}")),
                }
            }
        };

        // 2. pass plan (cached per program × plan fingerprint, shared
        //    across machines and personalities)
        let plan_art: Option<Arc<PlanArtifact>> = match cell.variant {
            Variant::Original => None,
            Variant::Slms => {
                // The verify flag joins the key only when set, so default
                // runs keep their historical cache behaviour (and the
                // canonical report stays byte-identical).
                let key = if cfg.verify {
                    slc_analysis::fingerprint::combine(&[
                        *orig_fp,
                        cfg.plan.fingerprint(&cfg.slms),
                        1,
                    ])
                } else {
                    slc_analysis::fingerprint::combine(&[*orig_fp, cfg.plan.fingerprint(&cfg.slms)])
                };
                Some(self.slms.get_or_compute(key, || {
                    timed(&self.slms_ns, || {
                        let pm = PassManager::new(cfg.slms.clone());
                        match pm.run_with_verify(orig_prog, &cfg.plan, cfg.verify) {
                            Ok((p, sink, verdicts)) => {
                                if cfg.verify {
                                    let mut sum = VerifySummary {
                                        workload: w.name.to_string(),
                                        verified: 0,
                                        skipped: 0,
                                        obligations: 0,
                                        violations: 0,
                                    };
                                    for vd in &verdicts {
                                        sum.obligations += vd.obligation_count();
                                        sum.violations += vd.violation_count();
                                        for l in &vd.loops {
                                            match l.verdict {
                                                slc_verify::LoopVerdict::Verified { .. } => {
                                                    sum.verified += 1
                                                }
                                                slc_verify::LoopVerdict::Skipped { .. } => {
                                                    sum.skipped += 1
                                                }
                                                slc_verify::LoopVerdict::Violated { .. } => {}
                                            }
                                        }
                                    }
                                    self.verify_stats
                                        .lock()
                                        .unwrap()
                                        .insert(sum.workload.clone(), sum);
                                }
                                let mut per_pass = self.pass_ns.lock().unwrap();
                                for pd in &sink.passes {
                                    let slot = per_pass.entry(pd.pass.clone()).or_insert((0, 0));
                                    slot.0 += pd.elapsed_ns;
                                    slot.1 += 1;
                                }
                                drop(per_pass);
                                let fp = slc_analysis::program_fingerprint(&p);
                                let outcomes = sink.all_outcomes().cloned().collect::<Vec<_>>();
                                Ok((p, outcomes, fp))
                            }
                            Err(e) => Err(e.to_string()),
                        }
                    })
                }))
            }
        };
        let plan_art = match plan_art.as_deref() {
            None => None,
            Some(Ok(x)) => Some(x),
            Some(Err(e)) => {
                return CellResult {
                    id,
                    outcome: Err(format!("plan: {e}")),
                }
            }
        };
        let (prog, prog_fp, transformed, slms_ii) = match plan_art {
            None => (orig_prog, *orig_fp, false, None),
            Some((p, outcomes, fp)) => (
                p,
                *fp,
                outcomes.iter().any(|o| o.result.is_ok()),
                outcomes
                    .iter()
                    .find_map(|o| o.result.as_ref().ok().map(|r| r.ii)),
            ),
        };

        // 3. schedule (cached per program × machine × personality; lowering
        //    cached separately because it is machine-independent)
        let compile_key =
            slc_analysis::fingerprint::combine(&[prog_fp, m.fingerprint(), kind.code()]);
        let compiled = self.compile.get_or_compute(compile_key, || {
            let lir = self
                .lir
                .get_or_compute(prog_fp, || timed(&self.lower_ns, || lower_program(prog)));
            match lir.as_ref() {
                Ok(l) => Ok(timed(&self.compile_ns, || compile_lir(l, m, kind))),
                Err(e) => Err(e.clone()),
            }
        });
        let comp = match compiled.as_ref() {
            Ok(c) => c,
            Err(e) => {
                return CellResult {
                    id,
                    outcome: Err(format!("lower: {e}")),
                }
            }
        };

        // 4. simulate (cached under the same key as the schedule)
        let sim = self.sim.get_or_compute(compile_key, || {
            timed(&self.sim_ns, || {
                let out = simulate_with(&comp.compiled, m, SimFidelity::Fast);
                for (slot, v) in self.ff.iter().zip([
                    out.ff.fast_loops,
                    out.ff.fallback_loops,
                    out.ff.ff_hits,
                    out.ff.ff_misses,
                    out.ff.trips_total,
                    out.ff.trips_skipped,
                ]) {
                    slot.fetch_add(v, Ordering::Relaxed);
                }
                out.result
            })
        });
        let power = EnergyModel::default().report(&sim);

        CellResult {
            id,
            outcome: Ok(CellMetrics {
                cycles: sim.cycles,
                ops: sim.total_ops(),
                l1_hits: sim.cache.hits,
                l1_misses: sim.cache.misses,
                spill_accesses: sim.spill_accesses,
                energy: power.energy,
                transformed,
                slms_ii,
                loops: comp.loops.clone(),
            }),
        }
    }
}

/// One-shot convenience: fresh engine, one run.
pub fn run_batch(cfg: &BatchConfig) -> BatchReport {
    BatchEngine::new().run(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_sim::presets::itanium2;
    use slc_workloads::Suite;

    fn tiny_cfg() -> BatchConfig {
        BatchConfig {
            workloads: slc_workloads::paper_examples(),
            machines: vec![itanium2()],
            compilers: vec![CompilerKind::Optimizing],
            slms: SlmsConfig::default(),
            plan: PassPlan::slms_only(),
            threads: Some(2),
            verify: false,
        }
    }

    #[test]
    fn report_in_matrix_order_and_complete() {
        let cfg = tiny_cfg();
        let rep = run_batch(&cfg);
        assert_eq!(rep.cells.len(), cfg.n_cells());
        assert_eq!(rep.failed(), 0);
        for (k, cell) in rep.cells.iter().enumerate() {
            let w = &cfg.workloads[k / 2];
            assert_eq!(cell.id.workload, w.name);
            assert_eq!(cell.id.variant, if k % 2 == 0 { "orig" } else { "slms" });
        }
    }

    #[test]
    fn first_run_already_shares_artifacts() {
        // two machines × two personalities share SLMS and LIR artifacts
        let cfg = BatchConfig {
            machines: vec![itanium2(), slc_sim::presets::power4()],
            compilers: vec![CompilerKind::Weak, CompilerKind::Optimizing],
            ..tiny_cfg()
        };
        let rep = run_batch(&cfg);
        assert!(rep.cache.slms.hits > 0, "{:?}", rep.cache);
        assert!(rep.cache.lir.hits > 0, "{:?}", rep.cache);
    }

    #[test]
    fn second_run_hits_cache() {
        let engine = BatchEngine::new();
        let cfg = tiny_cfg();
        let first = engine.run(&cfg);
        let misses_after_first = engine.cache_report().compile.misses;
        let second = engine.run(&cfg);
        // no new computations in the second run
        assert_eq!(engine.cache_report().compile.misses, misses_after_first);
        assert!(second.cache.compile.hits > first.cache.compile.hits);
        assert!(second.cache.overall_hit_rate() > 0.0);
        // and the canonical cells are identical
        for (a, b) in first.cells.iter().zip(&second.cells) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.outcome.as_ref().map(|m| m.cycles).ok(),
                b.outcome.as_ref().map(|m| m.cycles).ok()
            );
        }
    }

    #[test]
    fn bad_plan_degrades_slms_cells_only() {
        let mut cfg = tiny_cfg();
        cfg.plan = PassPlan::parse("fuse:0+9,slms").unwrap();
        let rep = run_batch(&cfg);
        for c in &rep.cells {
            match c.id.variant {
                "orig" => assert!(c.outcome.is_ok(), "{:?}", c.outcome),
                _ => {
                    let e = c.outcome.as_ref().unwrap_err();
                    assert!(e.starts_with("plan: pass fuse:0+9"), "{e}");
                }
            }
        }
        assert_eq!(rep.failed(), rep.cells.len() / 2);
    }

    #[test]
    fn per_pass_timing_lands_in_sidecar() {
        let rep = run_batch(&tiny_cfg());
        let slms = rep
            .timing
            .passes
            .iter()
            .find(|p| p.pass == "slms")
            .expect("slms pass timed");
        assert!(slms.runs >= 1);
        let sidecar = rep.timing_json();
        assert!(sidecar.contains("slc-batch-timing-v2"), "{sidecar}");
        assert!(sidecar.contains("pass_ms"), "{sidecar}");
        // but nothing non-deterministic in the canonical report
        assert!(!rep.to_json().contains("pass_ms"));
    }

    #[test]
    fn degraded_cell_does_not_poison_batch() {
        let mut cfg = tiny_cfg();
        cfg.workloads.push(Workload {
            name: "bad_while",
            suite: Suite::Paper,
            source: "float a[8]; int i; i = 0; while (i < 4) { a[i] = 1.0; i = i + 1; }",
        });
        let rep = run_batch(&cfg);
        let bad: Vec<_> = rep
            .cells
            .iter()
            .filter(|c| c.id.workload == "bad_while")
            .collect();
        assert_eq!(bad.len(), 2);
        for c in bad {
            let err = c.outcome.as_ref().unwrap_err();
            assert!(err.starts_with("lower:"), "{err}");
        }
        assert_eq!(rep.failed(), 2);
        assert_eq!(rep.completed(), rep.cells.len() - 2);
    }
}
