//! The parallel batch experiment engine.
//!
//! The paper's evaluation is a cross product — every workload × machine ×
//! final-compiler personality × {original, SLMS} (§9, figs. 14–22). This
//! module evaluates that matrix concurrently on top of the shared
//! [`CompileService`] core (see [`crate::service`] for the artifact stores
//! and the memoization keys): [`BatchEngine`] is a thin client that
//! enumerates the matrix, fans cells out over the work-queue parallel map
//! and assembles the report — every per-cell compile/simulate step runs
//! through [`CompileService::eval_cell`], the same path the `slc serve`
//! daemon's requests share.
//!
//! **Determinism invariants** (asserted by `tests/batch_differential.rs`
//! and the property tests):
//!
//! 1. cell results are bit-identical to the serial
//!    `compile` + `simulate` path;
//! 2. the canonical JSON report is byte-identical across runs and thread
//!    counts — cells appear in matrix-enumeration order, every artifact is
//!    computed exactly once per distinct key (so cache counters are
//!    schedule-independent), wall-clock timing lives in a separate
//!    non-deterministic sidecar ([`BatchReport::timing_json`]), and the
//!    deterministic work counters ([`BatchReport::counters`]) are
//!    accumulated only inside cache-miss closures, which makes them
//!    thread-count-invariant too;
//! 3. a failing cell (parse, plan or lowering error) degrades to a
//!    recorded per-cell error while every other cell still completes.

use crate::cache::CacheReport;
use crate::compile::CompilerKind;
use crate::json::Json;
use crate::par::{effective_threads, par_map_indexed_stats, WorkerStats};
use crate::passes::PassPlan;
use crate::service::{CellSpec, CompileService, StageNs};
use slc_core::SlmsConfig;
use slc_machine::mach::MachineDesc;
use slc_sim::cycle::FfStats;
use slc_trace::{CounterRegistry, HistogramRegistry, Tracer};
use slc_workloads::{enumerate_matrix, Variant, Workload};
use std::collections::BTreeMap;
use std::time::Instant;

pub use crate::service::{CellId, CellMetrics, CellResult, PassTiming, VerifySummary};

/// Schema tag written into every report.
pub const REPORT_SCHEMA: &str = "slc-batch-report-v1";

/// Schema tag of the wall-clock timing sidecar.
pub const TIMING_SCHEMA: &str = "slc-batch-timing-v4";

/// Named relative tolerances for the counter perf gate
/// (`BENCH_counters.json`). Counters not listed here are compared exactly:
/// cache hit/miss counts, SLMS decision counts and verify obligations are
/// pure functions of the matrix, while simulator totals are allowed small
/// drift so that perf-neutral model tweaks do not churn the baseline. The
/// steady-state fast-forward lanes get the widest band — they move whenever
/// the detector's warm-up heuristics are tuned.
pub const COUNTER_TOLERANCES: &[(&str, f64)] = &[
    ("sim.cycles_total", 0.02),
    ("sim.ops_total", 0.02),
    ("sim.l1_hits", 0.02),
    ("sim.l1_misses", 0.05),
    ("sim.spill_accesses", 0.05),
    ("sim.fast_loops", 0.10),
    ("sim.fallback_loops", 0.10),
    ("sim.ff_hits", 0.25),
    ("sim.ff_misses", 0.25),
    ("sim.trips_skipped", 0.25),
];

/// What to run: the axes of the experiment matrix plus engine knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// workload axis
    pub workloads: Vec<Workload>,
    /// machine axis
    pub machines: Vec<MachineDesc>,
    /// personality axis
    pub compilers: Vec<CompilerKind>,
    /// SLMS configuration for the `slms` variant of every cell
    pub slms: SlmsConfig,
    /// pass plan the `slms` variant runs (default: `slms` alone; the §6
    /// ordering studies swap in plans like `fuse:0+1,slms`)
    pub plan: PassPlan,
    /// worker threads (`None` = all available cores)
    pub threads: Option<usize>,
    /// statically verify every `slms` pass and record per-workload
    /// verdicts in the timing sidecar (the canonical report is unaffected)
    pub verify: bool,
}

impl BatchConfig {
    /// The paper's full matrix: every workload × the four machine presets
    /// × the three personalities × {original, SLMS}.
    pub fn full_matrix() -> Self {
        use slc_sim::presets::{arm7tdmi, itanium2, pentium, power4};
        BatchConfig {
            workloads: slc_workloads::all(),
            machines: vec![itanium2(), pentium(), power4(), arm7tdmi()],
            compilers: CompilerKind::ALL.to_vec(),
            slms: SlmsConfig::default(),
            plan: PassPlan::slms_only(),
            threads: None,
            verify: false,
        }
    }

    /// Number of cells this config enumerates.
    pub fn n_cells(&self) -> usize {
        self.workloads.len() * self.machines.len() * self.compilers.len() * Variant::ALL.len()
    }
}

/// Per-shard wall-clock and scheduling accounting from one sharded run
/// (`slc batch --shards N`). Everything here depends on OS process/thread
/// scheduling, so it lives in the timing sidecar only — never in counters
/// or the canonical report (which stay byte-identical to the in-process
/// engine).
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// shard index, `0..shards`
    pub shard: usize,
    /// cells this shard evaluated and reported
    pub cells: u64,
    /// work ranges dispatched to it (initial partition + steals)
    pub chunks: u64,
    /// in-flight ranges trimmed away from this shard for idle peers
    pub steals_donated: u64,
    /// ranges this shard received that another shard gave up
    pub steals_received: u64,
    /// false when the shard died mid-run and its work was reassigned
    pub alive: bool,
    /// median wall-clock per dispatched range, milliseconds
    pub chunk_ms_p50: f64,
    /// 99th-percentile wall-clock per dispatched range, milliseconds
    pub chunk_ms_p99: f64,
    /// CPU time the shard process consumed, milliseconds (scheduler
    /// runtime, so it is not inflated by time-slicing when shards
    /// outnumber cores; 0 when the platform offers no accounting)
    pub cpu_ms: f64,
    /// the shard's per-stage miss wall clock
    pub stage: StageNs,
    /// the shard's per-worker queue accounting (its in-process thread pool)
    pub workers: Vec<WorkerStats>,
    /// the dead shard's last flight-recorder snapshot (`slc-flight-v1`
    /// JSONL), captured by the dispatcher's quarantine path from the tail
    /// the worker ships with every `cells` message; `None` while alive
    pub flight: Option<String>,
}

/// Wall-clock accounting (non-deterministic; reported separately from the
/// canonical JSON).
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// worker threads used
    pub threads: usize,
    /// end-to-end wall time
    pub wall_ns: u64,
    /// time inside parse misses
    pub parse_ns: u64,
    /// time inside plan misses (all passes, SLMS included)
    pub slms_ns: u64,
    /// time inside lowering misses
    pub lower_ns: u64,
    /// time inside scheduling misses
    pub compile_ns: u64,
    /// time inside simulation misses
    pub sim_ns: u64,
    /// per-pass breakdown of `slms_ns`, sorted by pass name
    pub passes: Vec<PassTiming>,
    /// per-workload static-verification verdicts, sorted by workload name
    /// (empty unless [`BatchConfig::verify`] was set)
    pub verify: Vec<VerifySummary>,
    /// steady-state fast-forward counters accumulated over simulation
    /// misses (deterministic per config, but reported in the sidecar next
    /// to the wall-clock they explain)
    pub steady: FfStats,
    /// per-worker queue accounting for this run (scheduling-dependent, so
    /// sidecar-only), worker-ordered
    pub workers: Vec<WorkerStats>,
    /// per-shard dispatch/steal accounting, shard-ordered (empty for
    /// in-process runs; filled by `slc batch --shards N`)
    pub shards: Vec<ShardStats>,
    /// wall-clock histograms of per-miss stage latencies (`wall.*`
    /// families). Quarantined here like every other wall-clock reading;
    /// empty on the sharded path (each shard's latencies stay local)
    pub wall_hist: HistogramRegistry,
}

/// Result of one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// per-cell rows in matrix-enumeration order
    pub cells: Vec<CellResult>,
    /// cache statistics (cumulative over the engine's lifetime)
    pub cache: CacheReport,
    /// deterministic work counters (cumulative over the engine's lifetime;
    /// see [`CompileService::counters`])
    pub counters: CounterRegistry,
    /// deterministic work histograms (MIs per loop, SAT conflicts per
    /// solve, dep pairs per loop; see [`CompileService::histograms`]).
    /// Never part of the canonical report — exported via `slc stats
    /// --histograms` and gated against `BENCH_histograms.json`. Empty on
    /// the sharded path (the histogram gate runs in-process).
    pub histograms: HistogramRegistry,
    /// wall-clock accounting for this run
    pub timing: TimingReport,
}

impl BatchReport {
    /// Cells that completed.
    pub fn completed(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_ok()).count()
    }

    /// Cells that degraded to an error.
    pub fn failed(&self) -> usize {
        self.cells.len() - self.completed()
    }

    /// Total static-verification violations across workloads (0 unless the
    /// run was gated with [`BatchConfig::verify`] and something is wrong).
    pub fn verify_violations(&self) -> usize {
        self.timing.verify.iter().map(|v| v.violations).sum()
    }

    /// Per-workload optimality gaps (heuristic II − proven optimal II) of
    /// every exact-scheduled loop, deduplicated across machines and
    /// personalities (the plan artifact is shared, so every cell of a
    /// workload reports the same gaps). Empty unless the run's plan used
    /// the exact scheduler. A gap of 0 certifies the heuristic II optimal;
    /// a positive gap means the exact scheduler beat the heuristic.
    pub fn optimality_gaps(&self) -> Vec<(String, Vec<i64>)> {
        let mut map: BTreeMap<String, Vec<i64>> = BTreeMap::new();
        for c in &self.cells {
            if let Ok(m) = &c.outcome {
                if !m.optimality_gaps.is_empty() {
                    map.entry(c.id.workload.clone())
                        .or_insert_with(|| m.optimality_gaps.clone());
                }
            }
        }
        map.into_iter().collect()
    }

    /// Exact-scheduled loops whose heuristic II exceeded the proven
    /// optimum (what the CI `exact-gate` asserts is zero on the stock
    /// workload suite).
    pub fn positive_gap_count(&self) -> usize {
        self.optimality_gaps()
            .iter()
            .map(|(_, gs)| gs.iter().filter(|&&g| g > 0).count())
            .sum()
    }

    /// The canonical report: deterministic — byte-identical across runs
    /// and thread counts for the same `BatchConfig` and engine history.
    pub fn to_json(&self) -> String {
        let cells: Vec<Json> = self.cells.iter().map(cell_json).collect();
        Json::obj()
            .field("schema", REPORT_SCHEMA)
            .field("cells_total", self.cells.len())
            .field("cells_completed", self.completed())
            .field("cells_failed", self.failed())
            .field(
                "cache",
                Json::obj()
                    .field("parse", store_json(self.cache.parse))
                    .field("slms", store_json(self.cache.slms))
                    .field("lir", store_json(self.cache.lir))
                    .field("compile", store_json(self.cache.compile))
                    .field("sim", store_json(self.cache.sim)),
            )
            .field("cells", Json::Arr(cells))
            .to_pretty()
    }

    /// The deterministic counter registry as the gate-able baseline
    /// document (`slc-counters-v1`, what `BENCH_counters.json` pins), with
    /// the named [`COUNTER_TOLERANCES`] attached. Separate from
    /// [`BatchReport::to_json`] so the canonical report stays byte-for-byte
    /// what it was before counters existed.
    pub fn counters_json(&self) -> String {
        self.counters.to_json(COUNTER_TOLERANCES)
    }

    /// Wall-clock sidecar (not deterministic). v2 added the per-pass
    /// breakdown of the transformation stage; v3 added per-worker queue
    /// accounting from the work-stealing map; v4 adds per-worker busy time
    /// and per-shard dispatch/steal accounting for `--shards` runs.
    pub fn timing_json(&self) -> String {
        let t = &self.timing;
        let mut passes = Json::obj();
        for p in &t.passes {
            passes = passes.field(
                p.pass.as_str(),
                Json::obj()
                    .field("ms", p.ns as f64 / 1e6)
                    .field("runs", p.runs),
            );
        }
        let workers: Vec<Json> = t.workers.iter().map(worker_json).collect();
        let shards: Vec<Json> = t
            .shards
            .iter()
            .map(|s| {
                let o = Json::obj()
                    .field("shard", s.shard)
                    .field("cells", s.cells)
                    .field("chunks", s.chunks)
                    .field("steals_donated", s.steals_donated)
                    .field("steals_received", s.steals_received)
                    .field("alive", s.alive)
                    .field("chunk_ms_p50", s.chunk_ms_p50)
                    .field("chunk_ms_p99", s.chunk_ms_p99)
                    .field("cpu_ms", s.cpu_ms)
                    .field("stage_ms", stage_ms_json(&s.stage))
                    .field(
                        "workers",
                        Json::Arr(s.workers.iter().map(worker_json).collect()),
                    );
                match &s.flight {
                    // quarantine capture: the dead shard's last flight ring
                    Some(dump) => o.field("flight_recorder", dump.as_str()),
                    None => o,
                }
            })
            .collect();
        let doc = Json::obj()
            .field("schema", TIMING_SCHEMA)
            .field("threads", t.threads)
            .field("wall_ms", t.wall_ns as f64 / 1e6)
            .field(
                "stage_ms",
                Json::obj()
                    .field("parse", t.parse_ns as f64 / 1e6)
                    .field("slms", t.slms_ns as f64 / 1e6)
                    .field("lower", t.lower_ns as f64 / 1e6)
                    .field("compile", t.compile_ns as f64 / 1e6)
                    .field("simulate", t.sim_ns as f64 / 1e6),
            )
            .field("pass_ms", passes)
            .field("workers", Json::Arr(workers));
        let doc = if t.shards.is_empty() {
            doc
        } else {
            doc.field("shards", Json::Arr(shards))
        };
        doc.field("verify", {
            let mut verify = Json::obj();
            for v in &t.verify {
                verify = verify.field(
                    v.workload.as_str(),
                    Json::obj()
                        .field("verified_loops", v.verified)
                        .field("skipped_loops", v.skipped)
                        .field("obligations", v.obligations)
                        .field("violations", v.violations),
                );
            }
            verify
        })
        .field(
            "sim_steady_state",
            Json::obj()
                .field("fast_loops", t.steady.fast_loops)
                .field("fallback_loops", t.steady.fallback_loops)
                .field("ff_hits", t.steady.ff_hits)
                .field("ff_misses", t.steady.ff_misses)
                .field("trips_total", t.steady.trips_total)
                .field("trips_skipped", t.steady.trips_skipped),
        )
        .field("wall_histograms", t.wall_hist.to_json())
        .to_pretty()
    }

    /// The deterministic work histograms as the gate-able baseline
    /// document (`slc-histograms-v1`, what `BENCH_histograms.json` pins).
    pub fn histograms_json(&self) -> String {
        self.histograms.to_baseline_json()
    }

    /// Simulator throughput baseline (`BENCH_sim.json`): the simulate
    /// stage's wall clock against the trip counts it covered, plus the
    /// steady-state fast-forward counters that explain the rate. Derived
    /// from the timing sidecar, so it is wall-clock data — a baseline to
    /// compare against, not part of the canonical deterministic report.
    pub fn sim_bench_json(&self) -> String {
        let t = &self.timing;
        let sim_s = t.sim_ns as f64 / 1e9;
        let trips_per_sec = if sim_s > 0.0 {
            t.steady.trips_total as f64 / sim_s
        } else {
            0.0
        };
        Json::obj()
            .field("schema", "slc-sim-bench-v1")
            .field("threads", t.threads)
            .field("simulate_ms", t.sim_ns as f64 / 1e6)
            .field("trips_total", t.steady.trips_total)
            .field("trips_per_sec", trips_per_sec)
            .field(
                "steady_state",
                Json::obj()
                    .field("fast_loops", t.steady.fast_loops)
                    .field("fallback_loops", t.steady.fallback_loops)
                    .field("ff_hits", t.steady.ff_hits)
                    .field("ff_misses", t.steady.ff_misses)
                    .field("trips_skipped", t.steady.trips_skipped),
            )
            .to_pretty()
    }

    /// Short human summary (cells, failures, hit rate, wall time).
    pub fn summary(&self) -> String {
        format!(
            "{} cells ({} ok, {} failed) on {} threads in {:.1} ms; \
             cache hit-rate {:.1}% (slms {}/{}, lir {}/{}, compile {}/{}, sim {}/{})",
            self.cells.len(),
            self.completed(),
            self.failed(),
            self.timing.threads,
            self.timing.wall_ns as f64 / 1e6,
            self.cache.overall_hit_rate() * 100.0,
            self.cache.slms.hits,
            self.cache.slms.hits + self.cache.slms.misses,
            self.cache.lir.hits,
            self.cache.lir.hits + self.cache.lir.misses,
            self.cache.compile.hits,
            self.cache.compile.hits + self.cache.compile.misses,
            self.cache.sim.hits,
            self.cache.sim.hits + self.cache.sim.misses,
        )
    }
}

fn store_json(s: crate::cache::StoreStats) -> Json {
    Json::obj().field("hits", s.hits).field("misses", s.misses)
}

fn worker_json(w: &WorkerStats) -> Json {
    Json::obj()
        .field("worker", w.worker)
        .field("claimed", w.claimed)
        .field("empty_polls", w.empty_polls)
        .field("busy_ms", w.busy_ns as f64 / 1e6)
}

fn stage_ms_json(s: &StageNs) -> Json {
    Json::obj()
        .field("parse", s.parse as f64 / 1e6)
        .field("slms", s.slms as f64 / 1e6)
        .field("lower", s.lower as f64 / 1e6)
        .field("compile", s.compile as f64 / 1e6)
        .field("simulate", s.sim as f64 / 1e6)
}

fn loop_json(l: &crate::compile::LoopInfo) -> Json {
    Json::obj()
        .field("var", l.var.as_str())
        .field("trips", l.trips)
        .field("bundles_per_iter", l.bundles_per_iter)
        .field("ms_applied", l.ms_applied)
        .field("ii", l.ii)
        .field("stages", l.stages)
        .field("reg_pressure", l.reg_pressure)
        .field("spilled", l.spilled)
}

fn cell_json(c: &CellResult) -> Json {
    let base = Json::obj()
        .field("workload", c.id.workload.as_str())
        .field("suite", c.id.suite.as_str())
        .field("machine", c.id.machine.as_str())
        .field("compiler", c.id.compiler)
        .field("variant", c.id.variant);
    match &c.outcome {
        Err(e) => base.field("ok", false).field("error", e.as_str()),
        Ok(m) => {
            let base = base
                .field("ok", true)
                .field("cycles", m.cycles)
                .field("ops", m.ops)
                .field("l1_hits", m.l1_hits)
                .field("l1_misses", m.l1_misses)
                .field("spill_accesses", m.spill_accesses)
                .field("energy", m.energy)
                .field("transformed", m.transformed)
                .field("slms_ii", m.slms_ii);
            // exact-only field: heuristic cells keep the historical
            // byte-identical report shape
            let base = if m.optimality_gaps.is_empty() {
                base
            } else {
                base.field(
                    "optimality_gaps",
                    Json::Arr(m.optimality_gaps.iter().map(|&g| Json::from(g)).collect()),
                )
            };
            base.field("loops", Json::Arr(m.loops.iter().map(loop_json).collect()))
        }
    }
}

/// The batch engine: a thin matrix-enumeration client over the shared
/// [`CompileService`]. Create once and call [`BatchEngine::run`] repeatedly
/// to share the cache across runs (a second identical run is answered
/// almost entirely from the cache).
#[derive(Default)]
pub struct BatchEngine {
    service: CompileService,
}

impl BatchEngine {
    /// Fresh engine over a fresh unbounded [`CompileService`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine over an existing service — e.g. one the daemon already
    /// warmed, or a bounded one for footprint experiments.
    pub fn from_service(service: CompileService) -> Self {
        BatchEngine { service }
    }

    /// The underlying shared service.
    pub fn service(&self) -> &CompileService {
        &self.service
    }

    /// Snapshot cumulative cache statistics.
    pub fn cache_report(&self) -> CacheReport {
        self.service.cache_report()
    }

    /// Snapshot the deterministic counter registry (see
    /// [`CompileService::counters`]).
    pub fn counters(&self) -> CounterRegistry {
        self.service.counters()
    }

    /// Evaluate the whole matrix. Cells run concurrently; the result
    /// vector is in matrix-enumeration order regardless of thread count.
    pub fn run(&self, cfg: &BatchConfig) -> BatchReport {
        self.run_traced(cfg, &Tracer::disabled())
    }

    /// [`BatchEngine::run`] with span collection: the whole run is wrapped
    /// in a `batch.run` span, every cell gets a `cell` span on its worker's
    /// track (tid = worker + 1; the orchestrating thread is track 0), and
    /// each cache-miss closure opens a `stage` span
    /// (`parse`/`plan`/`lower`/`compile`/`simulate`). With a disabled
    /// tracer this is exactly [`BatchEngine::run`] — no clock reads, no
    /// allocation, and a byte-identical canonical report either way.
    pub fn run_traced(&self, cfg: &BatchConfig, tracer: &Tracer) -> BatchReport {
        let cells = enumerate_matrix(cfg.workloads.len(), cfg.machines.len(), cfg.compilers.len());
        let threads = effective_threads(cfg.threads, cells.len());
        tracer.set_thread_track(0, "main");
        let mut batch_span = tracer.span("batch", "batch.run");
        batch_span.arg("cells", cells.len());
        batch_span.arg("threads", threads);
        let t0 = Instant::now();
        let (results, workers) = par_map_indexed_stats(cells.len(), threads, |worker, i| {
            if tracer.is_enabled() {
                tracer.set_thread_track(worker as u32 + 1, &format!("worker {worker}"));
            }
            let cell = cells[i];
            self.service.eval_cell(
                &CellSpec {
                    workload: &cfg.workloads[cell.workload],
                    machine: &cfg.machines[cell.machine],
                    compiler: cfg.compilers[cell.compiler],
                    variant: cell.variant,
                    plan: &cfg.plan,
                    slms: &cfg.slms,
                    verify: cfg.verify,
                },
                tracer,
            )
        });
        let wall_ns = t0.elapsed().as_nanos() as u64;
        drop(batch_span);
        // with threads == 1 the "worker" ran inline on this thread; rebind
        // it to the orchestrator track for any spans the caller opens next
        tracer.set_thread_track(0, "main");
        let stage = self.service.stage_ns();
        BatchReport {
            cells: results,
            cache: self.service.cache_report(),
            counters: self.service.counters(),
            histograms: self.service.histograms(),
            timing: TimingReport {
                threads,
                wall_ns,
                parse_ns: stage.parse,
                slms_ns: stage.slms,
                lower_ns: stage.lower,
                compile_ns: stage.compile,
                sim_ns: stage.sim,
                passes: self.service.pass_timings(),
                verify: self.service.verify_summaries(),
                steady: self.service.ff_stats(),
                workers,
                shards: Vec::new(),
                wall_hist: self.service.wall_histograms(),
            },
        }
    }
}

/// One-shot convenience: fresh engine, one run.
pub fn run_batch(cfg: &BatchConfig) -> BatchReport {
    BatchEngine::new().run(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_sim::presets::itanium2;
    use slc_workloads::Suite;

    fn tiny_cfg() -> BatchConfig {
        BatchConfig {
            workloads: slc_workloads::paper_examples(),
            machines: vec![itanium2()],
            compilers: vec![CompilerKind::Optimizing],
            slms: SlmsConfig::default(),
            plan: PassPlan::slms_only(),
            threads: Some(2),
            verify: false,
        }
    }

    #[test]
    fn report_in_matrix_order_and_complete() {
        let cfg = tiny_cfg();
        let rep = run_batch(&cfg);
        assert_eq!(rep.cells.len(), cfg.n_cells());
        assert_eq!(rep.failed(), 0);
        for (k, cell) in rep.cells.iter().enumerate() {
            let w = &cfg.workloads[k / 2];
            assert_eq!(cell.id.workload, w.name);
            assert_eq!(cell.id.variant, if k % 2 == 0 { "orig" } else { "slms" });
        }
    }

    #[test]
    fn first_run_already_shares_artifacts() {
        // two machines × two personalities share SLMS and LIR artifacts
        let cfg = BatchConfig {
            machines: vec![itanium2(), slc_sim::presets::power4()],
            compilers: vec![CompilerKind::Weak, CompilerKind::Optimizing],
            ..tiny_cfg()
        };
        let rep = run_batch(&cfg);
        assert!(rep.cache.slms.hits > 0, "{:?}", rep.cache);
        assert!(rep.cache.lir.hits > 0, "{:?}", rep.cache);
    }

    #[test]
    fn second_run_hits_cache() {
        let engine = BatchEngine::new();
        let cfg = tiny_cfg();
        let first = engine.run(&cfg);
        let misses_after_first = engine.cache_report().compile.misses;
        let second = engine.run(&cfg);
        // no new computations in the second run
        assert_eq!(engine.cache_report().compile.misses, misses_after_first);
        assert!(second.cache.compile.hits > first.cache.compile.hits);
        assert!(second.cache.overall_hit_rate() > 0.0);
        // and the canonical cells are identical
        for (a, b) in first.cells.iter().zip(&second.cells) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.outcome.as_ref().map(|m| m.cycles).ok(),
                b.outcome.as_ref().map(|m| m.cycles).ok()
            );
        }
    }

    #[test]
    fn bad_plan_degrades_slms_cells_only() {
        let mut cfg = tiny_cfg();
        cfg.plan = PassPlan::parse("fuse:0+9,slms").unwrap();
        let rep = run_batch(&cfg);
        for c in &rep.cells {
            match c.id.variant {
                "orig" => assert!(c.outcome.is_ok(), "{:?}", c.outcome),
                _ => {
                    let e = c.outcome.as_ref().unwrap_err();
                    assert!(e.starts_with("plan: pass fuse:0+9"), "{e}");
                }
            }
        }
        assert_eq!(rep.failed(), rep.cells.len() / 2);
    }

    #[test]
    fn per_pass_timing_lands_in_sidecar() {
        let rep = run_batch(&tiny_cfg());
        let slms = rep
            .timing
            .passes
            .iter()
            .find(|p| p.pass == "slms")
            .expect("slms pass timed");
        assert!(slms.runs >= 1);
        let sidecar = rep.timing_json();
        assert!(sidecar.contains(TIMING_SCHEMA), "{sidecar}");
        assert!(sidecar.contains("pass_ms"), "{sidecar}");
        // v3: per-worker queue accounting rides in the sidecar too
        assert!(sidecar.contains("\"workers\""), "{sidecar}");
        assert!(!rep.timing.workers.is_empty());
        let claimed: u64 = rep.timing.workers.iter().map(|w| w.claimed).sum();
        assert_eq!(claimed as usize, rep.cells.len());
        // but nothing non-deterministic in the canonical report
        let canon = rep.to_json();
        assert!(!canon.contains("pass_ms"));
        assert!(!canon.contains("workers"));
        assert!(!canon.contains("counters"));
        // bounded-mode bookkeeping stays out of the canonical report too
        assert!(!canon.contains("evictions"));
    }

    #[test]
    fn counters_are_thread_count_invariant_and_gateable() {
        let mut c1 = tiny_cfg();
        c1.threads = Some(1);
        c1.verify = true;
        let mut c4 = c1.clone();
        c4.threads = Some(4);
        let a = run_batch(&c1);
        let b = run_batch(&c4);
        assert_eq!(
            a.counters, b.counters,
            "counters must not depend on threads"
        );
        assert!(a.counters.get("slms.loops_total") > 0);
        assert!(a.counters.get("sim.cycles_total") > 0);
        assert!(a.counters.get("cache.sim.misses") > 0);
        assert!(a.counters.get("verify.obligations") > 0);
        // unbounded engines never evict; the serve family reads zero in
        // batch-only histories except the artifact-hit total
        assert_eq!(a.counters.get("serve.evictions"), 0);
        assert_eq!(a.counters.get("serve.requests"), 0);
        assert_eq!(
            a.counters.get("serve.hits"),
            a.counters.get("cache.parse.hits")
                + a.counters.get("cache.slms.hits")
                + a.counters.get("cache.lir.hits")
                + a.counters.get("cache.compile.hits")
                + a.counters.get("cache.sim.hits")
        );
        // the emitted baseline gates cleanly against the run it came from
        let base = slc_trace::CounterBaseline::parse(&a.counters_json()).unwrap();
        assert!(slc_trace::check_counters(&b.counters, &base).is_empty());
        // and wall-clock never leaks into the registry
        assert!(a
            .counters
            .iter()
            .all(|(k, _)| !k.ends_with("_ns") && !k.ends_with("_ms")));
    }

    #[test]
    fn traced_run_matches_untraced_and_covers_stages() {
        let cfg = tiny_cfg();
        let plain = run_batch(&cfg);
        let tracer = Tracer::enabled();
        let traced = BatchEngine::new().run_traced(&cfg, &tracer);
        assert_eq!(
            plain.to_json(),
            traced.to_json(),
            "tracing must not change the report"
        );
        assert_eq!(plain.counters, traced.counters);
        let chrome = tracer.to_chrome_json().unwrap();
        let summary = slc_trace::validate_chrome_trace(&chrome).unwrap();
        for stage in ["batch.run", "parse", "plan", "lower", "compile", "simulate"] {
            assert!(
                summary.span_names.iter().any(|n| n == stage),
                "missing {stage} span in {:?}",
                summary.span_names
            );
        }
        // cell spans land on worker tracks, which are all named
        assert!(summary.tracks.iter().any(|&t| t >= 1));
        assert_eq!(summary.track_names[0].1, "main");
    }

    #[test]
    fn exact_plan_reports_gaps_and_counters() {
        let mut cfg = tiny_cfg();
        cfg.plan = PassPlan::exact_only();
        let rep = run_batch(&cfg);
        assert_eq!(rep.failed(), 0);
        let gaps = rep.optimality_gaps();
        assert!(!gaps.is_empty(), "exact run should certify some loops");
        assert!(gaps.iter().all(|(_, gs)| gs.iter().all(|&g| g >= 0)));
        assert_eq!(rep.positive_gap_count(), 0);
        assert!(rep.counters.get("exact.loops_scheduled") > 0);
        assert!(rep.counters.get("exact.optimal") > 0);
        assert!(rep.to_json().contains("optimality_gaps"));
        // heuristic runs keep the historical report shape and counters
        let heuristic = run_batch(&tiny_cfg());
        assert!(!heuristic.to_json().contains("optimality_gaps"));
        assert!(heuristic.optimality_gaps().is_empty());
        assert_eq!(heuristic.counters.get("exact.loops_scheduled"), 0);
    }

    #[test]
    fn degraded_cell_does_not_poison_batch() {
        let mut cfg = tiny_cfg();
        cfg.workloads.push(Workload {
            name: "bad_while",
            suite: Suite::Paper,
            source: "float a[8]; int i; i = 0; while (i < 4) { a[i] = 1.0; i = i + 1; }",
        });
        let rep = run_batch(&cfg);
        let bad: Vec<_> = rep
            .cells
            .iter()
            .filter(|c| c.id.workload == "bad_while")
            .collect();
        assert_eq!(bad.len(), 2);
        for c in bad {
            let err = c.outcome.as_ref().unwrap_err();
            assert!(err.starts_with("lower:"), "{err}");
        }
        assert_eq!(rep.failed(), 2);
        assert_eq!(rep.completed(), rep.cells.len() - 2);
    }

    #[test]
    fn batch_over_bounded_service_still_completes() {
        // a footprint-bounded engine re-misses evicted artifacts but every
        // cell still completes with the same metrics as the unbounded run
        let cfg = tiny_cfg();
        let unbounded = run_batch(&cfg);
        let engine = BatchEngine::from_service(CompileService::bounded(2));
        let bounded = engine.run(&cfg);
        assert_eq!(bounded.failed(), 0);
        for (a, b) in unbounded.cells.iter().zip(&bounded.cells) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.outcome.as_ref().map(|m| m.cycles).ok(),
                b.outcome.as_ref().map(|m| m.cycles).ok()
            );
        }
        // recompilation stayed reproducible under eviction pressure
        assert_eq!(bounded.cache.total_refp_mismatches(), 0);
    }
}
