//! The parallel batch experiment engine.
//!
//! The paper's evaluation is a cross product — every workload × machine ×
//! final-compiler personality × {original, SLMS} (§9, figs. 14–22). This
//! module evaluates that matrix concurrently with memoization of every
//! expensive intermediate artifact:
//!
//! * **parse** — source text → AST, keyed by source fingerprint;
//! * **slms** — AST → transformed AST + per-loop outcomes for the
//!   configured [`PassPlan`] (this is where the DDG construction and the
//!   MII/difMin iteration happen), keyed by (program, *plan*) fingerprint —
//!   the plan fingerprint covers every pass, its arguments and the
//!   resolved SLMS config, and the artifact is shared by every
//!   machine/personality;
//! * **lir** — AST → lowered LIR, machine-independent, shared likewise;
//! * **compile** — LIR → schedules + per-loop compile facts, keyed by
//!   (program, machine, personality);
//! * **sim** — compiled program → cycle-level simulation, same key.
//!
//! **Determinism invariants** (asserted by `tests/batch_differential.rs`
//! and the property tests):
//!
//! 1. cell results are bit-identical to the serial
//!    `compile` + `simulate` path;
//! 2. the canonical JSON report is byte-identical across runs and thread
//!    counts — cells appear in matrix-enumeration order, every artifact is
//!    computed exactly once per distinct key (so cache counters are
//!    schedule-independent), wall-clock timing lives in a separate
//!    non-deterministic sidecar ([`BatchReport::timing_json`]), and the
//!    deterministic work counters ([`BatchReport::counters`]) are
//!    accumulated only inside cache-miss closures, which makes them
//!    thread-count-invariant too;
//! 3. a failing cell (parse, plan or lowering error) degrades to a
//!    recorded per-cell error while every other cell still completes.

use crate::cache::{CacheReport, KeyedStore};
use crate::compile::{compile_lir, CompilerKind, LoopInfo};
use crate::json::Json;
use crate::par::{effective_threads, par_map_indexed_stats, WorkerStats};
use crate::passes::{PassManager, PassPlan};
use slc_ast::{parse_program, Program};
use slc_core::diag::DiagEvent;
use slc_core::{LoopOutcome, SlmsConfig};
use slc_machine::ir::LirProgram;
use slc_machine::lower::{lower_program, LowerError};
use slc_machine::mach::MachineDesc;
use slc_sim::cycle::{simulate_spanned, FfStats, SimFidelity, SimResult};
use slc_sim::power::EnergyModel;
use slc_trace::{CounterRegistry, Tracer};
use slc_workloads::{enumerate_matrix, MatrixCell, Variant, Workload};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema tag written into every report.
pub const REPORT_SCHEMA: &str = "slc-batch-report-v1";

/// Schema tag of the wall-clock timing sidecar.
pub const TIMING_SCHEMA: &str = "slc-batch-timing-v3";

/// Named relative tolerances for the counter perf gate
/// (`BENCH_counters.json`). Counters not listed here are compared exactly:
/// cache hit/miss counts, SLMS decision counts and verify obligations are
/// pure functions of the matrix, while simulator totals are allowed small
/// drift so that perf-neutral model tweaks do not churn the baseline. The
/// steady-state fast-forward lanes get the widest band — they move whenever
/// the detector's warm-up heuristics are tuned.
pub const COUNTER_TOLERANCES: &[(&str, f64)] = &[
    ("sim.cycles_total", 0.02),
    ("sim.ops_total", 0.02),
    ("sim.l1_hits", 0.02),
    ("sim.l1_misses", 0.05),
    ("sim.spill_accesses", 0.05),
    ("sim.fast_loops", 0.10),
    ("sim.fallback_loops", 0.10),
    ("sim.ff_hits", 0.25),
    ("sim.ff_misses", 0.25),
    ("sim.trips_skipped", 0.25),
];

impl CompilerKind {
    /// Every personality, in canonical report order.
    pub const ALL: [CompilerKind; 3] = [
        CompilerKind::Weak,
        CompilerKind::Optimizing,
        CompilerKind::OptimizingMs,
    ];

    /// Short label used in reports and CLI flags (`weak` / `opt` / `ms`).
    pub fn label(&self) -> &'static str {
        match self {
            CompilerKind::Weak => "weak",
            CompilerKind::Optimizing => "opt",
            CompilerKind::OptimizingMs => "ms",
        }
    }

    /// Stable code for fingerprinting.
    fn code(&self) -> u64 {
        match self {
            CompilerKind::Weak => 0,
            CompilerKind::Optimizing => 1,
            CompilerKind::OptimizingMs => 2,
        }
    }
}

/// What to run: the axes of the experiment matrix plus engine knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// workload axis
    pub workloads: Vec<Workload>,
    /// machine axis
    pub machines: Vec<MachineDesc>,
    /// personality axis
    pub compilers: Vec<CompilerKind>,
    /// SLMS configuration for the `slms` variant of every cell
    pub slms: SlmsConfig,
    /// pass plan the `slms` variant runs (default: `slms` alone; the §6
    /// ordering studies swap in plans like `fuse:0+1,slms`)
    pub plan: PassPlan,
    /// worker threads (`None` = all available cores)
    pub threads: Option<usize>,
    /// statically verify every `slms` pass and record per-workload
    /// verdicts in the timing sidecar (the canonical report is unaffected)
    pub verify: bool,
}

impl BatchConfig {
    /// The paper's full matrix: every workload × the four machine presets
    /// × the three personalities × {original, SLMS}.
    pub fn full_matrix() -> Self {
        use slc_sim::presets::{arm7tdmi, itanium2, pentium, power4};
        BatchConfig {
            workloads: slc_workloads::all(),
            machines: vec![itanium2(), pentium(), power4(), arm7tdmi()],
            compilers: CompilerKind::ALL.to_vec(),
            slms: SlmsConfig::default(),
            plan: PassPlan::slms_only(),
            threads: None,
            verify: false,
        }
    }

    /// Number of cells this config enumerates.
    pub fn n_cells(&self) -> usize {
        self.workloads.len() * self.machines.len() * self.compilers.len() * Variant::ALL.len()
    }
}

/// Identity of one matrix cell in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellId {
    /// workload name
    pub workload: String,
    /// suite label
    pub suite: String,
    /// machine name
    pub machine: String,
    /// personality label
    pub compiler: &'static str,
    /// variant label (`orig` / `slms`)
    pub variant: &'static str,
}

/// Everything measured for one completed cell.
#[derive(Debug, Clone)]
pub struct CellMetrics {
    /// simulated cycles
    pub cycles: u64,
    /// dynamic operations executed
    pub ops: u64,
    /// L1 hits
    pub l1_hits: u64,
    /// L1 misses
    pub l1_misses: u64,
    /// dynamic spill accesses
    pub spill_accesses: u64,
    /// modeled energy
    pub energy: f64,
    /// did SLMS transform at least one loop (always false for `orig`)
    pub transformed: bool,
    /// source-level II of the first transformed loop
    pub slms_ii: Option<i64>,
    /// per-loop optimality gaps (heuristic II − proven optimal II) of the
    /// exact-scheduled loops, in loop order; empty for heuristic runs, so
    /// the canonical report is untouched unless the exact scheduler ran
    pub optimality_gaps: Vec<i64>,
    /// per-innermost-loop compile facts
    pub loops: Vec<LoopInfo>,
}

/// One row of the report: identity plus outcome. Failures carry a
/// stage-prefixed message (`parse: …` / `plan: …` / `lower: …`) instead of
/// aborting the batch.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// which cell
    pub id: CellId,
    /// metrics, or the degradation error
    pub outcome: Result<CellMetrics, String>,
}

/// Static-verification outcome of one workload's `slms` pass(es), as
/// recorded when [`BatchConfig::verify`] gates the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifySummary {
    /// workload name
    pub workload: String,
    /// loops whose emission was proven correct
    pub verified: usize,
    /// loops skipped (untransformed or symbolic-guarded)
    pub skipped: usize,
    /// total obligations discharged
    pub obligations: usize,
    /// total violations found (0 = clean)
    pub violations: usize,
}

/// Wall clock and run count of one pass across every plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassTiming {
    /// plan-syntax pass name (`slms`, `fuse:0+1`)
    pub pass: String,
    /// cumulative wall time inside the pass
    pub ns: u64,
    /// times the pass executed (cache hits do not re-run passes)
    pub runs: u64,
}

/// Wall-clock accounting (non-deterministic; reported separately from the
/// canonical JSON).
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// worker threads used
    pub threads: usize,
    /// end-to-end wall time
    pub wall_ns: u64,
    /// time inside parse misses
    pub parse_ns: u64,
    /// time inside plan misses (all passes, SLMS included)
    pub slms_ns: u64,
    /// time inside lowering misses
    pub lower_ns: u64,
    /// time inside scheduling misses
    pub compile_ns: u64,
    /// time inside simulation misses
    pub sim_ns: u64,
    /// per-pass breakdown of `slms_ns`, sorted by pass name
    pub passes: Vec<PassTiming>,
    /// per-workload static-verification verdicts, sorted by workload name
    /// (empty unless [`BatchConfig::verify`] was set)
    pub verify: Vec<VerifySummary>,
    /// steady-state fast-forward counters accumulated over simulation
    /// misses (deterministic per config, but reported in the sidecar next
    /// to the wall-clock they explain)
    pub steady: FfStats,
    /// per-worker queue accounting for this run (scheduling-dependent, so
    /// sidecar-only), worker-ordered
    pub workers: Vec<WorkerStats>,
}

/// Result of one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// per-cell rows in matrix-enumeration order
    pub cells: Vec<CellResult>,
    /// cache statistics (cumulative over the engine's lifetime)
    pub cache: CacheReport,
    /// deterministic work counters (cumulative over the engine's lifetime;
    /// see [`BatchEngine::counters`])
    pub counters: CounterRegistry,
    /// wall-clock accounting for this run
    pub timing: TimingReport,
}

impl BatchReport {
    /// Cells that completed.
    pub fn completed(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_ok()).count()
    }

    /// Cells that degraded to an error.
    pub fn failed(&self) -> usize {
        self.cells.len() - self.completed()
    }

    /// Total static-verification violations across workloads (0 unless the
    /// run was gated with [`BatchConfig::verify`] and something is wrong).
    pub fn verify_violations(&self) -> usize {
        self.timing.verify.iter().map(|v| v.violations).sum()
    }

    /// Per-workload optimality gaps (heuristic II − proven optimal II) of
    /// every exact-scheduled loop, deduplicated across machines and
    /// personalities (the plan artifact is shared, so every cell of a
    /// workload reports the same gaps). Empty unless the run's plan used
    /// the exact scheduler. A gap of 0 certifies the heuristic II optimal;
    /// a positive gap means the exact scheduler beat the heuristic.
    pub fn optimality_gaps(&self) -> Vec<(String, Vec<i64>)> {
        let mut map: BTreeMap<String, Vec<i64>> = BTreeMap::new();
        for c in &self.cells {
            if let Ok(m) = &c.outcome {
                if !m.optimality_gaps.is_empty() {
                    map.entry(c.id.workload.clone())
                        .or_insert_with(|| m.optimality_gaps.clone());
                }
            }
        }
        map.into_iter().collect()
    }

    /// Exact-scheduled loops whose heuristic II exceeded the proven
    /// optimum (what the CI `exact-gate` asserts is zero on the stock
    /// workload suite).
    pub fn positive_gap_count(&self) -> usize {
        self.optimality_gaps()
            .iter()
            .map(|(_, gs)| gs.iter().filter(|&&g| g > 0).count())
            .sum()
    }

    /// The canonical report: deterministic — byte-identical across runs
    /// and thread counts for the same `BatchConfig` and engine history.
    pub fn to_json(&self) -> String {
        let cells: Vec<Json> = self.cells.iter().map(cell_json).collect();
        Json::obj()
            .field("schema", REPORT_SCHEMA)
            .field("cells_total", self.cells.len())
            .field("cells_completed", self.completed())
            .field("cells_failed", self.failed())
            .field(
                "cache",
                Json::obj()
                    .field("parse", store_json(self.cache.parse))
                    .field("slms", store_json(self.cache.slms))
                    .field("lir", store_json(self.cache.lir))
                    .field("compile", store_json(self.cache.compile))
                    .field("sim", store_json(self.cache.sim)),
            )
            .field("cells", Json::Arr(cells))
            .to_pretty()
    }

    /// The deterministic counter registry as the gate-able baseline
    /// document (`slc-counters-v1`, what `BENCH_counters.json` pins), with
    /// the named [`COUNTER_TOLERANCES`] attached. Separate from
    /// [`BatchReport::to_json`] so the canonical report stays byte-for-byte
    /// what it was before counters existed.
    pub fn counters_json(&self) -> String {
        self.counters.to_json(COUNTER_TOLERANCES)
    }

    /// Wall-clock sidecar (not deterministic). v2 added the per-pass
    /// breakdown of the transformation stage; v3 adds per-worker queue
    /// accounting from the work-stealing map.
    pub fn timing_json(&self) -> String {
        let t = &self.timing;
        let mut passes = Json::obj();
        for p in &t.passes {
            passes = passes.field(
                p.pass.as_str(),
                Json::obj()
                    .field("ms", p.ns as f64 / 1e6)
                    .field("runs", p.runs),
            );
        }
        let workers: Vec<Json> = t
            .workers
            .iter()
            .map(|w| {
                Json::obj()
                    .field("worker", w.worker)
                    .field("claimed", w.claimed)
                    .field("empty_polls", w.empty_polls)
            })
            .collect();
        Json::obj()
            .field("schema", TIMING_SCHEMA)
            .field("threads", t.threads)
            .field("wall_ms", t.wall_ns as f64 / 1e6)
            .field(
                "stage_ms",
                Json::obj()
                    .field("parse", t.parse_ns as f64 / 1e6)
                    .field("slms", t.slms_ns as f64 / 1e6)
                    .field("lower", t.lower_ns as f64 / 1e6)
                    .field("compile", t.compile_ns as f64 / 1e6)
                    .field("simulate", t.sim_ns as f64 / 1e6),
            )
            .field("pass_ms", passes)
            .field("workers", Json::Arr(workers))
            .field("verify", {
                let mut verify = Json::obj();
                for v in &t.verify {
                    verify = verify.field(
                        v.workload.as_str(),
                        Json::obj()
                            .field("verified_loops", v.verified)
                            .field("skipped_loops", v.skipped)
                            .field("obligations", v.obligations)
                            .field("violations", v.violations),
                    );
                }
                verify
            })
            .field(
                "sim_steady_state",
                Json::obj()
                    .field("fast_loops", t.steady.fast_loops)
                    .field("fallback_loops", t.steady.fallback_loops)
                    .field("ff_hits", t.steady.ff_hits)
                    .field("ff_misses", t.steady.ff_misses)
                    .field("trips_total", t.steady.trips_total)
                    .field("trips_skipped", t.steady.trips_skipped),
            )
            .to_pretty()
    }

    /// Simulator throughput baseline (`BENCH_sim.json`): the simulate
    /// stage's wall clock against the trip counts it covered, plus the
    /// steady-state fast-forward counters that explain the rate. Derived
    /// from the timing sidecar, so it is wall-clock data — a baseline to
    /// compare against, not part of the canonical deterministic report.
    pub fn sim_bench_json(&self) -> String {
        let t = &self.timing;
        let sim_s = t.sim_ns as f64 / 1e9;
        let trips_per_sec = if sim_s > 0.0 {
            t.steady.trips_total as f64 / sim_s
        } else {
            0.0
        };
        Json::obj()
            .field("schema", "slc-sim-bench-v1")
            .field("threads", t.threads)
            .field("simulate_ms", t.sim_ns as f64 / 1e6)
            .field("trips_total", t.steady.trips_total)
            .field("trips_per_sec", trips_per_sec)
            .field(
                "steady_state",
                Json::obj()
                    .field("fast_loops", t.steady.fast_loops)
                    .field("fallback_loops", t.steady.fallback_loops)
                    .field("ff_hits", t.steady.ff_hits)
                    .field("ff_misses", t.steady.ff_misses)
                    .field("trips_skipped", t.steady.trips_skipped),
            )
            .to_pretty()
    }

    /// Short human summary (cells, failures, hit rate, wall time).
    pub fn summary(&self) -> String {
        format!(
            "{} cells ({} ok, {} failed) on {} threads in {:.1} ms; \
             cache hit-rate {:.1}% (slms {}/{}, lir {}/{}, compile {}/{}, sim {}/{})",
            self.cells.len(),
            self.completed(),
            self.failed(),
            self.timing.threads,
            self.timing.wall_ns as f64 / 1e6,
            self.cache.overall_hit_rate() * 100.0,
            self.cache.slms.hits,
            self.cache.slms.hits + self.cache.slms.misses,
            self.cache.lir.hits,
            self.cache.lir.hits + self.cache.lir.misses,
            self.cache.compile.hits,
            self.cache.compile.hits + self.cache.compile.misses,
            self.cache.sim.hits,
            self.cache.sim.hits + self.cache.sim.misses,
        )
    }
}

fn store_json(s: crate::cache::StoreStats) -> Json {
    Json::obj().field("hits", s.hits).field("misses", s.misses)
}

fn loop_json(l: &LoopInfo) -> Json {
    Json::obj()
        .field("var", l.var.as_str())
        .field("trips", l.trips)
        .field("bundles_per_iter", l.bundles_per_iter)
        .field("ms_applied", l.ms_applied)
        .field("ii", l.ii)
        .field("stages", l.stages)
        .field("reg_pressure", l.reg_pressure)
        .field("spilled", l.spilled)
}

fn cell_json(c: &CellResult) -> Json {
    let base = Json::obj()
        .field("workload", c.id.workload.as_str())
        .field("suite", c.id.suite.as_str())
        .field("machine", c.id.machine.as_str())
        .field("compiler", c.id.compiler)
        .field("variant", c.id.variant);
    match &c.outcome {
        Err(e) => base.field("ok", false).field("error", e.as_str()),
        Ok(m) => {
            let base = base
                .field("ok", true)
                .field("cycles", m.cycles)
                .field("ops", m.ops)
                .field("l1_hits", m.l1_hits)
                .field("l1_misses", m.l1_misses)
                .field("spill_accesses", m.spill_accesses)
                .field("energy", m.energy)
                .field("transformed", m.transformed)
                .field("slms_ii", m.slms_ii);
            // exact-only field: heuristic cells keep the historical
            // byte-identical report shape
            let base = if m.optimality_gaps.is_empty() {
                base
            } else {
                base.field(
                    "optimality_gaps",
                    Json::Arr(m.optimality_gaps.iter().map(|&g| Json::from(g)).collect()),
                )
            };
            base.field("loops", Json::Arr(m.loops.iter().map(loop_json).collect()))
        }
    }
}

type ParseArtifact = Result<(Program, u64), String>;
/// Transformed program + all per-loop outcomes across the plan + program
/// fingerprint — or the plan's structural failure, which degrades the cell.
type PlanArtifact = Result<(Program, Vec<LoopOutcome>, u64), String>;

/// The engine: the artifact stores plus per-stage timing accumulators.
/// Create once and call [`BatchEngine::run`] repeatedly to share the cache
/// across runs (a second identical run is answered almost entirely from
/// the cache).
#[derive(Default)]
pub struct BatchEngine {
    parse: KeyedStore<ParseArtifact>,
    slms: KeyedStore<PlanArtifact>,
    lir: KeyedStore<Result<LirProgram, LowerError>>,
    compile: KeyedStore<Result<crate::compile::CompileResult, LowerError>>,
    sim: KeyedStore<SimResult>,
    parse_ns: AtomicU64,
    slms_ns: AtomicU64,
    lower_ns: AtomicU64,
    compile_ns: AtomicU64,
    sim_ns: AtomicU64,
    pass_ns: Mutex<BTreeMap<String, (u64, u64)>>,
    /// per-workload verification verdicts (filled only when the config
    /// gates the run; keyed by workload name so repeat runs overwrite)
    verify_stats: Mutex<BTreeMap<String, VerifySummary>>,
    /// steady-state fast-forward counters (six lanes matching `FfStats`)
    ff: [AtomicU64; 6],
    /// deterministic work counters. Bumped **only inside cache-miss
    /// closures** — each distinct artifact is computed exactly once, so the
    /// totals are invariant under thread count and work-queue interleaving
    /// (the property `tests/trace_differential.rs` pins down). Wall-clock
    /// values must never land here; they go to the timing accumulators
    /// above.
    counters: Mutex<CounterRegistry>,
}

fn timed<T>(slot: &AtomicU64, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    slot.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

impl BatchEngine {
    /// Fresh engine with empty caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot cumulative cache statistics.
    pub fn cache_report(&self) -> CacheReport {
        CacheReport {
            parse: self.parse.stats(),
            slms: self.slms.stats(),
            lir: self.lir.stats(),
            compile: self.compile.stats(),
            sim: self.sim.stats(),
        }
    }

    /// Snapshot the deterministic counter registry: the work counters
    /// accumulated inside miss closures plus the cache hit/miss statistics,
    /// all under dotted names (`slms.mii_rounds`, `sim.cycles_total`,
    /// `cache.compile.misses`, …). For a fixed engine history the snapshot
    /// is identical across runs and thread counts — this is what
    /// `slc stats` renders and the CI counter gate compares.
    pub fn counters(&self) -> CounterRegistry {
        let mut c = self.counters.lock().unwrap().clone();
        let cr = self.cache_report();
        for (name, s) in [
            ("parse", cr.parse),
            ("slms", cr.slms),
            ("lir", cr.lir),
            ("compile", cr.compile),
            ("sim", cr.sim),
        ] {
            c.set(&format!("cache.{name}.hits"), s.hits);
            c.set(&format!("cache.{name}.misses"), s.misses);
        }
        c
    }

    /// Accumulate the SLMS decision counters from one plan execution's
    /// diagnostics. Called only from the plan-artifact miss closure, so the
    /// totals count each distinct (program, plan) exactly once.
    fn count_slms_outcomes(&self, sink: &slc_core::diag::DiagSink) {
        let mut reg = self.counters.lock().unwrap();
        for o in sink.all_outcomes() {
            reg.add("slms.loops_total", 1);
            if o.result.is_ok() {
                reg.add("slms.loops_transformed", 1);
            }
            for ev in &o.trace {
                match ev {
                    DiagEvent::FilterChecked { verdict } if !verdict.passed() => {
                        reg.add("slms.filter_rejects", 1);
                    }
                    DiagEvent::IfConverted => reg.add("slms.if_conversions", 1),
                    DiagEvent::SymbolicGuard => reg.add("slms.symbolic_guards", 1),
                    DiagEvent::MiiAttempt { .. } => reg.add("slms.mii_rounds", 1),
                    DiagEvent::Decomposed { .. } => reg.add("slms.decompose_retries", 1),
                    DiagEvent::ExactScheduled {
                        ii,
                        heuristic_ii,
                        reordered,
                        sat_decisions,
                        sat_conflicts,
                        sat_propagations,
                        sat_restarts,
                        proof_clauses,
                    } => {
                        reg.add("exact.loops_scheduled", 1);
                        if ii == heuristic_ii {
                            reg.add("exact.optimal", 1);
                        } else {
                            reg.add("exact.improved", 1);
                        }
                        if *reordered {
                            reg.add("exact.reordered", 1);
                        }
                        reg.add("exact.sat_decisions", *sat_decisions);
                        reg.add("exact.sat_conflicts", *sat_conflicts);
                        reg.add("exact.sat_propagations", *sat_propagations);
                        reg.add("exact.sat_restarts", *sat_restarts);
                        reg.add("exact.proof_clauses", *proof_clauses as u64);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Evaluate the whole matrix. Cells run concurrently; the result
    /// vector is in matrix-enumeration order regardless of thread count.
    pub fn run(&self, cfg: &BatchConfig) -> BatchReport {
        self.run_traced(cfg, &Tracer::disabled())
    }

    /// [`BatchEngine::run`] with span collection: the whole run is wrapped
    /// in a `batch.run` span, every cell gets a `cell` span on its worker's
    /// track (tid = worker + 1; the orchestrating thread is track 0), and
    /// each cache-miss closure opens a `stage` span
    /// (`parse`/`plan`/`lower`/`compile`/`simulate`). With a disabled
    /// tracer this is exactly [`BatchEngine::run`] — no clock reads, no
    /// allocation, and a byte-identical canonical report either way.
    pub fn run_traced(&self, cfg: &BatchConfig, tracer: &Tracer) -> BatchReport {
        let cells = enumerate_matrix(cfg.workloads.len(), cfg.machines.len(), cfg.compilers.len());
        let threads = effective_threads(cfg.threads, cells.len());
        tracer.set_thread_track(0, "main");
        let mut batch_span = tracer.span("batch", "batch.run");
        batch_span.arg("cells", cells.len());
        batch_span.arg("threads", threads);
        let t0 = Instant::now();
        let (results, workers) = par_map_indexed_stats(cells.len(), threads, |worker, i| {
            if tracer.is_enabled() {
                tracer.set_thread_track(worker as u32 + 1, &format!("worker {worker}"));
            }
            self.eval_cell(cfg, cells[i], tracer)
        });
        let wall_ns = t0.elapsed().as_nanos() as u64;
        drop(batch_span);
        // with threads == 1 the "worker" ran inline on this thread; rebind
        // it to the orchestrator track for any spans the caller opens next
        tracer.set_thread_track(0, "main");
        let passes = self
            .pass_ns
            .lock()
            .unwrap()
            .iter()
            .map(|(pass, &(ns, runs))| PassTiming {
                pass: pass.clone(),
                ns,
                runs,
            })
            .collect();
        BatchReport {
            cells: results,
            cache: self.cache_report(),
            counters: self.counters(),
            timing: TimingReport {
                threads,
                wall_ns,
                parse_ns: self.parse_ns.load(Ordering::Relaxed),
                slms_ns: self.slms_ns.load(Ordering::Relaxed),
                lower_ns: self.lower_ns.load(Ordering::Relaxed),
                compile_ns: self.compile_ns.load(Ordering::Relaxed),
                sim_ns: self.sim_ns.load(Ordering::Relaxed),
                passes,
                verify: self
                    .verify_stats
                    .lock()
                    .unwrap()
                    .values()
                    .cloned()
                    .collect(),
                steady: FfStats {
                    fast_loops: self.ff[0].load(Ordering::Relaxed),
                    fallback_loops: self.ff[1].load(Ordering::Relaxed),
                    ff_hits: self.ff[2].load(Ordering::Relaxed),
                    ff_misses: self.ff[3].load(Ordering::Relaxed),
                    trips_total: self.ff[4].load(Ordering::Relaxed),
                    trips_skipped: self.ff[5].load(Ordering::Relaxed),
                },
                workers,
            },
        }
    }

    fn eval_cell(&self, cfg: &BatchConfig, cell: MatrixCell, tracer: &Tracer) -> CellResult {
        let w = &cfg.workloads[cell.workload];
        let m = &cfg.machines[cell.machine];
        let kind = cfg.compilers[cell.compiler];
        let id = CellId {
            workload: w.name.to_string(),
            suite: w.suite.to_string(),
            machine: m.name.clone(),
            compiler: kind.label(),
            variant: cell.variant.label(),
        };
        let mut cell_span = tracer.span_dyn("cell", || {
            format!(
                "{}/{}/{}/{}",
                id.workload, id.machine, id.compiler, id.variant
            )
        });

        // 1. parse (cached per source text)
        let src_fp = slc_analysis::fingerprint_str(w.source);
        let parsed = self.parse.get_or_compute(src_fp, || {
            let _sp = tracer.span("stage", "parse");
            timed(&self.parse_ns, || {
                parse_program(w.source)
                    .map(|p| {
                        let fp = slc_analysis::program_fingerprint(&p);
                        (p, fp)
                    })
                    .map_err(|e| e.to_string())
            })
        });
        let (orig_prog, orig_fp) = match parsed.as_ref() {
            Ok(x) => x,
            Err(e) => {
                return CellResult {
                    id,
                    outcome: Err(format!("parse: {e}")),
                }
            }
        };

        // 2. pass plan (cached per program × plan fingerprint, shared
        //    across machines and personalities)
        let plan_art: Option<Arc<PlanArtifact>> = match cell.variant {
            Variant::Original => None,
            Variant::Slms => {
                // The verify flag joins the key only when set, so default
                // runs keep their historical cache behaviour (and the
                // canonical report stays byte-identical).
                let key = if cfg.verify {
                    slc_analysis::fingerprint::combine(&[
                        *orig_fp,
                        cfg.plan.fingerprint(&cfg.slms),
                        1,
                    ])
                } else {
                    slc_analysis::fingerprint::combine(&[*orig_fp, cfg.plan.fingerprint(&cfg.slms)])
                };
                Some(self.slms.get_or_compute(key, || {
                    let _sp = tracer.span("stage", "plan");
                    timed(&self.slms_ns, || {
                        let pm = PassManager::new(cfg.slms.clone()).with_tracer(tracer.clone());
                        match pm.run_with_verify(orig_prog, &cfg.plan, cfg.verify) {
                            Ok((p, sink, verdicts)) => {
                                if cfg.verify {
                                    let mut sum = VerifySummary {
                                        workload: w.name.to_string(),
                                        verified: 0,
                                        skipped: 0,
                                        obligations: 0,
                                        violations: 0,
                                    };
                                    for vd in &verdicts {
                                        sum.obligations += vd.obligation_count();
                                        sum.violations += vd.violation_count();
                                        for l in &vd.loops {
                                            match l.verdict {
                                                slc_verify::LoopVerdict::Verified { .. } => {
                                                    sum.verified += 1
                                                }
                                                slc_verify::LoopVerdict::Skipped { .. } => {
                                                    sum.skipped += 1
                                                }
                                                slc_verify::LoopVerdict::Violated { .. } => {}
                                            }
                                        }
                                    }
                                    let mut reg = self.counters.lock().unwrap();
                                    reg.add("verify.loops_verified", sum.verified as u64);
                                    reg.add("verify.loops_skipped", sum.skipped as u64);
                                    reg.add("verify.obligations", sum.obligations as u64);
                                    reg.add("verify.violations", sum.violations as u64);
                                    drop(reg);
                                    self.verify_stats
                                        .lock()
                                        .unwrap()
                                        .insert(sum.workload.clone(), sum);
                                }
                                let mut per_pass = self.pass_ns.lock().unwrap();
                                for pd in &sink.passes {
                                    let slot = per_pass.entry(pd.pass.clone()).or_insert((0, 0));
                                    slot.0 += pd.elapsed_ns;
                                    slot.1 += 1;
                                }
                                drop(per_pass);
                                self.count_slms_outcomes(&sink);
                                let fp = slc_analysis::program_fingerprint(&p);
                                let outcomes = sink.all_outcomes().cloned().collect::<Vec<_>>();
                                Ok((p, outcomes, fp))
                            }
                            Err(e) => Err(e.to_string()),
                        }
                    })
                }))
            }
        };
        let plan_art = match plan_art.as_deref() {
            None => None,
            Some(Ok(x)) => Some(x),
            Some(Err(e)) => {
                return CellResult {
                    id,
                    outcome: Err(format!("plan: {e}")),
                }
            }
        };
        let (prog, prog_fp, transformed, slms_ii, optimality_gaps) = match plan_art {
            None => (orig_prog, *orig_fp, false, None, Vec::new()),
            Some((p, outcomes, fp)) => (
                p,
                *fp,
                outcomes.iter().any(|o| o.result.is_ok()),
                outcomes
                    .iter()
                    .find_map(|o| o.result.as_ref().ok().map(|r| r.ii)),
                outcomes
                    .iter()
                    .filter_map(|o| o.result.as_ref().ok())
                    .filter_map(|r| r.heuristic_ii.map(|h| h - r.ii))
                    .collect(),
            ),
        };

        // 3. schedule (cached per program × machine × personality; lowering
        //    cached separately because it is machine-independent)
        let compile_key =
            slc_analysis::fingerprint::combine(&[prog_fp, m.fingerprint(), kind.code()]);
        let compiled = self.compile.get_or_compute(compile_key, || {
            let lir = self.lir.get_or_compute(prog_fp, || {
                let _sp = tracer.span("stage", "lower");
                timed(&self.lower_ns, || lower_program(prog))
            });
            match lir.as_ref() {
                Ok(l) => {
                    let _sp = tracer.span("stage", "compile");
                    Ok(timed(&self.compile_ns, || compile_lir(l, m, kind)))
                }
                Err(e) => Err(e.clone()),
            }
        });
        let comp = match compiled.as_ref() {
            Ok(c) => c,
            Err(e) => {
                return CellResult {
                    id,
                    outcome: Err(format!("lower: {e}")),
                }
            }
        };

        // 4. simulate (cached under the same key as the schedule)
        let sim = self.sim.get_or_compute(compile_key, || {
            let _sp = tracer.span("stage", "simulate");
            timed(&self.sim_ns, || {
                let out = simulate_spanned(&comp.compiled, m, SimFidelity::Fast, tracer);
                for (slot, v) in self.ff.iter().zip([
                    out.ff.fast_loops,
                    out.ff.fallback_loops,
                    out.ff.ff_hits,
                    out.ff.ff_misses,
                    out.ff.trips_total,
                    out.ff.trips_skipped,
                ]) {
                    slot.fetch_add(v, Ordering::Relaxed);
                }
                let mut reg = self.counters.lock().unwrap();
                reg.add("sim.cycles_total", out.result.cycles);
                reg.add("sim.ops_total", out.result.total_ops());
                reg.add("sim.l1_hits", out.result.cache.hits);
                reg.add("sim.l1_misses", out.result.cache.misses);
                reg.add("sim.spill_accesses", out.result.spill_accesses);
                reg.add("sim.fast_loops", out.ff.fast_loops);
                reg.add("sim.fallback_loops", out.ff.fallback_loops);
                reg.add("sim.ff_hits", out.ff.ff_hits);
                reg.add("sim.ff_misses", out.ff.ff_misses);
                reg.add("sim.trips_total", out.ff.trips_total);
                reg.add("sim.trips_skipped", out.ff.trips_skipped);
                drop(reg);
                out.result
            })
        });
        let power = EnergyModel::default().report(&sim);
        cell_span.arg("cycles", sim.cycles);

        CellResult {
            id,
            outcome: Ok(CellMetrics {
                cycles: sim.cycles,
                ops: sim.total_ops(),
                l1_hits: sim.cache.hits,
                l1_misses: sim.cache.misses,
                spill_accesses: sim.spill_accesses,
                energy: power.energy,
                transformed,
                slms_ii,
                optimality_gaps,
                loops: comp.loops.clone(),
            }),
        }
    }
}

/// One-shot convenience: fresh engine, one run.
pub fn run_batch(cfg: &BatchConfig) -> BatchReport {
    BatchEngine::new().run(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_sim::presets::itanium2;
    use slc_workloads::Suite;

    fn tiny_cfg() -> BatchConfig {
        BatchConfig {
            workloads: slc_workloads::paper_examples(),
            machines: vec![itanium2()],
            compilers: vec![CompilerKind::Optimizing],
            slms: SlmsConfig::default(),
            plan: PassPlan::slms_only(),
            threads: Some(2),
            verify: false,
        }
    }

    #[test]
    fn report_in_matrix_order_and_complete() {
        let cfg = tiny_cfg();
        let rep = run_batch(&cfg);
        assert_eq!(rep.cells.len(), cfg.n_cells());
        assert_eq!(rep.failed(), 0);
        for (k, cell) in rep.cells.iter().enumerate() {
            let w = &cfg.workloads[k / 2];
            assert_eq!(cell.id.workload, w.name);
            assert_eq!(cell.id.variant, if k % 2 == 0 { "orig" } else { "slms" });
        }
    }

    #[test]
    fn first_run_already_shares_artifacts() {
        // two machines × two personalities share SLMS and LIR artifacts
        let cfg = BatchConfig {
            machines: vec![itanium2(), slc_sim::presets::power4()],
            compilers: vec![CompilerKind::Weak, CompilerKind::Optimizing],
            ..tiny_cfg()
        };
        let rep = run_batch(&cfg);
        assert!(rep.cache.slms.hits > 0, "{:?}", rep.cache);
        assert!(rep.cache.lir.hits > 0, "{:?}", rep.cache);
    }

    #[test]
    fn second_run_hits_cache() {
        let engine = BatchEngine::new();
        let cfg = tiny_cfg();
        let first = engine.run(&cfg);
        let misses_after_first = engine.cache_report().compile.misses;
        let second = engine.run(&cfg);
        // no new computations in the second run
        assert_eq!(engine.cache_report().compile.misses, misses_after_first);
        assert!(second.cache.compile.hits > first.cache.compile.hits);
        assert!(second.cache.overall_hit_rate() > 0.0);
        // and the canonical cells are identical
        for (a, b) in first.cells.iter().zip(&second.cells) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.outcome.as_ref().map(|m| m.cycles).ok(),
                b.outcome.as_ref().map(|m| m.cycles).ok()
            );
        }
    }

    #[test]
    fn bad_plan_degrades_slms_cells_only() {
        let mut cfg = tiny_cfg();
        cfg.plan = PassPlan::parse("fuse:0+9,slms").unwrap();
        let rep = run_batch(&cfg);
        for c in &rep.cells {
            match c.id.variant {
                "orig" => assert!(c.outcome.is_ok(), "{:?}", c.outcome),
                _ => {
                    let e = c.outcome.as_ref().unwrap_err();
                    assert!(e.starts_with("plan: pass fuse:0+9"), "{e}");
                }
            }
        }
        assert_eq!(rep.failed(), rep.cells.len() / 2);
    }

    #[test]
    fn per_pass_timing_lands_in_sidecar() {
        let rep = run_batch(&tiny_cfg());
        let slms = rep
            .timing
            .passes
            .iter()
            .find(|p| p.pass == "slms")
            .expect("slms pass timed");
        assert!(slms.runs >= 1);
        let sidecar = rep.timing_json();
        assert!(sidecar.contains(TIMING_SCHEMA), "{sidecar}");
        assert!(sidecar.contains("pass_ms"), "{sidecar}");
        // v3: per-worker queue accounting rides in the sidecar too
        assert!(sidecar.contains("\"workers\""), "{sidecar}");
        assert!(!rep.timing.workers.is_empty());
        let claimed: u64 = rep.timing.workers.iter().map(|w| w.claimed).sum();
        assert_eq!(claimed as usize, rep.cells.len());
        // but nothing non-deterministic in the canonical report
        let canon = rep.to_json();
        assert!(!canon.contains("pass_ms"));
        assert!(!canon.contains("workers"));
        assert!(!canon.contains("counters"));
    }

    #[test]
    fn counters_are_thread_count_invariant_and_gateable() {
        let mut c1 = tiny_cfg();
        c1.threads = Some(1);
        c1.verify = true;
        let mut c4 = c1.clone();
        c4.threads = Some(4);
        let a = run_batch(&c1);
        let b = run_batch(&c4);
        assert_eq!(
            a.counters, b.counters,
            "counters must not depend on threads"
        );
        assert!(a.counters.get("slms.loops_total") > 0);
        assert!(a.counters.get("sim.cycles_total") > 0);
        assert!(a.counters.get("cache.sim.misses") > 0);
        assert!(a.counters.get("verify.obligations") > 0);
        // the emitted baseline gates cleanly against the run it came from
        let base = slc_trace::CounterBaseline::parse(&a.counters_json()).unwrap();
        assert!(slc_trace::check_counters(&b.counters, &base).is_empty());
        // and wall-clock never leaks into the registry
        assert!(a
            .counters
            .iter()
            .all(|(k, _)| !k.ends_with("_ns") && !k.ends_with("_ms")));
    }

    #[test]
    fn traced_run_matches_untraced_and_covers_stages() {
        let cfg = tiny_cfg();
        let plain = run_batch(&cfg);
        let tracer = Tracer::enabled();
        let traced = BatchEngine::new().run_traced(&cfg, &tracer);
        assert_eq!(
            plain.to_json(),
            traced.to_json(),
            "tracing must not change the report"
        );
        assert_eq!(plain.counters, traced.counters);
        let chrome = tracer.to_chrome_json().unwrap();
        let summary = slc_trace::validate_chrome_trace(&chrome).unwrap();
        for stage in ["batch.run", "parse", "plan", "lower", "compile", "simulate"] {
            assert!(
                summary.span_names.iter().any(|n| n == stage),
                "missing {stage} span in {:?}",
                summary.span_names
            );
        }
        // cell spans land on worker tracks, which are all named
        assert!(summary.tracks.iter().any(|&t| t >= 1));
        assert_eq!(summary.track_names[0].1, "main");
    }

    #[test]
    fn exact_plan_reports_gaps_and_counters() {
        let mut cfg = tiny_cfg();
        cfg.plan = PassPlan::exact_only();
        let rep = run_batch(&cfg);
        assert_eq!(rep.failed(), 0);
        let gaps = rep.optimality_gaps();
        assert!(!gaps.is_empty(), "exact run should certify some loops");
        assert!(gaps.iter().all(|(_, gs)| gs.iter().all(|&g| g >= 0)));
        assert_eq!(rep.positive_gap_count(), 0);
        assert!(rep.counters.get("exact.loops_scheduled") > 0);
        assert!(rep.counters.get("exact.optimal") > 0);
        assert!(rep.to_json().contains("optimality_gaps"));
        // heuristic runs keep the historical report shape and counters
        let heuristic = run_batch(&tiny_cfg());
        assert!(!heuristic.to_json().contains("optimality_gaps"));
        assert!(heuristic.optimality_gaps().is_empty());
        assert_eq!(heuristic.counters.get("exact.loops_scheduled"), 0);
    }

    #[test]
    fn degraded_cell_does_not_poison_batch() {
        let mut cfg = tiny_cfg();
        cfg.workloads.push(Workload {
            name: "bad_while",
            suite: Suite::Paper,
            source: "float a[8]; int i; i = 0; while (i < 4) { a[i] = 1.0; i = i + 1; }",
        });
        let rep = run_batch(&cfg);
        let bad: Vec<_> = rep
            .cells
            .iter()
            .filter(|c| c.id.workload == "bad_while")
            .collect();
        assert_eq!(bad.len(), 2);
        for c in bad {
            let err = c.outcome.as_ref().unwrap_err();
            assert!(err.starts_with("lower:"), "{err}");
        }
        assert_eq!(rep.failed(), 2);
        assert_eq!(rep.completed(), rep.cells.len() - 2);
    }
}
