//! The shared compile-service core.
//!
//! Everything expensive in the toolkit — parsing, pass plans (DDG
//! construction, MII/difMin iteration, exact scheduling), lowering,
//! machine scheduling, cycle simulation — funnels through one
//! [`CompileService`]: a set of content-hash-keyed artifact stores
//! ([`KeyedStore`]) plus the deterministic counter registry and the
//! per-stage wall-clock accumulators. The batch engine
//! ([`crate::batch::BatchEngine`]) and the persistent `slc serve` daemon
//! (`slc-serve`) are both thin clients of this layer: the batch engine
//! drives [`CompileService::eval_cell`] over the experiment matrix, the
//! daemon drives [`CompileService::compile_request`] (and friends) per
//! connection — and because they share the same stores and the same key
//! derivation, a daemon warmed by one request answers the next from
//! cache exactly like a second batch pass does.
//!
//! **Determinism contract** (inherited from the batch engine, pinned by
//! `tests/batch_differential.rs` and `tests/trace_differential.rs`):
//! deterministic work counters are bumped **only inside cache-miss
//! closures**, each distinct artifact is computed exactly once while
//! resident, and wall-clock goes to separate timing accumulators, never
//! into counters or reports. A service built with
//! [`CompileService::bounded`] additionally enforces an LRU capacity per
//! store — eviction order is deterministic under a fixed request order,
//! and every evicted-then-recomputed artifact is re-fingerprinted against
//! the evicted one (`serve.refp_mismatches` stays 0 unless recompilation
//! is non-reproducible).

use crate::cache::{CacheReport, KeyedStore};
use crate::compile::{compile_lir, CompilerKind, LoopInfo};
use crate::passes::{PassManager, PassPlan};
use slc_ast::{parse_program, to_paper_style, to_source, Program};
use slc_core::diag::{DiagEvent, DiagSink};
use slc_core::{LoopOutcome, SlmsConfig};
use slc_machine::ir::LirProgram;
use slc_machine::lower::{lower_program, LowerError};
use slc_machine::mach::MachineDesc;
use slc_sim::cycle::{simulate_spanned, FfStats, SimFidelity, SimResult};
use slc_sim::power::EnergyModel;
use slc_trace::{CounterRegistry, FlightRecorder, HistogramRegistry, RecKind, Tracer};
use slc_workloads::{Variant, Workload};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

impl CompilerKind {
    /// Every personality, in canonical report order.
    pub const ALL: [CompilerKind; 3] = [
        CompilerKind::Weak,
        CompilerKind::Optimizing,
        CompilerKind::OptimizingMs,
    ];

    /// Short label used in reports and CLI flags (`weak` / `opt` / `ms`).
    pub fn label(&self) -> &'static str {
        match self {
            CompilerKind::Weak => "weak",
            CompilerKind::Optimizing => "opt",
            CompilerKind::OptimizingMs => "ms",
        }
    }

    /// Stable code for fingerprinting.
    pub(crate) fn code(&self) -> u64 {
        match self {
            CompilerKind::Weak => 0,
            CompilerKind::Optimizing => 1,
            CompilerKind::OptimizingMs => 2,
        }
    }
}

/// Identity of one matrix cell in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellId {
    /// workload name
    pub workload: String,
    /// suite label
    pub suite: String,
    /// machine name
    pub machine: String,
    /// personality label
    pub compiler: &'static str,
    /// variant label (`orig` / `slms`)
    pub variant: &'static str,
}

/// Everything measured for one completed cell.
#[derive(Debug, Clone)]
pub struct CellMetrics {
    /// simulated cycles
    pub cycles: u64,
    /// dynamic operations executed
    pub ops: u64,
    /// L1 hits
    pub l1_hits: u64,
    /// L1 misses
    pub l1_misses: u64,
    /// dynamic spill accesses
    pub spill_accesses: u64,
    /// modeled energy
    pub energy: f64,
    /// did SLMS transform at least one loop (always false for `orig`)
    pub transformed: bool,
    /// source-level II of the first transformed loop
    pub slms_ii: Option<i64>,
    /// per-loop optimality gaps (heuristic II − proven optimal II) of the
    /// exact-scheduled loops, in loop order; empty for heuristic runs, so
    /// the canonical report is untouched unless the exact scheduler ran
    pub optimality_gaps: Vec<i64>,
    /// per-innermost-loop compile facts
    pub loops: Vec<LoopInfo>,
}

/// One row of the report: identity plus outcome. Failures carry a
/// stage-prefixed message (`parse: …` / `plan: …` / `lower: …`) instead of
/// aborting the batch.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// which cell
    pub id: CellId,
    /// metrics, or the degradation error
    pub outcome: Result<CellMetrics, String>,
}

/// Static-verification outcome of one workload's `slms` pass(es), as
/// recorded when a batch run is gated with verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifySummary {
    /// workload name
    pub workload: String,
    /// loops whose emission was proven correct
    pub verified: usize,
    /// loops skipped (untransformed or symbolic-guarded)
    pub skipped: usize,
    /// total obligations discharged
    pub obligations: usize,
    /// total violations found (0 = clean)
    pub violations: usize,
}

/// Wall clock and run count of one pass across every plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassTiming {
    /// plan-syntax pass name (`slms`, `fuse:0+1`)
    pub pass: String,
    /// cumulative wall time inside the pass
    pub ns: u64,
    /// times the pass executed (cache hits do not re-run passes)
    pub runs: u64,
}

/// Per-stage wall-clock accumulated inside cache-miss closures
/// (non-deterministic; reported only through timing sidecars).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageNs {
    /// time inside parse misses
    pub parse: u64,
    /// time inside plan misses (all passes, SLMS included)
    pub slms: u64,
    /// time inside lowering misses
    pub lower: u64,
    /// time inside scheduling misses
    pub compile: u64,
    /// time inside simulation misses
    pub sim: u64,
}

/// The store lookups one [`CompileService::eval_cell`] evaluation
/// performed, by key. `None` means the pipeline degraded before reaching
/// that store (a parse error performs no plan lookup, a lower error no sim
/// lookup); `lir` is `Some` whenever the compile lookup happened, but the
/// lir store is only *consulted* when the compile lookup misses. The
/// sharded reducer replays these lookups in matrix order to reconstruct
/// the exact cache statistics a single-process run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellKeys {
    /// parse-store key (always looked up)
    pub parse: u64,
    /// plan-store key (`slms` variant only, and only after a clean parse)
    pub plan: Option<u64>,
    /// compile-store key (absent when parse/plan degraded the cell)
    pub compile: Option<u64>,
    /// lir-store key (the program fingerprint; consulted on compile miss)
    pub lir: Option<u64>,
    /// sim-store key (equals the compile key; absent when lowering failed)
    pub sim: Option<u64>,
}

/// Attribution stage tag for plan-store counter deltas.
pub const STAGE_PLAN: u8 = 1;
/// Attribution stage tag for sim-store counter deltas.
pub const STAGE_SIM: u8 = 2;

/// What [`CompileService::eval_cell`] evaluates: one matrix cell plus the
/// run-wide knobs it is evaluated under.
#[derive(Debug, Clone, Copy)]
pub struct CellSpec<'a> {
    /// the workload axis value
    pub workload: &'a Workload,
    /// the machine axis value
    pub machine: &'a MachineDesc,
    /// the personality axis value
    pub compiler: CompilerKind,
    /// original or SLMS-transformed variant
    pub variant: Variant,
    /// pass plan the `slms` variant runs
    pub plan: &'a PassPlan,
    /// SLMS configuration for the plan
    pub slms: &'a SlmsConfig,
    /// statically verify the `slms` pass and record a per-workload verdict
    pub verify: bool,
}

/// A typed compile-service failure, mirroring the CLI's stage-prefixed
/// degradation messages (and its exit-code contract: every variant maps to
/// exit 1 in one-shot mode and to a typed error response in the daemon).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// the source did not parse
    Parse(String),
    /// the pass plan failed structurally (bad fuse indices, …)
    Plan(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Parse(e) => write!(f, "parse: {e}"),
            ServiceError::Plan(e) => write!(f, "plan: {e}"),
        }
    }
}

/// Result of one daemon-style compile request.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// the optimized program, rendered exactly like the one-shot CLI
    /// prints it (plain source or `--paper-style`)
    pub output: String,
    /// whether the transformed program came from the plan-artifact cache
    /// (deterministic under a fixed request order: each distinct
    /// (program, plan) key misses exactly once while resident)
    pub cached: bool,
}

/// Result of one daemon-style verify request.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// no violations and no error-severity lints
    pub clean: bool,
    /// the report text, byte-identical to `slc verify` stdout
    pub output: String,
}

type ParseArtifact = Result<(Program, u64), String>;
/// Transformed program + all per-loop outcomes across the plan + program
/// fingerprint — or the plan's structural failure, which degrades the cell.
type PlanArtifact = Result<(Program, Vec<LoopOutcome>, u64), String>;

fn parse_fp(a: &ParseArtifact) -> u64 {
    match a {
        Ok((_, fp)) => *fp,
        Err(e) => slc_analysis::fingerprint_str(e),
    }
}

fn plan_fp(a: &PlanArtifact) -> u64 {
    match a {
        Ok((_, outcomes, fp)) => slc_analysis::fingerprint::combine(&[*fp, outcomes.len() as u64]),
        Err(e) => slc_analysis::fingerprint_str(e),
    }
}

fn lir_fp(a: &Result<LirProgram, LowerError>) -> u64 {
    slc_analysis::fingerprint_str(&format!("{a:?}"))
}

fn compile_fp(a: &Result<crate::compile::CompileResult, LowerError>) -> u64 {
    slc_analysis::fingerprint_str(&format!("{a:?}"))
}

fn sim_fp(a: &SimResult) -> u64 {
    slc_analysis::fingerprint_str(&format!("{a:?}"))
}

/// The plan-store key for one (program, plan, config, verify) combination —
/// the one key derivation shared by batch cells, daemon requests and the
/// shard reducer's replay.
pub(crate) fn plan_key(orig_fp: u64, plan: &PassPlan, slms: &SlmsConfig, verify: bool) -> u64 {
    if verify {
        slc_analysis::fingerprint::combine(&[orig_fp, plan.fingerprint(slms), 1])
    } else {
        slc_analysis::fingerprint::combine(&[orig_fp, plan.fingerprint(slms)])
    }
}

/// Derive the full deterministic counter snapshot from a base registry (the
/// miss-closure counters), a cache report and the daemon admission totals.
/// [`CompileService::counters`] and the shard reducer share this so a
/// reduced multi-process registry renders byte-identically to the
/// single-process one.
pub(crate) fn finalize_counters(
    mut c: CounterRegistry,
    cr: &CacheReport,
    requests: u64,
    rejections: u64,
    timeouts: u64,
) -> CounterRegistry {
    for (name, s) in [
        ("parse", &cr.parse),
        ("slms", &cr.slms),
        ("lir", &cr.lir),
        ("compile", &cr.compile),
        ("sim", &cr.sim),
    ] {
        c.set(&format!("cache.{name}.hits"), s.hits);
        c.set(&format!("cache.{name}.misses"), s.misses);
        c.set(&format!("cache.{name}.evictions"), s.evictions);
    }
    c.set("serve.requests", requests);
    c.set("serve.rejections", rejections);
    c.set("serve.timeouts", timeouts);
    c.set("serve.hits", cr.total_hits());
    c.set("serve.evictions", cr.total_evictions());
    c.set("serve.refp_mismatches", cr.total_refp_mismatches());
    c
}

/// The shared service core: artifact stores, per-stage timing accumulators
/// and the deterministic counter registry. Create once, share (it is
/// `Sync`) between the batch engine, daemon connections and CLI helpers —
/// all clients see one cache.
#[derive(Default)]
pub struct CompileService {
    parse: KeyedStore<ParseArtifact>,
    slms: KeyedStore<PlanArtifact>,
    lir: KeyedStore<Result<LirProgram, LowerError>>,
    compile: KeyedStore<Result<crate::compile::CompileResult, LowerError>>,
    sim: KeyedStore<SimResult>,
    parse_ns: AtomicU64,
    slms_ns: AtomicU64,
    lower_ns: AtomicU64,
    compile_ns: AtomicU64,
    sim_ns: AtomicU64,
    pass_ns: Mutex<BTreeMap<String, (u64, u64)>>,
    /// per-workload verification verdicts (filled only when a batch run
    /// gates; keyed by workload name so repeat runs overwrite)
    verify_stats: Mutex<BTreeMap<String, VerifySummary>>,
    /// steady-state fast-forward counters (six lanes matching `FfStats`)
    ff: [AtomicU64; 6],
    /// daemon request admissions (every request the daemon dispatched)
    requests: AtomicU64,
    /// daemon backpressure rejections (admission queue full → `busy`)
    rejections: AtomicU64,
    /// daemon per-request deadline expiries (→ `timeout` responses)
    timeouts: AtomicU64,
    /// deterministic work counters. Bumped **only inside cache-miss
    /// closures** — each distinct artifact is computed exactly once, so the
    /// totals are invariant under thread count and work-queue interleaving
    /// (the property `tests/trace_differential.rs` pins down). Wall-clock
    /// values must never land here; they go to the timing accumulators
    /// above.
    counters: Mutex<CounterRegistry>,
    /// per-(stage, key) counter deltas, recorded only when attribution is
    /// enabled (shard workers). Two shards can both miss on the same key
    /// (each computes the artifact locally); the parent dedups by
    /// `(stage, key)` so the summed deltas equal the single-process
    /// registry.
    attribution: Mutex<Option<BTreeMap<(u8, u64), CounterRegistry>>>,
    /// deterministic work histograms — same contract as `counters`
    /// (recorded only inside miss closures, pure function of the matrix),
    /// but keeping the *distribution*: MIs placed per loop, SAT conflicts
    /// per solve, dep pairs per loop.
    hist: Mutex<HistogramRegistry>,
    /// wall-clock histograms (per-miss stage latencies). Quarantined like
    /// the stage timing accumulators: reported only through timing
    /// sidecars, never gated, never merged into the canonical report.
    wall_hist: Mutex<HistogramRegistry>,
}

impl CompileService {
    /// Fresh service with empty, unbounded stores (the batch default: the
    /// full matrix must stay fully memoized so cache counters are a pure
    /// function of the matrix).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh service whose artifact stores hold at most `capacity` entries
    /// each, evicting least-recently-used completed artifacts past that
    /// (the daemon default: a long-running process must bound its
    /// footprint). Every store re-fingerprints evicted-then-recomputed
    /// artifacts; a mismatch shows up in `serve.refp_mismatches`.
    pub fn bounded(capacity: usize) -> Self {
        CompileService {
            parse: KeyedStore::bounded(capacity, Some(parse_fp)),
            slms: KeyedStore::bounded(capacity, Some(plan_fp)),
            lir: KeyedStore::bounded(capacity, Some(lir_fp)),
            compile: KeyedStore::bounded(capacity, Some(compile_fp)),
            sim: KeyedStore::bounded(capacity, Some(sim_fp)),
            ..CompileService::default()
        }
    }

    /// Snapshot cumulative cache statistics.
    pub fn cache_report(&self) -> CacheReport {
        CacheReport {
            parse: self.parse.stats(),
            slms: self.slms.stats(),
            lir: self.lir.stats(),
            compile: self.compile.stats(),
            sim: self.sim.stats(),
        }
    }

    /// Snapshot the deterministic counter registry: the work counters
    /// accumulated inside miss closures, the cache hit/miss/eviction
    /// statistics and the service-level `serve.*` family, all under dotted
    /// names (`slms.mii_rounds`, `cache.compile.misses`, `serve.hits`, …).
    /// For a fixed request history the snapshot is identical across runs
    /// and thread counts — this is what `slc stats` renders, the daemon's
    /// `stats` request returns and the CI counter gate compares.
    pub fn counters(&self) -> CounterRegistry {
        let base = self.counters.lock().unwrap().clone();
        finalize_counters(
            base,
            &self.cache_report(),
            self.requests.load(Ordering::Relaxed),
            self.rejections.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
        )
    }

    /// Start recording per-(stage, key) counter deltas alongside the
    /// registry. Shard workers enable this so every plan- and sim-miss
    /// delta can be shipped to the dispatcher tagged with the store key
    /// that produced it; [`CompileService::take_attribution`] drains what
    /// has accumulated.
    pub fn enable_attribution(&self) {
        let mut a = self.attribution.lock().unwrap();
        if a.is_none() {
            *a = Some(BTreeMap::new());
        }
    }

    /// Drain the recorded (stage, key, delta) triples, in key order.
    /// Returns an empty vec when attribution was never enabled.
    pub fn take_attribution(&self) -> Vec<(u8, u64, CounterRegistry)> {
        let mut a = self.attribution.lock().unwrap();
        match a.as_mut() {
            None => Vec::new(),
            Some(map) => std::mem::take(map)
                .into_iter()
                .map(|((stage, key), delta)| (stage, key, delta))
                .collect(),
        }
    }

    /// Fold a miss closure's local counter delta into the registry, and —
    /// when attribution is on — remember it under `(stage, key)`.
    fn absorb_delta(&self, stage: u8, key: u64, delta: CounterRegistry) {
        self.counters.lock().unwrap().merge(&delta);
        let mut a = self.attribution.lock().unwrap();
        if let Some(map) = a.as_mut() {
            // unbounded stores miss each key at most once per process, so
            // plain insert cannot clobber an earlier delta
            map.insert((stage, key), delta);
        }
    }

    /// Count one admitted daemon request.
    pub fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one admission-control rejection (`busy` response).
    pub fn note_rejection(&self) {
        self.rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one per-request deadline expiry (`timeout` response).
    pub fn note_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-stage wall clock accumulated inside miss closures so far.
    pub fn stage_ns(&self) -> StageNs {
        StageNs {
            parse: self.parse_ns.load(Ordering::Relaxed),
            slms: self.slms_ns.load(Ordering::Relaxed),
            lower: self.lower_ns.load(Ordering::Relaxed),
            compile: self.compile_ns.load(Ordering::Relaxed),
            sim: self.sim_ns.load(Ordering::Relaxed),
        }
    }

    /// Snapshot the deterministic work histograms (MIs placed per loop,
    /// SAT conflicts/decisions per solve, dep pairs per loop). Recorded
    /// only inside miss closures, so for a fixed request history the
    /// snapshot is identical across runs and thread counts — `slc stats
    /// --histograms` renders it and the CI histogram gate compares it.
    pub fn histograms(&self) -> HistogramRegistry {
        self.hist.lock().unwrap().clone()
    }

    /// Snapshot the wall-clock histograms (per-miss stage latencies under
    /// `wall.*` names). Non-deterministic; timing sidecars only.
    pub fn wall_histograms(&self) -> HistogramRegistry {
        self.wall_hist.lock().unwrap().clone()
    }

    /// Time a miss closure: accumulate into the stage's nanosecond slot
    /// and record the per-miss latency into the wall-clock histogram
    /// family (both quarantined from the deterministic surfaces).
    fn timed_wall<T>(&self, slot: &AtomicU64, name: &'static str, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        let ns = t.elapsed().as_nanos() as u64;
        slot.fetch_add(ns, Ordering::Relaxed);
        self.wall_hist.lock().unwrap().record(name, ns);
        out
    }

    /// Per-pass wall clock and run counts, sorted by pass name.
    pub fn pass_timings(&self) -> Vec<PassTiming> {
        self.pass_ns
            .lock()
            .unwrap()
            .iter()
            .map(|(pass, &(ns, runs))| PassTiming {
                pass: pass.clone(),
                ns,
                runs,
            })
            .collect()
    }

    /// Per-workload static-verification verdicts, sorted by workload name
    /// (empty unless verification-gated cells ran).
    pub fn verify_summaries(&self) -> Vec<VerifySummary> {
        self.verify_stats
            .lock()
            .unwrap()
            .values()
            .cloned()
            .collect()
    }

    /// Cumulative steady-state fast-forward counters over simulation
    /// misses.
    pub fn ff_stats(&self) -> FfStats {
        FfStats {
            fast_loops: self.ff[0].load(Ordering::Relaxed),
            fallback_loops: self.ff[1].load(Ordering::Relaxed),
            ff_hits: self.ff[2].load(Ordering::Relaxed),
            ff_misses: self.ff[3].load(Ordering::Relaxed),
            trips_total: self.ff[4].load(Ordering::Relaxed),
            trips_skipped: self.ff[5].load(Ordering::Relaxed),
        }
    }

    /// Accumulate the SLMS decision counters from one plan execution's
    /// diagnostics into `reg` (a local delta registry — the plan-artifact
    /// miss closure is the only caller, so the totals count each distinct
    /// (program, plan) exactly once).
    fn count_slms_outcomes(
        sink: &DiagSink,
        reg: &mut CounterRegistry,
        hist: &mut HistogramRegistry,
    ) {
        for o in sink.all_outcomes() {
            reg.add("slms.loops_total", 1);
            if let Ok(r) = &o.result {
                reg.add("slms.loops_transformed", 1);
                hist.record("slms.mis_per_loop", r.n_mis as u64);
            }
            for ev in &o.trace {
                match ev {
                    DiagEvent::FilterChecked { verdict } if !verdict.passed() => {
                        reg.add("slms.filter_rejects", 1);
                    }
                    DiagEvent::IfConverted => reg.add("slms.if_conversions", 1),
                    DiagEvent::SymbolicGuard => reg.add("slms.symbolic_guards", 1),
                    DiagEvent::MiiAttempt { .. } => reg.add("slms.mii_rounds", 1),
                    DiagEvent::Decomposed { .. } => reg.add("slms.decompose_retries", 1),
                    DiagEvent::ExactScheduled {
                        ii,
                        heuristic_ii,
                        reordered,
                        warm_start,
                        sat_decisions,
                        sat_conflicts,
                        sat_propagations,
                        sat_restarts,
                        proof_clauses,
                    } => {
                        reg.add("exact.loops_scheduled", 1);
                        if ii == heuristic_ii {
                            reg.add("exact.optimal", 1);
                        } else {
                            reg.add("exact.improved", 1);
                        }
                        if *reordered {
                            reg.add("exact.reordered", 1);
                        }
                        // add even when 0 so the counter exists whenever
                        // the exact scheduler ran at all
                        reg.add("exact.warm_start_hits", u64::from(*warm_start));
                        reg.add("exact.sat_decisions", *sat_decisions);
                        reg.add("exact.sat_conflicts", *sat_conflicts);
                        reg.add("exact.sat_propagations", *sat_propagations);
                        reg.add("exact.sat_restarts", *sat_restarts);
                        reg.add("exact.proof_clauses", *proof_clauses as u64);
                        hist.record("exact.sat_conflicts_per_solve", *sat_conflicts);
                        hist.record("exact.sat_decisions_per_solve", *sat_decisions);
                    }
                    DiagEvent::DepsAnalyzed {
                        pairs_decided,
                        gcd_hits,
                        banerjee_hits,
                        sat_decided,
                        widened_to_any,
                        certs_checked,
                    } => {
                        // add even when 0 so the whole family exists
                        // whenever the exact dependence engine ran at all
                        reg.add("deps.pairs_decided", *pairs_decided);
                        hist.record("deps.pairs_per_loop", *pairs_decided);
                        reg.add("deps.gcd_hits", *gcd_hits);
                        reg.add("deps.banerjee_hits", *banerjee_hits);
                        reg.add("deps.sat_decided", *sat_decided);
                        reg.add("deps.widened_to_any", *widened_to_any);
                        reg.add("deps.certs_checked", *certs_checked);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Parse `src` through the parse store. Returns the shared artifact
    /// and whether the lookup was a cache hit.
    fn parse_artifact(&self, src: &str, tracer: &Tracer) -> (Arc<ParseArtifact>, bool) {
        let src_fp = slc_analysis::fingerprint_str(src);
        self.parse.get_or_compute_hit(src_fp, || {
            let _sp = tracer.span("stage", "parse");
            self.timed_wall(&self.parse_ns, "wall.parse_ns", || {
                parse_program(src)
                    .map(|p| {
                        let fp = slc_analysis::program_fingerprint(&p);
                        (p, fp)
                    })
                    .map_err(|e| e.to_string())
            })
        })
    }

    /// Run `plan` over a parsed program through the plan store (the same
    /// key derivation for batch cells and daemon requests, so both share
    /// one artifact). `verify_as` names the workload for the verdict table
    /// when static verification gates the run.
    #[allow(clippy::too_many_arguments)]
    fn plan_artifact(
        &self,
        orig_prog: &Program,
        orig_fp: u64,
        plan: &PassPlan,
        slms: &SlmsConfig,
        verify: bool,
        verify_as: &str,
        tracer: &Tracer,
    ) -> (Arc<PlanArtifact>, bool) {
        // The verify flag joins the key only when set, so default runs
        // keep their historical cache behaviour (and the canonical report
        // stays byte-identical).
        let key = plan_key(orig_fp, plan, slms, verify);
        self.slms.get_or_compute_hit(key, || {
            let _sp = tracer.span("stage", "plan");
            FlightRecorder::global().record(RecKind::Enter, "plan.miss", key, 0);
            let out = self.timed_wall(&self.slms_ns, "wall.plan_ns", || {
                let pm = PassManager::new(slms.clone()).with_tracer(tracer.clone());
                match pm.run_with_verify(orig_prog, plan, verify) {
                    Ok((p, sink, verdicts)) => {
                        let mut delta = CounterRegistry::new();
                        if verify {
                            let mut sum = VerifySummary {
                                workload: verify_as.to_string(),
                                verified: 0,
                                skipped: 0,
                                obligations: 0,
                                violations: 0,
                            };
                            for vd in &verdicts {
                                sum.obligations += vd.obligation_count();
                                sum.violations += vd.violation_count();
                                for l in &vd.loops {
                                    match l.verdict {
                                        slc_verify::LoopVerdict::Verified { .. } => {
                                            sum.verified += 1
                                        }
                                        slc_verify::LoopVerdict::Skipped { .. } => sum.skipped += 1,
                                        slc_verify::LoopVerdict::Violated { .. } => {}
                                    }
                                }
                            }
                            delta.add("verify.loops_verified", sum.verified as u64);
                            delta.add("verify.loops_skipped", sum.skipped as u64);
                            delta.add("verify.obligations", sum.obligations as u64);
                            delta.add("verify.violations", sum.violations as u64);
                            self.verify_stats
                                .lock()
                                .unwrap()
                                .insert(sum.workload.clone(), sum);
                        }
                        let mut per_pass = self.pass_ns.lock().unwrap();
                        for pd in &sink.passes {
                            let slot = per_pass.entry(pd.pass.clone()).or_insert((0, 0));
                            slot.0 += pd.elapsed_ns;
                            slot.1 += 1;
                        }
                        drop(per_pass);
                        let mut hist = HistogramRegistry::new();
                        Self::count_slms_outcomes(&sink, &mut delta, &mut hist);
                        self.hist.lock().unwrap().merge(&hist);
                        // one span site + enter/exit flight events per plan
                        // miss: deterministic (pure function of the matrix)
                        // and attributed, so traced/untraced and
                        // sharded/in-process registries stay byte-identical
                        delta.add("trace.span_sites", 1);
                        delta.add("recorder.ring_events", 2);
                        self.absorb_delta(STAGE_PLAN, key, delta);
                        let fp = slc_analysis::program_fingerprint(&p);
                        let outcomes = sink.all_outcomes().cloned().collect::<Vec<_>>();
                        Ok((p, outcomes, fp))
                    }
                    Err(e) => Err(e.to_string()),
                }
            });
            FlightRecorder::global().record(RecKind::Exit, "plan.miss", key, 0);
            out
        })
    }

    /// Evaluate one matrix cell end to end (parse → plan → lower →
    /// schedule → simulate), every stage memoized. This is the single
    /// compile path: the batch engine calls it per matrix cell, and its
    /// parse/plan stores are the very ones daemon requests hit.
    pub fn eval_cell(&self, spec: &CellSpec<'_>, tracer: &Tracer) -> CellResult {
        self.eval_cell_keyed(spec, tracer).0
    }

    /// [`CompileService::eval_cell`] plus the [`CellKeys`] record of which
    /// store lookups the evaluation performed — what a shard worker ships
    /// to the dispatcher so the reducer can replay the lookups and rebuild
    /// single-process cache statistics.
    pub fn eval_cell_keyed(&self, spec: &CellSpec<'_>, tracer: &Tracer) -> (CellResult, CellKeys) {
        let w = spec.workload;
        let m = spec.machine;
        let kind = spec.compiler;
        let id = CellId {
            workload: w.name.to_string(),
            suite: w.suite.to_string(),
            machine: m.name.clone(),
            compiler: kind.label(),
            variant: spec.variant.label(),
        };
        let mut cell_span = tracer.span_dyn("cell", || {
            format!(
                "{}/{}/{}/{}",
                id.workload, id.machine, id.compiler, id.variant
            )
        });

        let mut keys = CellKeys {
            parse: slc_analysis::fingerprint_str(w.source),
            ..CellKeys::default()
        };

        // 1. parse (cached per source text)
        let (parsed, _) = self.parse_artifact(w.source, tracer);
        let (orig_prog, orig_fp) = match parsed.as_ref() {
            Ok(x) => x,
            Err(e) => {
                return (
                    CellResult {
                        id,
                        outcome: Err(format!("parse: {e}")),
                    },
                    keys,
                );
            }
        };

        // 2. pass plan (cached per program × plan fingerprint, shared
        //    across machines and personalities)
        let plan_art: Option<Arc<PlanArtifact>> = match spec.variant {
            Variant::Original => None,
            Variant::Slms => {
                keys.plan = Some(plan_key(*orig_fp, spec.plan, spec.slms, spec.verify));
                let (art, _) = self.plan_artifact(
                    orig_prog,
                    *orig_fp,
                    spec.plan,
                    spec.slms,
                    spec.verify,
                    w.name,
                    tracer,
                );
                Some(art)
            }
        };
        let plan_art = match plan_art.as_deref() {
            None => None,
            Some(Ok(x)) => Some(x),
            Some(Err(e)) => {
                return (
                    CellResult {
                        id,
                        outcome: Err(format!("plan: {e}")),
                    },
                    keys,
                );
            }
        };
        let (prog, prog_fp, transformed, slms_ii, optimality_gaps) = match plan_art {
            None => (orig_prog, *orig_fp, false, None, Vec::new()),
            Some((p, outcomes, fp)) => (
                p,
                *fp,
                outcomes.iter().any(|o| o.result.is_ok()),
                outcomes
                    .iter()
                    .find_map(|o| o.result.as_ref().ok().map(|r| r.ii)),
                outcomes
                    .iter()
                    .filter_map(|o| o.result.as_ref().ok())
                    .filter_map(|r| r.heuristic_ii.map(|h| h - r.ii))
                    .collect(),
            ),
        };

        // 3. schedule (cached per program × machine × personality; lowering
        //    cached separately because it is machine-independent)
        let compile_key =
            slc_analysis::fingerprint::combine(&[prog_fp, m.fingerprint(), kind.code()]);
        keys.compile = Some(compile_key);
        keys.lir = Some(prog_fp);
        let compiled = self.compile.get_or_compute(compile_key, || {
            let lir = self.lir.get_or_compute(prog_fp, || {
                let _sp = tracer.span("stage", "lower");
                self.timed_wall(&self.lower_ns, "wall.lower_ns", || lower_program(prog))
            });
            match lir.as_ref() {
                Ok(l) => {
                    let _sp = tracer.span("stage", "compile");
                    Ok(self.timed_wall(&self.compile_ns, "wall.compile_ns", || {
                        compile_lir(l, m, kind)
                    }))
                }
                Err(e) => Err(e.clone()),
            }
        });
        let comp = match compiled.as_ref() {
            Ok(c) => c,
            Err(e) => {
                return (
                    CellResult {
                        id,
                        outcome: Err(format!("lower: {e}")),
                    },
                    keys,
                );
            }
        };

        // 4. simulate (cached under the same key as the schedule)
        keys.sim = Some(compile_key);
        let sim = self.sim.get_or_compute(compile_key, || {
            let _sp = tracer.span("stage", "simulate");
            FlightRecorder::global().record(RecKind::Enter, "sim.miss", compile_key, 0);
            let result = self.timed_wall(&self.sim_ns, "wall.sim_ns", || {
                let out = simulate_spanned(&comp.compiled, m, SimFidelity::Fast, tracer);
                for (slot, v) in self.ff.iter().zip([
                    out.ff.fast_loops,
                    out.ff.fallback_loops,
                    out.ff.ff_hits,
                    out.ff.ff_misses,
                    out.ff.trips_total,
                    out.ff.trips_skipped,
                ]) {
                    slot.fetch_add(v, Ordering::Relaxed);
                }
                let mut delta = CounterRegistry::new();
                delta.add("sim.cycles_total", out.result.cycles);
                delta.add("sim.ops_total", out.result.total_ops());
                delta.add("sim.l1_hits", out.result.cache.hits);
                delta.add("sim.l1_misses", out.result.cache.misses);
                delta.add("sim.spill_accesses", out.result.spill_accesses);
                delta.add("sim.fast_loops", out.ff.fast_loops);
                delta.add("sim.fallback_loops", out.ff.fallback_loops);
                delta.add("sim.ff_hits", out.ff.ff_hits);
                delta.add("sim.ff_misses", out.ff.ff_misses);
                delta.add("sim.trips_total", out.ff.trips_total);
                delta.add("sim.trips_skipped", out.ff.trips_skipped);
                delta.add("trace.span_sites", 1);
                delta.add("recorder.ring_events", 2);
                self.absorb_delta(STAGE_SIM, compile_key, delta);
                out.result
            });
            FlightRecorder::global().record(RecKind::Exit, "sim.miss", compile_key, 0);
            result
        });
        let power = EnergyModel::default().report(&sim);
        cell_span.arg("cycles", sim.cycles);

        (
            CellResult {
                id,
                outcome: Ok(CellMetrics {
                    cycles: sim.cycles,
                    ops: sim.total_ops(),
                    l1_hits: sim.cache.hits,
                    l1_misses: sim.cache.misses,
                    spill_accesses: sim.spill_accesses,
                    energy: power.energy,
                    transformed,
                    slms_ii,
                    optimality_gaps,
                    loops: comp.loops.clone(),
                }),
            },
            keys,
        )
    }

    /// One daemon-style compile request: run `plan` over `src` and render
    /// the optimized source exactly like the one-shot CLI does (plain
    /// [`to_source`] or `--paper-style` [`to_paper_style`]). Parse and plan
    /// artifacts are served from the shared stores under the same keys the
    /// batch engine uses, so responses are byte-identical to one-shot
    /// output while repeated requests skip all the work.
    pub fn compile_request(
        &self,
        src: &str,
        plan: &PassPlan,
        slms: &SlmsConfig,
        paper_style: bool,
        tracer: &Tracer,
    ) -> Result<CompileOutcome, ServiceError> {
        let (parsed, _) = self.parse_artifact(src, tracer);
        let (orig_prog, orig_fp) = match parsed.as_ref() {
            Ok(x) => x,
            Err(e) => return Err(ServiceError::Parse(e.clone())),
        };
        let (art, cached) = self.plan_artifact(orig_prog, *orig_fp, plan, slms, false, "", tracer);
        match art.as_ref() {
            Ok((p, _, _)) => Ok(CompileOutcome {
                output: if paper_style {
                    to_paper_style(p)
                } else {
                    to_source(p)
                },
                cached,
            }),
            Err(e) => Err(ServiceError::Plan(e.clone())),
        }
    }

    /// One daemon-style explain request: the per-loop JSONL decision trace
    /// of `plan` over `src` ([`crate::explain::explain_source_json`]).
    /// Uncached: the trace renders per-pass loop lists that the cached
    /// plan artifact does not retain, so the plan re-runs — matching the
    /// one-shot `slc explain --json` byte for byte is the priority here,
    /// not latency.
    pub fn explain_request(&self, src: &str, plan: &PassPlan, slms: &SlmsConfig) -> String {
        crate::explain::explain_source_json(src, plan, slms)
    }

    /// One daemon-style verify request: lint + statically verify `src`,
    /// rendering the same report text as `slc verify` (see
    /// [`verify_report`]).
    pub fn verify_request(
        &self,
        src: &str,
        slms: &SlmsConfig,
        tracer: &Tracer,
    ) -> Result<VerifyOutcome, ServiceError> {
        let (parsed, _) = self.parse_artifact(src, tracer);
        match parsed.as_ref() {
            Ok((prog, _)) => {
                let (clean, output) = verify_report(prog, slms);
                Ok(VerifyOutcome { clean, output })
            }
            Err(e) => Err(ServiceError::Parse(e.clone())),
        }
    }
}

/// Lint + statically verify one program and render the report text the CLI
/// prints: one `  <lint>` line per lint, the verdict rendering, then the
/// summary line. Returns `(clean, text)` where `clean` means no violations
/// and no error-severity lints — shared by `slc verify` and the daemon's
/// `verify` request so both emit byte-identical reports.
pub fn verify_report(prog: &Program, cfg: &SlmsConfig) -> (bool, String) {
    use slc_verify::{lint_program, verify_slms_program, LintSeverity};
    let mut text = String::new();
    let lints = lint_program(prog);
    for l in &lints {
        text.push_str(&format!("  {l}\n"));
    }
    let verdict = verify_slms_program(prog, cfg);
    text.push_str(&verdict.render());
    let lint_errors = lints
        .iter()
        .filter(|l| l.severity == LintSeverity::Error)
        .count();
    text.push_str(&format!(
        "  summary: {} loop(s), {} obligations discharged, {} violation(s), {} lint error(s)\n",
        verdict.loops.len(),
        verdict.obligation_count(),
        verdict.violation_count(),
        lint_errors,
    ));
    (verdict.violation_count() == 0 && lint_errors == 0, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOT: &str = "float A[32]; float B[32]; float s; float t; int i;\n\
                       for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }";

    #[test]
    fn compile_request_is_cached_on_repeat() {
        let svc = CompileService::new();
        let plan = PassPlan::slms_only();
        let cfg = SlmsConfig::default();
        let tracer = Tracer::disabled();
        let first = svc
            .compile_request(DOT, &plan, &cfg, false, &tracer)
            .unwrap();
        assert!(!first.cached);
        let second = svc
            .compile_request(DOT, &plan, &cfg, false, &tracer)
            .unwrap();
        assert!(second.cached);
        assert_eq!(first.output, second.output);
        // paper style renders differently but shares the plan artifact
        let paper = svc
            .compile_request(DOT, &plan, &cfg, true, &tracer)
            .unwrap();
        assert!(paper.cached);
        assert_ne!(paper.output, first.output);
    }

    #[test]
    fn compile_request_matches_one_shot_pipeline() {
        let svc = CompileService::new();
        let plan = PassPlan::slms_only();
        let cfg = SlmsConfig::default();
        let got = svc
            .compile_request(DOT, &plan, &cfg, false, &Tracer::disabled())
            .unwrap();
        let prog = parse_program(DOT).unwrap();
        let (out, _) = PassManager::new(cfg.clone()).run(&prog, &plan).unwrap();
        assert_eq!(got.output, to_source(&out));
    }

    #[test]
    fn typed_errors_carry_the_stage() {
        let svc = CompileService::new();
        let cfg = SlmsConfig::default();
        let tracer = Tracer::disabled();
        let plan = PassPlan::slms_only();
        let err = svc
            .compile_request("int x; x = ;", &plan, &cfg, false, &tracer)
            .unwrap_err();
        assert!(matches!(err, ServiceError::Parse(_)), "{err}");
        let bad_plan = PassPlan::parse("fuse:0+9,slms").unwrap();
        let err = svc
            .compile_request(DOT, &bad_plan, &cfg, false, &tracer)
            .unwrap_err();
        assert!(matches!(err, ServiceError::Plan(_)), "{err}");
        assert!(err.to_string().starts_with("plan: pass fuse:0+9"), "{err}");
    }

    #[test]
    fn verify_request_matches_cli_rendering() {
        let svc = CompileService::new();
        let cfg = SlmsConfig::default();
        let out = svc.verify_request(DOT, &cfg, &Tracer::disabled()).unwrap();
        assert!(out.clean, "{}", out.output);
        let prog = parse_program(DOT).unwrap();
        let (clean, text) = verify_report(&prog, &cfg);
        assert!(clean);
        assert_eq!(out.output, text);
        assert!(text.contains("summary: "), "{text}");
    }

    #[test]
    fn serve_counters_land_in_the_registry() {
        let svc = CompileService::bounded(2);
        let plan = PassPlan::slms_only();
        let cfg = SlmsConfig::default();
        let tracer = Tracer::disabled();
        svc.note_request();
        svc.note_request();
        svc.note_rejection();
        svc.note_timeout();
        svc.compile_request(DOT, &plan, &cfg, false, &tracer)
            .unwrap();
        svc.compile_request(DOT, &plan, &cfg, false, &tracer)
            .unwrap();
        let c = svc.counters();
        assert_eq!(c.get("serve.requests"), 2);
        assert_eq!(c.get("serve.rejections"), 1);
        assert_eq!(c.get("serve.timeouts"), 1);
        assert!(c.get("serve.hits") > 0);
        assert_eq!(c.get("serve.refp_mismatches"), 0);
        assert_eq!(c.get("cache.parse.misses"), 1);
    }

    #[test]
    fn bounded_service_evicts_and_recompiles_identically() {
        let svc = CompileService::bounded(1);
        let plan = PassPlan::slms_only();
        let cfg = SlmsConfig::default();
        let tracer = Tracer::disabled();
        let other = "float a[8]; int i; for (i = 0; i < 4; i++) a[i] = 1.0;";
        let first = svc
            .compile_request(DOT, &plan, &cfg, false, &tracer)
            .unwrap();
        svc.compile_request(other, &plan, &cfg, false, &tracer)
            .unwrap();
        // capacity 1 per store → DOT's artifacts were evicted; the
        // recompiled output must be byte-identical and pass the
        // re-fingerprint check
        let again = svc
            .compile_request(DOT, &plan, &cfg, false, &tracer)
            .unwrap();
        assert!(!again.cached);
        assert_eq!(first.output, again.output);
        let cr = svc.cache_report();
        assert!(cr.total_evictions() > 0, "{cr:?}");
        assert_eq!(cr.total_refp_mismatches(), 0, "{cr:?}");
    }
}
