//! The unified pass framework: one composable driver for SLMS and every
//! §6 loop transformation.
//!
//! The paper's source-level compiler is *interactive*: the user picks
//! transformations from a menu, applies them in any order, and §6 shows the
//! order matters (SLMS∘fusion ≠ fusion∘SLMS). This module turns that menu
//! into data:
//!
//! * a [`PassSpec`] names one transformation with its parameters, with a
//!   textual syntax (`fuse:0+1`, `unroll:0+4`, `slms`) that parses and
//!   renders losslessly (`parse(render(p)) == p`);
//! * a [`PassPlan`] is an ordered list of specs (`normalize,fuse:0+1,slms`)
//!   with a stable content [`PassPlan::fingerprint`] — the batch engine
//!   memoizes transformed programs under *(program, plan)* keys, so two
//!   plans that differ anywhere (shape, order, arguments, SLMS config)
//!   never share a cache entry;
//! * every pass implements the [`Pass`] trait
//!   (`apply(&Program, &mut DiagSink) -> Result<Program, PassError>`),
//!   appending structured per-loop diagnostics to the sink as it runs;
//! * the [`PassManager`] compiles a plan against a base [`SlmsConfig`] and
//!   runs it, producing the transformed program plus the full decision
//!   trace (rendered by `slc explain`).
//!
//! Statement-level transforms address loops by their index among the
//! program's **top-level** `for` statements, in source order, as the plan
//! syntax counts them (`fuse:0+1` fuses the first two). Structural
//! failures (fusing loops with different headers, addressing a loop that
//! is not there) are hard [`PassError`]s — the §6 transforms are
//! user-directed and must apply — while SLMS declining a loop is *not* an
//! error: the loop stays, and the reason lands in the diagnostics.

use slc_ast::{parse_program, Program, Stmt};
use slc_core::diag::{DiagSink, PassArtifact, PassDiag};
use slc_core::{slms_program_spanned, SchedulerKind, SlmsConfig};
use slc_trace::Tracer;
use slc_transforms::{
    distribute, fuse, interchange, normalize, peel_front, reverse, unroll, TransformError,
};
use std::time::Instant;

/// One transformation with its parameters, as named in a plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PassSpec {
    /// `normalize` (every top-level loop) or `normalize:K` (one loop):
    /// rewrite to canonical `for (k = 0; k < T; k++)` form.
    Normalize {
        /// target loop, `None` = all top-level loops
        target: Option<usize>,
    },
    /// `fuse:A+B`: fuse top-level loops `A` and `B` (result replaces `A`).
    Fuse {
        /// first loop (kept position)
        a: usize,
        /// second loop (removed)
        b: usize,
    },
    /// `distribute:K+S`: split loop `K`'s body before statement `S`.
    Distribute {
        /// target loop
        target: usize,
        /// body split point (1 ≤ S < body length)
        split: usize,
    },
    /// `interchange:K`: swap the two outer loops of the perfect nest at
    /// top-level loop `K`.
    Interchange {
        /// target loop
        target: usize,
    },
    /// `reverse:K`: reverse loop `K`'s iteration direction.
    Reverse {
        /// target loop
        target: usize,
    },
    /// `peel:K+N`: peel the first `N` iterations of loop `K`.
    Peel {
        /// target loop
        target: usize,
        /// iterations to peel
        n: i64,
    },
    /// `unroll:K+F`: unroll loop `K` by factor `F`.
    Unroll {
        /// target loop
        target: usize,
        /// unroll factor
        factor: i64,
    },
    /// `slms` or `slms:nofilter`: source-level modulo scheduling of every
    /// eligible innermost loop (the `nofilter` modifier disables the §4
    /// bad-case filter on top of the manager's base config).
    Slms {
        /// disable the §4 filter for this pass
        no_filter: bool,
    },
    /// `exact` or `exact:nofilter`: SLMS with the exact (SAT-backed)
    /// scheduler — every small-enough loop additionally gets an
    /// [`OptimalityCertificate`](slc_exact::OptimalityCertificate), pushed
    /// into the pass's [`PassArtifact`] channel.
    Exact {
        /// disable the §4 filter for this pass
        no_filter: bool,
    },
}

impl PassSpec {
    /// The bare pass name (no arguments).
    pub fn kind(&self) -> &'static str {
        match self {
            PassSpec::Normalize { .. } => "normalize",
            PassSpec::Fuse { .. } => "fuse",
            PassSpec::Distribute { .. } => "distribute",
            PassSpec::Interchange { .. } => "interchange",
            PassSpec::Reverse { .. } => "reverse",
            PassSpec::Peel { .. } => "peel",
            PassSpec::Unroll { .. } => "unroll",
            PassSpec::Slms { .. } => "slms",
            PassSpec::Exact { .. } => "exact",
        }
    }
}

impl std::fmt::Display for PassSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassSpec::Normalize { target: None } => write!(f, "normalize"),
            PassSpec::Normalize { target: Some(k) } => write!(f, "normalize:{k}"),
            PassSpec::Fuse { a, b } => write!(f, "fuse:{a}+{b}"),
            PassSpec::Distribute { target, split } => write!(f, "distribute:{target}+{split}"),
            PassSpec::Interchange { target } => write!(f, "interchange:{target}"),
            PassSpec::Reverse { target } => write!(f, "reverse:{target}"),
            PassSpec::Peel { target, n } => write!(f, "peel:{target}+{n}"),
            PassSpec::Unroll { target, factor } => write!(f, "unroll:{target}+{factor}"),
            PassSpec::Slms { no_filter: false } => write!(f, "slms"),
            PassSpec::Slms { no_filter: true } => write!(f, "slms:nofilter"),
            PassSpec::Exact { no_filter: false } => write!(f, "exact"),
            PassSpec::Exact { no_filter: true } => write!(f, "exact:nofilter"),
        }
    }
}

/// A malformed plan string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// the offending plan item (or the whole string)
    pub item: String,
    /// what was wrong with it
    pub reason: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad pass `{}`: {}", self.item, self.reason)
    }
}

impl std::error::Error for PlanParseError {}

fn parse_err(item: &str, reason: impl Into<String>) -> PlanParseError {
    PlanParseError {
        item: item.to_string(),
        reason: reason.into(),
    }
}

/// Known pass names with their argument syntax, for error messages.
pub const PLAN_SYNTAX: &str = "normalize[:K] | fuse:A+B | distribute:K+S | interchange:K \
                               | reverse:K | peel:K+N | unroll:K+F | slms[:nofilter] \
                               | exact[:nofilter]";

fn parse_spec(item: &str) -> Result<PassSpec, PlanParseError> {
    let (name, args) = match item.split_once(':') {
        Some((n, a)) => (n, Some(a)),
        None => (item, None),
    };
    let ints = |args: Option<&str>, n: usize| -> Result<Vec<i64>, PlanParseError> {
        let raw = args.ok_or_else(|| parse_err(item, format!("needs {n} argument(s)")))?;
        let parts: Vec<&str> = raw.split('+').collect();
        if parts.len() != n {
            return Err(parse_err(
                item,
                format!("needs {n} argument(s), got {}", parts.len()),
            ));
        }
        parts
            .iter()
            .map(|p| {
                p.parse::<i64>()
                    .map_err(|_| parse_err(item, format!("`{p}` is not an integer")))
            })
            .collect()
    };
    let idx = |v: i64| -> Result<usize, PlanParseError> {
        usize::try_from(v).map_err(|_| parse_err(item, "loop index must be non-negative"))
    };
    match name {
        "normalize" => match args {
            None => Ok(PassSpec::Normalize { target: None }),
            Some(_) => {
                let v = ints(args, 1)?;
                Ok(PassSpec::Normalize {
                    target: Some(idx(v[0])?),
                })
            }
        },
        "fuse" => {
            let v = ints(args, 2)?;
            Ok(PassSpec::Fuse {
                a: idx(v[0])?,
                b: idx(v[1])?,
            })
        }
        "distribute" => {
            let v = ints(args, 2)?;
            Ok(PassSpec::Distribute {
                target: idx(v[0])?,
                split: idx(v[1])?,
            })
        }
        "interchange" => {
            let v = ints(args, 1)?;
            Ok(PassSpec::Interchange { target: idx(v[0])? })
        }
        "reverse" => {
            let v = ints(args, 1)?;
            Ok(PassSpec::Reverse { target: idx(v[0])? })
        }
        "peel" => {
            let v = ints(args, 2)?;
            Ok(PassSpec::Peel {
                target: idx(v[0])?,
                n: v[1],
            })
        }
        "unroll" => {
            let v = ints(args, 2)?;
            Ok(PassSpec::Unroll {
                target: idx(v[0])?,
                factor: v[1],
            })
        }
        "slms" => match args {
            None => Ok(PassSpec::Slms { no_filter: false }),
            Some("nofilter") => Ok(PassSpec::Slms { no_filter: true }),
            Some(other) => Err(parse_err(
                item,
                format!("unknown slms modifier `{other}` (valid: nofilter)"),
            )),
        },
        "exact" => match args {
            None => Ok(PassSpec::Exact { no_filter: false }),
            Some("nofilter") => Ok(PassSpec::Exact { no_filter: true }),
            Some(other) => Err(parse_err(
                item,
                format!("unknown exact modifier `{other}` (valid: nofilter)"),
            )),
        },
        other => Err(parse_err(
            item,
            format!("unknown pass `{other}` (valid: {PLAN_SYNTAX})"),
        )),
    }
}

/// An ordered list of passes — the unit the CLI, the batch engine, and the
/// §6 ordering experiments all consume.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PassPlan {
    /// passes in application order
    pub specs: Vec<PassSpec>,
}

impl PassPlan {
    /// The classic pipeline: SLMS alone (what `slc` without `--passes`
    /// runs, and what [`crate::BatchConfig::full_matrix`] measures).
    pub fn slms_only() -> Self {
        PassPlan {
            specs: vec![PassSpec::Slms { no_filter: false }],
        }
    }

    /// The exact-scheduler pipeline: one `exact` pass (what
    /// `slc --scheduler exact` and `slc batch --scheduler exact` run).
    pub fn exact_only() -> Self {
        PassPlan {
            specs: vec![PassSpec::Exact { no_filter: false }],
        }
    }

    /// Parse a comma-separated plan (`normalize,fuse:0+1,slms`).
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let items: Vec<&str> = text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if items.is_empty() {
            return Err(parse_err(text, "empty plan"));
        }
        let specs = items
            .into_iter()
            .map(parse_spec)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PassPlan { specs })
    }

    /// Stable content fingerprint of the plan as *resolved* against a base
    /// SLMS configuration: every pass feeds its name and parameters, and
    /// each `slms` pass feeds the full fingerprint of the configuration it
    /// would actually run with. Cache keys built from this are exhaustive —
    /// any change to plan shape, order, arguments or SLMS knobs changes
    /// the key.
    pub fn fingerprint(&self, slms_base: &SlmsConfig) -> u64 {
        let parts: Vec<u64> = self
            .specs
            .iter()
            .map(|s| match s {
                PassSpec::Normalize { target } => slc_analysis::fingerprint::tagged(
                    "normalize",
                    &[target.map_or(u64::MAX, |t| t as u64)],
                ),
                PassSpec::Fuse { a, b } => {
                    slc_analysis::fingerprint::tagged("fuse", &[*a as u64, *b as u64])
                }
                PassSpec::Distribute { target, split } => slc_analysis::fingerprint::tagged(
                    "distribute",
                    &[*target as u64, *split as u64],
                ),
                PassSpec::Interchange { target } => {
                    slc_analysis::fingerprint::tagged("interchange", &[*target as u64])
                }
                PassSpec::Reverse { target } => {
                    slc_analysis::fingerprint::tagged("reverse", &[*target as u64])
                }
                PassSpec::Peel { target, n } => {
                    slc_analysis::fingerprint::tagged("peel", &[*target as u64, *n as u64])
                }
                PassSpec::Unroll { target, factor } => {
                    slc_analysis::fingerprint::tagged("unroll", &[*target as u64, *factor as u64])
                }
                PassSpec::Slms { no_filter } => slc_analysis::fingerprint::tagged(
                    "slms",
                    &[resolve_slms(slms_base, *no_filter).fingerprint()],
                ),
                PassSpec::Exact { no_filter } => slc_analysis::fingerprint::tagged(
                    "exact",
                    &[resolve_exact(slms_base, *no_filter).fingerprint()],
                ),
            })
            .collect();
        slc_analysis::fingerprint::tagged("plan", &parts)
    }
}

impl std::fmt::Display for PassPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rendered: Vec<String> = self.specs.iter().map(|s| s.to_string()).collect();
        f.write_str(&rendered.join(","))
    }
}

impl std::str::FromStr for PassPlan {
    type Err = PlanParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PassPlan::parse(s)
    }
}

/// Why a pass failed to apply. SLMS declining a loop is *not* a
/// `PassError` (the loop stays, the reason lands in the diagnostics);
/// structural transform failures are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassError {
    /// A §6 transformation could not be applied.
    Transform {
        /// plan-syntax name of the failing pass (`fuse:0+1`)
        pass: String,
        /// the uniform transform error
        err: TransformError,
    },
}

impl std::fmt::Display for PassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassError::Transform { pass, err } => write!(f, "pass {pass}: {err}"),
        }
    }
}

impl std::error::Error for PassError {}

/// One executable pass: the uniform signature the whole SLC pipeline is
/// driven through.
pub trait Pass {
    /// Plan-syntax name (`fuse:0+1`, `slms:nofilter`).
    fn name(&self) -> String;
    /// Stable fingerprint of the pass (feeds the plan fingerprint).
    fn fingerprint(&self) -> u64;
    /// Apply to a program; append diagnostics (and the pass's wall clock)
    /// to the sink. Must leave `prog` untouched on failure.
    fn apply(&self, prog: &Program, sink: &mut DiagSink) -> Result<Program, PassError>;
}

fn resolve_slms(base: &SlmsConfig, no_filter: bool) -> SlmsConfig {
    let mut cfg = base.clone();
    if no_filter {
        cfg.apply_filter = false;
    }
    cfg
}

fn resolve_exact(base: &SlmsConfig, no_filter: bool) -> SlmsConfig {
    let mut cfg = resolve_slms(base, no_filter);
    cfg.scheduler = SchedulerKind::Exact;
    cfg
}

/// Indices into `prog.stmts` of the top-level `for` loops, in source order.
fn top_loop_positions(prog: &Program) -> Vec<usize> {
    prog.stmts
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Stmt::For(_)))
        .map(|(i, _)| i)
        .collect()
}

/// A [`PassSpec`] compiled against a base SLMS configuration.
#[derive(Debug, Clone)]
pub struct CompiledPass {
    spec: PassSpec,
    slms: SlmsConfig,
    tracer: Tracer,
}

impl CompiledPass {
    fn target_pos(&self, prog: &Program, index: usize) -> Result<usize, PassError> {
        let loops = top_loop_positions(prog);
        loops
            .get(index)
            .copied()
            .ok_or_else(|| PassError::Transform {
                pass: self.name(),
                err: TransformError::TargetNotFound {
                    index,
                    n_loops: loops.len(),
                },
            })
    }

    fn transform_err(&self, err: TransformError) -> PassError {
        PassError::Transform {
            pass: self.name(),
            err,
        }
    }

    fn loop_var(prog: &Program, pos: usize) -> String {
        match &prog.stmts[pos] {
            Stmt::For(f) => f.var.clone(),
            _ => unreachable!("top_loop_positions only returns for loops"),
        }
    }

    fn apply_inner(&self, prog: &Program, diag: &mut PassDiag) -> Result<Program, PassError> {
        match &self.spec {
            PassSpec::Slms { no_filter } => {
                let cfg = resolve_slms(&self.slms, *no_filter);
                let (out, outcomes) = slms_program_spanned(prog, &cfg, &self.tracer);
                let ok = outcomes.iter().filter(|o| o.result.is_ok()).count();
                diag.notes.push(format!(
                    "{ok} of {} innermost loop(s) pipelined",
                    outcomes.len()
                ));
                diag.loops = outcomes;
                Ok(out)
            }
            PassSpec::Exact { no_filter } => {
                let cfg = resolve_exact(&self.slms, *no_filter);
                let (out, outcomes) = slms_program_spanned(prog, &cfg, &self.tracer);
                let ok = outcomes.iter().filter(|o| o.result.is_ok()).count();
                for o in &outcomes {
                    if let Ok(r) = &o.result {
                        if let (Some(heuristic_ii), Some(cert)) = (r.heuristic_ii, &r.certificate) {
                            diag.artifacts.push(PassArtifact::Certificate {
                                loop_id: o.id.clone(),
                                heuristic_ii,
                                certificate: cert.clone(),
                            });
                        }
                    }
                }
                diag.notes.push(format!(
                    "{ok} of {} innermost loop(s) pipelined, {} with optimality certificate(s)",
                    outcomes.len(),
                    diag.artifacts.len()
                ));
                diag.loops = outcomes;
                Ok(out)
            }
            PassSpec::Normalize { target } => {
                let mut out = prog.clone();
                let positions = match target {
                    Some(t) => vec![self.target_pos(prog, *t)?],
                    None => top_loop_positions(prog),
                };
                // back-to-front so earlier positions survive the splices
                for pos in positions.into_iter().rev() {
                    let stmt = out.stmts[pos].clone();
                    let var = Self::loop_var(&out, pos);
                    let repl =
                        normalize(&mut out, &stmt, "nrm").map_err(|e| self.transform_err(e))?;
                    let changed = repl.len() != 1 || repl[0] != stmt;
                    diag.notes.push(if changed {
                        format!("loop over `{var}` normalized to canonical form")
                    } else {
                        format!("loop over `{var}` already canonical")
                    });
                    out.stmts.splice(pos..=pos, repl);
                }
                Ok(out)
            }
            PassSpec::Fuse { a, b } => {
                if a == b {
                    return Err(self.transform_err(TransformError::BadParameter(
                        "cannot fuse a loop with itself".into(),
                    )));
                }
                let pa = self.target_pos(prog, *a)?;
                let pb = self.target_pos(prog, *b)?;
                let fused =
                    fuse(&prog.stmts[pa], &prog.stmts[pb]).map_err(|e| self.transform_err(e))?;
                let mut out = prog.clone();
                diag.notes.push(format!(
                    "loops #{a} and #{b} (over `{}`) fused",
                    Self::loop_var(prog, pa)
                ));
                out.stmts[pa] = fused;
                out.stmts.remove(pb);
                Ok(out)
            }
            PassSpec::Distribute { target, split } => {
                let pos = self.target_pos(prog, *target)?;
                let (s1, s2) =
                    distribute(&prog.stmts[pos], *split).map_err(|e| self.transform_err(e))?;
                let mut out = prog.clone();
                diag.notes.push(format!(
                    "loop #{target} (over `{}`) distributed at statement {split}",
                    Self::loop_var(prog, pos)
                ));
                out.stmts.splice(pos..=pos, [s1, s2]);
                Ok(out)
            }
            PassSpec::Interchange { target } => {
                let pos = self.target_pos(prog, *target)?;
                let swapped = interchange(&prog.stmts[pos]).map_err(|e| self.transform_err(e))?;
                let mut out = prog.clone();
                diag.notes.push(format!(
                    "nest #{target} (outer `{}`) interchanged",
                    Self::loop_var(prog, pos)
                ));
                out.stmts[pos] = swapped;
                Ok(out)
            }
            PassSpec::Reverse { target } => {
                let pos = self.target_pos(prog, *target)?;
                let repl = reverse(&prog.stmts[pos]).map_err(|e| self.transform_err(e))?;
                let mut out = prog.clone();
                diag.notes.push(format!(
                    "loop #{target} (over `{}`) reversed",
                    Self::loop_var(prog, pos)
                ));
                out.stmts.splice(pos..=pos, repl);
                Ok(out)
            }
            PassSpec::Peel { target, n } => {
                let pos = self.target_pos(prog, *target)?;
                let repl = peel_front(&prog.stmts[pos], *n).map_err(|e| self.transform_err(e))?;
                let mut out = prog.clone();
                diag.notes.push(format!(
                    "loop #{target} (over `{}`): first {n} iteration(s) peeled",
                    Self::loop_var(prog, pos)
                ));
                out.stmts.splice(pos..=pos, repl);
                Ok(out)
            }
            PassSpec::Unroll { target, factor } => {
                let pos = self.target_pos(prog, *target)?;
                let repl = unroll(&prog.stmts[pos], *factor).map_err(|e| self.transform_err(e))?;
                let mut out = prog.clone();
                diag.notes.push(format!(
                    "loop #{target} (over `{}`) unrolled ×{factor}",
                    Self::loop_var(prog, pos)
                ));
                out.stmts.splice(pos..=pos, repl);
                Ok(out)
            }
        }
    }
}

impl Pass for CompiledPass {
    fn name(&self) -> String {
        self.spec.to_string()
    }

    fn fingerprint(&self) -> u64 {
        PassPlan {
            specs: vec![self.spec.clone()],
        }
        .fingerprint(&self.slms)
    }

    fn apply(&self, prog: &Program, sink: &mut DiagSink) -> Result<Program, PassError> {
        let mut span = self
            .tracer
            .span_dyn("pass", || format!("pass {}", self.name()));
        let idx = sink.begin_pass(self.name());
        let t0 = Instant::now();
        let result = self.apply_inner(prog, sink.pass_mut(idx));
        sink.pass_mut(idx).elapsed_ns = t0.elapsed().as_nanos() as u64;
        if let Err(e) = &result {
            sink.pass_mut(idx).notes.push(format!("FAILED: {e}"));
        }
        span.arg("ok", result.is_ok());
        result
    }
}

/// Compiles plans against a base SLMS configuration and runs them.
#[derive(Debug, Clone, Default)]
pub struct PassManager {
    /// base SLMS configuration `slms` passes run with (modifiers like
    /// `:nofilter` adjust a copy)
    pub slms: SlmsConfig,
    /// span collector (disabled by default; see [`PassManager::with_tracer`])
    tracer: Tracer,
}

impl PassManager {
    /// Manager with the given base SLMS configuration.
    pub fn new(slms: SlmsConfig) -> Self {
        PassManager {
            slms,
            tracer: Tracer::disabled(),
        }
    }

    /// Collect spans while running plans: one `pass` span per executed pass
    /// plus the `slms`/`verify` spans the core stages open. A disabled
    /// tracer (the default) makes every span a no-op.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Compile a plan into executable passes.
    pub fn compile(&self, plan: &PassPlan) -> Vec<Box<dyn Pass>> {
        plan.specs
            .iter()
            .map(|spec| {
                Box::new(CompiledPass {
                    spec: spec.clone(),
                    slms: self.slms.clone(),
                    tracer: self.tracer.clone(),
                }) as Box<dyn Pass>
            })
            .collect()
    }

    /// Run a plan over a program. Returns the transformed program and the
    /// full diagnostics (one [`PassDiag`] per executed pass). On a
    /// structural failure the error names the failing pass; the sink
    /// gathered so far is discarded with the partial program.
    ///
    /// In debug builds every `slms` pass is additionally checked by the
    /// static schedule verifier (`slc-verify`) and a violation trips a
    /// `debug_assert` — release builds skip the check entirely.
    pub fn run(&self, prog: &Program, plan: &PassPlan) -> Result<(Program, DiagSink), PassError> {
        let (out, sink, verdicts) = self.run_with_verify(prog, plan, cfg!(debug_assertions))?;
        for vd in &verdicts {
            debug_assert!(
                vd.clean(),
                "static schedule verification failed:\n{}",
                vd.render()
            );
        }
        Ok((out, sink))
    }

    /// Like [`PassManager::run`], but when `verify` is set the program
    /// state *before* each `slms` pass is handed to the static schedule
    /// verifier. One [`ProgramVerdict`](slc_verify::ProgramVerdict) per
    /// `slms` pass is returned in plan order, and each loop's
    /// `Verified`/`VerifyViolation` events are appended to its decision
    /// trace in the sink (so `slc explain` renders them).
    pub fn run_with_verify(
        &self,
        prog: &Program,
        plan: &PassPlan,
        verify: bool,
    ) -> Result<(Program, DiagSink, Vec<slc_verify::ProgramVerdict>), PassError> {
        let mut sink = DiagSink::new();
        let mut cur = prog.clone();
        let mut verdicts = Vec::new();
        for (spec, pass) in plan.specs.iter().zip(self.compile(plan)) {
            let is_sched = matches!(spec, PassSpec::Slms { .. } | PassSpec::Exact { .. });
            let pre = (verify && is_sched).then(|| cur.clone());
            cur = pass.apply(&cur, &mut sink)?;
            if let Some(pre) = pre {
                let cfg = match spec {
                    PassSpec::Slms { no_filter } => resolve_slms(&self.slms, *no_filter),
                    PassSpec::Exact { no_filter } => resolve_exact(&self.slms, *no_filter),
                    _ => unreachable!("pre-state is only cloned for scheduling passes"),
                };
                let verdict = slc_verify::verify_slms_program_spanned(&pre, &cfg, &self.tracer);
                attach_verify_events(&mut sink, &verdict);
                verdicts.push(verdict);
            }
        }
        Ok((cur, sink, verdicts))
    }

    /// Parse-and-run convenience for CLI-style entry points.
    pub fn run_source(&self, src: &str, plan: &PassPlan) -> Result<(Program, DiagSink), String> {
        let prog = parse_program(src).map_err(|e| e.to_string())?;
        self.run(&prog, plan).map_err(|e| e.to_string())
    }
}

/// Append the verifier's per-loop events to the matching loop outcomes of
/// the most recently executed pass.
fn attach_verify_events(sink: &mut DiagSink, verdict: &slc_verify::ProgramVerdict) {
    use slc_core::diag::DiagEvent;
    let Some(pd) = sink.passes.last_mut() else {
        return;
    };
    for lr in &verdict.loops {
        let Some(o) = pd.loops.iter_mut().find(|o| o.id == lr.id) else {
            continue;
        };
        match &lr.verdict {
            slc_verify::LoopVerdict::Verified { obligations } => {
                o.trace.push(DiagEvent::Verified {
                    obligations: *obligations,
                })
            }
            slc_verify::LoopVerdict::Violated { violations, .. } => {
                for viol in violations {
                    o.trace.push(DiagEvent::VerifyViolation {
                        rule: viol.rule().into(),
                        detail: viol.to_string(),
                    });
                }
            }
            slc_verify::LoopVerdict::Skipped { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::to_source;
    use slc_core::slms_program;

    fn plan(s: &str) -> PassPlan {
        PassPlan::parse(s).unwrap()
    }

    #[test]
    fn parse_render_roundtrip_examples() {
        for text in [
            "slms",
            "slms:nofilter",
            "exact",
            "exact:nofilter",
            "normalize",
            "normalize:2",
            "fuse:0+1,slms",
            "fuse:0+1,exact",
            "normalize,fuse:0+1,slms",
            "distribute:1+2,interchange:0,reverse:3,peel:0+2,unroll:1+4",
        ] {
            let p = plan(text);
            assert_eq!(p.to_string(), text);
            assert_eq!(PassPlan::parse(&p.to_string()).unwrap(), p);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for text in [
            "",
            "slmz",
            "fuse:0",
            "fuse:0+1+2",
            "unroll:a+2",
            "slms:x",
            "exact:x",
            "peel",
        ] {
            assert!(PassPlan::parse(text).is_err(), "{text} should not parse");
        }
        // whitespace is tolerated
        assert_eq!(plan(" fuse:0+1 , slms "), plan("fuse:0+1,slms"));
    }

    #[test]
    fn fingerprint_distinguishes_order_args_and_config() {
        let base = SlmsConfig::default();
        let a = plan("fuse:0+1,slms").fingerprint(&base);
        let b = plan("slms,fuse:0+1").fingerprint(&base);
        let c = plan("fuse:0+2,slms").fingerprint(&base);
        let d = plan("fuse:0+1,slms:nofilter").fingerprint(&base);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // base-config changes flow into the key too
        let nf = SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        };
        assert_ne!(
            plan("slms").fingerprint(&base),
            plan("slms").fingerprint(&nf)
        );
        // ...and `slms:nofilter` under a filtering base equals `slms`
        // under a non-filtering base (same resolved config)
        assert_eq!(
            plan("slms:nofilter").fingerprint(&base),
            plan("slms").fingerprint(&nf)
        );
        // the exact scheduler never shares a cache key with the heuristic
        assert_ne!(
            plan("exact").fingerprint(&base),
            plan("slms").fingerprint(&base)
        );
        assert_ne!(
            plan("exact").fingerprint(&base),
            plan("exact:nofilter").fingerprint(&base)
        );
    }

    #[test]
    fn exact_plan_fills_the_artifact_channel() {
        let prog = parse_program(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
        )
        .unwrap();
        let pm = PassManager::default();
        let (_, sink) = pm.run(&prog, &PassPlan::exact_only()).unwrap();
        let arts = &sink.passes[0].artifacts;
        assert_eq!(arts.len(), 1, "notes: {:?}", sink.passes[0].notes);
        let PassArtifact::Certificate {
            heuristic_ii,
            certificate,
            ..
        } = &arts[0];
        assert!(arts[0].optimality_gap() >= 0);
        assert_eq!(*heuristic_ii - certificate.ii, arts[0].optimality_gap());
        assert!(sink.passes[0].notes[0].contains("1 with optimality certificate"));
        // the heuristic plan leaves the sidecar channel empty
        let (_, sink) = pm.run(&prog, &PassPlan::slms_only()).unwrap();
        assert!(sink.passes[0].artifacts.is_empty());
    }

    #[test]
    fn exact_plan_verifies_like_slms() {
        let prog = parse_program(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
        )
        .unwrap();
        let pm = PassManager::default();
        let (_, _, verdicts) = pm
            .run_with_verify(&prog, &PassPlan::exact_only(), true)
            .unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].clean(), "{}", verdicts[0].render());
    }

    #[test]
    fn fuse_then_slms_runs_and_reports() {
        let prog = parse_program(
            "float a[64]; float b[64]; int i;\n\
             for (i = 1; i < 60; i++) a[i] = a[i - 1] * 2.0 + a[i + 1] * 2.0;\n\
             for (i = 1; i < 60; i++) b[i] = b[i - 1] * 2.0 + b[i + 1] * 2.0;",
        )
        .unwrap();
        let pm = PassManager::new(SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        });
        let (out, sink) = pm.run(&prog, &plan("fuse:0+1,slms")).unwrap();
        assert_eq!(sink.passes.len(), 2);
        assert_eq!(sink.passes[0].pass, "fuse:0+1");
        assert_eq!(sink.passes[1].pass, "slms");
        assert_eq!(sink.passes[1].loops.len(), 1, "one fused loop");
        assert!(sink.passes[1].loops[0].result.is_ok());
        assert!(to_source(&out).contains("par {"), "kernel emitted");
    }

    #[test]
    fn bad_target_is_a_structured_error() {
        let prog = parse_program("float a[8]; int i; for (i = 0; i < 4; i++) a[i] = 1.0;").unwrap();
        let pm = PassManager::default();
        let err = pm.run(&prog, &plan("fuse:0+3,slms")).unwrap_err();
        let PassError::Transform { pass, err } = err;
        assert_eq!(pass, "fuse:0+3");
        assert_eq!(
            err,
            TransformError::TargetNotFound {
                index: 3,
                n_loops: 1
            }
        );
    }

    #[test]
    fn normalize_all_is_identity_on_canonical_loops() {
        let prog = parse_program("float a[8]; int i; for (i = 0; i < 4; i++) a[i] = 1.0;").unwrap();
        let pm = PassManager::default();
        let (out, sink) = pm.run(&prog, &plan("normalize")).unwrap();
        assert_eq!(to_source(&out), to_source(&prog));
        assert!(sink.passes[0].notes[0].contains("already canonical"));
    }

    #[test]
    fn slms_only_plan_matches_direct_slms_program() {
        let prog = parse_program(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
        )
        .unwrap();
        let cfg = SlmsConfig::default();
        let (direct, outcomes) = slms_program(&prog, &cfg);
        let (via_plan, sink) = PassManager::new(cfg)
            .run(&prog, &PassPlan::slms_only())
            .unwrap();
        assert_eq!(to_source(&direct), to_source(&via_plan));
        assert_eq!(outcomes.len(), sink.passes[0].loops.len());
    }
}
