//! Multi-process sharded execution tier for the batch engine.
//!
//! `slc batch --shards N` fork/execs `N` copies of the running binary in a
//! hidden `batch-shard` mode and drives them over an NDJSON pipe protocol
//! (`slc-shard-proto-v1`, one JSON object per line — the same framing the
//! `slc serve` daemon speaks). The parent is a work-stealing dispatcher:
//! the matrix is cut into contiguous cell ranges by [`partition`] and
//! [`chunk_ranges`], each shard drains its own chunk deque, idle shards
//! steal whole chunks from the longest peer deque, and when every deque is
//! dry the dispatcher asks the busiest in-flight shard to *trim* — give
//! back the untouched half of its current range. Contiguous ranges over
//! the canonical workload-major matrix order are already cache-affine:
//! plan artifacts are keyed per workload and a workload's cells are
//! adjacent, so each shard computes a plan artifact at most once instead
//! of every shard re-deriving every workload's.
//!
//! **Determinism contract.** The reduced [`BatchReport`] is byte-identical
//! to the in-process engine's for every shard count:
//!
//! * cell outcomes are pure functions of the cell spec, so they are merged
//!   back by matrix index regardless of which shard (or how many shards)
//!   computed them;
//! * cache statistics are *replayed*, not summed: each shard ships the
//!   store keys its evaluations looked up ([`CellKeys`]), and the reducer
//!   re-executes the lookup sequence in matrix order against fresh key
//!   sets ([`replay_cache`]). For unbounded stores hits = lookups −
//!   distinct keys, which is schedule-independent, so the replay
//!   reconstructs exactly what one process would have reported;
//! * the deterministic counter registry is rebuilt from per-(stage, key)
//!   miss deltas: a shard tags every plan- and sim-miss delta with the
//!   store key that produced it, the reducer deduplicates by key (two
//!   shards that both missed the same key computed identical deltas) and
//!   sums — which is precisely the single-process registry, where each
//!   distinct key misses exactly once;
//! * wall-clock, queue depths and steal counts are scheduling-dependent,
//!   so they live only in the `slc-batch-timing-v4` sidecar
//!   ([`crate::batch::ShardStats`]) — never in the canonical report.
//!
//! **Fault degradation.** A shard that dies mid-run (EOF on its pipe) or
//! emits a malformed line is marked dead; the unreceived remainder of its
//! in-flight range and its queued chunks are redistributed to the
//! survivors. Because deltas are flushed *before* the cells they explain,
//! a dead shard can never have reported a cell whose counter deltas were
//! lost. If every shard dies while work remains, the dispatcher respawns a
//! replacement (bounded by a respawn budget) before giving up.

use crate::batch::{BatchConfig, BatchReport, ShardStats, TimingReport};
use crate::cache::{CacheReport, StoreStats};
use crate::compile::{CompilerKind, LoopInfo};
use crate::json::Json;
use crate::par::{effective_threads, par_map_indexed_stats, WorkerStats};
use crate::passes::PassPlan;
use crate::service::{
    finalize_counters, CellId, CellKeys, CellMetrics, CellResult, CellSpec, CompileService,
    PassTiming, StageNs, VerifySummary, STAGE_SIM,
};
use slc_core::{Expansion, FilterConfig, SchedulerKind, SlmsConfig};
use slc_machine::mach::{CacheConfig, IssueModel, MachineDesc};
use slc_sim::cycle::FfStats;
use slc_trace::{CounterRegistry, FlightRecorder, HistogramRegistry, Span, TraceCtx, Tracer};
use slc_workloads::{enumerate_matrix, MatrixCell, Suite, Workload};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Write as _};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Schema tag of the parent↔shard NDJSON wire protocol.
pub const SHARD_PROTO_SCHEMA: &str = "slc-shard-proto-v1";

/// Schema tag of the sharding benchmark document (`BENCH_shard.json`).
pub const SHARD_BENCH_SCHEMA: &str = "slc-shard-bench-v1";

/// Fault injections for the degradation tests (never used by the normal
/// CLI path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// the shard aborts itself after evaluating this many cells
    KillAfterCells(usize),
    /// the shard prints one malformed NDJSON line to the dispatcher after
    /// evaluating this many cells
    GarbageFromShard(usize),
    /// the dispatcher sends the shard one malformed NDJSON line instead of
    /// its first work range (the shard must exit with code 4)
    GarbageToShard,
}

/// Knobs of one sharded run.
#[derive(Debug, Clone, Default)]
pub struct ShardOptions {
    /// number of worker processes to spawn (must be ≥ 1)
    pub shards: usize,
    /// in-process map threads *per shard* (`None` = all cores)
    pub threads_per_shard: Option<usize>,
    /// dispatch granularity in cells (`None` = ¼ of an even split, so each
    /// shard starts with ~4 chunks to steal from)
    pub chunk: Option<usize>,
    /// how to exec a shard (`None` = the running binary + `batch-shard`);
    /// tests point this at `CARGO_BIN_EXE_slc`
    pub worker_cmd: Option<Vec<String>>,
    /// per-shard fault injections, `(shard index, fault)`
    pub faults: Vec<(usize, ShardFault)>,
}

/// Split `0..n` into `shards` contiguous ranges whose sizes differ by at
/// most one (remainder cells go to the front ranges). Ranges may be empty
/// when `n < shards`.
pub fn partition(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1);
    let base = n / shards;
    let rem = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0;
    for s in 0..shards {
        let len = base + usize::from(s < rem);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// Cut `lo..hi` into consecutive chunks of at most `chunk` cells.
pub fn chunk_ranges(lo: usize, hi: usize, chunk: usize) -> Vec<(usize, usize)> {
    let chunk = chunk.max(1);
    let mut out = Vec::new();
    let mut cur = lo;
    while cur < hi {
        let end = (cur + chunk).min(hi);
        out.push((cur, end));
        cur = end;
    }
    out
}

// ---------------------------------------------------------------------------
// Wire codec. Every u64 store key / fingerprint crosses the pipe as its
// two's-complement i64 (the JSON layer carries i64; `as` casts roundtrip
// exactly), and every f64 as its IEEE bit pattern, so nothing is lost to
// decimal formatting.
// ---------------------------------------------------------------------------

fn ju(v: u64) -> Json {
    Json::Int(v as i64)
}

fn jf(v: f64) -> Json {
    ju(v.to_bits())
}

fn want<'a>(j: &'a Json, k: &str) -> Result<&'a Json, String> {
    j.get(k).ok_or_else(|| format!("missing field `{k}`"))
}

fn want_u(j: &Json, k: &str) -> Result<u64, String> {
    want(j, k)?
        .as_i64()
        .map(|v| v as u64)
        .ok_or_else(|| format!("field `{k}` is not an integer"))
}

fn want_usize(j: &Json, k: &str) -> Result<usize, String> {
    Ok(want_u(j, k)? as usize)
}

fn want_f(j: &Json, k: &str) -> Result<f64, String> {
    Ok(f64::from_bits(want_u(j, k)?))
}

fn want_s<'a>(j: &'a Json, k: &str) -> Result<&'a str, String> {
    want(j, k)?
        .as_str()
        .ok_or_else(|| format!("field `{k}` is not a string"))
}

fn want_b(j: &Json, k: &str) -> Result<bool, String> {
    match want(j, k)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("field `{k}` is not a bool")),
    }
}

fn want_arr<'a>(j: &'a Json, k: &str) -> Result<&'a [Json], String> {
    want(j, k)?
        .as_arr()
        .ok_or_else(|| format!("field `{k}` is not an array"))
}

fn opt_u(j: &Json, k: &str) -> Option<u64> {
    j.get(k).and_then(Json::as_i64).map(|v| v as u64)
}

fn msg_type(j: &Json) -> &str {
    j.get("type").and_then(Json::as_str).unwrap_or("")
}

fn machine_json(m: &MachineDesc) -> Json {
    Json::obj()
        .field("name", m.name.as_str())
        .field(
            "issue",
            match m.issue {
                IssueModel::StaticVliw => "vliw",
                IssueModel::DynamicInOrder => "inorder",
            },
        )
        .field("issue_width", m.issue_width)
        .field(
            "units",
            Json::Arr(m.units.iter().map(|&u| Json::from(u)).collect()),
        )
        .field(
            "latency",
            Json::Arr(m.latency.iter().map(|&l| Json::from(l)).collect()),
        )
        .field("int_regs", m.int_regs)
        .field("fp_regs", m.fp_regs)
        .field(
            "cache",
            Json::obj()
                .field("size", m.cache.size)
                .field("line", m.cache.line)
                .field("ways", m.cache.ways)
                .field("miss_penalty", m.cache.miss_penalty),
        )
        .field("elem_bytes", m.elem_bytes)
        .field("spill_penalty", m.spill_penalty)
}

fn decode_machine(j: &Json) -> Result<MachineDesc, String> {
    let mut units = [0usize; 7];
    let mut latency = [0u32; 7];
    let ua = want_arr(j, "units")?;
    let la = want_arr(j, "latency")?;
    if ua.len() != 7 || la.len() != 7 {
        return Err("machine unit/latency tables must have 7 entries".into());
    }
    for i in 0..7 {
        units[i] = ua[i].as_i64().ok_or("bad unit entry")? as usize;
        latency[i] = la[i].as_i64().ok_or("bad latency entry")? as u32;
    }
    let cache = want(j, "cache")?;
    Ok(MachineDesc {
        name: want_s(j, "name")?.to_string(),
        issue: match want_s(j, "issue")? {
            "vliw" => IssueModel::StaticVliw,
            "inorder" => IssueModel::DynamicInOrder,
            other => return Err(format!("unknown issue model `{other}`")),
        },
        issue_width: want_usize(j, "issue_width")?,
        units,
        latency,
        int_regs: want_usize(j, "int_regs")?,
        fp_regs: want_usize(j, "fp_regs")?,
        cache: CacheConfig {
            size: want_usize(cache, "size")?,
            line: want_usize(cache, "line")?,
            ways: want_usize(cache, "ways")?,
            miss_penalty: want_u(cache, "miss_penalty")? as u32,
        },
        elem_bytes: want_usize(j, "elem_bytes")?,
        spill_penalty: want_u(j, "spill_penalty")? as u32,
    })
}

fn slms_json(s: &SlmsConfig) -> Json {
    Json::obj()
        .field("max_memref_ratio", jf(s.filter.max_memref_ratio))
        .field(
            "min_arith_per_ref",
            s.filter.min_arith_per_ref.map(|r| ju(r.to_bits())),
        )
        .field("apply_filter", s.apply_filter)
        .field(
            "expansion",
            match s.expansion {
                Expansion::Off => "off",
                Expansion::Mve => "mve",
                Expansion::ScalarExpand => "scalar",
            },
        )
        .field("if_conversion", s.if_conversion)
        .field("max_decompositions", s.max_decompositions)
        .field("allow_symbolic_guard", s.allow_symbolic_guard)
        .field(
            "scheduler",
            match s.scheduler {
                SchedulerKind::Heuristic => "heuristic",
                SchedulerKind::Exact => "exact",
            },
        )
}

fn decode_slms(j: &Json) -> Result<SlmsConfig, String> {
    Ok(SlmsConfig {
        filter: FilterConfig {
            max_memref_ratio: want_f(j, "max_memref_ratio")?,
            min_arith_per_ref: opt_u(j, "min_arith_per_ref").map(f64::from_bits),
        },
        apply_filter: want_b(j, "apply_filter")?,
        expansion: match want_s(j, "expansion")? {
            "off" => Expansion::Off,
            "mve" => Expansion::Mve,
            "scalar" => Expansion::ScalarExpand,
            other => return Err(format!("unknown expansion `{other}`")),
        },
        if_conversion: want_b(j, "if_conversion")?,
        max_decompositions: want_usize(j, "max_decompositions")?,
        allow_symbolic_guard: want_b(j, "allow_symbolic_guard")?,
        scheduler: match want_s(j, "scheduler")? {
            "heuristic" => SchedulerKind::Heuristic,
            "exact" => SchedulerKind::Exact,
            other => return Err(format!("unknown scheduler `{other}`")),
        },
    })
}

fn init_json(cfg: &BatchConfig, threads: Option<usize>, ctx: Option<TraceCtx>) -> Json {
    let mut j = Json::obj()
        .field("type", "init")
        .field("schema", SHARD_PROTO_SCHEMA)
        .field("threads", threads.unwrap_or(0))
        .field("trace", ctx.is_some());
    if let Some(c) = ctx {
        // trace-context propagation: the worker binds the same trace id so
        // its span dump stitches into the dispatcher's timeline
        j = j
            .field("trace_id", c.trace_id_hex())
            .field("parent_span", c.parent_span_hex());
    }
    j.field("verify", cfg.verify)
        .field("plan", cfg.plan.to_string())
        .field("slms", slms_json(&cfg.slms))
        .field(
            "workloads",
            Json::Arr(
                cfg.workloads
                    .iter()
                    .map(|w| {
                        Json::obj()
                            .field("name", w.name)
                            .field("suite", w.suite.to_string())
                            .field("source", w.source)
                    })
                    .collect(),
            ),
        )
        .field(
            "machines",
            Json::Arr(cfg.machines.iter().map(machine_json).collect()),
        )
        .field(
            "compilers",
            Json::Arr(
                cfg.compilers
                    .iter()
                    .map(|c| Json::from(c.label()))
                    .collect(),
            ),
        )
}

fn decode_suite(label: &str) -> Result<Suite, String> {
    Ok(match label {
        "livermore" => Suite::Livermore,
        "linpack" => Suite::Linpack,
        "nas" => Suite::Nas,
        "stone" => Suite::Stone,
        "paper" => Suite::Paper,
        other => return Err(format!("unknown suite `{other}`")),
    })
}

fn decode_init(j: &Json) -> Result<(BatchConfig, Option<usize>, Option<TraceCtx>), String> {
    if want_s(j, "schema")? != SHARD_PROTO_SCHEMA {
        return Err(format!("unknown shard protocol `{}`", want_s(j, "schema")?));
    }
    // trace fields are read tolerantly: an init without them (an older
    // dispatcher) is simply an untraced worker
    let ctx = match (
        matches!(j.get("trace"), Some(Json::Bool(true))),
        j.get("trace_id").and_then(Json::as_str),
        j.get("parent_span").and_then(Json::as_str),
    ) {
        (true, Some(tid), Some(ps)) => Some(TraceCtx::from_hex(tid, ps)?),
        _ => None,
    };
    let mut workloads = Vec::new();
    for w in want_arr(j, "workloads")? {
        // Workload holds &'static str (the stock suites are compiled in);
        // a shard receives arbitrary sources once per process, so leaking
        // them is bounded and buys us the unmodified Workload type.
        workloads.push(Workload {
            name: Box::leak(want_s(w, "name")?.to_string().into_boxed_str()),
            suite: decode_suite(want_s(w, "suite")?)?,
            source: Box::leak(want_s(w, "source")?.to_string().into_boxed_str()),
        });
    }
    let mut machines = Vec::new();
    for m in want_arr(j, "machines")? {
        machines.push(decode_machine(m)?);
    }
    let mut compilers = Vec::new();
    for c in want_arr(j, "compilers")? {
        compilers.push(match c.as_str() {
            Some("weak") => CompilerKind::Weak,
            Some("opt") => CompilerKind::Optimizing,
            Some("ms") => CompilerKind::OptimizingMs,
            other => return Err(format!("unknown compiler label {other:?}")),
        });
    }
    let plan_text = want_s(j, "plan")?;
    let plan = PassPlan::parse(plan_text).map_err(|e| format!("bad plan `{plan_text}`: {e}"))?;
    let threads = match want_u(j, "threads")? as usize {
        0 => None,
        t => Some(t),
    };
    Ok((
        BatchConfig {
            workloads,
            machines,
            compilers,
            slms: decode_slms(want(j, "slms")?)?,
            plan,
            threads,
            verify: want_b(j, "verify")?,
        },
        threads,
        ctx,
    ))
}

fn keys_json(k: &CellKeys) -> Json {
    Json::obj()
        .field("parse", ju(k.parse))
        .field("plan", k.plan.map(ju))
        .field("compile", k.compile.map(ju))
        .field("lir", k.lir.map(ju))
        .field("sim", k.sim.map(ju))
}

fn decode_keys(j: &Json) -> Result<CellKeys, String> {
    Ok(CellKeys {
        parse: want_u(j, "parse")?,
        plan: opt_u(j, "plan"),
        compile: opt_u(j, "compile"),
        lir: opt_u(j, "lir"),
        sim: opt_u(j, "sim"),
    })
}

fn cell_json(index: usize, res: &CellResult, keys: &CellKeys) -> Json {
    let base = Json::obj()
        .field("index", index)
        .field("keys", keys_json(keys));
    match &res.outcome {
        Err(e) => base.field("ok", false).field("error", e.as_str()),
        Ok(m) => base
            .field("ok", true)
            .field("cycles", ju(m.cycles))
            .field("ops", ju(m.ops))
            .field("l1_hits", ju(m.l1_hits))
            .field("l1_misses", ju(m.l1_misses))
            .field("spill_accesses", ju(m.spill_accesses))
            .field("energy", jf(m.energy))
            .field("transformed", m.transformed)
            .field("slms_ii", m.slms_ii)
            .field(
                "gaps",
                Json::Arr(m.optimality_gaps.iter().map(|&g| Json::from(g)).collect()),
            )
            .field(
                "loops",
                Json::Arr(
                    m.loops
                        .iter()
                        .map(|l| {
                            Json::obj()
                                .field("var", l.var.as_str())
                                .field("trips", l.trips)
                                .field("bundles_per_iter", l.bundles_per_iter)
                                .field("ms_applied", l.ms_applied)
                                .field("ii", l.ii)
                                .field("stages", l.stages)
                                .field("reg_pressure", l.reg_pressure)
                                .field("spilled", l.spilled)
                        })
                        .collect(),
                ),
            ),
    }
}

type WireCell = (usize, Result<CellMetrics, String>, CellKeys);

fn decode_cell(j: &Json) -> Result<WireCell, String> {
    let index = want_usize(j, "index")?;
    let keys = decode_keys(want(j, "keys")?)?;
    if !want_b(j, "ok")? {
        return Ok((index, Err(want_s(j, "error")?.to_string()), keys));
    }
    let mut loops = Vec::new();
    for l in want_arr(j, "loops")? {
        loops.push(LoopInfo {
            var: want_s(l, "var")?.to_string(),
            trips: want(l, "trips")?.as_i64().ok_or("bad trips")?,
            bundles_per_iter: want_usize(l, "bundles_per_iter")?,
            ms_applied: want_b(l, "ms_applied")?,
            ii: l.get("ii").and_then(Json::as_i64),
            stages: l.get("stages").and_then(Json::as_i64),
            reg_pressure: want_usize(l, "reg_pressure")?,
            spilled: want_usize(l, "spilled")?,
        });
    }
    let gaps = want_arr(j, "gaps")?
        .iter()
        .map(|g| g.as_i64().ok_or_else(|| "bad gap".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((
        index,
        Ok(CellMetrics {
            cycles: want_u(j, "cycles")?,
            ops: want_u(j, "ops")?,
            l1_hits: want_u(j, "l1_hits")?,
            l1_misses: want_u(j, "l1_misses")?,
            spill_accesses: want_u(j, "spill_accesses")?,
            energy: want_f(j, "energy")?,
            transformed: want_b(j, "transformed")?,
            slms_ii: j.get("slms_ii").and_then(Json::as_i64),
            optimality_gaps: gaps,
            loops,
        }),
        keys,
    ))
}

fn deltas_json(entries: &[(u8, u64, CounterRegistry)], verify: &[VerifySummary]) -> Json {
    Json::obj()
        .field("type", "deltas")
        .field(
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|(stage, key, reg)| {
                        let mut counters = Json::obj();
                        for (name, v) in reg.iter() {
                            counters = counters.field(name, ju(v));
                        }
                        Json::obj()
                            .field("stage", *stage as u64)
                            .field("key", ju(*key))
                            .field("counters", counters)
                    })
                    .collect(),
            ),
        )
        .field(
            "verify",
            Json::Arr(
                verify
                    .iter()
                    .map(|v| {
                        Json::obj()
                            .field("workload", v.workload.as_str())
                            .field("verified", v.verified)
                            .field("skipped", v.skipped)
                            .field("obligations", v.obligations)
                            .field("violations", v.violations)
                    })
                    .collect(),
            ),
        )
}

/// CPU time this process has consumed, in nanoseconds (scheduler runtime
/// from `/proc/self/schedstat`, falling back to `utime + stime` ticks from
/// `/proc/self/stat`; 0 when neither is readable). Shards report this so
/// the shard-count sweep can quote a per-shard critical path that is not
/// distorted by time-slicing when shards outnumber cores.
fn self_cpu_ns() -> u64 {
    if let Ok(s) = std::fs::read_to_string("/proc/self/schedstat") {
        if let Some(ns) = s.split_whitespace().next().and_then(|f| f.parse().ok()) {
            return ns;
        }
    }
    if let Ok(s) = std::fs::read_to_string("/proc/self/stat") {
        // fields 14/15 (utime/stime) counted after the parenthesised comm,
        // which may itself contain spaces
        if let Some(rest) = s.rsplit_once(')').map(|(_, r)| r) {
            let f: Vec<&str> = rest.split_whitespace().collect();
            let utime: u64 = f.get(11).and_then(|x| x.parse().ok()).unwrap_or(0);
            let stime: u64 = f.get(12).and_then(|x| x.parse().ok()).unwrap_or(0);
            return (utime + stime) * 10_000_000;
        }
    }
    0
}

fn stats_json(
    workers: &[WorkerStats],
    stage: &StageNs,
    passes: &[PassTiming],
    cpu_ns: u64,
    span_dump: Option<String>,
) -> Json {
    let mut j = Json::obj().field("type", "stats").field("cpu", ju(cpu_ns));
    if let Some(dump) = span_dump {
        j = j.field("span_dump", dump);
    }
    j.field(
        "workers",
        Json::Arr(
            workers
                .iter()
                .map(|w| {
                    Json::obj()
                        .field("worker", w.worker)
                        .field("claimed", ju(w.claimed))
                        .field("empty_polls", ju(w.empty_polls))
                        .field("busy_ns", ju(w.busy_ns))
                })
                .collect(),
        ),
    )
    .field(
        "stage",
        Json::obj()
            .field("parse", ju(stage.parse))
            .field("slms", ju(stage.slms))
            .field("lower", ju(stage.lower))
            .field("compile", ju(stage.compile))
            .field("sim", ju(stage.sim)),
    )
    .field(
        "passes",
        Json::Arr(
            passes
                .iter()
                .map(|p| {
                    Json::obj()
                        .field("pass", p.pass.as_str())
                        .field("ns", ju(p.ns))
                        .field("runs", ju(p.runs))
                })
                .collect(),
        ),
    )
}

// ---------------------------------------------------------------------------
// The deterministic reducer.
// ---------------------------------------------------------------------------

/// Re-execute the store-lookup sequence of every cell, in matrix order,
/// against fresh key sets. Because each evaluation's lookups (and their
/// hit/miss outcome against "has this key been computed yet") are pure
/// functions of the key history — waiters on an in-flight computation count
/// as hits, so totals are order-independent for unbounded stores — this
/// rebuilds exactly the [`CacheReport`] a single process reports.
pub(crate) fn replay_cache<'a>(keys: impl Iterator<Item = &'a CellKeys>) -> CacheReport {
    struct Store {
        seen: HashSet<u64>,
        stats: StoreStats,
    }
    impl Store {
        fn new() -> Store {
            Store {
                seen: HashSet::new(),
                stats: StoreStats::default(),
            }
        }
        /// Replay one lookup; returns true on miss (first sight of the key).
        fn look(&mut self, key: u64) -> bool {
            if self.seen.insert(key) {
                self.stats.misses += 1;
                true
            } else {
                self.stats.hits += 1;
                false
            }
        }
    }
    let (mut parse, mut slms, mut lir, mut compile, mut sim) = (
        Store::new(),
        Store::new(),
        Store::new(),
        Store::new(),
        Store::new(),
    );
    for k in keys {
        parse.look(k.parse);
        if let Some(p) = k.plan {
            slms.look(p);
        }
        if let Some(c) = k.compile {
            // the LIR store is only consulted inside a compile miss
            if compile.look(c) {
                if let Some(l) = k.lir {
                    lir.look(l);
                }
            }
        }
        if let Some(s) = k.sim {
            sim.look(s);
        }
    }
    CacheReport {
        parse: parse.stats,
        slms: slms.stats,
        lir: lir.stats,
        compile: compile.stats,
        sim: sim.stats,
    }
}

/// Rebuild the deterministic registry and steady-state counters from the
/// deduplicated per-(stage, key) miss deltas plus the replayed cache
/// report. Summing one delta per distinct key is exactly what the
/// single-process registry accumulated, since each key misses once there.
fn reduce_counters(
    deltas: &BTreeMap<(u8, u64), CounterRegistry>,
    cache: &CacheReport,
) -> (CounterRegistry, FfStats) {
    let mut base = CounterRegistry::new();
    let mut ff = FfStats::default();
    for ((stage, _), reg) in deltas {
        base.merge(reg);
        if *stage == STAGE_SIM {
            ff.fast_loops += reg.get("sim.fast_loops");
            ff.fallback_loops += reg.get("sim.fallback_loops");
            ff.ff_hits += reg.get("sim.ff_hits");
            ff.ff_misses += reg.get("sim.ff_misses");
            ff.trips_total += reg.get("sim.trips_total");
            ff.trips_skipped += reg.get("sim.trips_skipped");
        }
    }
    (finalize_counters(base, cache, 0, 0, 0), ff)
}

fn cell_id(cfg: &BatchConfig, cell: &MatrixCell) -> CellId {
    let w = &cfg.workloads[cell.workload];
    CellId {
        workload: w.name.to_string(),
        suite: w.suite.to_string(),
        machine: cfg.machines[cell.machine].name.clone(),
        compiler: cfg.compilers[cell.compiler].label(),
        variant: cell.variant.label(),
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = (sorted.len() - 1) as f64 * q;
    sorted[pos.round() as usize]
}

// ---------------------------------------------------------------------------
// The dispatcher.
// ---------------------------------------------------------------------------

enum Ev {
    Line(String),
    Eof,
}

struct Slot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    token: usize,
    alive: bool,
    ready: bool,
    poison_next: bool,
    inflight: Option<(usize, usize, Instant)>,
    span: Option<Span>,
    pending: VecDeque<(usize, usize)>,
    trim_outstanding: bool,
    chunk_ms: Vec<f64>,
    stats: ShardStats,
    pass_merged: bool,
    /// newest flight-recorder tail the worker shipped with a `cells`
    /// message — becomes `stats.flight` if the shard dies
    last_flight: Option<String>,
}

impl Slot {
    fn send(&mut self, line: &str) -> bool {
        let Some(stdin) = self.stdin.as_mut() else {
            return false;
        };
        writeln!(stdin, "{line}")
            .and_then(|_| stdin.flush())
            .is_ok()
    }
}

/// Evaluate the whole matrix across `opts.shards` worker processes and
/// reduce to a [`BatchReport`] byte-identical to the in-process engine's
/// (see the module docs for why). Only wall-clock and dispatch accounting
/// differ: `timing.shards` is populated and the top-level worker list is
/// empty (each shard carries its own).
pub fn run_sharded(
    cfg: &BatchConfig,
    opts: &ShardOptions,
    tracer: &Tracer,
) -> Result<BatchReport, String> {
    if opts.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let cells = enumerate_matrix(cfg.workloads.len(), cfg.machines.len(), cfg.compilers.len());
    let n = cells.len();
    let cmd: Vec<String> = match &opts.worker_cmd {
        Some(c) if !c.is_empty() => c.clone(),
        _ => vec![
            std::env::current_exe()
                .map_err(|e| format!("cannot locate own binary: {e}"))?
                .to_string_lossy()
                .into_owned(),
            "batch-shard".into(),
        ],
    };
    let chunk = opts
        .chunk
        .unwrap_or_else(|| n.div_ceil(opts.shards.max(1) * 4).max(1));
    // bind (or mint) the trace context so every worker's spans share one
    // trace id with the dispatcher's
    let ctx = if tracer.is_enabled() {
        let c = tracer.ctx().unwrap_or_else(TraceCtx::fresh);
        tracer.set_ctx(c);
        tracer.ctx()
    } else {
        None
    };
    let init_line = init_json(cfg, opts.threads_per_shard, ctx).to_string();

    tracer.set_thread_track(0, "main");
    let mut batch_span = tracer.span("batch", "batch.run");
    batch_span.arg("cells", n);
    batch_span.arg("shards", opts.shards);
    let t0 = Instant::now();

    let (tx, rx) = mpsc::channel::<(usize, Ev)>();
    let mut next_token = 0usize;
    let mut token_slot: HashMap<usize, usize> = HashMap::new();
    let mut slots: Vec<Slot> = Vec::with_capacity(opts.shards);

    let spawn = |slot_idx: usize,
                 token: usize,
                 first_spawn: bool,
                 tx: &mpsc::Sender<(usize, Ev)>|
     -> Result<(Child, ChildStdin), String> {
        let mut c = Command::new(&cmd[0]);
        c.args(&cmd[1..]);
        if first_spawn {
            for (idx, fault) in &opts.faults {
                if *idx == slot_idx {
                    match fault {
                        ShardFault::KillAfterCells(k) => {
                            c.arg("--fail-after").arg(k.to_string());
                        }
                        ShardFault::GarbageFromShard(k) => {
                            c.arg("--garbage-after").arg(k.to_string());
                        }
                        ShardFault::GarbageToShard => {}
                    }
                }
            }
        }
        let mut child = c
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawning shard {slot_idx} ({}): {e}", cmd[0]))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let tx = tx.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(stdout);
            for line in reader.lines() {
                match line {
                    Ok(l) => {
                        if tx.send((token, Ev::Line(l))).is_err() {
                            return;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = tx.send((token, Ev::Eof));
        });
        Ok((child, stdin))
    };

    for (s, (lo, hi)) in partition(n, opts.shards).into_iter().enumerate() {
        let token = next_token;
        next_token += 1;
        let (child, stdin) = spawn(s, token, true, &tx)?;
        token_slot.insert(token, s);
        let mut slot = Slot {
            child: Some(child),
            stdin: Some(stdin),
            token,
            alive: true,
            ready: false,
            poison_next: opts
                .faults
                .iter()
                .any(|(idx, f)| *idx == s && *f == ShardFault::GarbageToShard),
            inflight: None,
            span: None,
            pending: chunk_ranges(lo, hi, chunk).into(),
            trim_outstanding: false,
            chunk_ms: Vec::new(),
            stats: ShardStats {
                shard: s,
                alive: true,
                ..ShardStats::default()
            },
            pass_merged: false,
            last_flight: None,
        };
        if !slot.send(&init_line) {
            slot.alive = false;
            slot.stats.alive = false;
        }
        slots.push(slot);
    }

    let mut results: Vec<Option<(Result<CellMetrics, String>, CellKeys)>> = vec![None; n];
    let mut done_cells = 0usize;
    let mut spare: VecDeque<(usize, usize)> = VecDeque::new();
    let mut delta_map: BTreeMap<(u8, u64), CounterRegistry> = BTreeMap::new();
    let mut verify_map: BTreeMap<String, VerifySummary> = BTreeMap::new();
    let mut pass_map: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut respawns_left = 2 * opts.shards;
    let mut to_kill: Vec<usize> = Vec::new();

    fn remaining_of(
        slot: &Slot,
        results: &[Option<(Result<CellMetrics, String>, CellKeys)>],
    ) -> usize {
        match slot.inflight {
            None => 0,
            Some((lo, hi, _)) => (lo..hi).filter(|&i| results[i].is_none()).count(),
        }
    }

    // Hand the next range to an idle shard: its own deque first, then the
    // spare pool, then a whole-chunk steal from the longest peer deque,
    // and as a last resort a trim request to the busiest in-flight peer.
    fn dispatch(
        slots: &mut [Slot],
        spare: &mut VecDeque<(usize, usize)>,
        results: &[Option<(Result<CellMetrics, String>, CellKeys)>],
        tracer: &Tracer,
        s: usize,
        dead: &mut Vec<usize>,
    ) {
        if !slots[s].alive || !slots[s].ready || slots[s].inflight.is_some() {
            return;
        }
        if slots[s].poison_next {
            slots[s].poison_next = false;
            // fault injection: feed the shard one unparseable line; it must
            // exit(4), which surfaces as EOF and triggers reassignment
            if !slots[s].send("{\"type\":") {
                dead.push(s);
                return;
            }
        }
        let range = if let Some(r) = slots[s].pending.pop_front() {
            Some(r)
        } else if let Some(r) = spare.pop_front() {
            slots[s].stats.steals_received += 1;
            Some(r)
        } else {
            let victim = (0..slots.len())
                .filter(|&t| t != s && !slots[t].pending.is_empty())
                .max_by_key(|&t| slots[t].pending.len());
            match victim {
                Some(t) => {
                    let r = slots[t].pending.pop_back().expect("non-empty deque");
                    slots[t].stats.steals_donated += 1;
                    slots[s].stats.steals_received += 1;
                    Some(r)
                }
                None => None,
            }
        };
        let Some((lo, hi)) = range else {
            // nothing queued anywhere: ask the busiest in-flight peer to
            // give back the untouched half of its range
            let busiest = (0..slots.len())
                .filter(|&t| {
                    t != s
                        && slots[t].alive
                        && slots[t].inflight.is_some()
                        && !slots[t].trim_outstanding
                })
                .max_by_key(|&t| remaining_of(&slots[t], results));
            if let Some(t) = busiest {
                if remaining_of(&slots[t], results) >= 4 {
                    if slots[t].send("{\"type\":\"trim\"}") {
                        slots[t].trim_outstanding = true;
                    } else {
                        dead.push(t);
                    }
                }
            }
            return;
        };
        let line = Json::obj()
            .field("type", "run")
            .field("lo", lo)
            .field("hi", hi)
            .to_string();
        if !slots[s].send(&line) {
            spare.push_front((lo, hi));
            dead.push(s);
            return;
        }
        if tracer.is_enabled() {
            tracer.set_process_track(s as u32 + 2, &format!("shard-{s}"));
            let mut span = tracer.span_dyn("shard", || format!("cells {lo}..{hi}"));
            span.arg("shard", s);
            span.arg("cells", hi - lo);
            tracer.set_process_track(1, "slc");
            slots[s].span = Some(span);
        }
        slots[s].inflight = Some((lo, hi, Instant::now()));
        slots[s].stats.chunks += 1;
    }

    fn handle_death(
        slots: &mut [Slot],
        spare: &mut VecDeque<(usize, usize)>,
        results: &[Option<(Result<CellMetrics, String>, CellKeys)>],
        s: usize,
    ) {
        if !slots[s].alive {
            return;
        }
        slots[s].alive = false;
        slots[s].stats.alive = false;
        // quarantine capture: preserve the dead worker's last flight ring
        // (shipped with its final `cells` message) in the timing sidecar
        slots[s].stats.flight = slots[s].last_flight.take();
        slots[s].span = None;
        slots[s].stdin = None;
        if let Some(mut child) = slots[s].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        // cells stream back front-to-back, so the unreceived remainder of
        // the in-flight range starts at the first missing index
        if let Some((lo, hi, _)) = slots[s].inflight.take() {
            if let Some(f) = (lo..hi).find(|&i| results[i].is_none()) {
                spare.push_back((f, hi));
            }
        }
        while let Some(r) = slots[s].pending.pop_front() {
            spare.push_back(r);
        }
    }

    while done_cells < n {
        // deaths noticed while dispatching (broken pipes)
        while let Some(s) = to_kill.pop() {
            handle_death(&mut slots, &mut spare, &results, s);
        }
        if !slots.iter().any(|sl| sl.alive) {
            // every shard is gone with work outstanding: spawn a recovery
            // shard (without fault injections) or give up
            if respawns_left == 0 {
                return Err(format!(
                    "all shards died with {} of {n} cells outstanding",
                    n - done_cells
                ));
            }
            respawns_left -= 1;
            let s = 0;
            let token = next_token;
            next_token += 1;
            let (child, stdin) = spawn(s, token, false, &tx)?;
            token_slot.insert(token, s);
            slots[s].child = Some(child);
            slots[s].stdin = Some(stdin);
            slots[s].token = token;
            slots[s].alive = true;
            slots[s].stats.alive = true;
            slots[s].ready = false;
            slots[s].trim_outstanding = false;
            if !slots[s].send(&init_line) {
                handle_death(&mut slots, &mut spare, &results, s);
                continue;
            }
        }
        let (token, ev) = match rx.recv_timeout(Duration::from_secs(120)) {
            Ok(e) => e,
            Err(_) => return Err("shard dispatcher stalled waiting for worker output".into()),
        };
        let Some(&s) = token_slot.get(&token) else {
            continue;
        };
        if token != slots[s].token || !slots[s].alive {
            continue; // stale generation or already-dead shard
        }
        let line = match ev {
            Ev::Eof => {
                handle_death(&mut slots, &mut spare, &results, s);
                for t in 0..slots.len() {
                    dispatch(&mut slots, &mut spare, &results, tracer, t, &mut to_kill);
                }
                continue;
            }
            Ev::Line(l) => l,
        };
        let msg = match Json::parse(&line) {
            Ok(j) => j,
            Err(_) => {
                // malformed shard output: quarantine the shard, reassign
                handle_death(&mut slots, &mut spare, &results, s);
                for t in 0..slots.len() {
                    dispatch(&mut slots, &mut spare, &results, tracer, t, &mut to_kill);
                }
                continue;
            }
        };
        match msg_type(&msg) {
            "ready" => {
                slots[s].ready = true;
                dispatch(&mut slots, &mut spare, &results, tracer, s, &mut to_kill);
            }
            "deltas" => {
                if let Ok(entries) = want_arr(&msg, "entries") {
                    for e in entries {
                        let (Ok(stage), Ok(key), Ok(counters)) =
                            (want_u(e, "stage"), want_u(e, "key"), want(e, "counters"))
                        else {
                            continue;
                        };
                        delta_map.entry((stage as u8, key)).or_insert_with(|| {
                            let mut reg = CounterRegistry::new();
                            if let Some(members) = counters.as_obj() {
                                for (name, v) in members {
                                    if let Some(x) = v.as_i64() {
                                        reg.add(name, x as u64);
                                    }
                                }
                            }
                            reg
                        });
                    }
                }
                if let Ok(vs) = want_arr(&msg, "verify") {
                    for v in vs {
                        if let Ok(sum) = decode_verify(v) {
                            verify_map.entry(sum.workload.clone()).or_insert(sum);
                        }
                    }
                }
            }
            "cells" => {
                if let Some(f) = msg.get("flight").and_then(Json::as_str) {
                    slots[s].last_flight = Some(f.to_string());
                }
                if let Ok(arr) = want_arr(&msg, "cells") {
                    for c in arr {
                        match decode_cell(c) {
                            Ok((idx, outcome, keys)) if idx < n => {
                                if results[idx].is_none() {
                                    results[idx] = Some((outcome, keys));
                                    done_cells += 1;
                                    slots[s].stats.cells += 1;
                                }
                            }
                            _ => {
                                handle_death(&mut slots, &mut spare, &results, s);
                                break;
                            }
                        }
                    }
                }
            }
            "done" => {
                if let Some((_, _, t_disp)) = slots[s].inflight.take() {
                    slots[s].chunk_ms.push(t_disp.elapsed().as_secs_f64() * 1e3);
                }
                slots[s].span = None;
                slots[s].trim_outstanding = false;
                dispatch(&mut slots, &mut spare, &results, tracer, s, &mut to_kill);
            }
            "trimmed" => {
                slots[s].trim_outstanding = false;
                let (lo, hi) = (
                    opt_u(&msg, "lo").unwrap_or(0) as usize,
                    opt_u(&msg, "hi").unwrap_or(0) as usize,
                );
                if hi > lo {
                    if let Some((ilo, _, t_disp)) = slots[s].inflight {
                        slots[s].inflight = Some((ilo, lo, t_disp));
                    }
                    slots[s].stats.steals_donated += 1;
                    spare.push_back((lo, hi));
                    for t in 0..slots.len() {
                        dispatch(&mut slots, &mut spare, &results, tracer, t, &mut to_kill);
                    }
                }
            }
            _ => {}
        }
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    drop(batch_span);

    // graceful shutdown: collect per-shard wall-clock stats
    for s in 0..slots.len() {
        if slots[s].alive && !slots[s].send("{\"type\":\"shutdown\"}") {
            handle_death(&mut slots, &mut spare, &results, s);
        }
    }
    let mut awaiting: BTreeSet<usize> = (0..slots.len()).filter(|&s| slots[s].alive).collect();
    while !awaiting.is_empty() {
        let (token, ev) = match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(e) => e,
            Err(_) => break,
        };
        let Some(&s) = token_slot.get(&token) else {
            continue;
        };
        if token != slots[s].token {
            continue;
        }
        match ev {
            Ev::Eof => {
                awaiting.remove(&s);
            }
            Ev::Line(l) => {
                if let Ok(msg) = Json::parse(&l) {
                    if msg_type(&msg) == "stats" {
                        apply_stats(&mut slots[s], &msg, &mut pass_map);
                        // merge the worker's span dump into the one
                        // timeline: its spans land under this shard's
                        // synthetic process, tids shifted past the
                        // dispatcher's own tid-0 chunk row
                        if let Some(dump) = msg.get("span_dump").and_then(Json::as_str) {
                            let _ = tracer.import_process_dump(
                                dump,
                                s as u32 + 2,
                                &format!("shard-{s}"),
                            );
                        }
                    }
                }
            }
        }
    }
    for slot in &mut slots {
        slot.stdin = None;
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    // reduce
    let mut out_cells = Vec::with_capacity(n);
    let mut keyed = Vec::with_capacity(n);
    for (i, r) in results.into_iter().enumerate() {
        let (outcome, keys) = r.ok_or_else(|| format!("cell {i} never reported"))?;
        out_cells.push(CellResult {
            id: cell_id(cfg, &cells[i]),
            outcome,
        });
        keyed.push(keys);
    }
    let cache = replay_cache(keyed.iter());
    let (counters, steady) = reduce_counters(&delta_map, &cache);
    let stage_total = slots.iter().fold(StageNs::default(), |acc, sl| StageNs {
        parse: acc.parse + sl.stats.stage.parse,
        slms: acc.slms + sl.stats.stage.slms,
        lower: acc.lower + sl.stats.stage.lower,
        compile: acc.compile + sl.stats.stage.compile,
        sim: acc.sim + sl.stats.stage.sim,
    });
    let shard_stats: Vec<ShardStats> = slots
        .iter_mut()
        .map(|sl| {
            let mut ms = std::mem::take(&mut sl.chunk_ms);
            ms.sort_by(|a, b| a.total_cmp(b));
            ShardStats {
                chunk_ms_p50: percentile(&ms, 0.50),
                chunk_ms_p99: percentile(&ms, 0.99),
                ..std::mem::take(&mut sl.stats)
            }
        })
        .collect();
    Ok(BatchReport {
        cells: out_cells,
        cache,
        counters,
        histograms: HistogramRegistry::new(),
        timing: TimingReport {
            threads: effective_threads(opts.threads_per_shard, n),
            wall_ns,
            parse_ns: stage_total.parse,
            slms_ns: stage_total.slms,
            lower_ns: stage_total.lower,
            compile_ns: stage_total.compile,
            sim_ns: stage_total.sim,
            passes: pass_map
                .into_iter()
                .map(|(pass, (ns, runs))| PassTiming { pass, ns, runs })
                .collect(),
            verify: verify_map.into_values().collect(),
            steady,
            workers: Vec::new(),
            shards: shard_stats,
            wall_hist: HistogramRegistry::new(),
        },
    })
}

fn decode_verify(j: &Json) -> Result<VerifySummary, String> {
    Ok(VerifySummary {
        workload: want_s(j, "workload")?.to_string(),
        verified: want_usize(j, "verified")?,
        skipped: want_usize(j, "skipped")?,
        obligations: want_usize(j, "obligations")?,
        violations: want_usize(j, "violations")?,
    })
}

fn apply_stats(slot: &mut Slot, msg: &Json, pass_map: &mut BTreeMap<String, (u64, u64)>) {
    if let Ok(ws) = want_arr(msg, "workers") {
        slot.stats.workers = ws
            .iter()
            .filter_map(|w| {
                Some(WorkerStats {
                    worker: want_usize(w, "worker").ok()?,
                    claimed: want_u(w, "claimed").ok()?,
                    empty_polls: want_u(w, "empty_polls").ok()?,
                    busy_ns: want_u(w, "busy_ns").ok()?,
                })
            })
            .collect();
    }
    if let Ok(st) = want(msg, "stage") {
        slot.stats.stage = StageNs {
            parse: opt_u(st, "parse").unwrap_or(0),
            slms: opt_u(st, "slms").unwrap_or(0),
            lower: opt_u(st, "lower").unwrap_or(0),
            compile: opt_u(st, "compile").unwrap_or(0),
            sim: opt_u(st, "sim").unwrap_or(0),
        };
    }
    slot.stats.cpu_ms = opt_u(msg, "cpu").unwrap_or(0) as f64 / 1e6;
    if !slot.pass_merged {
        if let Ok(ps) = want_arr(msg, "passes") {
            for p in ps {
                if let (Ok(name), Some(ns), Some(runs)) =
                    (want_s(p, "pass"), opt_u(p, "ns"), opt_u(p, "runs"))
                {
                    let e = pass_map.entry(name.to_string()).or_insert((0, 0));
                    e.0 += ns;
                    e.1 += runs;
                }
            }
            slot.pass_merged = true;
        }
    }
}

// ---------------------------------------------------------------------------
// The worker side (`slc batch-shard`, hidden).
// ---------------------------------------------------------------------------

fn emit(j: &Json) -> bool {
    let mut out = std::io::stdout().lock();
    writeln!(out, "{j}").and_then(|_| out.flush()).is_ok()
}

struct WorkerState {
    svc: CompileService,
    cfg: BatchConfig,
    cells: Vec<MatrixCell>,
    threads: usize,
    workers: BTreeMap<usize, WorkerStats>,
    evaluated: u64,
    verify_sent: BTreeSet<String>,
    garbage_done: bool,
    /// enabled (and bound to the dispatcher's trace context) when the init
    /// message carried trace fields; its span dump rides the shutdown
    /// stats reply back to the dispatcher
    tracer: Tracer,
}

impl WorkerState {
    fn stats_reply(&self) -> Json {
        let workers: Vec<WorkerStats> = self.workers.values().cloned().collect();
        stats_json(
            &workers,
            &self.svc.stage_ns(),
            &self.svc.pass_timings(),
            self_cpu_ns(),
            self.tracer.export_process_dump("shard-worker"),
        )
    }
}

impl WorkerState {
    /// Ship pending counter deltas (and any newly recorded verify
    /// verdicts) *before* the cells they explain, so the dispatcher never
    /// holds a reported cell whose deltas died with this process.
    fn flush_deltas(&mut self) -> bool {
        let entries = self.svc.take_attribution();
        let mut fresh = Vec::new();
        for v in self.svc.verify_summaries() {
            if self.verify_sent.insert(v.workload.clone()) {
                fresh.push(v);
            }
        }
        if entries.is_empty() && fresh.is_empty() {
            return true;
        }
        emit(&deltas_json(&entries, &fresh))
    }
}

/// The hidden `batch-shard` subcommand body: speak `slc-shard-proto-v1` on
/// stdin/stdout until the dispatcher shuts us down or the pipe closes.
/// Returns the process exit code (0 = clean, 4 = malformed input line).
/// The fault hooks drive the degradation tests: `fail_after` aborts the
/// process after that many cells, `garbage_after` prints one unparseable
/// stdout line after that many cells.
pub fn shard_worker(fail_after: Option<u64>, garbage_after: Option<u64>) -> i32 {
    // a panicking worker leaves its flight ring on stderr (the dispatcher
    // inherits it), in addition to the tails shipped with cells messages
    slc_trace::install_panic_hook();
    let (tx, rx) = mpsc::channel::<Result<Json, String>>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if tx
                .send(Json::parse(&line).map_err(|e| e.to_string()))
                .is_err()
            {
                return;
            }
        }
        // EOF: channel closes when tx drops
    });
    let mut state: Option<WorkerState> = None;
    loop {
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => return 0, // parent closed the pipe
        };
        let msg = match msg {
            Ok(j) => j,
            Err(_) => return 4, // malformed dispatcher line
        };
        match msg_type(&msg) {
            "init" => match decode_init(&msg) {
                Ok((cfg, threads, ctx)) => {
                    let svc = CompileService::new();
                    svc.enable_attribution();
                    let cells = enumerate_matrix(
                        cfg.workloads.len(),
                        cfg.machines.len(),
                        cfg.compilers.len(),
                    );
                    let tracer = match ctx {
                        Some(c) => {
                            let t = Tracer::enabled();
                            t.set_ctx(c);
                            t
                        }
                        None => Tracer::disabled(),
                    };
                    state = Some(WorkerState {
                        svc,
                        threads: effective_threads(threads, usize::MAX / 2),
                        cfg,
                        cells,
                        workers: BTreeMap::new(),
                        evaluated: 0,
                        verify_sent: BTreeSet::new(),
                        garbage_done: false,
                        tracer,
                    });
                    if !emit(&Json::obj().field("type", "ready")) {
                        return 0;
                    }
                }
                Err(_) => return 4,
            },
            "run" => {
                let (Some(st), Some(lo), Some(hi)) =
                    (state.as_mut(), opt_u(&msg, "lo"), opt_u(&msg, "hi"))
                else {
                    return 4;
                };
                if let Some(code) =
                    run_range(st, lo as usize, hi as usize, &rx, fail_after, garbage_after)
                {
                    return code;
                }
            }
            "trim" => {
                // no range in flight: nothing to give back
                let reply = Json::obj()
                    .field("type", "trimmed")
                    .field("lo", 0u64)
                    .field("hi", 0u64);
                if !emit(&reply) {
                    return 0;
                }
            }
            "shutdown" => {
                if let Some(st) = state.as_ref() {
                    let _ = emit(&st.stats_reply());
                }
                return 0;
            }
            _ => {}
        }
    }
}

/// Evaluate `lo..hi` in sub-batches of `threads` cells, flushing deltas
/// then cells after each sub-batch and answering trim requests at
/// sub-batch boundaries. Returns `Some(exit_code)` on a fatal condition.
fn run_range(
    st: &mut WorkerState,
    lo: usize,
    hi: usize,
    rx: &mpsc::Receiver<Result<Json, String>>,
    fail_after: Option<u64>,
    garbage_after: Option<u64>,
) -> Option<i32> {
    let mut cur = lo;
    let mut end = hi.min(st.cells.len());
    loop {
        // control poll between sub-batches
        while let Ok(m) = rx.try_recv() {
            let Ok(msg) = m else { return Some(4) };
            // the dispatcher may decide the matrix is complete (every cell
            // reported by someone) while we are still mid-range; honour the
            // shutdown here or we'd drop it and block forever on the next recv
            if msg_type(&msg) == "shutdown" {
                let _ = emit(&st.stats_reply());
                return Some(0);
            }
            if msg_type(&msg) == "trim" {
                let rem = end - cur;
                let (give_lo, give_hi) = if rem >= 2 {
                    let mid = cur + rem.div_ceil(2);
                    (mid, end)
                } else {
                    (0, 0)
                };
                if !emit(
                    &Json::obj()
                        .field("type", "trimmed")
                        .field("lo", give_lo)
                        .field("hi", give_hi),
                ) {
                    return Some(0);
                }
                if give_hi > give_lo {
                    end = give_lo;
                }
            }
        }
        if cur >= end {
            break;
        }
        let batch = st.threads.max(1).min(end - cur);
        let svc = &st.svc;
        let cfg = &st.cfg;
        let cells = &st.cells;
        let tracer = &st.tracer;
        let (evaluated, wstats) = par_map_indexed_stats(batch, st.threads, |worker, k| {
            if tracer.is_enabled() {
                tracer.set_thread_track(worker as u32, &format!("worker {worker}"));
            }
            let cell = cells[cur + k];
            svc.eval_cell_keyed(
                &CellSpec {
                    workload: &cfg.workloads[cell.workload],
                    machine: &cfg.machines[cell.machine],
                    compiler: cfg.compilers[cell.compiler],
                    variant: cell.variant,
                    plan: &cfg.plan,
                    slms: &cfg.slms,
                    verify: cfg.verify,
                },
                tracer,
            )
        });
        for w in wstats {
            let acc = st.workers.entry(w.worker).or_insert(WorkerStats {
                worker: w.worker,
                claimed: 0,
                empty_polls: 0,
                busy_ns: 0,
            });
            acc.claimed += w.claimed;
            acc.empty_polls += w.empty_polls;
            acc.busy_ns = acc.busy_ns.saturating_add(w.busy_ns);
        }
        st.evaluated += batch as u64;
        if !st.flush_deltas() {
            return Some(0);
        }
        if let Some(g) = garbage_after {
            if st.evaluated >= g && !st.garbage_done {
                st.garbage_done = true;
                let mut out = std::io::stdout().lock();
                let _ = writeln!(out, "{{\"type\": garbage");
                let _ = out.flush();
            }
        }
        let wire: Vec<Json> = evaluated
            .iter()
            .enumerate()
            .map(|(k, (res, keys))| cell_json(cur + k, res, keys))
            .collect();
        // every cells message carries a bounded flight-recorder tail: the
        // dispatcher keeps only the newest, and if this process dies
        // (abort, OOM-kill) that snapshot is its black box
        if !emit(
            &Json::obj()
                .field("type", "cells")
                .field("cells", Json::Arr(wire))
                .field("flight", FlightRecorder::global().dump_jsonl_tail(64)),
        ) {
            return Some(0);
        }
        if let Some(f) = fail_after {
            if st.evaluated >= f {
                std::process::abort();
            }
        }
        cur += batch;
    }
    if !emit(
        &Json::obj()
            .field("type", "done")
            .field("lo", lo)
            .field("hi", end),
    ) {
        return Some(0);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_sim::presets::{arm7tdmi, itanium2, pentium, power4};

    #[test]
    fn partition_covers_and_balances() {
        for n in [0, 1, 7, 24, 100] {
            for shards in [1, 2, 4, 7] {
                let parts = partition(n, shards);
                assert_eq!(parts.len(), shards);
                assert_eq!(parts[0].0, 0);
                assert_eq!(parts[shards - 1].1, n);
                let mut total = 0;
                for (i, (lo, hi)) in parts.iter().enumerate() {
                    assert!(lo <= hi);
                    total += hi - lo;
                    if i > 0 {
                        assert_eq!(*lo, parts[i - 1].1, "contiguous");
                    }
                }
                assert_eq!(total, n);
                let sizes: Vec<usize> = parts.iter().map(|(l, h)| h - l).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced: {sizes:?}");
            }
        }
        assert_eq!(chunk_ranges(3, 11, 3), vec![(3, 6), (6, 9), (9, 11)]);
        assert_eq!(chunk_ranges(5, 5, 3), vec![]);
    }

    #[test]
    fn machine_wire_roundtrip_preserves_fingerprint() {
        for m in [itanium2(), pentium(), power4(), arm7tdmi()] {
            let j = machine_json(&m);
            let back = decode_machine(&Json::parse(&j.to_string()).unwrap()).unwrap();
            assert_eq!(back.fingerprint(), m.fingerprint(), "{}", m.name);
            assert_eq!(back.name, m.name);
        }
    }

    #[test]
    fn slms_wire_roundtrip_exact_bits() {
        let mut cfg = SlmsConfig::default();
        let back = decode_slms(&Json::parse(&slms_json(&cfg).to_string()).unwrap()).unwrap();
        assert_eq!(back, cfg);
        cfg.filter.min_arith_per_ref = Some(6.5);
        cfg.filter.max_memref_ratio = 0.1 + 0.2; // not exactly representable in decimal
        cfg.expansion = Expansion::ScalarExpand;
        cfg.scheduler = SchedulerKind::Exact;
        cfg.apply_filter = false;
        let back = decode_slms(&Json::parse(&slms_json(&cfg).to_string()).unwrap()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn init_wire_roundtrip_preserves_plan_and_axes() {
        let mut cfg = BatchConfig::full_matrix();
        cfg.plan = PassPlan::parse("fuse:0+1,slms").unwrap();
        cfg.verify = true;
        let ctx = TraceCtx::from_hex("00000000000000ab", "0000000000000001").unwrap();
        let line = init_json(&cfg, Some(3), Some(ctx)).to_string();
        let (back, threads, back_ctx) = decode_init(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(threads, Some(3));
        assert_eq!(back_ctx, Some(ctx));
        assert!(back.verify);
        // an untraced init round-trips to no context
        let line = init_json(&cfg, Some(3), None).to_string();
        let (_, _, none_ctx) = decode_init(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(none_ctx, None);
        assert_eq!(back.plan.to_string(), cfg.plan.to_string());
        assert_eq!(
            back.plan.fingerprint(&back.slms),
            cfg.plan.fingerprint(&cfg.slms)
        );
        assert_eq!(back.workloads.len(), cfg.workloads.len());
        for (a, b) in back.workloads.iter().zip(&cfg.workloads) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.source, b.source);
            assert_eq!(a.suite, b.suite);
        }
        assert_eq!(back.compilers, cfg.compilers);
        for (a, b) in back.machines.iter().zip(&cfg.machines) {
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn cell_wire_roundtrip_bit_exact() {
        let keys = CellKeys {
            parse: u64::MAX - 3, // exercises the i64 cast path
            plan: Some(7),
            compile: Some(u64::MAX),
            lir: Some(11),
            sim: Some(u64::MAX),
        };
        let id = CellId {
            workload: "k".into(),
            suite: "paper".into(),
            machine: "m".into(),
            compiler: "opt",
            variant: "slms",
        };
        let metrics = CellMetrics {
            cycles: 123,
            ops: 456,
            l1_hits: 7,
            l1_misses: 8,
            spill_accesses: 9,
            energy: 0.1 + 0.2,
            transformed: true,
            slms_ii: Some(3),
            optimality_gaps: vec![0, 1],
            loops: vec![LoopInfo {
                var: "i".into(),
                trips: 1000,
                bundles_per_iter: 4,
                ms_applied: true,
                ii: Some(2),
                stages: Some(3),
                reg_pressure: 5,
                spilled: 0,
            }],
        };
        let res = CellResult {
            id: id.clone(),
            outcome: Ok(metrics.clone()),
        };
        let line = cell_json(42, &res, &keys).to_string();
        let (idx, outcome, back_keys) = decode_cell(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(idx, 42);
        assert_eq!(back_keys, keys);
        let m = outcome.unwrap();
        assert_eq!(m.cycles, metrics.cycles);
        assert_eq!(m.energy.to_bits(), metrics.energy.to_bits());
        assert_eq!(m.slms_ii, metrics.slms_ii);
        assert_eq!(m.optimality_gaps, metrics.optimality_gaps);
        assert_eq!(m.loops.len(), 1);
        assert_eq!(m.loops[0].ii, Some(2));
        // degraded cell
        let bad = CellResult {
            id,
            outcome: Err("lower: nope".into()),
        };
        let line = cell_json(7, &bad, &CellKeys::default()).to_string();
        let (_, outcome, _) = decode_cell(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(outcome.unwrap_err(), "lower: nope");
    }

    #[test]
    fn replay_reconstructs_cache_report() {
        // evaluate a small matrix serially, capture keys, replay — the
        // replayed report must equal what the service itself counted
        let cfg = BatchConfig {
            workloads: slc_workloads::paper_examples(),
            machines: vec![itanium2(), power4()],
            compilers: vec![CompilerKind::Weak, CompilerKind::Optimizing],
            slms: SlmsConfig::default(),
            plan: PassPlan::slms_only(),
            threads: Some(1),
            verify: false,
        };
        let svc = CompileService::new();
        let cells = enumerate_matrix(cfg.workloads.len(), cfg.machines.len(), cfg.compilers.len());
        let mut keys = Vec::new();
        for c in &cells {
            let (_, k) = svc.eval_cell_keyed(
                &CellSpec {
                    workload: &cfg.workloads[c.workload],
                    machine: &cfg.machines[c.machine],
                    compiler: cfg.compilers[c.compiler],
                    variant: c.variant,
                    plan: &cfg.plan,
                    slms: &cfg.slms,
                    verify: cfg.verify,
                },
                &Tracer::disabled(),
            );
            keys.push(k);
        }
        let replayed = replay_cache(keys.iter());
        let real = svc.cache_report();
        assert_eq!(replayed.parse, real.parse);
        assert_eq!(replayed.slms, real.slms);
        assert_eq!(replayed.lir, real.lir);
        assert_eq!(replayed.compile, real.compile);
        assert_eq!(replayed.sim, real.sim);
    }

    #[test]
    fn reduced_counters_match_single_process() {
        // one worker state driven directly (no pipes): its shipped deltas
        // plus the replayed cache must finalize to the in-process registry
        let cfg = BatchConfig {
            workloads: slc_workloads::paper_examples(),
            machines: vec![itanium2()],
            compilers: vec![CompilerKind::Optimizing],
            slms: SlmsConfig::default(),
            plan: PassPlan::slms_only(),
            threads: Some(2),
            verify: true,
        };
        let reference = crate::batch::run_batch(&cfg);
        let svc = CompileService::new();
        svc.enable_attribution();
        let cells = enumerate_matrix(cfg.workloads.len(), cfg.machines.len(), cfg.compilers.len());
        let mut keys = Vec::new();
        for c in &cells {
            let (_, k) = svc.eval_cell_keyed(
                &CellSpec {
                    workload: &cfg.workloads[c.workload],
                    machine: &cfg.machines[c.machine],
                    compiler: cfg.compilers[c.compiler],
                    variant: c.variant,
                    plan: &cfg.plan,
                    slms: &cfg.slms,
                    verify: cfg.verify,
                },
                &Tracer::disabled(),
            );
            keys.push(k);
        }
        let mut delta_map = BTreeMap::new();
        for (stage, key, reg) in svc.take_attribution() {
            delta_map.insert((stage, key), reg);
        }
        let cache = replay_cache(keys.iter());
        let (counters, steady) = reduce_counters(&delta_map, &cache);
        assert_eq!(counters, reference.counters);
        assert_eq!(steady.trips_total, reference.timing.steady.trips_total);
        assert_eq!(steady.fast_loops, reference.timing.steady.fast_loops);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }
}
