//! The three final-compiler personalities and the bridge to the simulator.
//!
//! * [`CompilerKind::Weak`] — GCC −O0 analogue: ops are emitted in program
//!   order, one per issue slot, no scheduling.
//! * [`CompilerKind::Optimizing`] — GCC −O3 analogue (without its weak
//!   software pipelining): list scheduling of every block.
//! * [`CompilerKind::OptimizingMs`] — ICC/XLC analogue: list scheduling
//!   plus Rau's iterative modulo scheduling of innermost loops (applied when
//!   profitable against the list schedule, like a production heuristic).
//!
//! Register pressure of each innermost loop is measured on the final
//! schedule and converted to per-iteration spill traffic against the
//! machine's architected register count.

use slc_ast::Program;
use slc_machine::ir::{Bundle, Lir, LirLoop, LirProgram, Op};
use slc_machine::lower::{lower_program, LowerError};
use slc_machine::mach::MachineDesc;
use slc_machine::{list_schedule, max_pressure, modulo_schedule, spills};
use slc_sim::cycle::{CompiledProgram, Seg, SimLoop};

/// Final-compiler personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompilerKind {
    /// program-order code generation (−O0)
    Weak,
    /// list scheduling (−O3, no machine-level MS)
    Optimizing,
    /// list scheduling + iterative modulo scheduling (ICC/XLC class)
    OptimizingMs,
}

/// Per-innermost-loop compile facts, for the paper's bundle/II reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    /// loop variable
    pub var: String,
    /// iteration count
    pub trips: i64,
    /// bundles (cycles) per iteration in the emitted schedule
    pub bundles_per_iter: usize,
    /// machine-level modulo scheduling applied?
    pub ms_applied: bool,
    /// initiation interval when MS applied
    pub ii: Option<i64>,
    /// pipeline stages when MS applied
    pub stages: Option<i64>,
    /// measured register pressure
    pub reg_pressure: usize,
    /// registers spilled (excess over the architected file)
    pub spilled: usize,
}

/// Result of compilation: a simulatable program plus statistics.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// program for `slc_sim::simulate`
    pub compiled: CompiledProgram,
    /// per-innermost-loop facts
    pub loops: Vec<LoopInfo>,
}

fn naive_bundles(ops: &[Op]) -> Vec<Bundle> {
    ops.iter().map(|o| vec![o.clone()]).collect()
}

fn schedule_block(ops: &[Op], m: &MachineDesc, kind: CompilerKind) -> Vec<Bundle> {
    match kind {
        CompilerKind::Weak => naive_bundles(ops),
        _ => list_schedule(ops, m).bundles,
    }
}

fn is_innermost(l: &LirLoop) -> bool {
    l.body.iter().all(|it| matches!(it, Lir::Block(_)))
}

fn build_loop(l: &LirLoop, m: &MachineDesc, kind: CompilerKind, infos: &mut Vec<LoopInfo>) -> Seg {
    let arch_regs = m.int_regs + m.fp_regs;
    if is_innermost(l) {
        // innermost: single block body (lowering guarantees one block)
        let ops: Vec<Op> = l
            .body
            .iter()
            .flat_map(|it| match it {
                Lir::Block(b) => b.clone(),
                Lir::Loop(_) => unreachable!(),
            })
            .collect();
        // try machine-level modulo scheduling
        if kind == CompilerKind::OptimizingMs {
            if let Some(ms) = modulo_schedule(&ops, m, &l.var, l.step) {
                let list_len = list_schedule(&ops, m).bundles.len() as i64;
                let profitable = ms.ii < list_len && l.trips > ms.stages;
                if profitable {
                    let sp = spills(ms.reg_pressure, arch_regs);
                    infos.push(LoopInfo {
                        var: l.var.clone(),
                        trips: l.trips,
                        bundles_per_iter: ms.kernel.len(),
                        ms_applied: true,
                        ii: Some(ms.ii),
                        stages: Some(ms.stages),
                        reg_pressure: ms.reg_pressure,
                        spilled: sp.excess,
                    });
                    // ramp: prologue+epilogue modelled as (stages−1) extra
                    // kernel iterations each; steady state runs
                    // trips − (stages−1) → total trips + stages − 1
                    return Seg::Loop(SimLoop {
                        var: l.var.clone(),
                        init: l.init,
                        step: l.step,
                        trips: l.trips + ms.stages - 1,
                        body: vec![Seg::Straight(ms.kernel)],
                        extra_mem_per_iter: sp.extra_mem_per_iter,
                    });
                }
            }
        }
        let bundles = schedule_block(&ops, m, kind);
        let pressure = max_pressure(&bundles);
        let sp = spills(pressure, arch_regs);
        infos.push(LoopInfo {
            var: l.var.clone(),
            trips: l.trips,
            bundles_per_iter: bundles.len(),
            ms_applied: false,
            ii: None,
            stages: None,
            reg_pressure: pressure,
            spilled: sp.excess,
        });
        Seg::Loop(SimLoop {
            var: l.var.clone(),
            init: l.init,
            step: l.step,
            trips: l.trips,
            body: vec![Seg::Straight(bundles)],
            extra_mem_per_iter: sp.extra_mem_per_iter,
        })
    } else {
        let body = l
            .body
            .iter()
            .map(|it| match it {
                Lir::Block(b) => Seg::Straight(schedule_block(b, m, kind)),
                Lir::Loop(inner) => build_loop(inner, m, kind, infos),
            })
            .collect();
        Seg::Loop(SimLoop {
            var: l.var.clone(),
            init: l.init,
            step: l.step,
            trips: l.trips,
            body,
            extra_mem_per_iter: 0,
        })
    }
}

/// Compile a program for a machine with one of the personalities.
pub fn compile(
    prog: &Program,
    m: &MachineDesc,
    kind: CompilerKind,
) -> Result<CompileResult, LowerError> {
    let lir = lower_program(prog)?;
    Ok(compile_lir(&lir, m, kind))
}

/// Schedule an already-lowered program for a machine with one of the
/// personalities. Lowering is machine-independent, so the batch engine
/// caches the [`LirProgram`] once per source program and calls this for
/// every (machine, personality) cell; `compile` is the lower-then-schedule
/// composition.
pub fn compile_lir(lir: &LirProgram, m: &MachineDesc, kind: CompilerKind) -> CompileResult {
    let mut infos = Vec::new();
    let segs = lir
        .items
        .iter()
        .map(|it| match it {
            Lir::Block(b) => Seg::Straight(schedule_block(b, m, kind)),
            Lir::Loop(l) => build_loop(l, m, kind, &mut infos),
        })
        .collect();
    CompileResult {
        compiled: CompiledProgram {
            segs,
            arrays: lir.arrays.clone(),
        },
        loops: infos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_program;
    use slc_sim::presets::itanium2;

    fn prog(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn weak_emits_one_op_per_bundle() {
        let p =
            prog("float A[16]; float B[16]; int i; for (i = 0; i < 16; i++) A[i] = B[i] * 2.0;");
        let m = itanium2();
        let r = compile(&p, &m, CompilerKind::Weak).unwrap();
        assert_eq!(r.loops.len(), 1);
        // load, mul, store, add, cmp, branch = 6 bundles
        assert_eq!(r.loops[0].bundles_per_iter, 6);
    }

    #[test]
    fn optimizing_packs_tighter() {
        let p = prog(
            "float A[16]; float B[16]; float C[16]; float D[16]; int i;\n\
             for (i = 0; i < 16; i++) { A[i] = B[i] + 1.0; C[i] = D[i] + 2.0; }",
        );
        let m = itanium2();
        let weak = compile(&p, &m, CompilerKind::Weak).unwrap();
        let opt = compile(&p, &m, CompilerKind::Optimizing).unwrap();
        assert!(opt.loops[0].bundles_per_iter < weak.loops[0].bundles_per_iter);
    }

    #[test]
    fn ms_applies_to_pipelineable_loop() {
        let p = prog(
            "float A[64]; float B[64]; int i;\n\
             for (i = 0; i < 64; i++) A[i] = B[i] * 2.0 + B[i + 1];",
        );
        let m = itanium2();
        let r = compile(&p, &m, CompilerKind::OptimizingMs).unwrap();
        assert!(r.loops[0].ms_applied, "{:?}", r.loops[0]);
        assert!(r.loops[0].ii.unwrap() <= 3);
    }

    #[test]
    fn loop_info_counts_nested() {
        let p = prog(
            "float A[8][8]; int i; int j;\n\
             for (i = 0; i < 8; i++) for (j = 0; j < 8; j++) A[i][j] = 1.0;",
        );
        let m = itanium2();
        let r = compile(&p, &m, CompilerKind::Optimizing).unwrap();
        assert_eq!(r.loops.len(), 1); // only the innermost is reported
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use slc_ast::parse_program;
    use slc_sim::cycle::simulate;
    use slc_sim::presets::{arm7tdmi, itanium2};

    #[test]
    fn ims_falls_back_on_tight_recurrence() {
        // first-order recurrence with FP latency: IMS's II ≥ latency chain
        // exceeds the list schedule → profitability gate keeps list code
        let p =
            parse_program("float A[64]; int i; for (i = 1; i < 60; i++) A[i] = A[i - 1] * 0.5;")
                .unwrap();
        let m = itanium2();
        let r = compile(&p, &m, CompilerKind::OptimizingMs).unwrap();
        assert!(!r.loops[0].ms_applied, "{:?}", r.loops[0]);
    }

    #[test]
    fn order_matters_on_inorder_core() {
        // Weak (program order) vs Optimizing (list order) must differ on an
        // in-order scalar machine when the source order is latency-hostile.
        let p = parse_program(
            "float A[256]; float B[256]; float C[256]; int i;\n\
             for (i = 0; i < 250; i++) { B[i] = A[i] * 2.0; C[i] = A[i + 1] + 1.0; }",
        )
        .unwrap();
        let m = arm7tdmi();
        let weak = compile(&p, &m, CompilerKind::Weak).unwrap();
        let opt = compile(&p, &m, CompilerKind::Optimizing).unwrap();
        let cw = simulate(&weak.compiled, &m).cycles;
        let co = simulate(&opt.compiled, &m).cycles;
        assert!(co <= cw, "list order should not lose: {co} vs {cw}");
    }

    #[test]
    fn spills_reported_on_tiny_register_file() {
        let p = parse_program(
            "float A[64]; float B[64]; float C[64]; float D[64]; float E[64]; float F[64];\n\
             float a; float b; float c; float d; float e; float f; int i;\n\
             for (i = 0; i < 60; i++) {\n\
               a = A[i]; b = B[i]; c = C[i]; d = D[i]; e = E[i]; f = F[i];\n\
               A[i] = a + b + c + d + e + f;\n\
             }",
        )
        .unwrap();
        let mut m = itanium2();
        m.int_regs = 2;
        m.fp_regs = 2;
        let r = compile(&p, &m, CompilerKind::Optimizing).unwrap();
        assert!(r.loops[0].spilled > 0, "{:?}", r.loops[0]);
        // and the spill traffic shows up in the simulation
        let sim = simulate(&r.compiled, &m);
        assert!(sim.spill_accesses > 0);
    }
}
